// Scenario from the paper's introduction: a workload trace captured on
// one day is *representative* of future days, not an exact script. An
// operations team knows the workload shifts at lunchtime and in the
// evening ("time-of-day phenomena"), so it chooses k from domain
// knowledge — the number of anticipated shifts — rather than letting
// the advisor fit every fluctuation of the captured day.
//
// The example builds a synthetic "Monday" trace (morning OLTP-ish
// point lookups on (a, b), a lunchtime reporting spike on (c, d), an
// evening batch of updates), recommends designs with k = 0..4, and
// replays a *different* day ("Tuesday": same phases, different
// fluctuations) under each, showing that k = 2 — matching the two real
// shifts — generalizes best.

#include <cstdio>

#include "core/advisor.h"
#include "cost/what_if.h"
#include "engine/database.h"
#include "workload/generator.h"

using namespace cdpd;

namespace {

/// A day: morning (a/b lookups), lunch (c/d reporting), evening
/// (update-heavy maintenance on b). Minor fluctuations differ by seed.
Workload MakeDay(const Schema& schema, uint64_t seed) {
  WorkloadGenerator gen(schema, 500'000, seed);
  const std::vector<QueryMix> mixes = {
      {"morning-ab", {0.50, 0.30, 0.10, 0.10}},
      {"morning-ba", {0.30, 0.50, 0.10, 0.10}},
      {"lunch-cd", {0.05, 0.05, 0.55, 0.35}},
      {"lunch-dc", {0.05, 0.05, 0.35, 0.55}},
      {"evening-b", {0.15, 0.60, 0.15, 0.10}},
  };
  // 12 blocks morning (fluctuating), 6 blocks lunch, 6 blocks evening.
  std::vector<int> blocks;
  Rng jitter(seed ^ 0xabcdef);
  for (int i = 0; i < 12; ++i) {
    blocks.push_back(jitter.NextDouble() < 0.5 ? 0 : 1);
  }
  for (int i = 0; i < 6; ++i) {
    blocks.push_back(jitter.NextDouble() < 0.5 ? 2 : 3);
  }
  for (int i = 0; i < 6; ++i) blocks.push_back(4);
  DmlMixOptions dml;
  dml.update_fraction = 0.05;  // A light update stream all day.
  return gen.GenerateBlocked(mixes, blocks, 250, dml).value();
}

double ReplayCost(const CostModel& model, const Workload& day,
                  const std::vector<Configuration>& schedule,
                  size_t block_size) {
  WhatIfEngine what_if(&model, day.Span(),
                       SegmentFixed(day.size(), block_size));
  DesignProblem problem;
  problem.what_if = &what_if;
  problem.candidates = {Configuration::Empty()};
  problem.initial = Configuration::Empty();
  return EvaluateScheduleCost(problem, schedule);
}

}  // namespace

int main() {
  const Schema schema = MakePaperSchema();
  const CostModel model(schema, 1'000'000, 500'000);
  constexpr size_t kBlock = 250;

  const Workload monday = MakeDay(schema, /*seed=*/100);
  const Workload tuesday = MakeDay(schema, /*seed=*/200);
  std::printf("Monday trace: %zu statements; Tuesday replay: %zu\n\n",
              monday.size(), tuesday.size());

  Advisor advisor(&model);
  std::printf("%4s %9s %18s %18s %s\n", "k", "changes", "Monday cost",
              "Tuesday cost", "schedule");
  double best_tuesday = 0;
  std::optional<int64_t> best_k;
  for (int64_t k = 0; k <= 4; ++k) {
    AdvisorOptions options;
    options.block_size = kBlock;
    options.k = k;
    auto rec = advisor.Recommend(monday, options);
    if (!rec.ok()) {
      std::printf("advisor failed: %s\n", rec.status().ToString().c_str());
      return 1;
    }
    const double tuesday_cost =
        ReplayCost(model, tuesday, rec->schedule.configs, kBlock);
    if (!best_k.has_value() || tuesday_cost < best_tuesday) {
      best_tuesday = tuesday_cost;
      best_k = k;
    }
    // Compact schedule rendering: configuration per run.
    std::string runs;
    const Configuration* prev = nullptr;
    for (const Configuration& config : rec->schedule.configs) {
      if (prev == nullptr || !(config == *prev)) {
        if (!runs.empty()) runs += " -> ";
        runs += config.ToString(schema);
      }
      prev = &config;
    }
    std::printf("%4lld %9lld %18.3e %18.3e %s\n", static_cast<long long>(k),
                static_cast<long long>(rec->changes),
                rec->schedule.total_cost, tuesday_cost, runs.c_str());
  }
  std::printf(
      "\nBest k for the *unseen* day: k = %lld — matching the number of\n"
      "anticipated time-of-day shifts, exactly the paper's guidance for\n"
      "choosing the change constraint.\n",
      static_cast<long long>(best_k.value()));
  return 0;
}
