// What-if explorer: a small CLI over the SQL front end and the cost
// model. Feed it SQL statements (arguments or built-in demo script)
// and it prints, for every candidate configuration, the estimated
// execution cost and the access path the optimizer would pick — the
// hypothetical-configuration interface a design advisor is built on.
//
//   ./build/examples/whatif_explorer "SELECT a FROM t WHERE a = 5" ...

#include <cstdio>
#include <string>
#include <vector>

#include "advisor/config_enumeration.h"
#include "cost/cost_model.h"
#include "sql/binder.h"
#include "sql/parser.h"

using namespace cdpd;

namespace {

const char* kDemoScript[] = {
    "SELECT a FROM t WHERE a = 12345",
    "SELECT b FROM t WHERE b = 777",
    "SELECT d FROM t WHERE a = 42",
    "UPDATE t SET b = 9 WHERE a = 1",
    "INSERT INTO t VALUES (1, 2, 3, 4)",
};

void Explore(const CostModel& model,
             const std::vector<Configuration>& configs,
             const std::string& sql) {
  std::printf("\n%s\n", sql.c_str());
  auto ast = ParseStatement(sql);
  if (!ast.ok()) {
    std::printf("  parse error: %s\n", ast.status().ToString().c_str());
    return;
  }
  auto bound = BindStatement(model.schema(), ast.value());
  if (!bound.ok()) {
    std::printf("  bind error: %s\n", bound.status().ToString().c_str());
    return;
  }
  std::printf("  %-22s %14s  %s\n", "configuration", "est. cost",
              "access path");
  double best_cost = -1;
  std::string best_config;
  for (const Configuration& config : configs) {
    const double cost = model.StatementCost(*bound, config);
    const AccessPathChoice choice = model.ChooseAccessPath(*bound, config);
    std::string path(AccessPathKindToString(choice.kind));
    if (choice.index.has_value()) {
      path += " on " + choice.index->ToString(model.schema());
    }
    if (bound->type != StatementType::kSelectPoint) {
      path += " + maintenance";
    }
    std::printf("  %-22s %14.2f  %s\n",
                config.ToString(model.schema()).c_str(), cost, path.c_str());
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best_config = config.ToString(model.schema());
    }
  }
  std::printf("  -> cheapest under %s (%.2f)\n", best_config.c_str(),
              best_cost);
}

}  // namespace

int main(int argc, char** argv) {
  const Schema schema = MakePaperSchema();
  const CostModel model(schema, 2'500'000, 500'000);

  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = 1;
  enum_options.num_rows = model.num_rows();
  const std::vector<Configuration> configs =
      EnumerateConfigurations(MakePaperCandidateIndexes(schema),
                              enum_options)
          .value();

  std::printf("what-if explorer over %s (%lld rows, %lld heap pages)\n",
              schema.ToString().c_str(),
              static_cast<long long>(model.num_rows()),
              static_cast<long long>(model.HeapPagesCount()));
  std::printf("%zu candidate configurations (the paper's 7-config space)\n",
              configs.size());

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) Explore(model, configs, argv[i]);
  } else {
    for (const char* sql : kDemoScript) Explore(model, configs, sql);
  }
  return 0;
}
