// Robustness lab: quantifies the paper's central claim — a looser fit
// (smaller k) generalizes better to workloads that are similar but not
// identical to the design trace — by sweeping both the change bound k
// and the amount of perturbation applied to the replayed workload.
//
// Perturbation model: each 500-query block of W1 keeps its phase
// (A/B vs C/D family) but flips to its sibling mix with probability p.
// p = 0 replays W1; larger p drifts toward W3-like out-of-phase
// behaviour.

#include <cstdio>
#include <vector>

#include "core/advisor.h"
#include "cost/what_if.h"
#include "workload/standard_workloads.h"

using namespace cdpd;

namespace {

Workload MakePerturbedW1(const Schema& schema, double flip_probability,
                         uint64_t seed) {
  const std::vector<QueryMix> mixes = MakePaperQueryMixes();
  const std::vector<std::string> letters = PaperBlockMixLetters("W1");
  Rng rng(seed);
  std::vector<int> blocks;
  for (const std::string& letter : letters) {
    int mix = FindMixByName(mixes, letter);
    if (rng.NextDouble() < flip_probability) {
      mix ^= 1;  // A<->B, C<->D: the sibling within the phase family.
    }
    blocks.push_back(mix);
  }
  WorkloadGenerator gen(schema, 500'000, rng.Next());
  return gen.GenerateBlocked(mixes, blocks, kPaperBlockSize).value();
}

double ReplayCost(const CostModel& model, const Workload& workload,
                  const std::vector<Configuration>& schedule) {
  WhatIfEngine what_if(&model, workload.Span(),
                       SegmentFixed(workload.size(), kPaperBlockSize));
  DesignProblem problem;
  problem.what_if = &what_if;
  problem.candidates = {Configuration::Empty()};
  problem.initial = Configuration::Empty();
  problem.final_config = Configuration::Empty();
  return EvaluateScheduleCost(problem, schedule);
}

}  // namespace

int main() {
  const Schema schema = MakePaperSchema();
  const CostModel model(schema, 2'500'000, 500'000);

  WorkloadGenerator gen(schema, 500'000, 4242);
  const Workload w1 = MakePaperWorkload("W1", &gen).value();

  Advisor advisor(&model);
  const std::vector<int64_t> ks = {0, 1, 2, 4, 8, -1};
  std::vector<std::vector<Configuration>> schedules;
  std::printf("designs recommended from W1:\n");
  for (int64_t k : ks) {
    AdvisorOptions options;
    options.block_size = kPaperBlockSize;
    options.k = k < 0 ? std::nullopt : std::optional<int64_t>(k);
    options.candidate_indexes = MakePaperCandidateIndexes(schema);
    options.final_config = Configuration::Empty();
    auto rec = advisor.Recommend(w1, options);
    if (!rec.ok()) {
      std::printf("advisor failed: %s\n", rec.status().ToString().c_str());
      return 1;
    }
    std::printf("  k=%3lld: %lld changes, fitted cost %.3e\n",
                static_cast<long long>(k),
                static_cast<long long>(rec->changes),
                rec->schedule.total_cost);
    schedules.push_back(rec->schedule.configs);
  }

  std::printf("\nreplay cost (relative to the static k=0 design at p=0) "
              "under perturbed workloads,\naveraged over 5 perturbed traces "
              "per cell:\n\n  p\\k ");
  for (int64_t k : ks) {
    if (k < 0) {
      std::printf("%9s", "inf");
    } else {
      std::printf("%9lld", static_cast<long long>(k));
    }
  }
  std::printf("\n");

  double baseline = -1;
  for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    std::printf("%5.2f", p);
    for (size_t i = 0; i < ks.size(); ++i) {
      double total = 0;
      for (uint64_t trial = 0; trial < 5; ++trial) {
        const Workload perturbed =
            MakePerturbedW1(schema, p, 1000 + trial * 17 +
                                           static_cast<uint64_t>(p * 100));
        total += ReplayCost(model, perturbed, schedules[i]);
      }
      const double mean = total / 5;
      if (baseline < 0) baseline = mean;  // First cell: p=0, k=0.
      std::printf("%8.0f%%", 100.0 * mean / baseline);
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading the table: at p = 0 the tight fit (k = inf) wins; as the\n"
      "replayed workload drifts from the design trace, the constrained\n"
      "designs overtake it — the constrained design is not tied to W1's\n"
      "exact minor-shift pattern. This is Figure 3 generalized to a\n"
      "whole robustness curve.\n");
  return 0;
}
