// Quickstart: the smallest end-to-end use of the library.
//
//  1. create a database (the paper's 4-int-column table),
//  2. describe an anticipated workload as a statement sequence,
//  3. ask the advisor for a change-constrained dynamic design,
//  4. apply each recommended configuration and run the workload.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/advisor.h"
#include "engine/database.h"
#include "workload/standard_workloads.h"

using namespace cdpd;

int main() {
  // 1. A database: 100k rows, four int columns a..d, values uniform in
  //    [0, 500000), deterministic seed.
  auto db = Database::Create(MakePaperSchema(), 100'000, 500'000,
                             /*seed=*/42)
                .value();
  std::printf("table %s with %lld rows (%lld heap pages)\n",
              db->schema().ToString().c_str(),
              static_cast<long long>(db->table().num_rows()),
              static_cast<long long>(db->table().heap_pages()));

  // 2. A representative workload trace: the paper's W1 (three phases
  //    with minor fluctuations), scaled to 100-query blocks.
  WorkloadGenerator generator(db->schema(), 500'000, /*seed=*/7);
  Workload trace = MakeScaledPaperWorkload("W1", 100, &generator).value();
  std::printf("workload: %zu point queries in %zu blocks\n", trace.size(),
              trace.block_mix_names.size());

  // 3. Recommend a dynamic design with at most k = 2 design changes —
  //    enough for the two major workload shifts, too few to chase every
  //    minor fluctuation.
  Advisor advisor(&db->cost_model());
  AdvisorOptions options;
  options.block_size = 100;
  options.k = 2;
  auto rec = advisor.Recommend(trace, options);
  if (!rec.ok()) {
    std::printf("advisor failed: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("\nrecommended design schedule (%lld changes, estimated cost "
              "%.3e):\n",
              static_cast<long long>(rec->changes),
              rec->schedule.total_cost);
  const Configuration* previous = nullptr;
  for (size_t s = 0; s < rec->segments.size(); ++s) {
    const Configuration& config = rec->schedule.configs[s];
    if (previous == nullptr || !(config == *previous)) {
      std::printf("  from statement %5zu: %s\n", rec->segments[s].begin + 1,
                  config.ToString(db->schema()).c_str());
    }
    previous = &config;
  }

  // 4. Execute the trace under the schedule, applying design
  //    transitions at segment boundaries.
  AccessStats total;
  for (size_t s = 0; s < rec->segments.size(); ++s) {
    if (auto status = db->ApplyConfiguration(rec->schedule.configs[s], &total);
        !status.ok()) {
      std::printf("apply failed: %s\n", status.ToString().c_str());
      return 1;
    }
    const Segment& segment = rec->segments[s];
    auto run = db->RunWorkload(std::span<const BoundStatement>(
        trace.statements.data() + segment.begin, segment.size()));
    if (!run.ok()) {
      std::printf("run failed: %s\n", run.status().ToString().c_str());
      return 1;
    }
    total += run->stats;
  }
  std::printf("\nexecuted %zu statements; physical work: %s\n", trace.size(),
              total.ToString().c_str());
  std::printf("page-weighted cost: %.0f (model estimated %.0f)\n",
              db->cost_model().StatsToCost(total),
              rec->schedule.total_cost);
  return 0;
}
