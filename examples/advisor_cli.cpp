// Command-line advisor: the adoption path for a real user.
//
//   advisor_cli [trace.sql] [--k N] [--block N] [--method NAME]
//               [--threads N] [--rows N] [--deadline-ms N]
//               [--memory-limit-bytes N] [--segments N] [--prune]
//               [--session-reuse N] [--calibrate]
//               [--emit-ddl] [--explain] [--mem-stats] [--quiet]
//               [--metrics-out=FILE] [--trace-out=FILE]
//               [--explain-out=FILE] [--log-out=FILE]
//
// Reads a SQL workload trace (or generates the paper's W1 as a demo),
// recommends a change-constrained dynamic design, and optionally emits
// the CREATE/DROP INDEX script that enacts it. With --calibrate, cost
// model constants are measured on a scratch database first. Run
// `advisor_cli --help` for the full flag reference, including the
// observability artifacts (metrics, traces, explain reports, logs).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

#if defined(_WIN32)
#include <io.h>
#define CDPD_CLI_ISATTY _isatty
#define CDPD_CLI_FILENO _fileno
#else
#include <unistd.h>
#define CDPD_CLI_ISATTY isatty
#define CDPD_CLI_FILENO fileno
#endif

#include "common/log.h"
#include "common/metrics.h"
#include "common/progress.h"
#include "common/resource_tracker.h"
#include "common/tracing.h"
#include "core/advisor.h"
#include "cost/calibration.h"
#include "engine/database.h"
#include "workload/standard_workloads.h"
#include "workload/trace_io.h"

using namespace cdpd;

namespace {

struct CliArgs {
  std::string trace_path;
  int64_t k = 2;  // < 0 = unconstrained.
  size_t block = 500;
  std::string method = "optimal";
  int64_t threads = 0;  // 0 = CDPD_THREADS / hardware default.
  int64_t rows = 250'000;
  int64_t deadline_ms = -1;  // < 0 = no deadline.
  int64_t memory_limit_bytes = -1;  // < 0 = no limit.
  int64_t segments = 0;       // Chunks for segment-parallel solving; 0 = auto.
  int64_t session_reuse = 1;  // Recommend() passes through one warm cache.
  bool prune = false;         // Dominance-prune the candidate space.
  bool calibrate = false;
  bool emit_ddl = false;
  bool explain = false;     // Print the EXEC/TRANS attribution table.
  bool mem_stats = false;   // Print the solve's memory/cpu accounting.
  bool quiet = false;       // Suppress progress + informational chatter.
  bool help = false;
  std::string metrics_out;  // Empty = no metrics artifact.
  std::string trace_out;    // Empty = no trace artifact.
  std::string explain_out;  // Empty = no explain JSON artifact.
  std::string log_out;      // Empty = no JSONL log artifact.
};

void PrintHelp(std::FILE* out) {
  std::fprintf(out,
      "usage: advisor_cli [trace.sql] [flags]\n"
      "\n"
      "Recommends a change-constrained dynamic physical design for a\n"
      "SQL workload trace (no trace: the paper's W1 is generated as a\n"
      "demo).\n"
      "\n"
      "solve flags:\n"
      "  --k N             change bound k (N < 0 = unconstrained; "
      "default 2)\n"
      "  --block N         statements per advisor segment (default 500)\n"
      "  --method NAME     optimal|greedy-seq|merging|ranking|hybrid\n"
      "  --threads N       worker threads (0 = CDPD_THREADS / hardware)\n"
      "  --rows N          table rows assumed by the cost model\n"
      "  --deadline-ms N   wall-clock budget; on expiry the best\n"
      "                    feasible schedule found so far is reported\n"
      "  --memory-limit-bytes N\n"
      "                    soft byte budget for the solver's tracked\n"
      "                    allocations; an over-budget solve degrades\n"
      "                    to a best-effort schedule instead of\n"
      "                    allocating past the limit\n"
      "  --segments N      chunks for segment-parallel k-aware solving\n"
      "                    (0 = auto-size from the stage count, 1 =\n"
      "                    monolithic; exact for every value)\n"
      "  --prune           drop dominated candidate configurations\n"
      "                    before solving (exact; see the explain\n"
      "                    header's scale line)\n"
      "  --session-reuse N run the recommendation N times through one\n"
      "                    warm what-if cost cache (the SolverSession\n"
      "                    amortization path); reports per-pass times\n"
      "  --calibrate       measure cost-model constants on a scratch db\n"
      "  --emit-ddl        print the CREATE/DROP INDEX script\n"
      "\n"
      "observability flags (see docs/observability.md):\n"
      "  --explain             print the per-transition EXEC/TRANS\n"
      "                        attribution of the schedule\n"
      "  --explain-out=FILE    write the attribution as JSON\n"
      "                        (cdpd.explain schema; implies building\n"
      "                        the report)\n"
      "  --metrics-out=FILE    write a JSON metrics snapshot (counters,\n"
      "                        gauges, histograms)\n"
      "  --trace-out=FILE      write Chrome trace_event JSON of the\n"
      "                        solve's spans (chrome://tracing,\n"
      "                        Perfetto)\n"
      "  --log-out=FILE        write the structured JSONL log of the\n"
      "                        solve (one JSON object per event)\n"
      "  --mem-stats           print the solve's memory accounting:\n"
      "                        tracked peak bytes per component, cpu\n"
      "                        time, and process peak RSS\n"
      "  --quiet               no progress bar, no informational\n"
      "                        chatter; results and artifacts only\n"
      "  --help                this text\n");
}

/// Strict base-10 parse: the whole string must be a number. atoll's
/// silent garbage-to-0 coercion turned typos like `--rows 25O000` into
/// a valid-looking run over the wrong table size.
bool ParseInt64(const std::string& text, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  std::set<std::string> seen;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind('-', 0) != 0) {
      if (!args->trace_path.empty()) {
        std::fprintf(stderr,
                     "unexpected positional argument '%s' (the trace is "
                     "already '%s')\n",
                     arg.c_str(), args->trace_path.c_str());
        return false;
      }
      args->trace_path = arg;
      continue;
    }
    // Both `--flag value` and `--flag=value` spellings are accepted.
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    if (name != "--help" && name != "-h" && !seen.insert(name).second) {
      std::fprintf(stderr, "duplicate flag %s\n", name.c_str());
      return false;
    }
    auto take_string = [&](std::string* out) {
      if (has_value) {
        *out = value;
      } else if (i + 1 < argc) {
        *out = argv[++i];
      } else {
        std::fprintf(stderr, "flag %s needs a value\n", name.c_str());
        return false;
      }
      if (out->empty()) {
        std::fprintf(stderr, "flag %s needs a non-empty value\n",
                     name.c_str());
        return false;
      }
      return true;
    };
    auto take_int = [&](int64_t* out) {
      std::string text;
      if (!take_string(&text)) return false;
      if (!ParseInt64(text, out)) {
        std::fprintf(stderr, "flag %s needs an integer, got '%s'\n",
                     name.c_str(), text.c_str());
        return false;
      }
      return true;
    };
    auto set_bool = [&](bool* out) {
      if (has_value) {
        std::fprintf(stderr, "flag %s takes no value\n", name.c_str());
        return false;
      }
      *out = true;
      return true;
    };
    if (name == "--k") {
      if (!take_int(&args->k)) return false;
    } else if (name == "--block") {
      int64_t block = 0;
      if (!take_int(&block) || block <= 0) return false;
      args->block = static_cast<size_t>(block);
    } else if (name == "--threads") {
      if (!take_int(&args->threads) || args->threads < 0) return false;
    } else if (name == "--rows") {
      if (!take_int(&args->rows) || args->rows <= 0) return false;
    } else if (name == "--deadline-ms") {
      if (!take_int(&args->deadline_ms) || args->deadline_ms < 0) {
        return false;
      }
    } else if (name == "--memory-limit-bytes") {
      if (!take_int(&args->memory_limit_bytes) ||
          args->memory_limit_bytes <= 0) {
        return false;
      }
    } else if (name == "--segments") {
      if (!take_int(&args->segments) || args->segments < 0) return false;
    } else if (name == "--session-reuse") {
      if (!take_int(&args->session_reuse) || args->session_reuse < 1) {
        return false;
      }
    } else if (name == "--method") {
      if (!take_string(&args->method)) return false;
    } else if (name == "--metrics-out") {
      if (!take_string(&args->metrics_out)) return false;
    } else if (name == "--trace-out") {
      if (!take_string(&args->trace_out)) return false;
    } else if (name == "--explain-out") {
      if (!take_string(&args->explain_out)) return false;
    } else if (name == "--log-out") {
      if (!take_string(&args->log_out)) return false;
    } else if (name == "--prune") {
      if (!set_bool(&args->prune)) return false;
    } else if (name == "--calibrate") {
      if (!set_bool(&args->calibrate)) return false;
    } else if (name == "--emit-ddl") {
      if (!set_bool(&args->emit_ddl)) return false;
    } else if (name == "--explain") {
      if (!set_bool(&args->explain)) return false;
    } else if (name == "--mem-stats") {
      if (!set_bool(&args->mem_stats)) return false;
    } else if (name == "--quiet") {
      if (!set_bool(&args->quiet)) return false;
    } else if (name == "--help" || name == "-h") {
      if (!set_bool(&args->help)) return false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", name.c_str());
      return false;
    }
  }
  return true;
}

Result<OptimizerMethod> MethodFromName(const std::string& name) {
  if (name == "optimal") return OptimizerMethod::kOptimal;
  if (name == "greedy-seq") return OptimizerMethod::kGreedySeq;
  if (name == "merging") return OptimizerMethod::kMerging;
  if (name == "ranking") return OptimizerMethod::kRanking;
  if (name == "hybrid") return OptimizerMethod::kHybrid;
  return Status::InvalidArgument(
      "unknown method '" + name +
      "' (optimal|greedy-seq|merging|ranking|hybrid)");
}

/// The DDL script enacting a schedule: index changes at each segment
/// boundary, ready to feed back into Database::ExecuteSql (or any SQL
/// console of the dialect).
std::string EmitDdl(const Schema& schema, const Recommendation& rec) {
  std::string out;
  const Configuration* previous = nullptr;
  const Configuration empty;
  for (size_t s = 0; s < rec.segments.size(); ++s) {
    const Configuration& config = rec.schedule.configs[s];
    const Configuration& from = previous != nullptr ? *previous : empty;
    const ConfigurationDelta delta = DiffConfigurations(from, config);
    if (!delta.created.empty() || !delta.dropped.empty()) {
      out += "-- before statement " + std::to_string(rec.segments[s].begin + 1) +
             "\n";
      for (const IndexDef& def : delta.dropped) {
        std::string cols;
        for (ColumnId col : def.key_columns()) {
          if (!cols.empty()) cols += ", ";
          cols += schema.column_name(col);
        }
        out += "DROP INDEX ON " + schema.table_name() + " (" + cols + ");\n";
      }
      for (const IndexDef& def : delta.created) {
        std::string cols;
        for (ColumnId col : def.key_columns()) {
          if (!cols.empty()) cols += ", ";
          cols += schema.column_name(col);
        }
        out += "CREATE INDEX ON " + schema.table_name() + " (" + cols +
               ");\n";
      }
    }
    previous = &config;
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  return std::fclose(f) == 0 && written == content.size();
}

/// A stderr progress bar fed by the solver's ProgressFn. The callback
/// arrives from worker threads (precompute shards), so updates are
/// mutex-protected; redraws are throttled to whole-percent changes per
/// phase to keep the terminal readable.
class ProgressBar {
 public:
  void Update(const ProgressUpdate& update) {
    std::lock_guard<std::mutex> lock(mu_);
    const int percent = static_cast<int>(update.fraction * 100.0);
    if (update.phase == last_phase_ && percent == last_percent_) return;
    if (update.phase != last_phase_ && !last_phase_.empty()) {
      std::fprintf(stderr, "\n");
    }
    last_phase_ = update.phase;
    last_percent_ = percent;
    constexpr int kWidth = 32;
    const int filled = percent * kWidth / 100;
    char bar[kWidth + 1];
    for (int i = 0; i < kWidth; ++i) bar[i] = i < filled ? '=' : ' ';
    bar[kWidth] = '\0';
    std::fprintf(stderr, "\r  %-20s [%s] %3d%%", update.phase, bar, percent);
  }

  void Finish() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!last_phase_.empty()) std::fprintf(stderr, "\n");
    last_phase_.clear();
    last_percent_ = -1;
  }

 private:
  std::mutex mu_;
  std::string last_phase_;
  int last_percent_ = -1;
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintHelp(stderr);
    return 2;
  }
  if (args.help) {
    PrintHelp(stdout);
    return 0;
  }
  const bool chatty = !args.quiet;

  const Schema schema = MakePaperSchema();
  Workload trace;
  if (args.trace_path.empty()) {
    if (chatty) {
      std::printf("no trace given; generating the paper's W1 as a demo\n");
    }
    WorkloadGenerator gen(schema, 500'000, 1);
    trace = MakePaperWorkload("W1", &gen).value();
  } else {
    auto loaded = ReadTraceFile(args.trace_path, schema);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load trace: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    trace = std::move(loaded).value();
  }
  if (chatty) {
    std::printf("trace: %zu statements, advisor block size %zu\n",
                trace.size(), args.block);
  }

  CostParams params;
  if (args.calibrate) {
    auto scratch =
        Database::Create(schema, std::min<int64_t>(args.rows, 100'000),
                         500'000, /*seed=*/1);
    if (!scratch.ok()) {
      std::fprintf(stderr, "calibration db failed\n");
      return 1;
    }
    auto report = CalibrateCostParams(scratch->get());
    if (!report.ok()) {
      std::fprintf(stderr, "calibration failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", report->ToString().c_str());
    params = report->params;
  }
  const CostModel model(schema, args.rows, 500'000, params);

  auto method = MethodFromName(args.method);
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
    return 2;
  }

  Advisor advisor(&model);
  AdvisorOptions options;
  options.block_size = args.block;
  if (args.k >= 0) options.k = args.k;
  options.method = *method;
  options.num_threads = static_cast<int>(args.threads);
  if (args.deadline_ms >= 0) {
    options.deadline = std::chrono::milliseconds(args.deadline_ms);
  }
  if (args.memory_limit_bytes > 0) {
    options.memory_limit_bytes = args.memory_limit_bytes;
  }
  options.segmented.num_chunks = static_cast<int>(args.segments);
  options.prune_dominated = args.prune;
  MetricsRegistry registry;
  Tracer tracer;
  Logger logger(LogLevel::kInfo);
  ProgressBar bar;
  if (!args.metrics_out.empty()) options.observability.metrics = &registry;
  if (!args.trace_out.empty()) options.observability.tracer = &tracer;
  if (!args.log_out.empty()) options.observability.logger = &logger;
  if (args.explain || !args.explain_out.empty()) options.explain = true;
  // The live progress bar only makes sense on an interactive stderr
  // and is pure noise in --quiet runs or redirected logs.
  const bool show_progress =
      chatty && CDPD_CLI_ISATTY(CDPD_CLI_FILENO(stderr)) != 0;
  if (show_progress) {
    options.observability.progress = [&bar](const ProgressUpdate& update) {
      bar.Update(update);
    };
  }
  CostCache session_cache;
  if (args.session_reuse > 1) options.cost_cache = &session_cache;
  auto rec = advisor.Recommend(trace, options);
  for (int64_t pass = 2; pass <= args.session_reuse && rec.ok(); ++pass) {
    if (chatty) {
      std::printf("session pass %lld/%lld: %.3fs, %lld cost-cache hits\n",
                  static_cast<long long>(pass - 1),
                  static_cast<long long>(args.session_reuse),
                  rec->stats.wall_seconds,
                  static_cast<long long>(rec->stats.cost_cache_hits));
    }
    rec = advisor.Recommend(trace, options);
  }
  if (show_progress) bar.Finish();
  if (!rec.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 rec.status().ToString().c_str());
    return 1;
  }

  const SolveStats& stats = rec->stats;
  std::printf("\nmethod: %s (%s), optimized in %.3fs\n", args.method.c_str(),
              rec->method_detail.c_str(), stats.wall_seconds);
  if (stats.memory_limit_hit) {
    std::printf("memory limit hit: best-effort schedule (the solver "
                "degraded rather than allocate past %lld bytes)\n",
                static_cast<long long>(args.memory_limit_bytes));
  } else if (stats.deadline_hit) {
    std::printf("deadline hit: best-effort schedule (the solver returned "
                "the best feasible design found within %lld ms)\n",
                static_cast<long long>(args.deadline_ms));
  } else if (stats.best_effort) {
    std::printf("best-effort schedule (the enumeration cap was reached "
                "before an optimal answer)\n");
  }
  if (chatty) {
    std::printf(
        "solver stats: %d thread(s), %lld what-if costings, %lld cost-cache "
        "hits, %lld nodes expanded\n",
        stats.threads_used, static_cast<long long>(stats.costings),
        static_cast<long long>(stats.cost_cache_hits),
        static_cast<long long>(stats.nodes_expanded));
    if (stats.pruned_configs > 0 || stats.segment_chunks > 0) {
      std::printf("scale: %lld dominated configs pruned, %lld segment "
                  "chunks (stitch window %lld)\n",
                  static_cast<long long>(stats.pruned_configs),
                  static_cast<long long>(stats.segment_chunks),
                  static_cast<long long>(stats.stitch_window));
    }
  }
  if (args.mem_stats) {
    std::printf("memory: %lld bytes tracked peak, %.3fs cpu, "
                "%lld bytes process peak rss\n",
                static_cast<long long>(stats.peak_bytes_total),
                stats.cpu_seconds,
                static_cast<long long>(PeakRssBytes()));
    for (int c = 0; c < kNumMemComponents; ++c) {
      const auto component = static_cast<MemComponent>(c);
      const int64_t peak = stats.component_peak_bytes[c];
      if (peak == 0) continue;
      std::printf("  %-15s %lld bytes peak\n",
                  std::string(MemComponentName(component)).c_str(),
                  static_cast<long long>(peak));
    }
  }
  if (args.k >= 0) {
    std::printf("design changes: %lld (bound %lld), estimated cost %.4e\n",
                static_cast<long long>(rec->changes),
                static_cast<long long>(args.k), rec->schedule.total_cost);
  } else {
    std::printf("design changes: %lld (unconstrained), estimated cost %.4e\n",
                static_cast<long long>(rec->changes),
                rec->schedule.total_cost);
  }
  std::printf("\nschedule:\n");
  const Configuration* previous = nullptr;
  for (size_t s = 0; s < rec->segments.size(); ++s) {
    const Configuration& config = rec->schedule.configs[s];
    if (previous == nullptr || !(config == *previous)) {
      std::printf("  statements %6zu..: %s\n", rec->segments[s].begin + 1,
                  config.ToString(schema).c_str());
    }
    previous = &config;
  }
  if (args.emit_ddl) {
    std::printf("\n-- DDL script --\n%s", EmitDdl(schema, *rec).c_str());
  }
  if (options.explain) {
    if (!rec->explain.has_value()) {
      std::fprintf(stderr, "explain report missing from recommendation\n");
      return 1;
    }
    if (args.explain) {
      std::printf("\n%s", rec->explain->ToText(schema).c_str());
    }
    if (!rec->explain->exact) {
      // The attribution is built to reproduce the solver's cost
      // bit-for-bit; any drift means the report cannot be trusted.
      std::fprintf(stderr,
                   "explain totals do not match the solver cost "
                   "(attribution %.17g vs solver %.17g)\n",
                   rec->explain->total_cost,
                   rec->explain->solver_reported_cost);
      return 1;
    }
    if (!args.explain_out.empty()) {
      if (!WriteFile(args.explain_out, rec->explain->ToJson(schema))) {
        std::fprintf(stderr, "cannot write %s\n", args.explain_out.c_str());
        return 1;
      }
      if (chatty) {
        std::printf("\nexplain report written to %s\n",
                    args.explain_out.c_str());
      }
    }
  }
  if (!args.log_out.empty()) {
    if (!WriteFile(args.log_out, logger.ToJsonl())) {
      std::fprintf(stderr, "cannot write %s\n", args.log_out.c_str());
      return 1;
    }
    if (chatty) {
      std::printf("log (%zu events) written to %s\n", logger.num_events(),
                  args.log_out.c_str());
    }
  }
  if (!args.metrics_out.empty()) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    // The registry's "solver.*" counters are the same numbers the
    // SolveStats above reports — sanity-check the round trip before
    // exporting, so the artifact can be trusted to match the printout.
    const SolveStats from_registry = SolveStats::FromSnapshot(snapshot);
    if (from_registry.costings != stats.costings ||
        from_registry.cost_cache_hits != stats.cost_cache_hits) {
      std::fprintf(stderr,
                   "metrics/stats mismatch: registry %lld costings / %lld "
                   "cost-cache hits, SolveStats %lld / %lld\n",
                   static_cast<long long>(from_registry.costings),
                   static_cast<long long>(from_registry.cost_cache_hits),
                   static_cast<long long>(stats.costings),
                   static_cast<long long>(stats.cost_cache_hits));
      return 1;
    }
    if (!WriteFile(args.metrics_out, snapshot.ToJson())) {
      std::fprintf(stderr, "cannot write %s\n", args.metrics_out.c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot written to %s\n", args.metrics_out.c_str());
  }
  if (!args.trace_out.empty()) {
    if (!WriteFile(args.trace_out, tracer.ToChromeJson())) {
      std::fprintf(stderr, "cannot write %s\n", args.trace_out.c_str());
      return 1;
    }
    std::printf("trace (%zu spans) written to %s\n", tracer.num_events(),
                args.trace_out.c_str());
  }
  return 0;
}
