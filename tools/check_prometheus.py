#!/usr/bin/env python3
"""Validates Prometheus text exposition format (0.0.4).

Used by CI to gate advisor_server's GET /metrics output, and by the
ctest suite against canned fixtures. Checks, line by line:

  * sample lines parse as  name[{labels}] value  with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a float-parseable value
    (including +Inf/-Inf/NaN);
  * every sample belongs to a family declared by a preceding
    `# TYPE family kind` line (summaries also own family_sum and
    family_count);
  * no family is TYPE-declared twice, and kinds are legal;
  * quantile labels only appear on summary samples.

Presence requirements:

  --require NAME          this exact family must be declared
  --require-prefix P      at least one declared family starts with P
  --require-nonzero NAME  family must be declared AND own at least one
                          sample with a nonzero value (gates "the
                          subsystem actually ran", e.g. CI asserting
                          recorder_frames_written > 0)

All repeat. Reads the exposition from FILE (or stdin with '-').
Exit status: 0 clean, 1 violations (each printed to stderr), 2 usage.
"""

import argparse
import re
import sys

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$")
LABEL = re.compile(r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
                   r'"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')
KINDS = {"counter", "gauge", "summary", "histogram", "untyped"}


def parse_value(text):
    if text in ("+Inf", "-Inf", "Inf", "NaN"):
        return True
    try:
        float(text)
        return True
    except ValueError:
        return False


def check(lines, require=(), require_prefix=(), require_nonzero=()):
    """Returns a list of violation strings (empty = clean)."""
    errors = []
    families = {}   # family name -> kind
    sampled = set()  # family names that own at least one sample
    nonzero = set()  # family names with at least one nonzero sample

    def family_of(name):
        if name in families:
            return name
        for suffix in ("_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                if families[base] in ("summary", "histogram"):
                    return base
        return None

    for lineno, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"line {lineno}: malformed TYPE line")
                    continue
                _, _, name, kind = parts
                if not METRIC_NAME.match(name):
                    errors.append(
                        f"line {lineno}: illegal metric name '{name}'")
                if kind not in KINDS:
                    errors.append(f"line {lineno}: unknown kind '{kind}'")
                if name in families:
                    errors.append(
                        f"line {lineno}: family '{name}' declared twice")
                families[name] = kind
            # HELP, exemplar, and free comments are fine as-is.
            continue
        match = SAMPLE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name = match.group("name")
        if not parse_value(match.group("value")):
            errors.append(
                f"line {lineno}: value {match.group('value')!r} is not a "
                "number")
        family = family_of(name)
        if family is None:
            errors.append(
                f"line {lineno}: sample '{name}' has no preceding TYPE")
            continue
        sampled.add(family)
        try:
            if float(match.group("value")) != 0.0:
                nonzero.add(family)
        except ValueError:
            nonzero.add(family)  # Inf/NaN are decidedly not zero.
        labels = match.group("labels")
        if labels is not None:
            consumed = 0
            for label in LABEL.finditer(labels):
                consumed = label.end()
                if (label.group("key") == "quantile"
                        and families[family] != "summary"):
                    errors.append(
                        f"line {lineno}: quantile label on "
                        f"non-summary '{name}'")
            if consumed < len(labels.rstrip()):
                errors.append(f"line {lineno}: malformed labels {{{labels}}}")

    for name in require:
        if name not in families:
            errors.append(f"required metric family '{name}' is missing")
        elif name not in sampled:
            errors.append(f"required metric family '{name}' has no samples")
    for prefix in require_prefix:
        if not any(name.startswith(prefix) for name in families):
            errors.append(f"no metric family starts with '{prefix}'")
    for name in require_nonzero:
        if name not in families:
            errors.append(f"required metric family '{name}' is missing")
        elif name not in sampled:
            errors.append(f"required metric family '{name}' has no samples")
        elif name not in nonzero:
            errors.append(
                f"required metric family '{name}' only has zero samples")
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("file", help="exposition file ('-' = stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME", help="family that must be present")
    parser.add_argument("--require-prefix", action="append", default=[],
                        metavar="PREFIX",
                        help="at least one family must start with this")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="NAME",
                        help="family that must own a nonzero sample")
    args = parser.parse_args(argv)

    if args.file == "-":
        lines = sys.stdin.readlines()
    else:
        try:
            with open(args.file, encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as error:
            print(f"cannot read {args.file}: {error}", file=sys.stderr)
            return 2

    errors = check(lines, require=args.require,
                   require_prefix=args.require_prefix,
                   require_nonzero=args.require_nonzero)
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"{args.file}: {len(lines)} lines ok")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
