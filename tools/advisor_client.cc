// Command-line client for advisor_server. One process per request —
// the resident state lives server-side, so scripting a session is just
// a sequence of invocations against the same port:
//
//   advisor_client --port N ping
//   advisor_client --port N ingest trace.sql     ('-' reads stdin)
//   advisor_client --port N whatif "a;c,d"
//   advisor_client --port N recommend k=2 method=optimal
//   advisor_client --port N stats
//   advisor_client --port N shutdown
//
// Successful responses (JSON for ingest/whatif/recommend/stats) are
// printed to stdout; errors go to stderr with a non-zero exit.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "server/client.h"

using namespace cdpd;

namespace {

void PrintHelp(std::FILE* out) {
  std::fprintf(out,
      "usage: advisor_client [--host A.B.C.D] [--port N] [--request-id ID]\n"
      "                      [--no-request-id] [--stats-out FILE]\n"
      "                      [--print-request-id] <command> [args]\n"
      "\n"
      "flags:\n"
      "  --request-id ID     send this request id instead of a generated\n"
      "                      one (printable ASCII, no spaces/quotes)\n"
      "  --no-request-id     pre-id wire bytes (for old servers)\n"
      "  --print-request-id  print 'request_id <id>' to stderr after the\n"
      "                      call (what /trace?id= resolves)\n"
      "  --stats-out FILE    after the command, fetch the server metrics\n"
      "                      snapshot and write the JSON to FILE\n"
      "\n"
      "commands:\n"
      "  ping                     check the server is alive\n"
      "  ingest FILE              append a SQL trace to the window\n"
      "                           (FILE of ';'-terminated statements,\n"
      "                           '-' reads standard input)\n"
      "  whatif SPEC              cost a configuration; SPEC lists\n"
      "                           indexes ';'-separated, each index a\n"
      "                           comma list of columns (e.g. 'a;c,d';\n"
      "                           '{}' = the empty configuration)\n"
      "  recommend [KEY=VALUE..]  solve over the current window; keys:\n"
      "                           k, method, deadline_ms,\n"
      "                           memory_limit_bytes, prune, chunks,\n"
      "                           apply\n"
      "  stats                    dump the server metrics snapshot\n"
      "  shutdown                 stop the server\n");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

bool ReadAll(const std::string& path, std::string* out) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

/// After the command: report the id the call carried and, with
/// --stats-out, snapshot the server metrics next to the command's own
/// output (how the bench harness pairs client-side percentiles with
/// the server-side op.* histograms).
int Epilogue(AdvisorClient* client, bool print_request_id,
             const std::string& stats_out, int exit_code) {
  if (print_request_id && !client->last_request_id().empty()) {
    std::fprintf(stderr, "request_id %s\n",
                 client->last_request_id().c_str());
  }
  if (!stats_out.empty() && client->connected()) {
    Result<std::string> stats = client->Stats();
    if (!stats.ok()) return Fail(stats.status());
    std::ofstream out(stats_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", stats_out.c_str());
      return 1;
    }
    out << *stats << "\n";
  }
  return exit_code;
}

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string request_id;
  std::string stats_out;
  bool request_ids_enabled = true;
  bool print_request_id = false;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--request-id" && i + 1 < argc) {
      request_id = argv[++i];
    } else if (arg == "--no-request-id") {
      request_ids_enabled = false;
    } else if (arg == "--print-request-id") {
      print_request_id = true;
    } else if (arg == "--stats-out" && i + 1 < argc) {
      stats_out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintHelp(stdout);
      return 0;
    } else {
      break;
    }
  }
  if (i >= argc) {
    PrintHelp(stderr);
    return 2;
  }
  const std::string command = argv[i++];
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "a valid --port is required\n");
    return 2;
  }

  Result<AdvisorClient> client = AdvisorClient::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  client->set_request_ids_enabled(request_ids_enabled);
  if (!request_id.empty()) client->set_next_request_id(request_id);
  auto finish = [&](int exit_code) {
    return Epilogue(&*client, print_request_id, stats_out, exit_code);
  };

  if (command == "ping") {
    if (i != argc) { PrintHelp(stderr); return 2; }
    const Status status = client->Ping();
    if (!status.ok()) return Fail(status);
    std::printf("ok\n");
    return finish(0);
  }
  if (command == "ingest") {
    if (i + 1 != argc) { PrintHelp(stderr); return 2; }
    std::string sql;
    if (!ReadAll(argv[i], &sql)) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    Result<std::string> reply = client->Ingest(sql);
    if (!reply.ok()) return Fail(reply.status());
    std::printf("%s\n", reply->c_str());
    return finish(0);
  }
  if (command == "whatif") {
    if (i + 1 != argc) { PrintHelp(stderr); return 2; }
    Result<std::string> reply = client->WhatIf(argv[i]);
    if (!reply.ok()) return Fail(reply.status());
    std::printf("%s\n", reply->c_str());
    return finish(0);
  }
  if (command == "recommend") {
    std::string options;
    for (; i < argc; ++i) {
      if (!options.empty()) options += '\n';
      options += argv[i];
    }
    Result<std::string> reply = client->Recommend(options);
    if (!reply.ok()) return Fail(reply.status());
    std::printf("%s\n", reply->c_str());
    return finish(0);
  }
  if (command == "stats") {
    if (i != argc) { PrintHelp(stderr); return 2; }
    Result<std::string> reply = client->Stats();
    if (!reply.ok()) return Fail(reply.status());
    std::printf("%s\n", reply->c_str());
    return finish(0);
  }
  if (command == "shutdown") {
    if (i != argc) { PrintHelp(stderr); return 2; }
    const Status status = client->Shutdown();
    if (!status.ok()) return Fail(status);
    std::printf("ok\n");
    // The server is gone: print the id but skip the stats fetch.
    return Epilogue(&*client, print_request_id, "", 0);
  }
  std::fprintf(stderr, "unknown command %s\n", command.c_str());
  PrintHelp(stderr);
  return 2;
}
