// The resident advisor: a long-lived server that keeps the catalog, a
// warm SolverSession (persistent cost cache + thread pool + metrics)
// and the last solution in memory, and serves INGEST / WHATIF /
// RECOMMEND / STATS / SHUTDOWN over the length-prefixed frame protocol
// of src/server/frame.h (see docs/serving.md).
//
//   advisor_server [--port N] [--host A.B.C.D] [--http-port N]
//                  [--rows N] [--block N] [--k N] [--window N]
//                  [--threads N] [--cache-max-bytes N] [--deadline-ms N]
//                  [--memory-limit-bytes N] [--slowlog-n N]
//                  [--record PATH] [--record-ring N]
//                  [--record-segment-bytes N] [--postmortem-dir DIR]
//
// Prints "listening on <host>:<port>" once ready (scripts scrape the
// port when --port 0 picked an ephemeral one) and, with --http-port,
// "http listening on <host>:<port>" for the observability plane
// (/metrics, /healthz, /readyz, /varz, /slowlog, /trace?id=,
// /recorder), then serves until a SHUTDOWN frame arrives.
//
// With --record, every served request is journaled to
// <PATH>.000000, ... (replayable with advisor_replay); with
// --postmortem-dir, SIGTERM/SIGINT and the first failed request each
// flush a postmortem bundle before the server winds down.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "server/advisor_server.h"
#include "server/http_endpoint.h"
#include "server/recorder.h"

using namespace cdpd;

namespace {

struct ServerCliArgs {
  std::string host = "127.0.0.1";
  int64_t port = 0;
  int64_t http_port = -1;  // < 0 = no observability listener.
  int64_t rows = 250'000;
  int64_t block = 100;
  int64_t k = 2;  // < 0 = unconstrained default.
  int64_t window = 10'000;
  int64_t threads = 0;
  int64_t cache_max_bytes = 0;
  int64_t deadline_ms = -1;
  int64_t memory_limit_bytes = -1;
  int64_t slowlog_n = 32;
  std::string record;  // Journal base path; empty = no recording.
  int64_t record_ring = 4096;
  int64_t record_segment_bytes = 64ll << 20;
  std::string postmortem_dir;  // Empty = no bundles.
  bool help = false;
};

void PrintHelp(std::FILE* out) {
  std::fprintf(out,
      "usage: advisor_server [flags]\n"
      "\n"
      "Serves the dynamic physical design advisor over a loopback TCP\n"
      "socket (protocol: docs/serving.md; client: advisor_client).\n"
      "\n"
      "  --host A.B.C.D    listen address (default 127.0.0.1)\n"
      "  --port N          listen port (0 = ephemeral; the bound port\n"
      "                    is printed on the 'listening on' line)\n"
      "  --http-port N     also serve the HTTP observability plane on\n"
      "                    this port (0 = ephemeral, printed on the\n"
      "                    'http listening on' line): /metrics /healthz\n"
      "                    /readyz /varz /slowlog /trace?id= /recorder\n"
      "                    (omit the flag for no HTTP listener)\n"
      "  --rows N          table rows assumed by the cost model\n"
      "  --block N         statements per advisor segment (default 100)\n"
      "  --k N             default change bound (N < 0 = unconstrained;\n"
      "                    RECOMMEND requests can override per call)\n"
      "  --window N        sliding-window cap in statements (0 = keep\n"
      "                    everything; default 10000)\n"
      "  --threads N       solver pool workers (0 = hardware default)\n"
      "  --cache-max-bytes N\n"
      "                    byte cap of the persistent cost cache\n"
      "                    (0 = unbounded)\n"
      "  --deadline-ms N   default per-request solve deadline\n"
      "  --memory-limit-bytes N\n"
      "                    default per-request solver memory budget\n"
      "  --slowlog-n N     slowest-request entries GET /slowlog keeps\n"
      "                    (default 32; must be positive)\n"
      "  --record PATH     journal every served request to PATH.000000,\n"
      "                    PATH.000001, ... (replay: advisor_replay)\n"
      "  --record-ring N   in-memory frames buffered between the hot\n"
      "                    path and the journal writer (default 4096;\n"
      "                    overflow drops frames, never blocks serving)\n"
      "  --record-segment-bytes N\n"
      "                    rotate journal segments at this size\n"
      "                    (default 64 MiB)\n"
      "  --postmortem-dir DIR\n"
      "                    flush a postmortem bundle (varz, slowlog,\n"
      "                    metrics, journal tail) to DIR/shutdown on\n"
      "                    SIGTERM/SIGINT and to DIR/failure on the\n"
      "                    first failed request\n"
      "  --help            this text\n");
}

bool ParseInt(const char* text, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseArgs(int argc, char** argv, ServerCliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](int64_t* out) {
      return i + 1 < argc && ParseInt(argv[++i], out);
    };
    if (arg == "--host") {
      if (i + 1 >= argc) return false;
      args->host = argv[++i];
    } else if (arg == "--port") {
      if (!next(&args->port) || args->port < 0 || args->port > 65535) {
        return false;
      }
    } else if (arg == "--http-port") {
      if (!next(&args->http_port) || args->http_port < 0 ||
          args->http_port > 65535) {
        return false;
      }
    } else if (arg == "--rows") {
      if (!next(&args->rows) || args->rows <= 0) return false;
    } else if (arg == "--block") {
      if (!next(&args->block) || args->block <= 0) return false;
    } else if (arg == "--k") {
      if (!next(&args->k)) return false;
    } else if (arg == "--window") {
      if (!next(&args->window) || args->window < 0) return false;
    } else if (arg == "--threads") {
      if (!next(&args->threads) || args->threads < 0) return false;
    } else if (arg == "--cache-max-bytes") {
      if (!next(&args->cache_max_bytes) || args->cache_max_bytes < 0) {
        return false;
      }
    } else if (arg == "--deadline-ms") {
      if (!next(&args->deadline_ms) || args->deadline_ms < 0) return false;
    } else if (arg == "--memory-limit-bytes") {
      if (!next(&args->memory_limit_bytes) || args->memory_limit_bytes <= 0) {
        return false;
      }
    } else if (arg == "--slowlog-n") {
      if (!next(&args->slowlog_n) || args->slowlog_n <= 0) return false;
    } else if (arg == "--record") {
      if (i + 1 >= argc) return false;
      args->record = argv[++i];
      if (args->record.empty()) return false;
    } else if (arg == "--record-ring") {
      if (!next(&args->record_ring) || args->record_ring <= 0) return false;
    } else if (arg == "--record-segment-bytes") {
      if (!next(&args->record_segment_bytes) ||
          args->record_segment_bytes <= 0) {
        return false;
      }
    } else if (arg == "--postmortem-dir") {
      if (i + 1 >= argc) return false;
      args->postmortem_dir = argv[++i];
      if (args->postmortem_dir.empty()) return false;
    } else if (arg == "--help" || arg == "-h") {
      args->help = true;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

#if !defined(_WIN32)
// Self-pipe: the only async-signal-safe thing the handler does is
// write one byte; a watcher thread does the real work (postmortem
// bundle, journal flush, server stop) in normal context.
int g_signal_pipe[2] = {-1, -1};

void HandleStopSignal(int) {
  const char byte = 's';
  (void)!::write(g_signal_pipe[1], &byte, 1);
}
#endif

}  // namespace

int main(int argc, char** argv) {
  ServerCliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintHelp(stderr);
    return 2;
  }
  if (args.help) {
    PrintHelp(stdout);
    return 0;
  }

  ServiceOptions service_options;
  service_options.rows = args.rows;
  service_options.block_size = static_cast<size_t>(args.block);
  if (args.k >= 0) {
    service_options.k = args.k;
  } else {
    service_options.k.reset();
  }
  service_options.window_statements = static_cast<size_t>(args.window);
  service_options.num_threads = static_cast<int>(args.threads);
  service_options.cost_cache_max_bytes = args.cache_max_bytes;
  if (args.deadline_ms >= 0) {
    service_options.default_deadline =
        std::chrono::milliseconds(args.deadline_ms);
  }
  if (args.memory_limit_bytes > 0) {
    service_options.default_memory_limit_bytes = args.memory_limit_bytes;
  }
  service_options.slow_log_capacity = static_cast<size_t>(args.slowlog_n);
  service_options.postmortem_dir = args.postmortem_dir;
  if (const Status status = service_options.Validate(); !status.ok()) {
    std::fprintf(stderr, "invalid options: %s\n", status.ToString().c_str());
    return 2;
  }

  AdvisorService service(std::move(service_options));

  std::unique_ptr<Recorder> recorder;
  if (!args.record.empty()) {
    Recorder::Options recorder_options;
    recorder_options.path = args.record;
    recorder_options.ring_capacity = static_cast<size_t>(args.record_ring);
    recorder_options.segment_max_bytes = args.record_segment_bytes;
    JournalMeta& meta = recorder_options.meta;
    meta.rows = service.options().rows;
    meta.domain_size = service.options().domain_size;
    meta.block_size = static_cast<int64_t>(service.options().block_size);
    meta.window_statements =
        static_cast<int64_t>(service.options().window_statements);
    meta.k = service.options().k;
    meta.method =
        std::string(OptimizerMethodToString(service.options().method));
    meta.max_indexes_per_config = service.options().max_indexes_per_config;
    Result<std::unique_ptr<Recorder>> opened =
        Recorder::Open(std::move(recorder_options), service.registry());
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot start the recorder: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    recorder = std::move(opened).value();
    service.set_recorder(recorder.get());
  }

  AdvisorServer server(&service);
  ServerOptions server_options;
  server_options.host = args.host;
  server_options.port = static_cast<int>(args.port);
  if (const Status status = server.Start(server_options); !status.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%d\n", args.host.c_str(), server.port());
  std::unique_ptr<HttpEndpoint> http;
  if (args.http_port >= 0) {
    http = std::make_unique<HttpEndpoint>(&service);
    HttpOptions http_options;
    http_options.host = args.host;
    http_options.port = static_cast<int>(args.http_port);
    if (const Status status = http->Start(http_options); !status.ok()) {
      std::fprintf(stderr, "cannot start the observability endpoint: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("http listening on %s:%d\n", args.host.c_str(), http->port());
  }
  if (recorder != nullptr) {
    std::printf("recording to %s\n", recorder->path().c_str());
  }
  std::fflush(stdout);

#if !defined(_WIN32)
  std::thread signal_watcher;
  if (::pipe(g_signal_pipe) == 0) {
    struct sigaction action {};
    action.sa_handler = HandleStopSignal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    signal_watcher = std::thread([&] {
      for (;;) {
        char byte = 0;
        const ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
        if (n < 0 && errno == EINTR) continue;
        if (n != 1 || byte == 'q') return;
        // A stop signal: capture the postmortem while the metrics and
        // slow log still describe live traffic, make the journal
        // durable, then let the server wind down.
        if (!args.postmortem_dir.empty()) {
          const Status status = WritePostmortemBundle(
              &service, recorder.get(), args.postmortem_dir + "/shutdown",
              "stop signal (SIGTERM/SIGINT)");
          if (!status.ok()) {
            std::fprintf(stderr, "postmortem bundle failed: %s\n",
                         status.ToString().c_str());
          }
        }
        if (recorder != nullptr) (void)recorder->Flush();
        server.RequestStop();
      }
    });
  }
#endif

  server.Wait();
  if (http != nullptr) http->Shutdown();

#if !defined(_WIN32)
  if (signal_watcher.joinable()) {
    const char quit = 'q';
    (void)!::write(g_signal_pipe[1], &quit, 1);
    signal_watcher.join();
  }
  for (int& fd : g_signal_pipe) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
#endif

  if (recorder != nullptr) {
    service.set_recorder(nullptr);
    recorder->Close();
  }
  std::printf("shut down after %lld requests\n",
              static_cast<long long>(
                  service.registry()->Snapshot().CounterValue(
                      "server.requests")));
  return 0;
}
