// Replays a journal recorded by `advisor_server --record` (see
// docs/serving.md).
//
//   advisor_replay --journal PATH [--verify]
//                  [--host A.B.C.D --port N] [--speed X]
//                  [--send-shutdown] [--report FILE]
//
// Two modes:
//   - In-process (no --port): rebuilds a fresh AdvisorService from the
//     journal's meta header, re-issues every recorded request, and
//     checks each deterministic response is bit-identical to the
//     recorded one. With --verify, any mismatch makes the exit code 1.
//   - Live TCP (--port N): re-sends the requests to a running
//     advisor_server, preserving recorded inter-arrival gaps scaled by
//     --speed (0 = as fast as possible, 1 = real time).
//
// --report FILE writes a cdpd.bench-schema JSON artifact with the
// replay throughput and verification counts.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "server/replay.h"

using namespace cdpd;

namespace {

struct ReplayCliArgs {
  std::string journal;
  bool verify = false;
  std::string host = "127.0.0.1";
  int64_t port = 0;
  double speed = 0.0;
  bool send_shutdown = false;
  std::string report;
  bool help = false;
};

void PrintHelp(std::FILE* out) {
  std::fprintf(out,
      "usage: advisor_replay --journal PATH [flags]\n"
      "\n"
      "Replays a request journal recorded by advisor_server --record.\n"
      "Without --port the replay runs in-process against a fresh\n"
      "service built from the journal's meta header and checks that\n"
      "every deterministic response is reproduced bit-identically;\n"
      "with --port the requests are re-sent to a live server.\n"
      "\n"
      "  --journal PATH    the journal base (or one segment file)\n"
      "                    written by advisor_server --record PATH\n"
      "  --verify          exit 1 when any replayed response differs\n"
      "                    from the recorded one (in-process mode)\n"
      "  --host A.B.C.D    live-replay target host (default 127.0.0.1)\n"
      "  --port N          live-replay target port (omit for the\n"
      "                    in-process verify mode)\n"
      "  --speed X         live-replay pacing: 0 = as fast as possible\n"
      "                    (default), 1 = recorded gaps, 2 = twice as\n"
      "                    fast\n"
      "  --send-shutdown   forward a recorded SHUTDOWN frame to the\n"
      "                    live target (default: skipped)\n"
      "  --report FILE     write a cdpd.bench JSON artifact here\n"
      "  --help            this text\n");
}

bool ParseInt(const char* text, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseDouble(const char* text, double* out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseArgs(int argc, char** argv, ReplayCliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--journal") {
      if (i + 1 >= argc) return false;
      args->journal = argv[++i];
      if (args->journal.empty()) return false;
    } else if (arg == "--verify") {
      args->verify = true;
    } else if (arg == "--host") {
      if (i + 1 >= argc) return false;
      args->host = argv[++i];
    } else if (arg == "--port") {
      if (i + 1 >= argc || !ParseInt(argv[++i], &args->port) ||
          args->port <= 0 || args->port > 65535) {
        return false;
      }
    } else if (arg == "--speed") {
      if (i + 1 >= argc || !ParseDouble(argv[++i], &args->speed) ||
          args->speed < 0.0) {
        return false;
      }
    } else if (arg == "--send-shutdown") {
      args->send_shutdown = true;
    } else if (arg == "--report") {
      if (i + 1 >= argc) return false;
      args->report = argv[++i];
      if (args->report.empty()) return false;
    } else if (arg == "--help" || arg == "-h") {
      args->help = true;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ReplayCliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintHelp(stderr);
    return 2;
  }
  if (args.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (args.journal.empty()) {
    std::fprintf(stderr, "--journal is required\n");
    PrintHelp(stderr);
    return 2;
  }

  ReplayOptions options;
  options.host = args.host;
  options.port = static_cast<int>(args.port);
  options.speed = args.speed;
  options.send_shutdown = args.send_shutdown;
  const Result<ReplayOutcome> result = ReplayJournal(args.journal, options);
  if (!result.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const ReplayOutcome& outcome = result.value();

  const char* mode = args.port > 0 ? "live" : "in-process";
  std::printf("replayed %lld of %lld journal frames (%s) in %.3fs\n",
              static_cast<long long>(outcome.replayed),
              static_cast<long long>(outcome.frames), mode,
              outcome.wall_seconds);
  for (const auto& [op, count] : outcome.op_counts) {
    std::printf("  %-10s %lld\n", op.c_str(),
                static_cast<long long>(count));
  }
  if (outcome.skipped > 0) {
    std::printf("skipped %lld frames\n",
                static_cast<long long>(outcome.skipped));
  }
  if (args.port == 0) {
    std::printf("verified %lld deterministic responses, %lld mismatches\n",
                static_cast<long long>(outcome.compared),
                static_cast<long long>(outcome.mismatches));
    for (const std::string& detail : outcome.mismatch_details) {
      std::printf("  MISMATCH %s\n", detail.c_str());
    }
  }
  if (outcome.truncated) {
    std::printf("journal truncated: %s\n", outcome.truncated_error.c_str());
  }
  if (!outcome.transport_error.empty()) {
    std::fprintf(stderr, "replay target lost: %s\n",
                 outcome.transport_error.c_str());
  }

  if (!args.report.empty()) {
    bench_util::BenchReport report("advisor_replay");
    report.AddServingCase(
        args.port > 0 ? "replay_live" : "replay_verify",
        outcome.wall_seconds, outcome.replayed,
        {{"frames", static_cast<double>(outcome.frames)},
         {"replayed", static_cast<double>(outcome.replayed)},
         {"skipped", static_cast<double>(outcome.skipped)},
         {"compared", static_cast<double>(outcome.compared)},
         {"mismatches", static_cast<double>(outcome.mismatches)},
         {"truncated", outcome.truncated ? 1.0 : 0.0}});
    const std::string json = report.ToJson();
    std::FILE* f = std::fopen(args.report.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write report to %s\n",
                   args.report.c_str());
      return 1;
    }
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    if (std::fclose(f) != 0 || written != json.size()) {
      std::fprintf(stderr, "short write of report %s\n", args.report.c_str());
      return 1;
    }
    std::printf("report written to %s\n", args.report.c_str());
  }

  if (!outcome.transport_error.empty()) return 1;
  if (args.verify && outcome.mismatches > 0) return 1;
  return 0;
}
