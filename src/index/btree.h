#ifndef CDPD_INDEX_BTREE_H_
#define CDPD_INDEX_BTREE_H_

#include <cassert>
#include <compare>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "index/index_def.h"
#include "storage/access_stats.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace cdpd {

/// Maximum number of key columns of a physical index. The paper uses at
/// most two; we leave headroom for wider composites.
inline constexpr int32_t kMaxIndexKeyColumns = 4;

/// A fixed-capacity composite key: the values of an index's key columns
/// for one row. Compared lexicographically; a strict prefix orders
/// before every key that extends it.
class CompositeKey {
 public:
  CompositeKey() = default;
  explicit CompositeKey(const std::vector<Value>& values) {
    assert(values.size() <= kMaxIndexKeyColumns);
    n_ = static_cast<int32_t>(values.size());
    for (int32_t i = 0; i < n_; ++i) {
      values_[i] = values[static_cast<size_t>(i)];
    }
  }

  int32_t size() const { return n_; }
  Value value(int32_t i) const {
    assert(i >= 0 && i < n_);
    return values_[i];
  }
  void Append(Value v) {
    assert(n_ < kMaxIndexKeyColumns);
    values_[n_++] = v;
  }

  std::strong_ordering operator<=>(const CompositeKey& other) const {
    const int32_t common = n_ < other.n_ ? n_ : other.n_;
    for (int32_t i = 0; i < common; ++i) {
      if (values_[i] != other.values_[i]) {
        return values_[i] <=> other.values_[i];
      }
    }
    return n_ <=> other.n_;
  }
  bool operator==(const CompositeKey& other) const {
    return (*this <=> other) == std::strong_ordering::equal;
  }

  /// True if the first prefix.size() components of this key equal
  /// `prefix`. Requires prefix.size() <= size().
  bool MatchesPrefix(const CompositeKey& prefix) const {
    assert(prefix.n_ <= n_);
    for (int32_t i = 0; i < prefix.n_; ++i) {
      if (values_[i] != prefix.values_[i]) return false;
    }
    return true;
  }

 private:
  Value values_[kMaxIndexKeyColumns] = {};
  int32_t n_ = 0;
};

/// One leaf entry of an index: the composite key plus the heap RowId it
/// points at. Entries are unique by (key, rid).
struct IndexEntry {
  CompositeKey key;
  RowId rid = 0;

  std::strong_ordering operator<=>(const IndexEntry& other) const {
    const auto key_order = key <=> other.key;
    if (key_order != std::strong_ordering::equal) return key_order;
    return rid <=> other.rid;
  }
  bool operator==(const IndexEntry& other) const = default;
};

/// An in-memory B+-tree with page-accurate access accounting.
///
/// Node capacities are derived from the 8 KiB page geometry of
/// storage/page.h, so the number of leaves, the height, and therefore
/// every charged page count line up with the analytic size/cost
/// formulas used by the design advisor. Supports bulk load (index
/// creation), single inserts and erases (maintenance under
/// INSERT/UPDATE), prefix seeks, and leaf-level covering scans.
///
/// Simplification (documented contract): Erase removes entries but does
/// not merge underfull leaves; deletes only arise from UPDATE
/// maintenance in the paper's workloads and page accounting remains
/// conservative (leaves are never under-counted).
class BTree {
 public:
  explicit BTree(IndexDef def);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) = default;
  BTree& operator=(BTree&&) = default;

  const IndexDef& def() const { return def_; }
  int64_t num_entries() const { return num_entries_; }
  int64_t num_leaves() const { return num_leaves_; }
  /// Pages on a root-to-leaf descent (number of levels; >= 1).
  int64_t height() const { return height_; }
  /// Entries per leaf page (from page geometry).
  int64_t leaf_capacity() const { return leaf_capacity_; }
  /// Total pages of the tree (all levels).
  int64_t total_pages() const;

  /// Replaces the tree contents with `entries`, which must be sorted by
  /// (key, rid) and duplicate-free. Charges the written leaf pages.
  void BulkLoad(std::vector<IndexEntry> entries, AccessStats* stats);

  /// Inserts one entry. Returns false (and changes nothing) if an equal
  /// (key, rid) entry already exists. Charges a descent plus the write.
  bool Insert(const IndexEntry& entry, AccessStats* stats);

  /// Removes one entry; returns false if absent. Charges a descent plus
  /// the page write.
  bool Erase(const IndexEntry& entry, AccessStats* stats);

  /// Visits every entry whose key starts with `prefix`, in key order.
  /// Charges the descent (height() random pages) plus one sequential
  /// page per additional leaf crossed.
  template <typename Visitor>
  void SeekPrefix(const CompositeKey& prefix, AccessStats* stats,
                  Visitor&& visit) const {
    stats->random_pages += height();
    if (num_entries_ == 0) return;
    const IndexEntry search{prefix, std::numeric_limits<RowId>::min()};
    const Leaf* leaf = FindLeaf(search);
    size_t pos = LowerBoundInLeaf(*leaf, search);
    while (leaf != nullptr) {
      for (; pos < leaf->entries.size(); ++pos) {
        const IndexEntry& entry = leaf->entries[pos];
        if (!entry.key.MatchesPrefix(prefix)) return;
        visit(entry);
      }
      leaf = leaf->next;
      pos = 0;
      if (leaf != nullptr) stats->sequential_pages += 1;
    }
  }

  /// Visits every entry whose *first* key column lies in [lo, hi]
  /// (inclusive), in key order — the range-scan access path for
  /// BETWEEN predicates on the index's prefix column. Charges the
  /// descent plus one sequential page per additional leaf crossed.
  template <typename Visitor>
  void SeekValueRange(Value lo, Value hi, AccessStats* stats,
                      Visitor&& visit) const {
    stats->random_pages += height();
    if (num_entries_ == 0 || lo > hi) return;
    CompositeKey lo_prefix;
    lo_prefix.Append(lo);
    const IndexEntry search{lo_prefix, std::numeric_limits<RowId>::min()};
    const Leaf* leaf = FindLeaf(search);
    size_t pos = LowerBoundInLeaf(*leaf, search);
    while (leaf != nullptr) {
      for (; pos < leaf->entries.size(); ++pos) {
        const IndexEntry& entry = leaf->entries[pos];
        if (entry.key.value(0) > hi) return;
        visit(entry);
      }
      leaf = leaf->next;
      pos = 0;
      if (leaf != nullptr) stats->sequential_pages += 1;
    }
  }

  /// Visits all entries in key order (a covering scan of the leaf
  /// level). Charges num_leaves() sequential pages.
  template <typename Visitor>
  void ScanLeaves(AccessStats* stats, Visitor&& visit) const {
    stats->sequential_pages += num_leaves();
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      for (const IndexEntry& entry : leaf->entries) {
        visit(entry);
      }
    }
  }

  /// Verifies structural invariants (sorted duplicate-free leaves, leaf
  /// chain consistent with the tree, separators bound their subtrees,
  /// counts accurate). For tests.
  bool CheckInvariants() const;

 private:
  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}
    virtual ~Node() = default;
    const bool is_leaf;
  };
  struct Leaf : Node {
    Leaf() : Node(true) {}
    std::vector<IndexEntry> entries;
    Leaf* next = nullptr;
  };
  struct Internal : Node {
    Internal() : Node(false) {}
    // children[i] holds entries e with separators[i-1] <= e <
    // separators[i] (with virtual -inf / +inf at the ends).
    std::vector<IndexEntry> separators;
    std::vector<std::unique_ptr<Node>> children;
  };

  const Leaf* FindLeaf(const IndexEntry& search) const;
  static size_t LowerBoundInLeaf(const Leaf& leaf, const IndexEntry& search);
  /// Recursive insert; returns the separator + new right sibling if the
  /// child split, nullptr otherwise.
  struct SplitResult {
    IndexEntry separator;
    std::unique_ptr<Node> right;
  };
  std::unique_ptr<SplitResult> InsertInto(Node* node, const IndexEntry& entry,
                                          bool* inserted, AccessStats* stats);
  bool CheckNode(const Node* node, const IndexEntry* lo,
                 const IndexEntry* hi, int64_t* entries, int64_t* leaves,
                 int64_t depth, int64_t* leaf_depth,
                 const Leaf** chain) const;

  IndexDef def_;
  int64_t leaf_capacity_;
  int64_t internal_fanout_;
  int64_t num_entries_ = 0;
  int64_t num_leaves_ = 0;
  int64_t height_ = 1;
  std::unique_ptr<Node> root_;
  Leaf* first_leaf_ = nullptr;
};

/// Extracts the composite key of `row` under index definition `def`.
CompositeKey ExtractKey(const Table& table, const IndexDef& def, RowId row);

}  // namespace cdpd

#endif  // CDPD_INDEX_BTREE_H_
