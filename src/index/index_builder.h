#ifndef CDPD_INDEX_INDEX_BUILDER_H_
#define CDPD_INDEX_INDEX_BUILDER_H_

#include <memory>

#include "common/result.h"
#include "index/btree.h"
#include "storage/table.h"

namespace cdpd {

/// Materializes the B+-tree for `def` over `table`: scans the heap,
/// sorts the extracted (key, rid) entries, and bulk-loads the tree —
/// the physical work that TRANS() prices when a design transition
/// creates an index. Charges the heap scan, the examined rows, and the
/// written pages to `stats`.
///
/// Fails with InvalidArgument if `def` references columns outside the
/// table's schema or exceeds kMaxIndexKeyColumns.
Result<std::unique_ptr<BTree>> BuildIndex(const Table& table,
                                          const IndexDef& def,
                                          AccessStats* stats);

}  // namespace cdpd

#endif  // CDPD_INDEX_INDEX_BUILDER_H_
