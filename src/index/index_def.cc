#include "index/index_def.h"

#include <algorithm>

#include "common/string_util.h"
#include "storage/page.h"

namespace cdpd {

Result<IndexDef> IndexDef::FromColumnNames(
    const Schema& schema, const std::vector<std::string>& names) {
  if (names.empty()) {
    return Status::InvalidArgument("index needs at least one key column");
  }
  std::vector<ColumnId> columns;
  columns.reserve(names.size());
  for (const auto& name : names) {
    CDPD_ASSIGN_OR_RETURN(ColumnId id, schema.FindColumn(name));
    if (std::find(columns.begin(), columns.end(), id) != columns.end()) {
      return Status::InvalidArgument("duplicate key column '" + name + "'");
    }
    columns.push_back(id);
  }
  return IndexDef(std::move(columns));
}

bool IndexDef::ContainsColumn(ColumnId column) const {
  return std::find(key_columns_.begin(), key_columns_.end(), column) !=
         key_columns_.end();
}

int64_t IndexDef::LeafPages(int64_t num_rows) const {
  return IndexLeafPages(num_rows, num_key_columns());
}

int64_t IndexDef::Height(int64_t num_rows) const {
  // Internal fan-out: separators are full keys plus a child pointer.
  const int64_t fanout =
      std::max<int64_t>(2, kPageSizeBytes / (IndexEntryBytes(num_key_columns())));
  return TreeHeight(LeafPages(num_rows), fanout);
}

int64_t IndexDef::SizePages(int64_t num_rows) const {
  const int64_t leaves = LeafPages(num_rows);
  const int64_t fanout =
      std::max<int64_t>(2, kPageSizeBytes / (IndexEntryBytes(num_key_columns())));
  // Sum of all levels above the leaves.
  int64_t total = leaves;
  int64_t level = leaves;
  while (level > 1) {
    level = CeilDiv(level, fanout);
    total += level;
  }
  return total;
}

std::string IndexDef::ToString(const Schema& schema) const {
  std::vector<std::string> names;
  names.reserve(key_columns_.size());
  for (ColumnId id : key_columns_) names.push_back(schema.column_name(id));
  return "I(" + Join(names, ",") + ")";
}

size_t IndexDefHash::operator()(const IndexDef& def) const {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (ColumnId id : def.key_columns()) {
    h ^= static_cast<size_t>(id) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::vector<IndexDef> MakePaperCandidateIndexes(const Schema& schema) {
  auto col = [&schema](const char* name) {
    return schema.FindColumn(name).value();
  };
  return {
      IndexDef({col("a")}),           IndexDef({col("b")}),
      IndexDef({col("c")}),           IndexDef({col("d")}),
      IndexDef({col("a"), col("b")}), IndexDef({col("c"), col("d")}),
  };
}

}  // namespace cdpd
