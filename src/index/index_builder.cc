#include "index/index_builder.h"

#include <algorithm>

namespace cdpd {

Result<std::unique_ptr<BTree>> BuildIndex(const Table& table,
                                          const IndexDef& def,
                                          AccessStats* stats) {
  if (def.num_key_columns() == 0) {
    return Status::InvalidArgument("index needs at least one key column");
  }
  if (def.num_key_columns() > kMaxIndexKeyColumns) {
    return Status::InvalidArgument(
        "index has " + std::to_string(def.num_key_columns()) +
        " key columns; the engine supports at most " +
        std::to_string(kMaxIndexKeyColumns));
  }
  for (ColumnId column : def.key_columns()) {
    if (column < 0 || column >= table.schema().num_columns()) {
      return Status::InvalidArgument("index references column id " +
                                     std::to_string(column) +
                                     " outside the table schema");
    }
  }

  std::vector<IndexEntry> entries;
  entries.reserve(static_cast<size_t>(table.num_rows()));
  table.Scan(stats, [&](RowId row) {
    entries.push_back(IndexEntry{ExtractKey(table, def, row), row});
  });
  stats->rows_examined += table.num_rows();
  std::sort(entries.begin(), entries.end());

  auto tree = std::make_unique<BTree>(def);
  tree->BulkLoad(std::move(entries), stats);
  return tree;
}

}  // namespace cdpd
