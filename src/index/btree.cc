#include "index/btree.h"

#include <algorithm>

namespace cdpd {

namespace {

/// Operator< for std::upper_bound / std::lower_bound over entries.
bool EntryLess(const IndexEntry& a, const IndexEntry& b) { return a < b; }

}  // namespace

BTree::BTree(IndexDef def)
    : def_(std::move(def)),
      leaf_capacity_(IndexEntriesPerPage(def_.num_key_columns())),
      internal_fanout_(std::max<int64_t>(
          2, kPageSizeBytes / IndexEntryBytes(def_.num_key_columns()))) {
  auto leaf = std::make_unique<Leaf>();
  first_leaf_ = leaf.get();
  root_ = std::move(leaf);
  num_leaves_ = 1;
}

const BTree::Leaf* BTree::FindLeaf(const IndexEntry& search) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    const auto* internal = static_cast<const Internal*>(node);
    const size_t child =
        static_cast<size_t>(std::upper_bound(internal->separators.begin(),
                                             internal->separators.end(),
                                             search, EntryLess) -
                            internal->separators.begin());
    node = internal->children[child].get();
  }
  return static_cast<const Leaf*>(node);
}

size_t BTree::LowerBoundInLeaf(const Leaf& leaf, const IndexEntry& search) {
  return static_cast<size_t>(std::lower_bound(leaf.entries.begin(),
                                              leaf.entries.end(), search,
                                              EntryLess) -
                             leaf.entries.begin());
}

void BTree::BulkLoad(std::vector<IndexEntry> entries, AccessStats* stats) {
  assert(std::is_sorted(entries.begin(), entries.end(), EntryLess));
  num_entries_ = static_cast<int64_t>(entries.size());

  if (entries.empty()) {
    auto leaf = std::make_unique<Leaf>();
    first_leaf_ = leaf.get();
    root_ = std::move(leaf);
    num_leaves_ = 1;
    height_ = 1;
    stats->written_pages += 1;
    return;
  }

  // Level 0: pack entries into full leaves, chained left to right.
  std::vector<std::unique_ptr<Node>> level;
  std::vector<IndexEntry> level_min_entry;
  Leaf* prev = nullptr;
  for (size_t begin = 0; begin < entries.size();
       begin += static_cast<size_t>(leaf_capacity_)) {
    const size_t end =
        std::min(entries.size(), begin + static_cast<size_t>(leaf_capacity_));
    auto leaf = std::make_unique<Leaf>();
    leaf->entries.assign(entries.begin() + static_cast<int64_t>(begin),
                         entries.begin() + static_cast<int64_t>(end));
    if (prev == nullptr) {
      first_leaf_ = leaf.get();
    } else {
      prev->next = leaf.get();
    }
    prev = leaf.get();
    level_min_entry.push_back(leaf->entries.front());
    level.push_back(std::move(leaf));
  }
  num_leaves_ = static_cast<int64_t>(level.size());
  stats->written_pages += num_leaves_;
  height_ = 1;

  // Upper levels: group `internal_fanout_` children per node.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next_level;
    std::vector<IndexEntry> next_min_entry;
    for (size_t begin = 0; begin < level.size();
         begin += static_cast<size_t>(internal_fanout_)) {
      const size_t end = std::min(
          level.size(), begin + static_cast<size_t>(internal_fanout_));
      auto internal = std::make_unique<Internal>();
      for (size_t i = begin; i < end; ++i) {
        if (i > begin) internal->separators.push_back(level_min_entry[i]);
        internal->children.push_back(std::move(level[i]));
      }
      next_min_entry.push_back(level_min_entry[begin]);
      next_level.push_back(std::move(internal));
      stats->written_pages += 1;
    }
    level = std::move(next_level);
    level_min_entry = std::move(next_min_entry);
    ++height_;
  }
  root_ = std::move(level.front());
}

std::unique_ptr<BTree::SplitResult> BTree::InsertInto(Node* node,
                                                      const IndexEntry& entry,
                                                      bool* inserted,
                                                      AccessStats* stats) {
  if (node->is_leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    const size_t pos = LowerBoundInLeaf(*leaf, entry);
    if (pos < leaf->entries.size() && leaf->entries[pos] == entry) {
      *inserted = false;
      return nullptr;
    }
    leaf->entries.insert(leaf->entries.begin() + static_cast<int64_t>(pos),
                         entry);
    *inserted = true;
    if (static_cast<int64_t>(leaf->entries.size()) <= leaf_capacity_) {
      return nullptr;
    }
    // Split the leaf in half; the right half starts a new page.
    auto right = std::make_unique<Leaf>();
    const size_t mid = leaf->entries.size() / 2;
    right->entries.assign(leaf->entries.begin() + static_cast<int64_t>(mid),
                          leaf->entries.end());
    leaf->entries.resize(mid);
    right->next = leaf->next;
    leaf->next = right.get();
    ++num_leaves_;
    stats->written_pages += 1;
    auto result = std::make_unique<SplitResult>();
    result->separator = right->entries.front();
    result->right = std::move(right);
    return result;
  }

  auto* internal = static_cast<Internal*>(node);
  const size_t child_index =
      static_cast<size_t>(std::upper_bound(internal->separators.begin(),
                                           internal->separators.end(), entry,
                                           EntryLess) -
                          internal->separators.begin());
  auto split =
      InsertInto(internal->children[child_index].get(), entry, inserted, stats);
  if (split == nullptr) return nullptr;

  internal->separators.insert(
      internal->separators.begin() + static_cast<int64_t>(child_index),
      split->separator);
  internal->children.insert(
      internal->children.begin() + static_cast<int64_t>(child_index) + 1,
      std::move(split->right));
  if (static_cast<int64_t>(internal->children.size()) <= internal_fanout_) {
    return nullptr;
  }
  // Split the internal node; the middle separator is promoted.
  auto right = std::make_unique<Internal>();
  const size_t mid = internal->children.size() / 2;
  IndexEntry promoted = internal->separators[mid - 1];
  right->separators.assign(
      internal->separators.begin() + static_cast<int64_t>(mid),
      internal->separators.end());
  for (size_t i = mid; i < internal->children.size(); ++i) {
    right->children.push_back(std::move(internal->children[i]));
  }
  internal->separators.resize(mid - 1);
  internal->children.resize(mid);
  stats->written_pages += 1;
  auto result = std::make_unique<SplitResult>();
  result->separator = promoted;
  result->right = std::move(right);
  return result;
}

bool BTree::Insert(const IndexEntry& entry, AccessStats* stats) {
  stats->random_pages += height_;
  bool inserted = false;
  auto split = InsertInto(root_.get(), entry, &inserted, stats);
  if (!inserted) return false;
  stats->written_pages += 1;
  ++num_entries_;
  if (split != nullptr) {
    auto new_root = std::make_unique<Internal>();
    new_root->separators.push_back(split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
    ++height_;
    stats->written_pages += 1;
  }
  return true;
}

bool BTree::Erase(const IndexEntry& entry, AccessStats* stats) {
  stats->random_pages += height_;
  Node* node = root_.get();
  while (!node->is_leaf) {
    auto* internal = static_cast<Internal*>(node);
    const size_t child =
        static_cast<size_t>(std::upper_bound(internal->separators.begin(),
                                             internal->separators.end(), entry,
                                             EntryLess) -
                            internal->separators.begin());
    node = internal->children[child].get();
  }
  auto* leaf = static_cast<Leaf*>(node);
  const size_t pos = LowerBoundInLeaf(*leaf, entry);
  if (pos >= leaf->entries.size() || !(leaf->entries[pos] == entry)) {
    return false;
  }
  leaf->entries.erase(leaf->entries.begin() + static_cast<int64_t>(pos));
  --num_entries_;
  stats->written_pages += 1;
  return true;
}

int64_t BTree::total_pages() const {
  // Count nodes level by level without recursion.
  int64_t total = 0;
  std::vector<const Node*> level = {root_.get()};
  while (!level.empty()) {
    total += static_cast<int64_t>(level.size());
    std::vector<const Node*> next;
    for (const Node* node : level) {
      if (!node->is_leaf) {
        for (const auto& child : static_cast<const Internal*>(node)->children) {
          next.push_back(child.get());
        }
      }
    }
    level = std::move(next);
  }
  return total;
}

bool BTree::CheckNode(const Node* node, const IndexEntry* lo,
                      const IndexEntry* hi, int64_t* entries, int64_t* leaves,
                      int64_t depth, int64_t* leaf_depth,
                      const Leaf** chain) const {
  if (node->is_leaf) {
    const auto* leaf = static_cast<const Leaf*>(node);
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return false;  // Leaves at different depths.
    }
    if (static_cast<int64_t>(leaf->entries.size()) > leaf_capacity_) {
      return false;
    }
    for (size_t i = 0; i < leaf->entries.size(); ++i) {
      const IndexEntry& e = leaf->entries[i];
      if (i > 0 && !(leaf->entries[i - 1] < e)) return false;
      if (lo != nullptr && e < *lo) return false;
      if (hi != nullptr && !(e < *hi)) return false;
    }
    if (*chain != leaf) return false;  // Chain order must match traversal.
    *chain = leaf->next;
    *entries += static_cast<int64_t>(leaf->entries.size());
    *leaves += 1;
    return true;
  }
  const auto* internal = static_cast<const Internal*>(node);
  if (internal->children.size() != internal->separators.size() + 1) {
    return false;
  }
  if (static_cast<int64_t>(internal->children.size()) > internal_fanout_) {
    return false;
  }
  for (size_t i = 0; i + 1 < internal->separators.size(); ++i) {
    if (!(internal->separators[i] < internal->separators[i + 1])) return false;
  }
  for (size_t i = 0; i < internal->children.size(); ++i) {
    const IndexEntry* child_lo = i == 0 ? lo : &internal->separators[i - 1];
    const IndexEntry* child_hi =
        i == internal->separators.size() ? hi : &internal->separators[i];
    if (!CheckNode(internal->children[i].get(), child_lo, child_hi, entries,
                   leaves, depth + 1, leaf_depth, chain)) {
      return false;
    }
  }
  return true;
}

bool BTree::CheckInvariants() const {
  int64_t entries = 0;
  int64_t leaves = 0;
  int64_t leaf_depth = -1;
  const Leaf* chain = first_leaf_;
  if (!CheckNode(root_.get(), nullptr, nullptr, &entries, &leaves, 1,
                 &leaf_depth, &chain)) {
    return false;
  }
  if (chain != nullptr) return false;  // Chain longer than the tree.
  if (entries != num_entries_) return false;
  if (leaves != num_leaves_) return false;
  if (leaf_depth != height_) return false;
  return true;
}

CompositeKey ExtractKey(const Table& table, const IndexDef& def, RowId row) {
  CompositeKey key;
  for (ColumnId column : def.key_columns()) {
    key.Append(table.GetValue(row, column));
  }
  return key;
}

}  // namespace cdpd
