#ifndef CDPD_INDEX_INDEX_DEF_H_
#define CDPD_INDEX_INDEX_DEF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"

namespace cdpd {

/// Logical definition of a B+-tree index: an ordered list of key
/// columns of one table. IndexDef is an immutable value type — it is
/// what physical-design configurations are made of; the physical tree
/// (index/btree.h) is materialized from it by the engine when a design
/// transition creates the index.
class IndexDef {
 public:
  IndexDef() = default;
  explicit IndexDef(std::vector<ColumnId> key_columns)
      : key_columns_(std::move(key_columns)) {}

  /// Parses "I(a,b)" / "a,b" style column lists against a schema.
  static Result<IndexDef> FromColumnNames(
      const Schema& schema, const std::vector<std::string>& names);

  const std::vector<ColumnId>& key_columns() const { return key_columns_; }
  int32_t num_key_columns() const {
    return static_cast<int32_t>(key_columns_.size());
  }

  /// True if `column` is the first key column — a point predicate on it
  /// can be answered with a B+-tree seek.
  bool HasPrefixColumn(ColumnId column) const {
    return !key_columns_.empty() && key_columns_[0] == column;
  }

  /// True if `column` appears anywhere in the key — a point predicate
  /// on it can be answered with a covering scan of the leaf level.
  bool ContainsColumn(ColumnId column) const;

  /// Size of the index in pages for a table of `num_rows` rows
  /// (leaf level plus upper levels).
  int64_t SizePages(int64_t num_rows) const;

  /// Pages of the leaf level only (what a covering scan reads).
  int64_t LeafPages(int64_t num_rows) const;

  /// Pages on a root-to-leaf descent (what a seek reads).
  int64_t Height(int64_t num_rows) const;

  /// "I(a,b)" rendered against `schema`.
  std::string ToString(const Schema& schema) const;

  bool operator==(const IndexDef& other) const = default;
  /// Lexicographic order on key columns, for use in ordered containers
  /// and canonical configuration ordering.
  bool operator<(const IndexDef& other) const {
    return key_columns_ < other.key_columns_;
  }

 private:
  std::vector<ColumnId> key_columns_;
};

/// Hash functor so IndexDef can key unordered containers.
struct IndexDefHash {
  size_t operator()(const IndexDef& def) const;
};

/// The six candidate indexes of the paper's experiments:
/// I(a), I(b), I(c), I(d), I(a,b), I(c,d) — in that order.
std::vector<IndexDef> MakePaperCandidateIndexes(const Schema& schema);

}  // namespace cdpd

#endif  // CDPD_INDEX_INDEX_DEF_H_
