#include "core/sequence_graph.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/math_util.h"
#include "common/string_util.h"

namespace cdpd {

Result<SequenceGraph> SequenceGraph::Build(const DesignProblem& problem,
                                           const CostMatrix* matrix) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  SequenceGraph graph;
  graph.problem_ = &problem;
  graph.num_stages_ = problem.num_segments();
  const size_t m = problem.candidates.size();
  const size_t n = graph.num_stages_;
  if (matrix != nullptr &&
      (matrix->num_segments() != n || matrix->num_configs() != m)) {
    return Status::InvalidArgument(
        "cost matrix shape does not match the design problem");
  }
  const auto exec = [&](size_t stage, size_t c) {
    return matrix != nullptr
               ? matrix->Exec(stage, c)
               : problem.what_if->SegmentCost(stage, problem.candidates[c]);
  };
  const auto trans = [&](size_t p, size_t c) {
    return matrix != nullptr
               ? matrix->Trans(p, c)
               : problem.what_if->TransitionCost(problem.candidates[p],
                                                 problem.candidates[c]);
  };

  // Node and edge ids are int32; reject problems whose materialized
  // graph would not be addressable (the DP solvers handle such sizes
  // without building the graph — only ranking/introspection needs it).
  // Nodes: source + n*m stage nodes + destination. Edges: m source
  // edges + (n-1)*m^2 bipartite edges + m destination edges.
  {
    int64_t nodes = 0;
    int64_t edges = 0;
    int64_t bipartite = 0;
    const auto n64 = static_cast<int64_t>(n);
    const auto m64 = static_cast<int64_t>(m);
    const bool fits =
        CheckedMul(n64, m64, &nodes) && CheckedAdd(nodes, 2, &nodes) &&
        CheckedMul(m64, m64, &bipartite) &&
        CheckedMul(bipartite, n64 > 0 ? n64 - 1 : 0, &bipartite) &&
        CheckedAdd(bipartite, 2 * m64, &edges) &&
        nodes <= std::numeric_limits<int32_t>::max() &&
        edges <= std::numeric_limits<int32_t>::max();
    if (!fits) {
      return Status::InvalidArgument(
          "sequence graph over " + std::to_string(n) + " segments and " +
          std::to_string(m) +
          " candidate configurations exceeds the 32-bit node/edge id "
          "space");
    }
  }

  // Node layout: 0 = source; 1 + (stage-1)*m + c for stage in 1..n;
  // destination last.
  graph.destination_ = static_cast<NodeId>(1 + n * m);
  graph.in_edges_.resize(static_cast<size_t>(graph.destination_) + 1);
  graph.out_edges_.resize(static_cast<size_t>(graph.destination_) + 1);

  const WhatIfEngine& what_if = *problem.what_if;
  if (n == 0) {
    const double weight =
        problem.final_config.has_value()
            ? what_if.TransitionCost(problem.initial, *problem.final_config)
            : 0.0;
    graph.AddEdge(graph.source(), graph.destination_, weight);
    return graph;
  }

  // Source -> stage 1.
  for (size_t c = 0; c < m; ++c) {
    const Configuration& config = problem.candidates[c];
    graph.AddEdge(graph.source(), graph.StageNode(1, c),
                  what_if.TransitionCost(problem.initial, config) +
                      exec(0, c));
  }
  // Stage x -> stage x+1 (complete bipartite).
  for (size_t stage = 1; stage < n; ++stage) {
    for (size_t p = 0; p < m; ++p) {
      for (size_t c = 0; c < m; ++c) {
        graph.AddEdge(graph.StageNode(stage, p),
                      graph.StageNode(stage + 1, c),
                      trans(p, c) + exec(stage, c));
      }
    }
  }
  // Stage n -> destination.
  for (size_t c = 0; c < m; ++c) {
    const double weight =
        problem.final_config.has_value()
            ? what_if.TransitionCost(problem.candidates[c],
                                     *problem.final_config)
            : 0.0;
    graph.AddEdge(graph.StageNode(n, c), graph.destination_, weight);
  }
  return graph;
}

void SequenceGraph::AddEdge(NodeId from, NodeId to, double weight) {
  const auto id = static_cast<int32_t>(edges_.size());
  edges_.push_back(Edge{from, to, weight});
  out_edges_[static_cast<size_t>(from)].push_back(id);
  in_edges_[static_cast<size_t>(to)].push_back(id);
}

size_t SequenceGraph::NodeStage(NodeId node) const {
  if (node == source()) return 0;
  if (node == destination_) return num_stages_ + 1;
  return 1 + static_cast<size_t>(node - 1) / num_configs();
}

size_t SequenceGraph::NodeConfigIndex(NodeId node) const {
  assert(node != source() && node != destination_);
  return static_cast<size_t>(node - 1) % num_configs();
}

SequenceGraph::NodeId SequenceGraph::StageNode(size_t stage,
                                               size_t config_index) const {
  assert(stage >= 1 && stage <= num_stages_);
  assert(config_index < num_configs());
  return static_cast<NodeId>(1 + (stage - 1) * num_configs() + config_index);
}

std::vector<Configuration> SequenceGraph::PathConfigs(
    const std::vector<NodeId>& path) const {
  std::vector<Configuration> configs;
  for (NodeId node : path) {
    if (node == source() || node == destination_) continue;
    configs.push_back(problem_->candidates[NodeConfigIndex(node)]);
  }
  return configs;
}

int64_t SequenceGraph::PathChanges(const std::vector<NodeId>& path) const {
  return CountChanges(*problem_, PathConfigs(path));
}

std::string SequenceGraph::ToDot() const {
  const Schema& schema = problem_->what_if->model().schema();
  std::string dot = "digraph sequence_graph {\n  rankdir=LR;\n";
  dot += "  n0 [label=\"C0 = " + problem_->initial.ToString(schema) +
         "\" shape=box];\n";
  for (size_t stage = 1; stage <= num_stages_; ++stage) {
    for (size_t c = 0; c < num_configs(); ++c) {
      const NodeId node = StageNode(stage, c);
      dot += "  n" + std::to_string(node) + " [label=\"S" +
             std::to_string(stage) + " " +
             problem_->candidates[c].ToString(schema) + "\"];\n";
    }
  }
  dot += "  n" + std::to_string(destination_) + " [label=\"dest\" shape=box];\n";
  for (const Edge& edge : edges_) {
    dot += "  n" + std::to_string(edge.from) + " -> n" +
           std::to_string(edge.to) + " [label=\"" +
           FormatDouble(edge.weight, 1) + "\"];\n";
  }
  dot += "}\n";
  return dot;
}

DagShortestPaths ComputeShortestPaths(const SequenceGraph& graph) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  DagShortestPaths result;
  result.dist.assign(static_cast<size_t>(graph.num_nodes()), kInf);
  result.parent_edge.assign(static_cast<size_t>(graph.num_nodes()), -1);
  result.dist[static_cast<size_t>(graph.source())] = 0.0;
  // Node ids are already in topological order (source, stages, dest).
  for (SequenceGraph::NodeId node = graph.source(); node <= graph.destination();
       ++node) {
    const auto node_index = static_cast<size_t>(node);
    if (result.dist[node_index] == kInf) continue;
    for (int32_t edge_id : graph.OutEdgeIds(node)) {
      const SequenceGraph::Edge& edge = graph.edge(edge_id);
      const double candidate = result.dist[node_index] + edge.weight;
      const auto to_index = static_cast<size_t>(edge.to);
      if (candidate < result.dist[to_index]) {
        result.dist[to_index] = candidate;
        result.parent_edge[to_index] = edge_id;
      }
    }
  }
  return result;
}

std::vector<SequenceGraph::NodeId> ExtractPath(const SequenceGraph& graph,
                                               const DagShortestPaths& paths,
                                               SequenceGraph::NodeId target) {
  std::vector<SequenceGraph::NodeId> path;
  SequenceGraph::NodeId node = target;
  path.push_back(node);
  while (node != graph.source()) {
    const int32_t edge_id = paths.parent_edge[static_cast<size_t>(node)];
    if (edge_id < 0) return {};  // Unreachable target.
    node = graph.edge(edge_id).from;
    path.push_back(node);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int64_t EstimateSequenceGraphBytes(int64_t num_stages, int64_t num_configs) {
  if (num_stages <= 0 || num_configs <= 0) return 0;
  const int64_t nodes =
      SaturatingAdd(SaturatingMul(num_stages, num_configs), 2);
  // Source fan-out + complete bipartite layers + destination fan-in
  // (Figure 1's edge inventory, matching Build).
  int64_t edges = SaturatingMul(int64_t{2}, num_configs);
  edges = SaturatingAdd(
      edges, SaturatingMul(num_stages - 1,
                           SaturatingMul(num_configs, num_configs)));
  // Each edge: the Edge struct plus one int32 id in each adjacency
  // index; each node: the two adjacency-vector headers.
  int64_t bytes = SaturatingMul(
      edges, static_cast<int64_t>(sizeof(SequenceGraph::Edge) +
                                  2 * sizeof(int32_t)));
  bytes = SaturatingAdd(
      bytes, SaturatingMul(
                 nodes, static_cast<int64_t>(2 *
                                             sizeof(std::vector<int32_t>))));
  return bytes;
}

}  // namespace cdpd
