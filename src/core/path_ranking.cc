#include "core/path_ranking.h"

#include <algorithm>
#include <limits>

#include "common/stopwatch.h"

namespace cdpd {

PathRanker::PathRanker(const SequenceGraph& graph, const Budget* budget,
                       ResourceTracker* tracker)
    : graph_(&graph), budget_(budget), tree_(ComputeShortestPaths(graph)) {
  nodes_.assign(
      static_cast<size_t>(graph.num_nodes()),
      NodeState(TrackingAllocator<PathRef>(tracker,
                                           MemComponent::kRankingQueue)));
  state_reservation_ = ScopedReservation(
      tracker, MemComponent::kRankingQueue,
      static_cast<int64_t>(nodes_.size() * sizeof(NodeState)));
  // π^1 of every reachable node comes from the shortest-path tree.
  for (size_t v = 0; v < nodes_.size(); ++v) {
    if (tree_.dist[v] == std::numeric_limits<double>::infinity()) continue;
    PathRef first;
    first.cost = tree_.dist[v];
    first.pred_edge = tree_.parent_edge[v];
    first.pred_index = first.pred_edge < 0 ? -1 : 0;
    nodes_[v].paths.push_back(first);
  }
}

void PathRanker::PushCandidate(NodeState* state, PathRef ref) {
  state->candidates.push_back(ref);
  std::push_heap(state->candidates.begin(), state->candidates.end(),
                 [](const PathRef& a, const PathRef& b) {
                   return a.cost > b.cost;  // Min-heap.
                 });
}

bool PathRanker::EnsurePath(SequenceGraph::NodeId node, size_t rank) {
  NodeState& state = nodes_[static_cast<size_t>(node)];
  while (state.paths.size() <= rank) {
    // The source has exactly one path (the graph is acyclic).
    if (node == graph_->source()) return false;
    if (state.paths.empty()) return false;  // Unreachable node.
    if (BudgetExpired(budget_)) return false;

    // One-time: alternative predecessors of π^1 become candidates.
    if (!state.initialized_alternatives) {
      state.initialized_alternatives = true;
      const int32_t tree_edge = state.paths.front().pred_edge;
      for (int32_t edge_id : graph_->InEdgeIds(node)) {
        if (edge_id == tree_edge) continue;
        const SequenceGraph::Edge& edge = graph_->edge(edge_id);
        const NodeState& pred = nodes_[static_cast<size_t>(edge.from)];
        if (pred.paths.empty()) continue;  // Unreachable predecessor.
        PushCandidate(&state,
                      PathRef{pred.paths.front().cost + edge.weight, edge_id,
                              0});
      }
    }

    // The previously selected path spawns one new candidate: the next
    // path of its predecessor, extended by the same edge.
    const PathRef& last = state.paths.back();
    if (last.pred_edge >= 0) {
      const SequenceGraph::Edge& edge = graph_->edge(last.pred_edge);
      const size_t next_rank = static_cast<size_t>(last.pred_index) + 1;
      if (EnsurePath(edge.from, next_rank)) {
        const NodeState& pred = nodes_[static_cast<size_t>(edge.from)];
        PushCandidate(&state,
                      PathRef{pred.paths[next_rank].cost + edge.weight,
                              last.pred_edge,
                              static_cast<int64_t>(next_rank)});
      }
    }

    // Expiry is monotone, so re-checking here distinguishes a
    // recursive EnsurePath that failed from expiry (candidate set may
    // be incomplete — popping it could yield paths out of cost order)
    // from one that failed from true exhaustion (safe to pop).
    if (BudgetExpired(budget_)) return false;
    if (state.candidates.empty()) return false;
    std::pop_heap(state.candidates.begin(), state.candidates.end(),
                  [](const PathRef& a, const PathRef& b) {
                    return a.cost > b.cost;
                  });
    state.paths.push_back(state.candidates.back());
    state.candidates.pop_back();
  }
  return true;
}

std::optional<RankedPath> PathRanker::Next() {
  const SequenceGraph::NodeId dest = graph_->destination();
  const auto rank = static_cast<size_t>(paths_yielded_);
  if (!EnsurePath(dest, rank)) return std::nullopt;
  ++paths_yielded_;

  RankedPath path;
  path.cost = nodes_[static_cast<size_t>(dest)].paths[rank].cost;
  // Backtrack through (node, rank) pairs.
  SequenceGraph::NodeId node = dest;
  size_t node_rank = rank;
  for (;;) {
    path.nodes.push_back(node);
    const PathRef& ref = nodes_[static_cast<size_t>(node)].paths[node_rank];
    if (ref.pred_edge < 0) break;
    node = graph_->edge(ref.pred_edge).from;
    node_rank = static_cast<size_t>(ref.pred_index);
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

Result<DesignSchedule> SolveByRanking(const DesignProblem& problem, int64_t k,
                                      int64_t max_paths, SolveStats* stats,
                                      ThreadPool* pool, Tracer* tracer,
                                      const Budget* budget,
                                      const ProgressFn* progress,
                                      Logger* logger,
                                      ResourceTracker* tracker,
                                      CostCache* cost_cache) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  if (k < 0) {
    return Status::InvalidArgument("change bound k must be >= 0");
  }
  const WhatIfEngine& what_if = *problem.what_if;
  const Stopwatch watch;
  const int64_t costings_before = what_if.costings();
  SolveStats local_stats;
  local_stats.threads_used = pool != nullptr ? pool->num_threads() : 1;
  // Parallel phase: the dense cost tables. The graph build and the
  // path enumeration below are then pure lookups.
  CDPD_LOG(logger, LogLevel::kInfo, "ranking.start",
           LogField("segments", problem.num_segments()),
           LogField("candidates", problem.candidates.size()),
           LogField("k", k), LogField("max_paths", max_paths));

  // Charge the dense cost tables and the materialized graph before
  // building either; a refusal skips the enumeration entirely and
  // degrades to the cheapest static schedule (the same last-resort
  // fallback a failed enumeration reaches below).
  ScopedReservation matrix_reservation = ScopedReservation::Try(
      tracker, MemComponent::kCostMatrix,
      CostMatrix::EstimateBytes(problem.num_segments(),
                                problem.candidates.size()));
  ScopedReservation graph_reservation;
  if (matrix_reservation.ok()) {
    graph_reservation = ScopedReservation::Try(
        tracker, MemComponent::kSequenceGraph,
        EstimateSequenceGraphBytes(
            static_cast<int64_t>(problem.num_segments()),
            static_cast<int64_t>(problem.candidates.size())));
  }
  if (!matrix_reservation.ok() || !graph_reservation.ok()) {
    CDPD_LOG(logger, LogLevel::kWarn, "ranking.memory_limit",
             LogField("limit_bytes", tracker->limit_bytes()),
             LogField("fallback", "best-static"));
    Result<DesignSchedule> fallback = BestStaticSchedule(problem, k);
    if (!fallback.ok()) {
      return Status::DeadlineExceeded(
          "memory budget exhausted before the ranking could start, and "
          "no static design satisfies k = " + std::to_string(k));
    }
    local_stats.best_effort = true;
    local_stats.deadline_hit = true;
    local_stats.wall_seconds = watch.ElapsedSeconds();
    local_stats.costings = what_if.costings() - costings_before;
    if (stats != nullptr) *stats = local_stats;
    return std::move(fallback).value();
  }

  CostMatrix matrix;
  {
    CDPD_TRACE_SPAN(tracer, "ranking.precompute", "solver");
    CDPD_ASSIGN_OR_RETURN(
        matrix, what_if.PrecomputeCostMatrix(problem.candidates, pool, tracer,
                                             budget, progress, logger,
                                             cost_cache, tracker));
  }
  if (!matrix.complete()) {
    return Status::DeadlineExceeded(
        "budget expired during the what-if precompute, before any "
        "feasible schedule could be priced");
  }
  CDPD_ASSIGN_OR_RETURN(SequenceGraph graph,
                        SequenceGraph::Build(problem, &matrix));
  local_stats.nodes_expanded = graph.num_nodes();
  PathRanker ranker(graph, budget, tracker);
  TraceSpan enumerate_span(tracer, "ranking.enumerate", "solver");
  const auto finish = [&] {
    enumerate_span.set_arg(local_stats.paths_enumerated);
    local_stats.wall_seconds = watch.ElapsedSeconds();
    local_stats.costings = what_if.costings() - costings_before;
    if (stats != nullptr) *stats = local_stats;
  };
  while (local_stats.paths_enumerated < max_paths &&
         !BudgetExpired(budget)) {
    // Every 1024 paths so a megapath enumeration doesn't spend its
    // time in the callback (cost when detached: one AND + one test).
    if ((local_stats.paths_enumerated & 1023) == 0) {
      ReportProgress(progress, "ranking.enumerate",
                     static_cast<double>(local_stats.paths_enumerated) /
                         static_cast<double>(max_paths));
    }
    std::optional<RankedPath> path = ranker.Next();
    if (!path.has_value()) break;  // Ranking exhausted (or expired).
    ++local_stats.paths_enumerated;
    if (graph.PathChanges(path->nodes) <= k) {
      DesignSchedule schedule;
      schedule.configs = graph.PathConfigs(path->nodes);
      schedule.total_cost = path->cost;
      ReportProgress(progress, "ranking.enumerate", 1.0, path->cost);
      CDPD_LOG(logger, LogLevel::kInfo, "ranking.end",
               LogField("cost", path->cost),
               LogField("paths_enumerated", local_stats.paths_enumerated),
               LogField("changes", graph.PathChanges(path->nodes)));
      finish();
      return schedule;
    }
  }
  // The enumeration ended empty-handed — max_paths cap, true
  // exhaustion, or budget expiry. Degrade to the cheapest feasible
  // static schedule rather than failing: a flagged suboptimal answer
  // beats no answer, and the caller can read best_effort/deadline_hit
  // to tell. (Cost note: the static scan reuses the memoized oracle
  // the precompute already filled, so it is pure cache hits.)
  const bool expired = BudgetExpired(budget);
  CDPD_LOG(logger, LogLevel::kWarn, "ranking.fallback",
           LogField("paths_enumerated", local_stats.paths_enumerated),
           LogField("expired", expired));
  Result<DesignSchedule> fallback = BestStaticSchedule(problem, k);
  if (fallback.ok()) {
    local_stats.best_effort = true;
    local_stats.deadline_hit = expired;
    finish();
    return std::move(fallback).value();
  }
  finish();
  if (expired) {
    return Status::DeadlineExceeded(
        "budget expired after " +
        std::to_string(local_stats.paths_enumerated) +
        " ranked paths, and no static design satisfies k = " +
        std::to_string(k));
  }
  return Status::ResourceExhausted(
      "no path with <= " + std::to_string(k) + " changes within the first " +
      std::to_string(local_stats.paths_enumerated) +
      " ranked paths, and no static design satisfies the bound");
}

}  // namespace cdpd
