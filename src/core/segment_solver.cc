#include "core/segment_solver.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "common/stopwatch.h"
#include "core/k_aware_graph.h"
#include "workload/workload.h"

namespace cdpd {

Status SegmentSolveOptions::Validate() const {
  if (num_chunks < 0) {
    return Status::InvalidArgument(
        "segmented.num_chunks must be >= 0 (0 = auto, 1 = monolithic)");
  }
  if (min_chunk_stages == 0) {
    return Status::InvalidArgument(
        "segmented.min_chunk_stages must be positive");
  }
  return Status::OK();
}

size_t ResolveNumChunks(const SegmentSolveOptions& options,
                        size_t num_stages) {
  if (options.num_chunks == 1 || num_stages < 2) return 1;
  if (options.num_chunks >= 2) {
    return std::min(static_cast<size_t>(options.num_chunks), num_stages);
  }
  // Auto: one chunk per min_chunk_stages stages, capped. Deliberately
  // independent of the thread count — the schedule must stay identical
  // for any number of workers, and chunk count influences tie-breaks.
  const size_t chunks = std::min(num_stages / options.min_chunk_stages,
                                 SegmentSolveOptions::kMaxAutoChunks);
  return chunks >= 2 ? chunks : 1;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Parent cell of the within-chunk DP (chunk-local stage indexing).
struct ChunkParent {
  int32_t layer = -1;
  int32_t config = -1;
};

/// The layered DP of SolveKAware restricted to stages [chunk.begin,
/// chunk.end), entered in design `entry` (an entry ConfigId, or -1 for
/// the problem's initial design with its count_initial_change policy —
/// chunk 0 only). Serial: chunk tasks are the parallel grain, and the
/// serial ascending sweeps reproduce SolveKAware's argmin tie-breaks
/// exactly. On return `dist` holds the final stage's (layer, config)
/// costs; when `parent` is non-null it is filled for reconstruction
/// ((local_stage * layers + l) * m + c). Returns the number of
/// reachable cells seen (nodes expanded).
int64_t RunChunkDp(const CostMatrix& matrix, const Segment& chunk,
                   int64_t entry, const double* init_trans,
                   const uint8_t* is_initial, bool count_initial_change,
                   size_t layers, size_t m, std::vector<double>* dist_buf,
                   std::vector<double>* next_buf, ChunkParent* parent) {
  std::vector<double>& dist = *dist_buf;
  std::vector<double>& next = *next_buf;
  dist.assign(layers * m, kInf);
  next.assign(layers * m, kInf);
  int64_t nodes = 0;
  for (size_t c = 0; c < m; ++c) {
    size_t layer;
    double cost;
    if (entry < 0) {
      layer = (count_initial_change && is_initial[c] == 0) ? 1 : 0;
      cost = init_trans[c] + matrix.Exec(chunk.begin, c);
    } else {
      // Entering the chunk in a different design than the previous
      // chunk exited in is one of this chunk's changes: it lands on
      // layer 1 and pays the boundary TRANS here, so the stitch DP can
      // sum per-chunk layers without double counting.
      const auto e = static_cast<size_t>(entry);
      layer = (c == e) ? 0 : 1;
      cost = matrix.Trans(e, c) + matrix.Exec(chunk.begin, c);
    }
    if (layer >= layers) continue;
    if (cost < dist[layer * m + c]) {
      dist[layer * m + c] = cost;
      ++nodes;
    }
  }
  for (size_t stage = chunk.begin + 1; stage < chunk.end; ++stage) {
    ChunkParent* stage_parent =
        parent != nullptr ? parent + (stage - chunk.begin) * layers * m
                          : nullptr;
    const double* dist_data = dist.data();
    for (size_t c = 0; c < m; ++c) {
      const double* trans_into = matrix.TransInto(c);
      const double exec = matrix.Exec(stage, c);
      for (size_t l = 0; l < layers; ++l) {
        const size_t cell = l * m + c;
        double best = dist_data[cell];
        ChunkParent best_parent{static_cast<int32_t>(l),
                                static_cast<int32_t>(c)};
        if (l > 0) {
          const double* prev_layer = dist_data + (l - 1) * m;
          for (size_t p = 0; p < c; ++p) {
            const double cost = prev_layer[p] + trans_into[p];
            if (cost < best) {
              best = cost;
              best_parent = ChunkParent{static_cast<int32_t>(l - 1),
                                        static_cast<int32_t>(p)};
            }
          }
          for (size_t p = c + 1; p < m; ++p) {
            const double cost = prev_layer[p] + trans_into[p];
            if (cost < best) {
              best = cost;
              best_parent = ChunkParent{static_cast<int32_t>(l - 1),
                                        static_cast<int32_t>(p)};
            }
          }
        }
        if (best < kInf) {
          next[cell] = best + exec;
          if (stage_parent != nullptr) stage_parent[cell] = best_parent;
          ++nodes;
        } else {
          next[cell] = kInf;
        }
      }
    }
    std::swap(dist, next);
  }
  return nodes;
}

/// Closed-form relaxation count of one chunk DP run (mirrors
/// SolveKAware's counting: one stay relaxation per cell plus m - 1
/// change relaxations per above-layer-0 cell, per interior stage).
int64_t ChunkRelaxations(size_t chunk_len, size_t layers, size_t m) {
  if (chunk_len < 2) return 0;
  return static_cast<int64_t>(chunk_len - 1) *
         (static_cast<int64_t>(layers * m) +
          static_cast<int64_t>((layers - 1) * m) *
              static_cast<int64_t>(m - 1));
}

}  // namespace

Result<DesignSchedule> SolveKAwareSegmented(
    const DesignProblem& problem, int64_t k, size_t num_chunks,
    SolveStats* stats, ThreadPool* pool, Tracer* tracer, const Budget* budget,
    const ProgressFn* progress, Logger* logger, ResourceTracker* tracker,
    CostCache* cost_cache) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  if (k < 0) {
    return Status::InvalidArgument("change bound k must be >= 0");
  }
  const size_t n = problem.num_segments();
  if (num_chunks < 2 || n < 2 || num_chunks > n) {
    // Degenerate decomposition: the monolithic DP is the same
    // computation without the redundancy.
    return SolveKAware(problem, k, stats, pool, tracer, budget, progress,
                       logger, tracker, cost_cache);
  }
  const WhatIfEngine& what_if = *problem.what_if;
  const Stopwatch watch;
  const int64_t costings_before = what_if.costings();
  const CandidateSpace& configs = problem.candidates;
  const size_t m = configs.size();

  SolveStats local_stats;
  local_stats.threads_used = pool != nullptr ? pool->num_threads() : 1;

  const int64_t max_changes =
      static_cast<int64_t>(n) - 1 + (problem.count_initial_change ? 1 : 0);
  const int64_t kc = k >= max_changes ? max_changes : k;
  const size_t stitch_layers = static_cast<size_t>(kc) + 1;

  const std::vector<Segment> chunks =
      SplitStagesBalanced(what_if.segments(), num_chunks);
  const size_t num_c = chunks.size();
  local_stats.segment_chunks = static_cast<int64_t>(num_c);
  local_stats.stitch_window = static_cast<int64_t>(stitch_layers);

  // Per-chunk layer caps: a chunk of len stages can consume at most
  // len - 1 interior changes plus its entry change (the initial build
  // for chunk 0, the boundary switch for the rest).
  std::vector<size_t> chunk_layers(num_c);
  std::vector<size_t> chunk_entries(num_c);
  int64_t f_bytes = 0;
  int64_t parent_bytes = 0;
  for (size_t t = 0; t < num_c; ++t) {
    const int64_t len = static_cast<int64_t>(chunks[t].size());
    const int64_t entry_change =
        t == 0 ? (problem.count_initial_change ? 1 : 0) : 1;
    const int64_t cap = len - 1 + entry_change;
    const int64_t layers = (kc >= cap ? cap : kc) + 1;
    chunk_layers[t] = static_cast<size_t>(layers);
    chunk_entries[t] = t == 0 ? 1 : m;
    f_bytes = SaturatingAdd(
        f_bytes,
        SaturatingMul(
            SaturatingMul(static_cast<int64_t>(chunk_entries[t]), layers),
            SaturatingMul(static_cast<int64_t>(m),
                          static_cast<int64_t>(sizeof(double)))));
    parent_bytes = SaturatingAdd(
        parent_bytes,
        SaturatingMul(SaturatingMul(len, layers),
                      SaturatingMul(static_cast<int64_t>(m),
                                    static_cast<int64_t>(sizeof(ChunkParent)))));
  }
  // Stitch tables (two layers x m double arrays plus the per-chunk
  // stitch parents) are negligible but charged for honesty.
  const int64_t stitch_bytes = SaturatingAdd(
      SaturatingMul(static_cast<int64_t>(2 * stitch_layers * m),
                    static_cast<int64_t>(sizeof(double))),
      SaturatingMul(static_cast<int64_t>(num_c * stitch_layers * m),
                    static_cast<int64_t>(12)));
  const int64_t table_bytes =
      SaturatingAdd(SaturatingAdd(f_bytes, parent_bytes), stitch_bytes);

  DesignSchedule schedule;
  const auto finish = [&](DesignSchedule done) -> DesignSchedule {
    local_stats.wall_seconds = watch.ElapsedSeconds();
    local_stats.costings = what_if.costings() - costings_before;
    if (stats != nullptr) *stats = local_stats;
    return done;
  };
  const auto best_static_fallback =
      [&](const char* why) -> Result<DesignSchedule> {
    CDPD_LOG(logger, LogLevel::kWarn, "segment.fallback",
             LogField("reason", why), LogField("fallback", "best-static"));
    CDPD_ASSIGN_OR_RETURN(DesignSchedule fallback,
                          BestStaticSchedule(problem, k));
    local_stats.deadline_hit = true;
    local_stats.best_effort = true;
    return finish(std::move(fallback));
  };

  ScopedReservation matrix_reservation = ScopedReservation::Try(
      tracker, MemComponent::kCostMatrix, CostMatrix::EstimateBytes(n, m));
  ScopedReservation table_reservation;
  if (matrix_reservation.ok()) {
    table_reservation = ScopedReservation::Try(
        tracker, MemComponent::kKAwareTable, table_bytes);
  }
  if (!matrix_reservation.ok() || !table_reservation.ok()) {
    return best_static_fallback("memory_limit");
  }

  CDPD_LOG(logger, LogLevel::kInfo, "segment.start", LogField("stages", n),
           LogField("candidates", m), LogField("k", k),
           LogField("chunks", num_c),
           LogField("stitch_window", stitch_layers));

  // Phase 0 (parallel): the shared dense cost matrix and boundary
  // transition vectors — one precompute feeding every chunk task.
  CostMatrix matrix;
  std::vector<double> init_trans(m, 0.0);
  std::vector<double> final_trans(m, 0.0);
  std::vector<uint8_t> is_initial(m, 0);
  {
    CDPD_TRACE_SPAN(tracer, "segment.precompute", "solver");
    CDPD_ASSIGN_OR_RETURN(
        matrix, what_if.PrecomputeCostMatrix(configs, pool, tracer, budget,
                                             progress, logger, cost_cache,
                                             tracker));
    if (!matrix.complete()) {
      return Status::DeadlineExceeded(
          "budget expired during the what-if precompute, before any "
          "feasible schedule could be priced");
    }
    ParallelFor(pool, 0, m, [&](size_t c) {
      init_trans[c] = what_if.TransitionCost(problem.initial, configs[c]);
      is_initial[c] = configs[c] == problem.initial ? 1 : 0;
      if (problem.final_config.has_value()) {
        final_trans[c] =
            what_if.TransitionCost(configs[c], *problem.final_config);
      }
    });
  }

  // Phase A (parallel): every (chunk, entry) pair is one independent
  // DP task writing its own F slice. F[t] is indexed
  // [entry * layers_t * m + changes * m + exit].
  std::vector<std::vector<double>> F(num_c);
  for (size_t t = 0; t < num_c; ++t) {
    F[t].resize(chunk_entries[t] * chunk_layers[t] * m);
  }
  std::vector<std::pair<size_t, int64_t>> tasks;  // (chunk, entry)
  tasks.reserve(1 + (num_c - 1) * m);
  tasks.emplace_back(0, int64_t{-1});
  for (size_t t = 1; t < num_c; ++t) {
    for (size_t e = 0; e < m; ++e) {
      tasks.emplace_back(t, static_cast<int64_t>(e));
    }
  }
  std::atomic<int64_t> nodes_expanded{0};
  std::atomic<size_t> tasks_done{0};
  bool complete;
  {
    CDPD_TRACE_SPAN(tracer, "segment.chunk_dp", "solver",
                    static_cast<int64_t>(tasks.size()));
    complete = ParallelFor(
        pool, 0, tasks.size(),
        [&](size_t ti) {
          const auto [t, entry] = tasks[ti];
          const size_t layers = chunk_layers[t];
          std::vector<double> dist;
          std::vector<double> next;
          const int64_t nodes = RunChunkDp(
              matrix, chunks[t], entry, init_trans.data(), is_initial.data(),
              problem.count_initial_change, layers, m, &dist, &next,
              /*parent=*/nullptr);
          nodes_expanded.fetch_add(nodes, std::memory_order_relaxed);
          const size_t slot = entry < 0 ? 0 : static_cast<size_t>(entry);
          std::copy(dist.begin(), dist.end(),
                    F[t].begin() + slot * layers * m);
          const size_t done =
              tasks_done.fetch_add(1, std::memory_order_relaxed) + 1;
          ReportProgress(progress, "segment.chunks",
                         static_cast<double>(done) /
                             static_cast<double>(tasks.size()));
        },
        budget);
  }
  local_stats.nodes_expanded = nodes_expanded.load(std::memory_order_relaxed);
  int64_t relaxations = 0;
  for (size_t t = 0; t < num_c; ++t) {
    relaxations += static_cast<int64_t>(chunk_entries[t]) *
                   ChunkRelaxations(chunks[t].size(), chunk_layers[t], m);
  }
  local_stats.relaxations = relaxations;
  if (!complete || BudgetExpired(budget)) {
    return best_static_fallback("deadline");
  }

  // Phase B (serial, tiny): the boundary stitch DP over (total changes
  // used, exit config), scanning entries and per-chunk change splits
  // in fixed ascending order so the argmin is deterministic.
  struct StitchParent {
    int32_t entry = -1;        // Exit config of the previous chunks.
    int32_t chunk_layer = -1;  // Changes consumed inside this chunk.
  };
  std::vector<double> G(stitch_layers * m, kInf);
  std::vector<double> G_next(stitch_layers * m, kInf);
  std::vector<StitchParent> stitch_parent(num_c * stitch_layers * m);
  int64_t stitch_relaxations = 0;
  {
    CDPD_TRACE_SPAN(tracer, "segment.stitch", "solver",
                    static_cast<int64_t>(num_c));
    for (size_t l = 0; l < chunk_layers[0]; ++l) {
      for (size_t x = 0; x < m; ++x) {
        G[l * m + x] = F[0][l * m + x];
      }
    }
    for (size_t t = 1; t < num_c; ++t) {
      const size_t layers_t = chunk_layers[t];
      StitchParent* t_parent =
          stitch_parent.data() + t * stitch_layers * m;
      std::fill(G_next.begin(), G_next.end(), kInf);
      for (size_t total = 0; total < stitch_layers; ++total) {
        for (size_t x = 0; x < m; ++x) {
          double best = kInf;
          StitchParent best_parent;
          const size_t max_c2 = std::min(total, layers_t - 1);
          for (size_t e = 0; e < m; ++e) {
            const double* f_entry = F[t].data() + e * layers_t * m;
            for (size_t c2 = 0; c2 <= max_c2; ++c2) {
              const double cand =
                  G[(total - c2) * m + e] + f_entry[c2 * m + x];
              ++stitch_relaxations;
              if (cand < best) {
                best = cand;
                best_parent = StitchParent{static_cast<int32_t>(e),
                                           static_cast<int32_t>(c2)};
              }
            }
          }
          G_next[total * m + x] = best;
          t_parent[total * m + x] = best_parent;
        }
      }
      std::swap(G, G_next);
    }
  }
  local_stats.relaxations += stitch_relaxations;

  double best = kInf;
  size_t best_total = 0;
  size_t best_exit = 0;
  for (size_t l = 0; l < stitch_layers; ++l) {
    for (size_t x = 0; x < m; ++x) {
      if (G[l * m + x] == kInf) continue;
      double cost = G[l * m + x];
      if (problem.final_config.has_value()) cost += final_trans[x];
      if (cost < best) {
        best = cost;
        best_total = l;
        best_exit = x;
      }
    }
  }
  if (best == kInf) {
    return Status::Internal("segmented k-aware DP has no feasible path");
  }

  // Backtrack the chunk summary: entry, within-chunk changes, exit.
  std::vector<int64_t> chunk_entry(num_c, -1);
  std::vector<size_t> chunk_changes(num_c, 0);
  std::vector<size_t> chunk_exit(num_c, 0);
  {
    size_t total = best_total;
    size_t x = best_exit;
    for (size_t t = num_c; t-- > 1;) {
      const StitchParent p = stitch_parent[(t * stitch_layers + total) * m + x];
      chunk_entry[t] = p.entry;
      chunk_changes[t] = static_cast<size_t>(p.chunk_layer);
      chunk_exit[t] = x;
      x = static_cast<size_t>(p.entry);
      total -= static_cast<size_t>(p.chunk_layer);
    }
    chunk_entry[0] = -1;
    chunk_changes[0] = total;
    chunk_exit[0] = x;
  }

  // Phase C (parallel): re-solve each chunk for its chosen entry with
  // a parent table (chunk-local memory) and write the optimal path
  // into its disjoint slice of the schedule. The re-run repeats the
  // exact deterministic computation of phase A, so the chosen
  // (changes, exit) cell is reachable with the same cost.
  schedule.configs.resize(n);
  std::atomic<bool> rebuild_bad{false};
  bool rebuilt;
  {
    CDPD_TRACE_SPAN(tracer, "segment.rebuild", "solver",
                    static_cast<int64_t>(num_c));
    rebuilt = ParallelFor(
        pool, 0, num_c,
        [&](size_t t) {
          const Segment& chunk = chunks[t];
          const size_t layers = chunk_layers[t];
          std::vector<double> dist;
          std::vector<double> next;
          std::vector<ChunkParent> parent(chunk.size() * layers * m);
          RunChunkDp(matrix, chunk, chunk_entry[t], init_trans.data(),
                     is_initial.data(), problem.count_initial_change, layers,
                     m, &dist, &next, parent.data());
          size_t l = chunk_changes[t];
          size_t c = chunk_exit[t];
          if (dist[l * m + c] == kInf) {
            rebuild_bad.store(true, std::memory_order_relaxed);
            return;
          }
          for (size_t stage = chunk.end; stage-- > chunk.begin;) {
            schedule.configs[stage] = configs[c];
            if (stage == chunk.begin) break;
            const ChunkParent p =
                parent[((stage - chunk.begin) * layers + l) * m + c];
            l = static_cast<size_t>(p.layer);
            c = static_cast<size_t>(p.config);
          }
        },
        budget);
    for (size_t t = 0; t < num_c; ++t) {
      relaxations = ChunkRelaxations(chunks[t].size(), chunk_layers[t], m);
      local_stats.relaxations += relaxations;
    }
  }
  if (!rebuilt) {
    return best_static_fallback("deadline");
  }
  if (rebuild_bad.load(std::memory_order_relaxed)) {
    return Status::Internal(
        "segmented k-aware rebuild could not reach the stitched cell");
  }

  schedule.total_cost = EvaluateScheduleCost(problem, schedule.configs);
  ReportProgress(progress, "segment.chunks", 1.0, schedule.total_cost);
  CDPD_LOG(logger, LogLevel::kInfo, "segment.end",
           LogField("cost", schedule.total_cost),
           LogField("chunks", num_c),
           LogField("nodes_expanded", local_stats.nodes_expanded),
           LogField("relaxations", local_stats.relaxations));
  return finish(std::move(schedule));
}

}  // namespace cdpd
