#include "core/brute_force.h"

#include <cmath>
#include <limits>

namespace cdpd {

Result<DesignSchedule> SolveBruteForce(const DesignProblem& problem, int64_t k,
                                       int64_t max_sequences) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  const size_t n = problem.num_segments();
  const size_t m = problem.candidates.size();

  const double sequences = std::pow(static_cast<double>(m),
                                    static_cast<double>(n));
  if (sequences > static_cast<double>(max_sequences)) {
    return Status::ResourceExhausted(
        "brute force would enumerate " + std::to_string(sequences) +
        " sequences (limit " + std::to_string(max_sequences) + ")");
  }

  DesignSchedule best;
  best.total_cost = std::numeric_limits<double>::infinity();
  if (n == 0) {
    best.total_cost = EvaluateScheduleCost(problem, {});
    return best;
  }

  std::vector<size_t> choice(n, 0);
  std::vector<Configuration> configs(n);
  for (;;) {
    for (size_t i = 0; i < n; ++i) configs[i] = problem.candidates[choice[i]];
    if (k < 0 || CountChanges(problem, configs) <= k) {
      const double cost = EvaluateScheduleCost(problem, configs);
      if (cost < best.total_cost) {
        best.total_cost = cost;
        best.configs = configs;
      }
    }
    // Odometer increment.
    size_t pos = 0;
    while (pos < n && ++choice[pos] == m) {
      choice[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  if (best.configs.empty() && n > 0) {
    return Status::FailedPrecondition(
        "no design sequence satisfies the change bound");
  }
  return best;
}

}  // namespace cdpd
