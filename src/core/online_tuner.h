#ifndef CDPD_CORE_ONLINE_TUNER_H_
#define CDPD_CORE_ONLINE_TUNER_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "catalog/configuration.h"
#include "cost/cost_model.h"
#include "workload/statement.h"

namespace cdpd {

/// Options of the reactive baseline tuner.
struct OnlineTunerOptions {
  /// Sliding window of observed statements the tuner reasons over.
  size_t window = 1000;
  /// Re-evaluate the design every `epoch` statements.
  size_t epoch = 250;
  /// Switch only if the projected window-cost saving exceeds the
  /// transition cost times this factor (hysteresis against thrashing).
  double switch_threshold = 1.5;
  /// Space bound b (pages).
  int64_t space_bound_pages = std::numeric_limits<int64_t>::max();
  /// Indexes per configuration.
  int32_t max_indexes_per_config = 1;
};

/// Cumulative outcome of an online run.
struct OnlineTunerStats {
  double execution_cost = 0.0;   // Σ EXEC under the active designs.
  double transition_cost = 0.0;  // Σ TRANS of reactive changes.
  int64_t changes = 0;
  double total_cost() const { return execution_cost + transition_cost; }
};

/// A reactive, on-line physical design tuner in the style the paper
/// contrasts itself against (Bruno & Chaudhuri's online tuning / QUIET
/// / COLT, §1 and §7): it sees statements one at a time, maintains a
/// sliding window of the recent past, and greedily adopts the
/// configuration that would have served the window best — if the
/// projected saving beats the transition cost with hysteresis. Unlike
/// the paper's off-line advisor it cannot exploit a priori workload
/// knowledge, which is exactly the comparison bench_online_vs_offline
/// quantifies.
class OnlineTuner {
 public:
  /// `model` must outlive the tuner; `candidate_configs` is the design
  /// space (same configurations the off-line advisor searches).
  OnlineTuner(const CostModel* model,
              std::vector<Configuration> candidate_configs,
              const OnlineTunerOptions& options);

  /// Observes and "executes" one statement: charges its cost under the
  /// active configuration, then possibly reacts at epoch boundaries.
  void Process(const BoundStatement& statement);

  /// Runs a whole sequence through Process().
  void ProcessAll(const std::vector<BoundStatement>& statements);

  const Configuration& active_configuration() const { return active_; }
  const OnlineTunerStats& stats() const { return stats_; }
  /// Design changes with statement positions, for inspection.
  const std::vector<std::pair<size_t, Configuration>>& change_log() const {
    return change_log_;
  }

 private:
  void MaybeReact();
  double WindowCost(const Configuration& config) const;

  const CostModel* model_;
  std::vector<Configuration> candidates_;
  OnlineTunerOptions options_;
  Configuration active_;
  std::deque<BoundStatement> window_;
  size_t processed_ = 0;
  OnlineTunerStats stats_;
  std::vector<std::pair<size_t, Configuration>> change_log_;
};

}  // namespace cdpd

#endif  // CDPD_CORE_ONLINE_TUNER_H_
