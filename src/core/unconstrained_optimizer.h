#ifndef CDPD_CORE_UNCONSTRAINED_OPTIMIZER_H_
#define CDPD_CORE_UNCONSTRAINED_OPTIMIZER_H_

#include "common/budget.h"
#include "common/log.h"
#include "common/progress.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "core/design_problem.h"
#include "core/solve_stats.h"
#include "cost/cost_cache.h"

namespace cdpd {

/// Optimal *unconstrained* dynamic physical design (Agrawal, Chu &
/// Narasayya's formulation, §3 of the paper): the weighted shortest
/// path through the sequence graph, computed as a stage-by-stage
/// dynamic program over the candidate configurations —
///
///   dist_1(c) = TRANS(C0, c) + EXEC(S_1, c)
///   dist_i(c) = min_{c'} [ dist_{i-1}(c') + TRANS(c', c) ] + EXEC(S_i, c)
///
/// which is exactly the O(|V| + |E|) DAG shortest path on the graph of
/// Figure 1, in O(n * |candidates|^2) time (= O(n * 2^{2m}) when the
/// candidate space is all subsets of m indexes).
///
/// Precomputes the dense EXEC/TRANS matrices and relaxes each stage's
/// configurations in parallel across `pool` when one is given; the
/// result is identical for any thread count. With a `tracer` the solve
/// records "unconstrained.precompute", "unconstrained.dp", and a
/// "unconstrained.stage" span per DP stage.
///
/// `budget` (optional) bounds the solve: expiry is polled between
/// precompute blocks and DP stages. Anytime semantics — on expiry
/// mid-DP the best completed prefix is frozen (its cheapest
/// end-of-prefix configuration is held for the remaining stages) and
/// returned with stats->deadline_hit set; DeadlineExceeded only when
/// the budget expires before the precompute finishes, i.e. before any
/// feasible schedule can be priced. A budget that never expires
/// changes nothing: the schedule is byte-identical to an un-budgeted
/// run.
///
/// `progress` receives "whatif.precompute" / "unconstrained.dp"
/// updates at the existing poll sites (thread-safe callback required;
/// see common/progress.h); `logger` records phase start/end and
/// anytime-fallback events. Both optional, both observational only.
///
/// `tracker` (optional) accounts the dense cost matrix (kCostMatrix)
/// and the sequence-graph DP arrays (kSequenceGraph); when its soft
/// limit refuses either reservation the solve returns
/// BestStaticSchedule flagged best_effort/deadline_hit instead of
/// allocating past budget.
///
/// `cost_cache` (optional) is the persistent cross-solve what-if cache
/// threaded into the precompute (see WhatIfEngine::PrecomputeCostMatrix
/// and cost/cost_cache.h); it changes probe counts, never costs.
Result<DesignSchedule> SolveUnconstrained(const DesignProblem& problem,
                                          SolveStats* stats = nullptr,
                                          ThreadPool* pool = nullptr,
                                          Tracer* tracer = nullptr,
                                          const Budget* budget = nullptr,
                                          const ProgressFn* progress = nullptr,
                                          Logger* logger = nullptr,
                                          ResourceTracker* tracker = nullptr,
                                          CostCache* cost_cache = nullptr);

}  // namespace cdpd

#endif  // CDPD_CORE_UNCONSTRAINED_OPTIMIZER_H_
