#ifndef CDPD_CORE_EXPLAIN_H_
#define CDPD_CORE_EXPLAIN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/configuration.h"
#include "core/design_problem.h"
#include "core/solve_stats.h"
#include "storage/schema.h"

namespace cdpd {

/// One design transition of a schedule, attributed: what physical work
/// it pays for, what execution savings it buys, and when (if ever) it
/// pays for itself.
struct ExplainTransition {
  /// Index of the first segment executed under `to`. For the final
  /// destination-constraint transition this is num_segments (no
  /// segment runs under it).
  size_t segment = 0;
  /// 0-based index of the first workload statement executed under
  /// `to` (segments[segment].begin); total statement count for the
  /// final transition.
  size_t first_statement = 0;
  /// One past the last segment of the run this transition opens (the
  /// stretch of consecutive segments holding `to`), and the matching
  /// 0-based statement bound (segments[run_end - 1].end).
  size_t run_end = 0;
  size_t run_end_statement = 0;
  Configuration from;
  Configuration to;
  /// The physical work TRANS(from, to) prices.
  std::vector<IndexDef> built;
  std::vector<IndexDef> dropped;
  /// TRANS(from, to).
  double trans_cost = 0.0;
  /// Execution savings the new design earns over its run:
  /// Σ_{j in [segment, run_end)} EXEC(S_j, from) − EXEC(S_j, to),
  /// i.e. versus having stayed in the previous design. Negative when
  /// the change positions for a later payoff (or a final constraint).
  double exec_savings = 0.0;
  /// Number of workload statements executed (from the start of the
  /// workload) by the time cumulative savings first reach trans_cost;
  /// unset when the run ends before the transition is recouped.
  std::optional<size_t> break_even_statement;
  /// Whether this transition counts against the change bound k (the
  /// initial build and the final constrained transition usually don't;
  /// see DesignProblem::count_initial_change).
  bool counts_against_k = false;
  /// "initial" (C0 -> C1), "interior", or "final" (C_n -> final).
  std::string_view kind = "interior";
};

/// Per-statement EXEC/TRANS attribution of one solved schedule — the
/// explainable-solve artifact Solve() builds when
/// SolveOptions::explain is set, and `advisor_cli --explain` renders.
/// Totals are recomputed from the what-if oracle in exactly
/// EvaluateScheduleCost's summation order, so `total_cost` matches the
/// solver-reported schedule cost bit-for-bit for every method whose
/// reported cost comes from that order (all of them; `exact` records
/// whether the match held).
struct ExplainReport {
  /// JSON schema version emitted by ToJson (bump on breaking change).
  static constexpr int kSchemaVersion = 1;

  std::string method;
  std::string method_detail;
  std::optional<int64_t> k;
  int64_t changes_used = 0;
  size_t num_segments = 0;
  size_t num_statements = 0;

  /// Σ EXEC(S_i, C_i) over all segments.
  double exec_total = 0.0;
  /// Σ TRANS over all transitions (including zero-cost no-ops and the
  /// final constrained transition).
  double trans_total = 0.0;
  /// The interleaved EvaluateScheduleCost-order sum; the number the
  /// attribution explains.
  double total_cost = 0.0;
  /// DesignSchedule::total_cost as the solver reported it.
  double solver_reported_cost = 0.0;
  /// total_cost == solver_reported_cost, bit-for-bit.
  bool exact = false;

  /// The unconstrained optimum, when the method computed one on the
  /// way (kOptimal/merging/hybrid and every unconstrained dispatch).
  std::optional<double> unconstrained_cost;
  /// total_cost − unconstrained_cost: the price of the change budget.
  /// Present iff unconstrained_cost is.
  std::optional<double> optimality_gap;

  /// Provenance: whether the schedule is an anytime fallback.
  bool deadline_hit = false;
  bool best_effort = false;
  SolveStats stats;

  /// Space-bound validation (§3's O(k·n·2^{2m}) claim, measured):
  /// the k-aware DP table footprint PredictKAwareTableBytes computes
  /// from the problem dimensions, versus the bytes the solve actually
  /// reserved against MemComponent::kKAwareTable. `predicted` is 0 for
  /// unconstrained solves (no layered table exists); `actual` is 0
  /// when the method never built the table (ranking, merging) or
  /// tracking found nothing to charge. The renderers print the
  /// actual/predicted ratio when both are present — the number the
  /// space-validation experiment in EXPERIMENTS.md asserts stays
  /// within 2x.
  int64_t predicted_kaware_bytes = 0;
  int64_t actual_kaware_bytes = 0;

  std::vector<ExplainTransition> transitions;

  /// Human-readable report: summary block plus one aligned row per
  /// transition (statement, builds/drops, TRANS paid, EXEC saved,
  /// break-even).
  std::string ToText(const Schema& schema) const;
  /// {"schema_version": 1, "kind": "cdpd.explain", "summary": {...},
  ///  "stats": {...}, "transitions": [...]}.
  std::string ToJson(const Schema& schema) const;
};

/// Builds the attribution for `schedule` against `problem`'s oracle.
/// Pure read-side analysis: costs every (segment, config) pair of the
/// schedule through the memoized what-if cache (cheap after a solve),
/// never mutates the schedule, and is deterministic. `method`,
/// `method_detail`, `k`, `stats`, and `unconstrained_cost` are carried
/// through from the solve that produced the schedule.
ExplainReport BuildExplainReport(const DesignProblem& problem,
                                 const DesignSchedule& schedule,
                                 std::string_view method,
                                 std::string_view method_detail,
                                 std::optional<int64_t> k,
                                 const SolveStats& stats,
                                 std::optional<double> unconstrained_cost);

}  // namespace cdpd

#endif  // CDPD_CORE_EXPLAIN_H_
