#include "core/online_tuner.h"

#include <limits>

namespace cdpd {

OnlineTuner::OnlineTuner(const CostModel* model,
                         std::vector<Configuration> candidate_configs,
                         const OnlineTunerOptions& options)
    : model_(model),
      candidates_(std::move(candidate_configs)),
      options_(options) {}

double OnlineTuner::WindowCost(const Configuration& config) const {
  double cost = 0.0;
  for (const BoundStatement& statement : window_) {
    cost += model_->StatementCost(statement, config);
  }
  return cost;
}

void OnlineTuner::MaybeReact() {
  // Cheapest candidate for the observed window (subject to bounds).
  const Configuration* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Configuration& candidate : candidates_) {
    if (candidate.num_indexes() > options_.max_indexes_per_config) continue;
    if (model_->ConfigurationSizePages(candidate) >
        options_.space_bound_pages) {
      continue;
    }
    const double cost = WindowCost(candidate);
    if (cost < best_cost) {
      best_cost = cost;
      best = &candidate;
    }
  }
  if (best == nullptr || *best == active_) return;

  // Hysteresis: the saving over one window must beat the transition
  // cost with margin, otherwise a fluctuation would cause thrashing.
  const double current_cost = WindowCost(active_);
  const double transition = model_->TransitionCost(active_, *best);
  if (current_cost - best_cost <= options_.switch_threshold * transition) {
    return;
  }
  stats_.transition_cost += transition;
  ++stats_.changes;
  active_ = *best;
  change_log_.push_back({processed_, active_});
}

void OnlineTuner::Process(const BoundStatement& statement) {
  stats_.execution_cost += model_->StatementCost(statement, active_);
  window_.push_back(statement);
  if (window_.size() > options_.window) window_.pop_front();
  ++processed_;
  if (options_.epoch > 0 && processed_ % options_.epoch == 0) {
    MaybeReact();
  }
}

void OnlineTuner::ProcessAll(const std::vector<BoundStatement>& statements) {
  for (const BoundStatement& statement : statements) {
    Process(statement);
  }
}

}  // namespace cdpd
