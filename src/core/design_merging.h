#ifndef CDPD_CORE_DESIGN_MERGING_H_
#define CDPD_CORE_DESIGN_MERGING_H_

#include <cstdint>

#include "common/budget.h"
#include "common/log.h"
#include "common/progress.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "core/design_problem.h"
#include "core/solve_stats.h"

namespace cdpd {

/// Sequential design merging (§4.2): refines a solution of the
/// unconstrained problem until it satisfies the change bound k. Each
/// step picks the pair of consecutive distinct configurations
/// (C_i, C_{i+1}) and the replacement C' minimizing the penalty
///
///   p =   TRANS(C_{i-1}, C') + EXEC(S_i ∪ S_{i+1}, C') + TRANS(C', C_{i+2})
///       - (TRANS(C_{i-1}, C_i) + EXEC(S_i, C_i) + TRANS(C_i, C_{i+1})
///          + EXEC(S_{i+1}, C_{i+1}) + TRANS(C_{i+1}, C_{i+2}))
///
/// and replaces the pair with C'. If C' equals a neighbouring
/// configuration the step removes two changes, otherwise one. The
/// result is heuristic: it satisfies the constraint but is not
/// guaranteed optimal, even when the input schedule is the
/// unconstrained optimum.
///
/// Each step's (pair, replacement) penalty sweep is evaluated in
/// parallel across `pool` when one is given; the winning replacement
/// is selected by a serial scan in the serial iteration order, so the
/// result is identical for any thread count.
///
/// `initial_schedule.configs` must have one entry per problem segment.
/// With a `tracer` each merging step records a "merging.step" span
/// (arg = remaining change count before the step).
///
/// `budget` (optional) bounds the refinement; expiry is polled between
/// merging rounds (a started round always completes). A mid-refinement
/// schedule still violates k — the partial refinement is NOT a
/// feasible answer — so on expiry the solve degrades to the cheapest
/// feasible static schedule with stats->deadline_hit and
/// stats->best_effort set, and returns DeadlineExceeded only when not
/// even a static design satisfies the bound. A budget that never
/// expires changes nothing: the schedule is byte-identical to an
/// un-budgeted run.
///
/// `progress` receives "merging" updates between rounds, the fraction
/// being the share of excess changes merged away so far (thread-safe
/// callback required; see common/progress.h); `logger` records
/// start/end, per-round, and fallback events. Both optional, both
/// observational only.
///
/// `tracker` (optional) accounts each round's penalty tables
/// (kMergingTable), released when the round ends. A round whose tables
/// the tracker's soft limit refuses degrades immediately to the static
/// fallback (the partial refinement still violates k, so it is not a
/// feasible answer to return).
Result<DesignSchedule> MergeToConstraint(const DesignProblem& problem,
                                         const DesignSchedule& initial_schedule,
                                         int64_t k,
                                         SolveStats* stats = nullptr,
                                         ThreadPool* pool = nullptr,
                                         Tracer* tracer = nullptr,
                                         const Budget* budget = nullptr,
                                         const ProgressFn* progress = nullptr,
                                         Logger* logger = nullptr,
                                         ResourceTracker* tracker = nullptr);

}  // namespace cdpd

#endif  // CDPD_CORE_DESIGN_MERGING_H_
