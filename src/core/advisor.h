#ifndef CDPD_CORE_ADVISOR_H_
#define CDPD_CORE_ADVISOR_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "advisor/candidate_generation.h"
#include "advisor/config_enumeration.h"
#include "common/result.h"
#include "core/design_problem.h"
#include "core/solver.h"
#include "cost/cost_model.h"
#include "workload/adaptive_segmenter.h"
#include "workload/workload.h"

namespace cdpd {

/// How the workload is cut into stages S_1..S_n.
enum class SegmentationMode {
  kFixedBlocks,  // Fixed-size blocks of `block_size` statements.
  kAdaptive,     // Distribution-driven variable-length stages
                 // (workload/adaptive_segmenter.h).
};

/// Everything that parameterizes one recommendation run.
struct AdvisorOptions {
  /// Statements per stage (block size); 1 recovers the paper's
  /// per-statement formulation, 500 matches Table 2's reporting.
  size_t block_size = 500;
  SegmentationMode segmentation = SegmentationMode::kFixedBlocks;
  /// Adaptive-mode parameters; base_block_size = 0 inherits
  /// block_size.
  AdaptiveSegmentOptions adaptive = {.base_block_size = 0};
  /// Change bound k; nullopt = unconstrained (the old -1 sentinel is
  /// gone — Validate() rejects negative values).
  std::optional<int64_t> k;
  OptimizerMethod method = OptimizerMethod::kOptimal;
  /// Worker threads for the what-if precompute and the solver sweeps;
  /// 0 = CDPD_THREADS / hardware default, 1 = serial. The
  /// recommendation is identical for any value.
  int num_threads = 0;
  /// Space bound b in pages.
  int64_t space_bound_pages = std::numeric_limits<int64_t>::max();
  /// Indexes per configuration (1 = the paper's experimental space).
  int32_t max_indexes_per_config = 1;
  /// See DesignProblem::count_initial_change.
  bool count_initial_change = false;
  Configuration initial_config;
  std::optional<Configuration> final_config;
  /// Candidate indexes; empty = generate syntactically from the
  /// workload (advisor/candidate_generation.h).
  std::vector<IndexDef> candidate_indexes;
  CandidateGenOptions candidate_gen;
  /// Enumeration cap for the ranking method.
  int64_t ranking_max_paths = 1'000'000;
  /// Observability sinks in one bundle, forwarded to
  /// SolveOptions::observability (see common/observability.h). All
  /// optional, all borrowed; `metrics` additionally receives the
  /// what-if engine's "whatif.*" counters and histogram, and the
  /// advisor adds its own "advisor.*" log events (segmentation and
  /// candidate-space sizes) around the solve. The progress callback
  /// must be thread-safe (see common/progress.h). None perturb the
  /// recommendation.
  Observability observability;
  /// Dominance pruning and segment-parallel solving, forwarded to
  /// SolveOptions::prune_dominated / SolveOptions::segmented.
  bool prune_dominated = false;
  SegmentSolveOptions segmented;
  /// Persistent what-if cost cache, forwarded to
  /// SolveOptions::cost_cache (optional, borrowed; see
  /// cost/cost_cache.h). SolverSession is the usual owner.
  CostCache* cost_cache = nullptr;
  /// Build the per-transition EXEC/TRANS attribution into
  /// Recommendation::explain (see core/explain.h).
  bool explain = false;
  /// Wall-clock budget and cooperative cancellation for the solve,
  /// forwarded to SolveOptions::deadline / SolveOptions::cancel (the
  /// segmentation and candidate-generation phases are not covered —
  /// they are cheap relative to the solve). On expiry the
  /// recommendation carries the solver's best feasible schedule so
  /// far, flagged in stats.deadline_hit.
  std::optional<std::chrono::milliseconds> deadline;
  const CancelToken* cancel = nullptr;
  /// Soft byte budget for the solve's tracked allocations, forwarded
  /// to SolveOptions::memory_limit_bytes. An over-budget solve
  /// degrades to the best schedule it can build within budget, flagged
  /// in stats.memory_limit_hit; nullopt = no limit (the allocations
  /// are still tracked into stats.peak_bytes_total).
  std::optional<int64_t> memory_limit_bytes;

  /// All option validation in one place (block size, change bound,
  /// space bound, thread count, enumeration cap, deadline); Recommend
  /// calls it first, replacing the old scattered ad-hoc checks.
  Status Validate() const;
};

/// A recommendation: the design schedule plus everything needed to
/// interpret and reproduce it.
struct Recommendation {
  DesignSchedule schedule;
  std::vector<Segment> segments;
  std::vector<IndexDef> candidate_indexes;
  std::vector<Configuration> candidate_configs;
  int64_t changes = 0;
  /// Unified solver counters (wall time, what-if costings, cache hits,
  /// threads used, nodes expanded).
  SolveStats stats;
  /// Convenience alias of stats.wall_seconds (pre-SolveStats callers).
  double optimize_seconds = 0.0;
  /// Technique detail (e.g. which branch the hybrid picked).
  std::string method_detail;
  /// Per-transition attribution of the schedule (set iff
  /// AdvisorOptions::explain). Render with ExplainReport::ToText /
  /// ToJson against the model's schema.
  std::optional<ExplainReport> explain;
};

/// One-call entry point to the constrained dynamic physical design
/// advisor: segments the workload, builds the what-if oracle and the
/// candidate configuration space, runs the selected optimizer through
/// the unified Solve() API, and validates the resulting schedule.
class Advisor {
 public:
  /// `model` must outlive the advisor.
  explicit Advisor(const CostModel* model) : model_(model) {}

  Result<Recommendation> Recommend(const Workload& workload,
                                   const AdvisorOptions& options) const;

 private:
  const CostModel* model_;
};

}  // namespace cdpd

#endif  // CDPD_CORE_ADVISOR_H_
