#ifndef CDPD_CORE_ADVISOR_H_
#define CDPD_CORE_ADVISOR_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "advisor/candidate_generation.h"
#include "advisor/config_enumeration.h"
#include "common/result.h"
#include "core/design_problem.h"
#include "cost/cost_model.h"
#include "workload/adaptive_segmenter.h"
#include "workload/workload.h"

namespace cdpd {

/// The solution technique to run (§3–§5 of the paper plus the hybrid
/// §6.4 suggests).
enum class OptimizerMethod {
  kOptimal,    // Sequence graph (k < 0) / k-aware sequence graph.
  kGreedySeq,  // GREEDY-SEQ candidate reduction, then k-aware graph.
  kMerging,    // Unconstrained optimum refined by sequential merging.
  kRanking,    // Shortest-path ranking until <= k changes.
  kHybrid,     // k-aware graph for small k, merging for large k.
};

std::string_view OptimizerMethodToString(OptimizerMethod method);

/// How the workload is cut into stages S_1..S_n.
enum class SegmentationMode {
  kFixedBlocks,  // Fixed-size blocks of `block_size` statements.
  kAdaptive,     // Distribution-driven variable-length stages
                 // (workload/adaptive_segmenter.h).
};

/// Everything that parameterizes one recommendation run.
struct AdvisorOptions {
  /// Statements per stage (block size); 1 recovers the paper's
  /// per-statement formulation, 500 matches Table 2's reporting.
  size_t block_size = 500;
  SegmentationMode segmentation = SegmentationMode::kFixedBlocks;
  /// Adaptive-mode parameters; base_block_size = 0 inherits
  /// block_size.
  AdaptiveSegmentOptions adaptive = {.base_block_size = 0};
  /// Change bound k; negative means unconstrained.
  int64_t k = -1;
  OptimizerMethod method = OptimizerMethod::kOptimal;
  /// Space bound b in pages.
  int64_t space_bound_pages = std::numeric_limits<int64_t>::max();
  /// Indexes per configuration (1 = the paper's experimental space).
  int32_t max_indexes_per_config = 1;
  /// See DesignProblem::count_initial_change.
  bool count_initial_change = false;
  Configuration initial_config;
  std::optional<Configuration> final_config;
  /// Candidate indexes; empty = generate syntactically from the
  /// workload (advisor/candidate_generation.h).
  std::vector<IndexDef> candidate_indexes;
  CandidateGenOptions candidate_gen;
  /// Enumeration cap for the ranking method.
  int64_t ranking_max_paths = 1'000'000;
};

/// A recommendation: the design schedule plus everything needed to
/// interpret and reproduce it.
struct Recommendation {
  DesignSchedule schedule;
  std::vector<Segment> segments;
  std::vector<IndexDef> candidate_indexes;
  std::vector<Configuration> candidate_configs;
  int64_t changes = 0;
  double optimize_seconds = 0.0;
  /// Technique detail (e.g. which branch the hybrid picked).
  std::string method_detail;
};

/// One-call entry point to the constrained dynamic physical design
/// advisor: segments the workload, builds the what-if oracle and the
/// candidate configuration space, runs the selected optimizer, and
/// validates the resulting schedule.
class Advisor {
 public:
  /// `model` must outlive the advisor.
  explicit Advisor(const CostModel* model) : model_(model) {}

  Result<Recommendation> Recommend(const Workload& workload,
                                   const AdvisorOptions& options) const;

 private:
  const CostModel* model_;
};

}  // namespace cdpd

#endif  // CDPD_CORE_ADVISOR_H_
