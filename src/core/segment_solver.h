#ifndef CDPD_CORE_SEGMENT_SOLVER_H_
#define CDPD_CORE_SEGMENT_SOLVER_H_

#include <cstdint>

#include "common/budget.h"
#include "common/log.h"
#include "common/progress.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "core/design_problem.h"
#include "core/solve_stats.h"
#include "cost/cost_cache.h"

namespace cdpd {

/// Knobs of the segment-parallel k-aware solver (SolveOptions embeds
/// one; only read for OptimizerMethod::kOptimal with a finite k).
struct SegmentSolveOptions {
  /// How many consecutive chunks to split the stage sequence into.
  /// 0 = automatic (enough chunks that each holds ~min_chunk_stages
  /// stages, capped at kMaxAutoChunks; short sequences resolve to 1);
  /// 1 = always monolithic (the segmented path is off);
  /// >= 2 = forced (clamped to the stage count). The schedule and cost
  /// are exact for every value — chunking trades redundant per-entry
  /// chunk work for coarse-grained parallelism — and the chunk count
  /// never depends on the thread count, so results stay identical for
  /// any number of workers.
  int num_chunks = 0;
  /// Automatic mode's stages-per-chunk granularity. Below ~64 the
  /// m-entry redundancy of the chunk DP outweighs the parallelism.
  size_t min_chunk_stages = 128;

  /// Cap on automatically chosen chunks (keeps the boundary stitch DP
  /// and the m-per-chunk entry redundancy negligible).
  static constexpr size_t kMaxAutoChunks = 32;

  Status Validate() const;
};

/// The chunk count SolveKAwareSegmented will use for `num_stages` DP
/// stages under `options` (after clamping); <= 1 means the monolithic
/// SolveKAware runs instead. Deterministic and thread-count-free.
size_t ResolveNumChunks(const SegmentSolveOptions& options,
                        size_t num_stages);

/// Exact segment-parallel variant of SolveKAware for long stage
/// sequences: the n stages are split into `num_chunks` consecutive
/// chunks (balanced by statement weight via SplitStagesBalanced, so
/// boundaries respect adaptive segmentation), each chunk is solved as
/// an independent layered DP *per entry configuration* in parallel on
/// `pool`, and a small boundary DP stitches the per-chunk tables back
/// together, apportioning the change budget k across chunks.
///
/// Why this is exact: any schedule decomposes at the chunk boundaries
/// into (entry config e_t, changes-used c_t, exit config x_t) per
/// chunk, where e_t = x_{t-1} and the boundary transition is charged
/// to chunk t (its first stage enters at layer 1 unless it keeps e_t).
/// Phase A computes, for every chunk and every entry, the exact
/// minimum chunk cost per (changes, exit) cell — the same ascending
/// argmin sweeps as SolveKAware, serial within a chunk task. Phase B's
/// stitch DP minimizes over all (e_t, c_t) splits with Σ c_t <= k.
/// Phase C re-solves each chunk for its chosen entry with a parent
/// table and extracts the optimal path. Every phase scans in fixed
/// ascending order, so the schedule is identical for any thread count;
/// the cost equals the monolithic DP optimum (the reported total is
/// re-evaluated through EvaluateScheduleCost, like every solver).
///
/// Compared to the monolithic DP this performs up to m x the relax
/// work (one chunk DP per entry config) but parallelizes at chunk
/// granularity — the monolithic DP's per-stage sweep over only m
/// destination configs leaves every pool idle when m is small and n is
/// huge, which is exactly the n = 10^6, m ~ 10 scaling regime.
///
/// Anytime/memory semantics mirror SolveKAware coarsely: a budget
/// expiry or a refused table reservation degrades to
/// BestStaticSchedule flagged deadline_hit/best_effort (the chunk
/// tables do not admit the monolithic prefix freeze). Stats adds
/// segment_chunks and stitch_window. num_chunks must be >= 2 and
/// <= the stage count (callers resolve via ResolveNumChunks and
/// dispatch to SolveKAware otherwise).
Result<DesignSchedule> SolveKAwareSegmented(
    const DesignProblem& problem, int64_t k, size_t num_chunks,
    SolveStats* stats = nullptr, ThreadPool* pool = nullptr,
    Tracer* tracer = nullptr, const Budget* budget = nullptr,
    const ProgressFn* progress = nullptr, Logger* logger = nullptr,
    ResourceTracker* tracker = nullptr, CostCache* cost_cache = nullptr);

}  // namespace cdpd

#endif  // CDPD_CORE_SEGMENT_SOLVER_H_
