#include "core/k_selection.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/rng.h"
#include "common/string_util.h"
#include "cost/what_if.h"

namespace cdpd {

std::string KSelectionReport::ToString() const {
  std::string out = "k-selection (holdout validation):\n";
  out += "      k  changes        fit-cost       eval-cost\n";
  for (const KCandidateOutcome& outcome : outcomes) {
    const std::string k_label =
        outcome.k.has_value() ? std::to_string(*outcome.k) : "inf";
    char line[128];
    std::snprintf(line, sizeof(line), "  %5s %8lld %15.4e %15.4e%s\n",
                  k_label.c_str(), static_cast<long long>(outcome.changes),
                  outcome.fit_cost, outcome.eval_cost,
                  outcome.k == chosen_k ? "  <-- chosen" : "");
    out += line;
  }
  return out;
}

std::vector<Workload> MakeJitteredVariants(const Workload& trace,
                                           size_t block_size,
                                           size_t window_blocks, int count,
                                           uint64_t seed) {
  std::vector<Workload> variants;
  if (block_size == 0 || trace.size() == 0) return variants;
  const std::vector<Segment> blocks = SegmentFixed(trace.size(), block_size);
  Rng rng(seed);
  for (int v = 0; v < count; ++v) {
    // Shuffle block order within consecutive windows.
    std::vector<size_t> order(blocks.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t window = 0; window < order.size();
         window += window_blocks) {
      const size_t end = std::min(order.size(), window + window_blocks);
      // Fisher-Yates within [window, end).
      for (size_t i = end - 1; i > window; --i) {
        const size_t j =
            window + static_cast<size_t>(rng.NextBounded(i - window + 1));
        std::swap(order[i], order[j]);
      }
    }
    Workload variant;
    variant.block_size = block_size;
    variant.statements.reserve(trace.size());
    for (size_t block_index : order) {
      const Segment& block = blocks[block_index];
      for (size_t i = block.begin; i < block.end; ++i) {
        variant.statements.push_back(trace.statements[i]);
      }
      if (block_index < trace.block_mix_names.size()) {
        variant.block_mix_names.push_back(
            trace.block_mix_names[block_index]);
      }
    }
    variants.push_back(std::move(variant));
  }
  return variants;
}

namespace {

/// Replays `configs` positionally against `workload` and returns the
/// sequence execution cost.
double ReplayCost(const CostModel& model, const Workload& workload,
                  const std::vector<Configuration>& configs,
                  const AdvisorOptions& advisor_options) {
  WhatIfEngine what_if(&model, workload.Span(),
                       SegmentFixed(workload.size(),
                                    advisor_options.block_size));
  DesignProblem problem;
  problem.what_if = &what_if;
  problem.candidates = {Configuration::Empty()};  // Unused by evaluation.
  problem.initial = advisor_options.initial_config;
  problem.final_config = advisor_options.final_config;
  problem.count_initial_change = advisor_options.count_initial_change;
  return EvaluateScheduleCost(problem, configs);
}

}  // namespace

Result<KSelectionReport> ChooseChangeBound(
    const CostModel& model, const Workload& design_trace,
    const std::vector<Workload>& eval_traces,
    const KSelectionOptions& options) {
  if (options.candidate_ks.empty()) {
    return Status::InvalidArgument("no candidate change bounds given");
  }
  const std::vector<Workload>* evals = &eval_traces;
  std::vector<Workload> synthetic;
  if (eval_traces.empty()) {
    synthetic = MakeJitteredVariants(
        design_trace, options.advisor.block_size,
        options.jitter_window_blocks, options.num_synthetic_variants,
        options.seed);
    if (synthetic.empty()) {
      return Status::InvalidArgument(
          "cannot synthesize evaluation variants (empty trace or zero "
          "block size)");
    }
    evals = &synthetic;
  }
  for (const Workload& eval : *evals) {
    if (eval.size() != design_trace.size()) {
      return Status::InvalidArgument(
          "evaluation traces must have the design trace's length for "
          "positional replay");
    }
  }

  Advisor advisor(&model);
  KSelectionReport report;
  double best = std::numeric_limits<double>::infinity();
  for (const std::optional<int64_t>& k : options.candidate_ks) {
    AdvisorOptions advisor_options = options.advisor;
    advisor_options.k = k;
    CDPD_ASSIGN_OR_RETURN(Recommendation rec,
                          advisor.Recommend(design_trace, advisor_options));
    KCandidateOutcome outcome;
    outcome.k = k;
    outcome.changes = rec.changes;
    outcome.fit_cost = rec.schedule.total_cost;
    double total = 0;
    for (const Workload& eval : *evals) {
      total += ReplayCost(model, eval, rec.schedule.configs,
                          advisor_options);
    }
    outcome.eval_cost = total / static_cast<double>(evals->size());
    if (outcome.eval_cost < best) {
      best = outcome.eval_cost;
      report.chosen_k = k;
    }
    report.outcomes.push_back(outcome);
  }
  return report;
}

}  // namespace cdpd
