#ifndef CDPD_CORE_K_AWARE_GRAPH_H_
#define CDPD_CORE_K_AWARE_GRAPH_H_

#include <cstdint>

#include "common/budget.h"
#include "common/log.h"
#include "common/progress.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "core/design_problem.h"
#include "core/solve_stats.h"
#include "cost/cost_cache.h"

namespace cdpd {

/// Size of a k-aware sequence graph (reported by the Figure 2 bench;
/// the solver itself runs the DP without materializing nodes).
struct KAwareGraphSize {
  int64_t nodes = 0;  // Stage/layer states plus source and destination.
  int64_t edges = 0;  // Stay-in-layer + change-to-next-layer edges.
};

/// Exact node/edge counts of the k-aware sequence graph with k+1
/// layers over n stages and `num_configs` candidate configurations
/// (Figure 2's object): each stage has a node per (layer, config);
/// a node at layer l has one stay edge per layer-l successor and
/// (num_configs - 1) change edges into layer l+1.
///
/// Counts saturate at INT64_MAX instead of overflowing — the product
/// n * (k+1) * |C|^2 exceeds int64 for plausible inputs (e.g.
/// k = INT64_MAX), and a reporting function must not wrap to a
/// nonsense (possibly negative) size. Inputs must be >= 0.
KAwareGraphSize ComputeKAwareGraphSize(int64_t num_stages,
                                       int64_t num_configs, int64_t k);

/// Predicted bytes of SolveKAware's DP working set — the dist/next
/// arrays (2 x layers x m doubles), the parent table (n x layers x m
/// 8-byte cells), and the boundary transition vectors — using the same
/// layer clamp the solver applies (layers = min(k, n - 1 +
/// count_initial_change) + 1). This is the model the explain report
/// quotes against the measured MemComponent::kKAwareTable peak, and
/// the figure a caller should budget when sizing
/// SolveOptions::memory_limit_bytes; saturates at INT64_MAX. The
/// O(k n 2^{2m}) space bound of §3 is this quantity with m = 2^{2m'}
/// candidate configurations.
int64_t PredictKAwareTableBytes(int64_t num_stages, int64_t num_configs,
                                int64_t k, bool count_initial_change);

/// Optimal *constrained* dynamic physical design (§3, the paper's
/// contribution): shortest path through the k-aware sequence graph,
/// whose layers 0..k record the number of design changes used so far.
/// Staying in the same configuration keeps the layer; switching
/// configurations moves one layer down. Runs in O(k * n * |C|^2) time
/// (= O(k n 2^{2m})), and returns a schedule with at most k changes
/// under the problem's change-counting policy.
///
/// The solve first precomputes the dense EXEC/TRANS cost matrices
/// (WhatIfEngine::PrecomputeCostMatrix) and then relaxes each stage's
/// (layer, config) cells — both fanned out across `pool` when one is
/// given. The schedule, cost, and stats are identical for any thread
/// count (each DP cell is a pure function of the previous stage).
///
/// k must be >= 0. A bound larger than the most changes any schedule
/// can make (n - 1 interior changes, plus the initial build when it
/// counts) is clamped to that maximum, so huge k costs no extra layers
/// and cannot overflow the DP table sizing; a table that would still
/// not fit in int64 cells is rejected with InvalidArgument *before*
/// any allocation.
///
/// `stats`, `pool`, and `tracer` are optional; with a tracer the solve
/// records "kaware.precompute", "kaware.dp", and a "kaware.stage" span
/// per DP stage (timestamps only — results are unchanged).
///
/// `budget` (optional) bounds the solve; expiry is polled between
/// precompute blocks and DP stages. Anytime semantics — on expiry
/// mid-DP the cheapest completed prefix is frozen (its best
/// end-of-prefix (layer, config) cell is held for the remaining
/// stages, which adds no changes, so the k bound still holds) and
/// returned with stats->deadline_hit set; DeadlineExceeded when the
/// budget expires before any feasible schedule can be priced. A budget
/// that never expires changes nothing: the schedule is byte-identical
/// to an un-budgeted run.
///
/// `progress` receives "whatif.precompute" / "kaware.dp" updates at
/// the existing poll sites (thread-safe callback required; see
/// common/progress.h); `logger` records phase start/end and
/// anytime-fallback events. Both optional, both observational only.
///
/// `tracker` (optional) accounts the big allocations — the dense cost
/// matrix (kCostMatrix) and the DP tables (kKAwareTable). When the
/// tracker carries a soft byte limit that a reservation would pass,
/// the solve degrades instead of allocating: it returns
/// BestStaticSchedule (flagged best_effort/deadline_hit) rather than
/// building tables it has no budget for.
///
/// `cost_cache` (optional) is the persistent cross-solve what-if cache
/// threaded into the precompute (see WhatIfEngine::PrecomputeCostMatrix
/// and cost/cost_cache.h); it changes probe counts, never costs.
Result<DesignSchedule> SolveKAware(const DesignProblem& problem, int64_t k,
                                   SolveStats* stats = nullptr,
                                   ThreadPool* pool = nullptr,
                                   Tracer* tracer = nullptr,
                                   const Budget* budget = nullptr,
                                   const ProgressFn* progress = nullptr,
                                   Logger* logger = nullptr,
                                   ResourceTracker* tracker = nullptr,
                                   CostCache* cost_cache = nullptr);

}  // namespace cdpd

#endif  // CDPD_CORE_K_AWARE_GRAPH_H_
