#ifndef CDPD_CORE_K_AWARE_GRAPH_H_
#define CDPD_CORE_K_AWARE_GRAPH_H_

#include <cstdint>

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "core/design_problem.h"
#include "core/solve_stats.h"

namespace cdpd {

/// Size of a k-aware sequence graph (reported by the Figure 2 bench;
/// the solver itself runs the DP without materializing nodes).
struct KAwareGraphSize {
  int64_t nodes = 0;  // Stage/layer states plus source and destination.
  int64_t edges = 0;  // Stay-in-layer + change-to-next-layer edges.
};

/// Exact node/edge counts of the k-aware sequence graph with k+1
/// layers over n stages and `num_configs` candidate configurations
/// (Figure 2's object): each stage has a node per (layer, config);
/// a node at layer l has one stay edge per layer-l successor and
/// (num_configs - 1) change edges into layer l+1.
KAwareGraphSize ComputeKAwareGraphSize(int64_t num_stages,
                                       int64_t num_configs, int64_t k);

/// Optimal *constrained* dynamic physical design (§3, the paper's
/// contribution): shortest path through the k-aware sequence graph,
/// whose layers 0..k record the number of design changes used so far.
/// Staying in the same configuration keeps the layer; switching
/// configurations moves one layer down. Runs in O(k * n * |C|^2) time
/// (= O(k n 2^{2m})), and returns a schedule with at most k changes
/// under the problem's change-counting policy.
///
/// The solve first precomputes the dense EXEC/TRANS cost matrices
/// (WhatIfEngine::PrecomputeCostMatrix) and then relaxes each stage's
/// (layer, config) cells — both fanned out across `pool` when one is
/// given. The schedule, cost, and stats are identical for any thread
/// count (each DP cell is a pure function of the previous stage).
///
/// k must be >= 0. `stats`, `pool`, and `tracer` are optional; with a
/// tracer the solve records "kaware.precompute", "kaware.dp", and a
/// "kaware.stage" span per DP stage (timestamps only — results are
/// unchanged).
Result<DesignSchedule> SolveKAware(const DesignProblem& problem, int64_t k,
                                   SolveStats* stats = nullptr,
                                   ThreadPool* pool = nullptr,
                                   Tracer* tracer = nullptr);

}  // namespace cdpd

#endif  // CDPD_CORE_K_AWARE_GRAPH_H_
