#ifndef CDPD_CORE_PATH_RANKING_H_
#define CDPD_CORE_PATH_RANKING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/budget.h"
#include "common/log.h"
#include "common/progress.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "core/design_problem.h"
#include "cost/cost_cache.h"
#include "core/sequence_graph.h"
#include "core/solve_stats.h"

namespace cdpd {

/// One enumerated source-to-destination path.
struct RankedPath {
  double cost = 0.0;
  std::vector<SequenceGraph::NodeId> nodes;
};

/// Lazy shortest-path ranking over a sequence graph: Next() yields the
/// 1st, 2nd, 3rd, ... shortest source-to-destination paths in
/// non-decreasing cost order (a Recursive Enumeration Algorithm in the
/// spirit of the path-deletion ranking the paper cites: each ranked
/// path of a node spawns one new candidate at that node, plus the
/// one-time alternative-predecessor candidates).
class PathRanker {
 public:
  /// `graph` (and `budget` / `tracker`, when given) must outlive the
  /// ranker. With a budget, Next() returns nullopt as soon as the
  /// budget expires — callers distinguish expiry from true exhaustion
  /// by checking the budget afterwards. With a tracker, every growth
  /// of the per-node path/candidate state is charged to
  /// MemComponent::kRankingQueue through a counting allocator (the
  /// enumeration state is worst-case exponential, so a priori
  /// reservation is impossible — the allocator meters it as it
  /// grows, and a tracker limit trips the attached Budget at the next
  /// poll).
  explicit PathRanker(const SequenceGraph& graph,
                      const Budget* budget = nullptr,
                      ResourceTracker* tracker = nullptr);

  /// The next path in the ranking, or nullopt when exhausted (or the
  /// budget expired).
  std::optional<RankedPath> Next();

  /// Paths yielded so far.
  int64_t paths_yielded() const { return paths_yielded_; }

 private:
  /// A ranked path to a node, represented by its last edge and the
  /// rank of the predecessor path it extends. The rank is 64-bit: the
  /// ranking is worst-case exponential and a long enumeration pushes
  /// per-node ranks past INT32_MAX, where a 32-bit field silently
  /// truncates and corrupts the backtrack.
  struct PathRef {
    double cost = 0.0;
    int32_t pred_edge = -1;   // Edge id into the node; -1 at the source.
    int64_t pred_index = -1;  // Rank (0-based) of the predecessor path.
  };
  /// Counting vectors: the enumeration state grows unpredictably, so
  /// its true allocated size is metered through the allocator rather
  /// than reserved up front. A default-constructed allocator (no
  /// tracker) counts nothing.
  using PathRefVec = std::vector<PathRef, TrackingAllocator<PathRef>>;
  struct NodeState {
    PathRefVec paths;       // Ranked paths found so far.
    PathRefVec candidates;  // Min-heap by cost.
    bool initialized_alternatives = false;
    NodeState() = default;
    explicit NodeState(const TrackingAllocator<PathRef>& alloc)
        : paths(alloc), candidates(alloc) {}
  };

  /// Ensures π^{rank}(node) exists (0-based). Returns false when the
  /// node has fewer than rank+1 paths, or when the budget expires
  /// mid-derivation.
  bool EnsurePath(SequenceGraph::NodeId node, size_t rank);
  void PushCandidate(NodeState* state, PathRef ref);

  const SequenceGraph* graph_;
  const Budget* budget_;
  DagShortestPaths tree_;
  std::vector<NodeState> nodes_;
  /// Fixed footprint of nodes_ itself (the growing vectors inside are
  /// metered by the allocator).
  ScopedReservation state_reservation_;
  int64_t paths_yielded_ = 0;
};

/// Constrained optimum via shortest-path ranking (§5): enumerate paths
/// of the *plain* sequence graph in cost order and return the first
/// whose design sequence has at most k changes — optimal because every
/// path not yet seen is at least as long. Worst-case exponential;
/// `max_paths` bounds the enumeration.
///
/// When the enumeration ends without an answer — the `max_paths` cap
/// tripped, the ranking ran dry, or the `budget` expired — the solve
/// degrades to the cheapest feasible *static* schedule
/// (BestStaticSchedule) with stats->best_effort set, plus
/// stats->deadline_hit when a budget expiry caused it. Error statuses
/// are reserved for genuinely empty-handed exits: DeadlineExceeded
/// when the budget expired and not even the static fallback is
/// feasible, ResourceExhausted when the cap/exhaustion hit and the
/// fallback is infeasible.
///
/// The EXEC/TRANS cost matrices are precomputed in parallel across
/// `pool` before the graph is materialized; the enumeration itself is
/// inherently sequential (each ranked path conditions the next). With
/// a `tracer` the solve records "ranking.precompute" and
/// "ranking.enumerate" spans (arg = paths enumerated). A budget that
/// never expires changes nothing: the schedule is byte-identical to an
/// un-budgeted run.
///
/// `progress` receives "whatif.precompute" / "ranking.enumerate"
/// updates at the existing poll sites, the enumeration fraction being
/// paths yielded over `max_paths` (thread-safe callback required; see
/// common/progress.h); `logger` records start/end and fallback events.
/// Both optional, both observational only.
///
/// `tracker` (optional) accounts the cost matrix (kCostMatrix), the
/// materialized graph (kSequenceGraph), and — through PathRanker's
/// counting allocator — the enumeration state (kRankingQueue). A limit
/// refusal before the graph exists degrades straight to the static
/// fallback; a limit tripped mid-enumeration winds down at the next
/// poll via the attached Budget.
Result<DesignSchedule> SolveByRanking(const DesignProblem& problem, int64_t k,
                                      int64_t max_paths = 1'000'000,
                                      SolveStats* stats = nullptr,
                                      ThreadPool* pool = nullptr,
                                      Tracer* tracer = nullptr,
                                      const Budget* budget = nullptr,
                                      const ProgressFn* progress = nullptr,
                                      Logger* logger = nullptr,
                                      ResourceTracker* tracker = nullptr,
                                      CostCache* cost_cache = nullptr);

}  // namespace cdpd

#endif  // CDPD_CORE_PATH_RANKING_H_
