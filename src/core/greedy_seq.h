#ifndef CDPD_CORE_GREEDY_SEQ_H_
#define CDPD_CORE_GREEDY_SEQ_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/budget.h"
#include "common/log.h"
#include "common/progress.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "core/design_problem.h"
#include "core/k_aware_graph.h"
#include "core/solve_stats.h"
#include "cost/cost_cache.h"

namespace cdpd {

/// Options of the GREEDY-SEQ candidate reduction.
struct GreedySeqOptions {
  /// The m candidate *indexes* (not configurations) the greedy
  /// construction composes.
  std::vector<IndexDef> candidate_indexes;
  /// Cap on indexes per configuration (the paper's experiments use 1).
  int32_t max_indexes_per_config = 1 << 20;
};

/// Outcome of a GREEDY-SEQ solve.
struct GreedySeqResult {
  DesignSchedule schedule;
  /// The reduced configuration set the shortest-path search ran on —
  /// O(m n) configurations instead of 2^m.
  std::vector<Configuration> reduced_candidates;
  /// Unified counters of the whole solve (greedy growth + graph
  /// search).
  SolveStats stats;
};

/// GREEDY-SEQ adapted to the constrained problem (§4.1): instead of
/// searching all 2^m index subsets, build a small candidate set — for
/// each segment, grow a configuration greedily (always adding the
/// index with the largest EXEC improvement, subject to the space bound
/// and max_indexes_per_config), keeping every intermediate
/// configuration — then run the k-aware shortest-path search over that
/// reduced set. `problem.candidates` is ignored and replaced by the
/// reduced set; pass nullopt k for the unconstrained variant (Agrawal
/// et al.'s original GREEDY-SEQ).
///
/// Each greedy growth step prices all candidate indexes in parallel
/// across `pool` (the argmin is a serial scan in index order, so the
/// reduced set is identical for any thread count), and the graph
/// search inherits the pool. With a `tracer` the solve records a
/// "greedyseq.grow" span per segment and a "greedyseq.graph" span
/// around the reduced-set graph search.
///
/// `budget` (optional) bounds the solve; expiry is polled between
/// greedy growth steps and segments (a growth step always completes,
/// so the reduced set is a deterministic prefix of the un-budgeted
/// one). When the growth is cut short, the graph search still runs —
/// un-budgeted, over the partial reduced set, which always contains
/// the empty and initial configurations, so a feasible schedule is
/// guaranteed — and the result carries stats.deadline_hit and
/// stats.best_effort. When the growth completes, the graph search runs
/// under the remaining budget and inherits the k-aware/unconstrained
/// anytime semantics. A budget that never expires changes nothing: the
/// result is byte-identical to an un-budgeted run.
///
/// `progress` receives "greedyseq.grow" updates per grown segment and
/// the inherited graph-search phases (thread-safe callback required;
/// see common/progress.h); `logger` records start/end and the reduced
/// candidate-set size. Both optional, both observational only.
///
/// `tracker` (optional) meters the growing reduced candidate set
/// (kCandidates) as it is built — a tracker limit tripped mid-growth
/// stops the growth at the next poll via the attached Budget, exactly
/// like a deadline — and flows into the graph search, which charges
/// its own tables (kCostMatrix, kKAwareTable / kSequenceGraph).
Result<GreedySeqResult> SolveGreedySeq(const DesignProblem& problem,
                                       std::optional<int64_t> k,
                                       const GreedySeqOptions& options,
                                       ThreadPool* pool = nullptr,
                                       Tracer* tracer = nullptr,
                                       const Budget* budget = nullptr,
                                       const ProgressFn* progress = nullptr,
                                       Logger* logger = nullptr,
                                       ResourceTracker* tracker = nullptr,
                                       CostCache* cost_cache = nullptr);

}  // namespace cdpd

#endif  // CDPD_CORE_GREEDY_SEQ_H_
