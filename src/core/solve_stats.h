#ifndef CDPD_CORE_SOLVE_STATS_H_
#define CDPD_CORE_SOLVE_STATS_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/metrics.h"
#include "common/resource_tracker.h"

namespace cdpd {

/// Counters common to every design solver, replacing the per-solver
/// ad-hoc stats structs. Each solver fills the fields that apply and
/// leaves the rest zero; the unified Solve() entry point
/// (core/solver.h) returns one of these for every method, and
/// Advisor::Recommend surfaces it on the Recommendation.
///
/// The struct doubles as the typed view of the observability layer's
/// "solver.*" metrics: Solve() publishes each solve into the injected
/// MetricsRegistry via PublishTo(), and FromSnapshot() reconstructs a
/// SolveStats from a registry snapshot — so external consumers of the
/// metrics export and in-process callers of Solve() read the same
/// numbers (the tests enforce the round trip).
struct SolveStats {
  /// Wall-clock time of the solve.
  double wall_seconds = 0.0;
  /// What-if statement costings performed during the solve (the
  /// dominant work unit of the optimizer-cost experiments).
  int64_t costings = 0;
  /// Persistent cost-cache activity attributable to this solve
  /// (SolveOptions::cost_cache): per-statement probes answered from
  /// the cache, probes that had to be costed and inserted, and entries
  /// evicted to stay inside the cache's byte budget. All zero when no
  /// cache was attached.
  int64_t cost_cache_hits = 0;
  int64_t cost_cache_misses = 0;
  int64_t cost_cache_evictions = 0;
  /// Worker threads the solve fanned out across (1 = serial).
  int threads_used = 1;
  /// DP states / graph nodes given a finite value (the k-aware and
  /// unconstrained DPs), or ranked-path tree nodes for ranking.
  int64_t nodes_expanded = 0;
  /// Edge relaxations performed by the DP solvers.
  int64_t relaxations = 0;
  /// Ranking only: source-to-destination paths enumerated.
  int64_t paths_enumerated = 0;
  /// Merging only: merge steps performed (each removes >= 1 change).
  int64_t merge_steps = 0;
  /// Merging/greedy: replacement or growth candidates evaluated.
  int64_t candidate_evaluations = 0;
  /// Candidate configurations eliminated by dominance pruning before
  /// the method ran (SolveOptions::prune_dominated); 0 when pruning
  /// was off or nothing was dominated.
  int64_t pruned_configs = 0;
  /// Segment-parallel decomposition shape (the k-aware segmented
  /// solver only; see core/segment_solver.h): the number of chunks the
  /// statement sequence was split into, and the width of the boundary
  /// stitch DP's change-budget window (clamped k + 1 layers). Both 0
  /// when the solve ran monolithically.
  int64_t segment_chunks = 0;
  int64_t stitch_window = 0;
  /// The solve's deadline/cancellation budget expired and the schedule
  /// is the method's anytime fallback (the best feasible answer it had
  /// at expiry), not its normal result. Never set without a budget.
  bool deadline_hit = false;
  /// The schedule is a best-effort fallback rather than the method's
  /// normal result. Implied by deadline_hit; also set when the ranking
  /// method exhausts its enumeration cap and falls back (see
  /// SolveByRanking).
  bool best_effort = false;
  /// Process CPU time consumed over the solve (CLOCK_PROCESS_CPUTIME_ID
  /// delta) — covers the worker pool, so cpu_seconds well above
  /// wall_seconds means the parallel phases actually parallelised.
  /// 0 where the platform offers no process clock.
  double cpu_seconds = 0.0;
  /// High-water mark of the solve's tracked allocations, summed over
  /// components (the true concurrent peak, not the sum of the
  /// per-component peaks below). 0 when the solve tracked nothing.
  int64_t peak_bytes_total = 0;
  /// Per-component peaks, indexed by MemComponent (the what-if cost
  /// matrix, the k-aware DP table, the sequence graph, the ranking
  /// queue, the greedy candidate set, the merging tables).
  std::array<int64_t, kNumMemComponents> component_peak_bytes{};
  /// The solve's SolveOptions::memory_limit_bytes budget tripped and
  /// the schedule is an anytime fallback. Implies deadline_hit (memory
  /// expiry flows through the same Budget) and best_effort.
  bool memory_limit_hit = false;

  /// Accumulates another solve's counters (used by compound methods:
  /// hybrid, greedy-seq, merging-after-unconstrained). Wall time adds;
  /// threads_used keeps the maximum; the fallback flags OR.
  void Accumulate(const SolveStats& other) {
    wall_seconds += other.wall_seconds;
    costings += other.costings;
    cost_cache_hits += other.cost_cache_hits;
    cost_cache_misses += other.cost_cache_misses;
    cost_cache_evictions += other.cost_cache_evictions;
    if (other.threads_used > threads_used) threads_used = other.threads_used;
    nodes_expanded += other.nodes_expanded;
    relaxations += other.relaxations;
    paths_enumerated += other.paths_enumerated;
    merge_steps += other.merge_steps;
    candidate_evaluations += other.candidate_evaluations;
    pruned_configs += other.pruned_configs;
    // Decomposition shape, not work: keep the widest decomposition
    // seen, like threads_used.
    if (other.segment_chunks > segment_chunks) {
      segment_chunks = other.segment_chunks;
    }
    if (other.stitch_window > stitch_window) {
      stitch_window = other.stitch_window;
    }
    deadline_hit = deadline_hit || other.deadline_hit;
    best_effort = best_effort || other.best_effort;
    cpu_seconds += other.cpu_seconds;
    if (other.peak_bytes_total > peak_bytes_total) {
      peak_bytes_total = other.peak_bytes_total;
    }
    for (int i = 0; i < kNumMemComponents; ++i) {
      if (other.component_peak_bytes[i] > component_peak_bytes[i]) {
        component_peak_bytes[i] = other.component_peak_bytes[i];
      }
    }
    memory_limit_hit = memory_limit_hit || other.memory_limit_hit;
  }

  /// Copies `tracker`'s peaks into the memory fields (memory_limit_hit
  /// is set by Solve() from tracker.limit_exceeded(), not here, so a
  /// caller-owned tracker shared across solves doesn't mislabel them).
  void CaptureMemory(const ResourceTracker& tracker) {
    peak_bytes_total = tracker.peak_total();
    for (int i = 0; i < kNumMemComponents; ++i) {
      component_peak_bytes[i] =
          tracker.peak_bytes(static_cast<MemComponent>(i));
    }
  }

  /// Adds this solve's counters to the registry's "solver.*" metrics
  /// (and records the wall time into the "solver.solve_wall_us"
  /// histogram). No-op when `registry` is null.
  void PublishTo(MetricsRegistry* registry) const;

  /// The registry's accumulated "solver.*" counters as a SolveStats —
  /// the inverse of PublishTo over however many solves the registry
  /// has seen (wall_seconds is the total, threads_used the maximum).
  static SolveStats FromSnapshot(const MetricsSnapshot& snapshot);

  /// One flat JSON object, keyed like the "solver.*" metrics minus the
  /// prefix. Wall time is emitted as the integer "wall_us" — the same
  /// microsecond rounding PublishTo applies — so a publish/FromSnapshot
  /// round trip reproduces the JSON bit-for-bit (the tests enforce it).
  /// Embedded by the explain report and the bench_report artifacts.
  std::string ToJson() const;
};

}  // namespace cdpd

#endif  // CDPD_CORE_SOLVE_STATS_H_
