#include "core/hybrid_optimizer.h"

#include "core/design_merging.h"
#include "core/k_aware_graph.h"
#include "core/unconstrained_optimizer.h"

namespace cdpd {

std::string_view HybridChoiceToString(HybridChoice choice) {
  switch (choice) {
    case HybridChoice::kUnconstrainedSufficed:
      return "unconstrained";
    case HybridChoice::kKAwareGraph:
      return "k-aware-graph";
    case HybridChoice::kMerging:
      return "merging";
  }
  return "unknown";
}

Result<HybridResult> SolveHybrid(const DesignProblem& problem, int64_t k,
                                 ThreadPool* pool, Tracer* tracer,
                                 const Budget* budget,
                                 const ProgressFn* progress, Logger* logger,
                                 ResourceTracker* tracker,
                                 CostCache* cost_cache) {
  if (k < 0) {
    return Status::InvalidArgument("change bound k must be >= 0");
  }
  HybridResult result;
  DesignSchedule unconstrained;
  {
    CDPD_TRACE_SPAN(tracer, "hybrid.probe", "solver");
    CDPD_ASSIGN_OR_RETURN(
        unconstrained,
        SolveUnconstrained(problem, &result.stats, pool, tracer, budget,
                           progress, logger, tracker, cost_cache));
  }
  const int64_t l = CountChanges(problem, unconstrained.configs);
  result.unconstrained_changes = l;
  result.unconstrained_cost = unconstrained.total_cost;
  if (l <= k) {
    CDPD_LOG(logger, LogLevel::kInfo, "hybrid.choice",
             LogField("choice", "unconstrained"),
             LogField("unconstrained_changes", l), LogField("k", k));
    result.schedule = std::move(unconstrained);
    result.choice = HybridChoice::kUnconstrainedSufficed;
    return result;
  }

  const auto n = static_cast<double>(problem.num_segments());
  const auto c = static_cast<double>(problem.candidates.size());
  // l > k here, so k < l <= n + 1 and the int64 arithmetic is safe.
  const double graph_work = static_cast<double>(k + 1) * n * c * c;
  const double merging_work =
      c * (static_cast<double>(l * l - k * k)) / 2.0;

  // An already-spent budget forces the merging branch: its static
  // fallback answers immediately, whereas the k-aware DP would pay a
  // precompute only to return DeadlineExceeded.
  const bool prefer_kaware =
      graph_work <= merging_work && !BudgetExpired(budget);
  CDPD_LOG(logger, LogLevel::kInfo, "hybrid.choice",
           LogField("choice", prefer_kaware ? "k-aware-graph" : "merging"),
           LogField("unconstrained_changes", l), LogField("k", k),
           LogField("graph_work", graph_work),
           LogField("merging_work", merging_work));

  // Whichever branch is chosen, a failure there must not hide an
  // answer the other branch can give — retry the other one and only
  // surface the original error when both come up empty.
  SolveStats phase_stats;
  Status first_error = Status::OK();
  if (prefer_kaware) {
    CDPD_TRACE_SPAN(tracer, "hybrid.kaware", "solver", k);
    Result<DesignSchedule> kaware = SolveKAware(
        problem, k, &phase_stats, pool, tracer, budget, progress, logger,
        tracker, cost_cache);
    if (kaware.ok()) {
      result.schedule = std::move(kaware).value();
      result.choice = HybridChoice::kKAwareGraph;
      result.stats.Accumulate(phase_stats);
      return result;
    }
    first_error = kaware.status();
  }
  {
    CDPD_TRACE_SPAN(tracer, "hybrid.merge", "solver", l - k);
    Result<DesignSchedule> merged =
        MergeToConstraint(problem, unconstrained, k, &phase_stats, pool,
                          tracer, budget, progress, logger, tracker);
    if (merged.ok()) {
      result.schedule = std::move(merged).value();
      result.choice = HybridChoice::kMerging;
      result.stats.Accumulate(phase_stats);
      return result;
    }
    if (first_error.ok()) first_error = merged.status();
  }
  if (prefer_kaware) return first_error;
  {
    CDPD_TRACE_SPAN(tracer, "hybrid.kaware", "solver", k);
    Result<DesignSchedule> kaware = SolveKAware(
        problem, k, &phase_stats, pool, tracer, budget, progress, logger,
        tracker, cost_cache);
    if (kaware.ok()) {
      result.schedule = std::move(kaware).value();
      result.choice = HybridChoice::kKAwareGraph;
      result.stats.Accumulate(phase_stats);
      return result;
    }
  }
  return first_error;
}

}  // namespace cdpd
