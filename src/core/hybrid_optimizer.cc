#include "core/hybrid_optimizer.h"

#include "core/design_merging.h"
#include "core/k_aware_graph.h"
#include "core/unconstrained_optimizer.h"

namespace cdpd {

std::string_view HybridChoiceToString(HybridChoice choice) {
  switch (choice) {
    case HybridChoice::kUnconstrainedSufficed:
      return "unconstrained";
    case HybridChoice::kKAwareGraph:
      return "k-aware-graph";
    case HybridChoice::kMerging:
      return "merging";
  }
  return "unknown";
}

Result<HybridResult> SolveHybrid(const DesignProblem& problem, int64_t k,
                                 ThreadPool* pool, Tracer* tracer) {
  if (k < 0) {
    return Status::InvalidArgument("change bound k must be >= 0");
  }
  HybridResult result;
  DesignSchedule unconstrained;
  {
    CDPD_TRACE_SPAN(tracer, "hybrid.probe", "solver");
    CDPD_ASSIGN_OR_RETURN(
        unconstrained, SolveUnconstrained(problem, &result.stats, pool, tracer));
  }
  const int64_t l = CountChanges(problem, unconstrained.configs);
  result.unconstrained_changes = l;
  if (l <= k) {
    result.schedule = std::move(unconstrained);
    result.choice = HybridChoice::kUnconstrainedSufficed;
    return result;
  }

  const auto n = static_cast<double>(problem.num_segments());
  const auto c = static_cast<double>(problem.candidates.size());
  const double graph_work = static_cast<double>(k + 1) * n * c * c;
  const double merging_work =
      c * (static_cast<double>(l * l - k * k)) / 2.0;

  SolveStats phase_stats;
  if (graph_work <= merging_work) {
    CDPD_TRACE_SPAN(tracer, "hybrid.kaware", "solver", k);
    CDPD_ASSIGN_OR_RETURN(
        result.schedule, SolveKAware(problem, k, &phase_stats, pool, tracer));
    result.choice = HybridChoice::kKAwareGraph;
  } else {
    CDPD_TRACE_SPAN(tracer, "hybrid.merge", "solver", l - k);
    CDPD_ASSIGN_OR_RETURN(result.schedule,
                          MergeToConstraint(problem, unconstrained, k,
                                            &phase_stats, pool, tracer));
    result.choice = HybridChoice::kMerging;
  }
  result.stats.Accumulate(phase_stats);
  return result;
}

}  // namespace cdpd
