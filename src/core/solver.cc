#include "core/solver.h"

#include <memory>

#include "advisor/dominance.h"
#include "common/stopwatch.h"
#include "core/design_merging.h"
#include "core/hybrid_optimizer.h"
#include "core/k_aware_graph.h"
#include "core/path_ranking.h"
#include "core/unconstrained_optimizer.h"

namespace cdpd {

std::string_view OptimizerMethodToString(OptimizerMethod method) {
  switch (method) {
    case OptimizerMethod::kOptimal:
      return "optimal";
    case OptimizerMethod::kGreedySeq:
      return "greedy-seq";
    case OptimizerMethod::kMerging:
      return "merging";
    case OptimizerMethod::kRanking:
      return "ranking";
    case OptimizerMethod::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

Result<OptimizerMethod> OptimizerMethodFromString(std::string_view name) {
  if (name == "optimal") return OptimizerMethod::kOptimal;
  if (name == "greedy-seq") return OptimizerMethod::kGreedySeq;
  if (name == "merging") return OptimizerMethod::kMerging;
  if (name == "ranking") return OptimizerMethod::kRanking;
  if (name == "hybrid") return OptimizerMethod::kHybrid;
  return Status::InvalidArgument(
      "unknown method '" + std::string(name) +
      "' (optimal|greedy-seq|merging|ranking|hybrid)");
}

namespace {

/// Span name of the top-level solve, per method. TraceSpan stores the
/// pointer, so these must be literals (string_view::data() would not
/// guarantee termination in general).
const char* MethodSpanName(OptimizerMethod method) {
  switch (method) {
    case OptimizerMethod::kOptimal:
      return "solve.optimal";
    case OptimizerMethod::kGreedySeq:
      return "solve.greedy-seq";
    case OptimizerMethod::kMerging:
      return "solve.merging";
    case OptimizerMethod::kRanking:
      return "solve.ranking";
    case OptimizerMethod::kHybrid:
      return "solve.hybrid";
  }
  return "solve";
}

}  // namespace

Status SolveOptions::Validate() const {
  if (k.has_value() && *k < 0) {
    return Status::InvalidArgument(
        "change bound k must be >= 0 when set (use nullopt for "
        "unconstrained)");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (ranking_max_paths <= 0) {
    return Status::InvalidArgument("ranking_max_paths must be positive");
  }
  if (deadline.has_value() && deadline->count() < 0) {
    return Status::InvalidArgument(
        "deadline must be >= 0 when set (use nullopt for no deadline)");
  }
  if (memory_limit_bytes.has_value() && *memory_limit_bytes <= 0) {
    return Status::InvalidArgument(
        "memory_limit_bytes must be > 0 when set (use nullopt for no "
        "limit)");
  }
  if (method == OptimizerMethod::kGreedySeq &&
      greedy.candidate_indexes.empty()) {
    return Status::InvalidArgument("GREEDY-SEQ needs candidate indexes");
  }
  CDPD_RETURN_IF_ERROR(segmented.Validate());
  return Status::OK();
}

Result<SolveResult> Solve(const DesignProblem& problem,
                          const SolveOptions& options) {
  CDPD_RETURN_IF_ERROR(options.Validate());

  // A borrowed pool (SolverSession's amortization path) wins over
  // num_threads; otherwise the solve owns a pool for its duration.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  int threads;
  if (pool != nullptr) {
    threads = pool->num_threads();
  } else {
    threads = options.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                       : options.num_threads;
    if (threads > 1) {
      owned_pool = std::make_unique<ThreadPool>(threads);
      pool = owned_pool.get();
    }
  }
  const Observability& obs = options.observability;
  Tracer* const tracer = obs.tracer;
  Logger* const logger = obs.logger;
  // Null when no callback is injected, so every ReportProgress site
  // downstream is a single pointer test.
  const ProgressFn* const progress = obs.progress ? &obs.progress : nullptr;
  if (obs.metrics != nullptr) {
    if (pool != nullptr) pool->EnableMetrics(obs.metrics);
    if (problem.what_if != nullptr) {
      problem.what_if->SetMetrics(obs.metrics);
    }
  }
  if (logger != nullptr && pool != nullptr) pool->EnableLogging(logger);
  CDPD_LOG(logger, LogLevel::kInfo, "solve.start",
           LogField("method", OptimizerMethodToString(options.method)),
           LogField("k", options.k.value_or(-1)),  // -1 = unconstrained.
           LogField("threads", threads),
           LogField("segments", problem.what_if != nullptr
                                    ? problem.num_segments()
                                    : size_t{0}),
           LogField("candidates", problem.candidates.size()),
           LogField("deadline_ms",
                    options.deadline.has_value() ? options.deadline->count()
                                                 : int64_t{-1}));

  // One ResourceTracker for the whole solve: every phase charges its
  // big allocations here, so stats.peak_bytes_total is the true
  // concurrent high-water mark across phases. Carries the soft byte
  // budget when one is set.
  ResourceTracker tracker(options.memory_limit_bytes.value_or(0));

  // One Budget for the whole solve, shared by every phase. Built only
  // when a deadline, cancel token, or memory limit is set, so the
  // common un-budgeted path costs each poll site a single null-pointer
  // test. The clock starts here: pool spin-up above is deliberately
  // not charged (it is bounded and paid before any cancellable work).
  Budget owned_budget;
  const Budget* budget = nullptr;
  if (options.deadline.has_value()) {
    owned_budget = Budget(
        std::chrono::duration_cast<std::chrono::nanoseconds>(*options.deadline),
        options.cancel);
    budget = &owned_budget;
  } else if (options.cancel != nullptr) {
    owned_budget = Budget(options.cancel);
    budget = &owned_budget;
  } else if (options.memory_limit_bytes.has_value()) {
    owned_budget = Budget();
    budget = &owned_budget;
  }
  if (budget != nullptr && options.memory_limit_bytes.has_value()) {
    // Memory expiry rides the same poll sites as a deadline: once a
    // reservation trips the tracker's limit, the next BudgetExpired
    // poll winds the solve down through its anytime fallback.
    owned_budget.set_tracker(&tracker);
  }

  const int64_t cpu_before = ProcessCpuTimeMicros();
  const Stopwatch watch;

  // Dominance pruning runs before dispatch so every method sees the
  // reduced candidate space. The dispatched problem is a shallow copy
  // sharing the what-if oracle; pruning's probe costs are folded into
  // stats.costings after dispatch (sub-solvers reset stats wholesale).
  const DesignProblem* active = &problem;
  DesignProblem pruned_problem;
  int64_t pruned_configs = 0;
  int64_t prune_costings = 0;
  if (options.prune_dominated && problem.what_if != nullptr &&
      problem.candidates.size() > 1) {
    CDPD_TRACE_SPAN(tracer, "solve.prune", "solver",
                    static_cast<int64_t>(problem.candidates.size()));
    const int64_t costings_before = problem.what_if->costings();
    DominanceResult pruned =
        PruneDominatedConfigs(problem, pool, budget, logger, &tracker);
    prune_costings = problem.what_if->costings() - costings_before;
    pruned_configs = pruned.pruned;
    if (pruned.pruned > 0) {
      pruned_problem = problem;
      pruned_problem.candidates = problem.candidates.Subset(pruned.survivors);
      active = &pruned_problem;
    }
  }

  // Cache traffic is attributed to this solve centrally — deltas of
  // the shared cache's counters around the dispatch — so compound
  // methods (hybrid, greedy-seq, merging) never double count. With a
  // shared cache and concurrent solves the deltas interleave, which is
  // inherent to sharing; each counter is still exact in aggregate.
  CostCache* const cost_cache = options.cost_cache;
  const int64_t cache_hits_before =
      cost_cache != nullptr ? cost_cache->hits() : 0;
  const int64_t cache_misses_before =
      cost_cache != nullptr ? cost_cache->misses() : 0;
  const int64_t cache_evictions_before =
      cost_cache != nullptr ? cost_cache->evictions() : 0;

  SolveResult result;
  result.tracer = tracer;
  CDPD_TRACE_SPAN(tracer, MethodSpanName(options.method), "solver",
                  options.k.value_or(Tracer::kNoArg));
  switch (options.method) {
    case OptimizerMethod::kOptimal: {
      if (!options.k.has_value()) {
        CDPD_ASSIGN_OR_RETURN(
            result.schedule,
            SolveUnconstrained(*active, &result.stats, pool, tracer, budget,
                               progress, logger, &tracker, cost_cache));
        result.method_detail = "sequence-graph shortest path";
        result.unconstrained_cost = result.schedule.total_cost;
      } else {
        const size_t chunks =
            ResolveNumChunks(options.segmented, active->num_segments());
        if (chunks >= 2) {
          CDPD_ASSIGN_OR_RETURN(
              result.schedule,
              SolveKAwareSegmented(*active, *options.k, chunks, &result.stats,
                                   pool, tracer, budget, progress, logger,
                                   &tracker, cost_cache));
          result.method_detail = "segment-parallel k-aware (" +
                                 std::to_string(chunks) + " chunks)";
        } else {
          CDPD_ASSIGN_OR_RETURN(
              result.schedule,
              SolveKAware(*active, *options.k, &result.stats, pool, tracer,
                          budget, progress, logger, &tracker, cost_cache));
          result.method_detail = "k-aware sequence graph";
        }
      }
      break;
    }
    case OptimizerMethod::kGreedySeq: {
      CDPD_ASSIGN_OR_RETURN(GreedySeqResult greedy_result,
                            SolveGreedySeq(*active, options.k, options.greedy,
                                           pool, tracer, budget, progress,
                                           logger, &tracker, cost_cache));
      result.schedule = std::move(greedy_result.schedule);
      result.stats = greedy_result.stats;
      result.reduced_candidates =
          std::move(greedy_result.reduced_candidates);
      result.method_detail =
          "greedy-seq reduced candidates: " +
          std::to_string(result.reduced_candidates.size());
      break;
    }
    case OptimizerMethod::kMerging: {
      CDPD_ASSIGN_OR_RETURN(
          DesignSchedule unconstrained,
          SolveUnconstrained(*active, &result.stats, pool, tracer, budget,
                             progress, logger, &tracker, cost_cache));
      result.unconstrained_cost = unconstrained.total_cost;
      if (!options.k.has_value()) {
        result.schedule = std::move(unconstrained);
        result.method_detail = "merging (no constraint; unconstrained optimum)";
      } else {
        SolveStats merge_stats;
        CDPD_ASSIGN_OR_RETURN(
            result.schedule,
            MergeToConstraint(*active, unconstrained, *options.k,
                              &merge_stats, pool, tracer, budget, progress,
                              logger, &tracker));
        result.stats.Accumulate(merge_stats);
        result.method_detail =
            "merging steps: " + std::to_string(merge_stats.merge_steps);
      }
      break;
    }
    case OptimizerMethod::kRanking: {
      if (!options.k.has_value()) {
        CDPD_ASSIGN_OR_RETURN(
            result.schedule,
            SolveUnconstrained(*active, &result.stats, pool, tracer, budget,
                               progress, logger, &tracker, cost_cache));
        result.method_detail = "ranking (no constraint; shortest path)";
        result.unconstrained_cost = result.schedule.total_cost;
      } else {
        CDPD_ASSIGN_OR_RETURN(
            result.schedule,
            SolveByRanking(*active, *options.k, options.ranking_max_paths,
                           &result.stats, pool, tracer, budget, progress,
                           logger, &tracker, cost_cache));
        result.method_detail =
            "ranked paths: " + std::to_string(result.stats.paths_enumerated);
      }
      break;
    }
    case OptimizerMethod::kHybrid: {
      if (!options.k.has_value()) {
        CDPD_ASSIGN_OR_RETURN(
            result.schedule,
            SolveUnconstrained(*active, &result.stats, pool, tracer, budget,
                               progress, logger, &tracker, cost_cache));
        result.method_detail = "hybrid (no constraint; shortest path)";
        result.unconstrained_cost = result.schedule.total_cost;
      } else {
        CDPD_ASSIGN_OR_RETURN(
            HybridResult hybrid,
            SolveHybrid(*active, *options.k, pool, tracer, budget, progress,
                        logger, &tracker, cost_cache));
        result.schedule = std::move(hybrid.schedule);
        result.stats = hybrid.stats;
        result.unconstrained_cost = hybrid.unconstrained_cost;
        result.method_detail =
            std::string("hybrid chose ") +
            std::string(HybridChoiceToString(hybrid.choice));
      }
      break;
    }
  }
  // Pruning ran before the dispatched solver reset the stats, so its
  // contribution is folded in here.
  result.stats.pruned_configs = pruned_configs;
  result.stats.costings += prune_costings;
  // The per-solver wall times cover their own phases; the top-level
  // clock covers dispatch plus pool setup and is what callers see.
  result.stats.wall_seconds = watch.ElapsedSeconds();
  result.stats.cpu_seconds =
      static_cast<double>(ProcessCpuTimeMicros() - cpu_before) / 1e6;
  result.stats.threads_used = threads;
  if (cost_cache != nullptr) {
    result.stats.cost_cache_hits = cost_cache->hits() - cache_hits_before;
    result.stats.cost_cache_misses =
        cost_cache->misses() - cache_misses_before;
    result.stats.cost_cache_evictions =
        cost_cache->evictions() - cache_evictions_before;
    // Timestamp-only span carrying the solve's hit delta, so a trace
    // shows at a glance whether the precompute ran warm or cold.
    TraceSpan cache_span(tracer, "solve.cost_cache", "solver");
    cache_span.set_arg(result.stats.cost_cache_hits);
    cost_cache->PublishTo(obs.metrics);
  }
  result.stats.CaptureMemory(tracker);
  result.stats.memory_limit_hit = tracker.limit_exceeded();
  if (result.stats.memory_limit_hit) {
    // Memory expiry flows through the shared Budget, so it carries the
    // same flags a deadline does; the schedule in hand is the method's
    // anytime fallback.
    result.stats.deadline_hit = true;
    result.stats.best_effort = true;
  }
  result.stats.PublishTo(obs.metrics);
  tracker.PublishTo(obs.metrics);
  SampleProcessMemory(obs.metrics);
  // The attribution reads the finalized stats, so build it last. Pure
  // read-side pass over the memoized oracle; the schedule, cost, and
  // stats above are already fixed.
  if (options.explain) {
    result.explain = BuildExplainReport(
        problem, result.schedule, OptimizerMethodToString(options.method),
        result.method_detail, options.k, result.stats,
        result.unconstrained_cost);
  }
  CDPD_LOG(logger, LogLevel::kInfo, "solve.end",
           LogField("cost", result.schedule.total_cost),
           LogField("deadline_hit", result.stats.deadline_hit),
           LogField("best_effort", result.stats.best_effort),
           LogField("costings", result.stats.costings));
  return result;
}

}  // namespace cdpd
