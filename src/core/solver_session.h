#ifndef CDPD_CORE_SOLVER_SESSION_H_
#define CDPD_CORE_SOLVER_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "common/observability.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/solver.h"
#include "cost/cost_cache.h"

namespace cdpd {

/// Long-lived resources a SolverSession owns across Solve() calls.
struct SessionOptions {
  /// Worker threads of the session-owned pool. 0 =
  /// ThreadPool::DefaultThreadCount(); 1 = serial (no pool is built).
  int num_threads = 0;
  /// Own a persistent what-if CostCache and thread it into every
  /// solve, so repeated solves over an unchanged cost model and
  /// candidate universe are nearly costing-free. The cache
  /// self-invalidates on a model or universe change (see
  /// cost/cost_cache.h); disable when statements never repeat.
  bool enable_cost_cache = true;
  /// Byte cap of the owned cache; <= 0 = unbounded.
  int64_t cost_cache_max_bytes = 0;
  /// Session-default observability sinks (borrowed — must outlive the
  /// session). Merged under each call's SolveOptions::observability:
  /// a sink the call sets wins, an unset slot falls back to these.
  Observability observability;

  Status Validate() const;
};

/// A long-lived solving context for the repeated-solve pattern
/// (re-optimize after every workload window, scenario sweeps,
/// interactive advisors): one thread pool spin-up, one warm what-if
/// cache, and one set of observability sinks amortized across every
/// Solve() call, instead of per-call setup.
///
///   SolverSession session(SessionOptions{.num_threads = 8});
///   for (const auto& window : windows) {
///     auto result = session.Solve(ProblemFor(window), options);
///   }
///
/// Solve() forwards to the free Solve() with the session's pool and
/// cache injected: a per-call SolveOptions::pool / cost_cache wins
/// over the session's, per-call observability sinks win slot-by-slot
/// over the session defaults (Observability::OrElse), and every other
/// knob (method, k, deadlines, pruning, segmenting) stays strictly
/// per-call in SolveOptions. Results are identical to calling the
/// free Solve() with the same effective options — the session only
/// amortizes; it never changes schedules or costs.
///
/// Thread safety: Solve() may be called from multiple threads (the
/// cache is internally synchronized and the pool is shared), but the
/// solves then contend for the same workers; total_stats() and
/// solves() are safe to read concurrently.
class SolverSession {
 public:
  /// Spins up the pool (when num_threads != 1) and the cache.
  /// `options` must Validate(); an invalid value is corrected to the
  /// default (construction cannot fail — call Validate() first when
  /// the values come from user input).
  explicit SolverSession(SessionOptions options = {});
  SolverSession(const SolverSession&) = delete;
  SolverSession& operator=(const SolverSession&) = delete;

  /// One solve through the session's long-lived resources.
  Result<SolveResult> Solve(const DesignProblem& problem,
                            const SolveOptions& options);

  /// The session-owned pool (null when the session is serial).
  ThreadPool* pool() { return pool_.get(); }
  /// The session-owned cache (null when enable_cost_cache is false).
  CostCache* cost_cache() { return cost_cache_.get(); }

  /// Accumulated stats over every completed Solve() (counter fields
  /// add; shape fields like threads_used keep the max — see
  /// SolveStats::Accumulate).
  SolveStats total_stats() const;
  /// Completed Solve() calls.
  int64_t solves() const;

 private:
  SessionOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<CostCache> cost_cache_;
  mutable std::mutex mu_;
  SolveStats total_stats_;
  int64_t solves_ = 0;
};

}  // namespace cdpd

#endif  // CDPD_CORE_SOLVER_SESSION_H_
