#ifndef CDPD_CORE_HYBRID_OPTIMIZER_H_
#define CDPD_CORE_HYBRID_OPTIMIZER_H_

#include <cstdint>
#include <string>

#include "common/budget.h"
#include "common/log.h"
#include "common/progress.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "core/design_problem.h"
#include "core/solve_stats.h"
#include "cost/cost_cache.h"

namespace cdpd {

/// Which technique the hybrid optimizer selected.
enum class HybridChoice {
  kUnconstrainedSufficed,  // The unconstrained optimum already has <= k
                           // changes.
  kKAwareGraph,            // Small k: the layered graph is cheap.
  kMerging,                // Large k: few merging steps suffice.
};

std::string_view HybridChoiceToString(HybridChoice choice);

struct HybridResult {
  DesignSchedule schedule;
  HybridChoice choice = HybridChoice::kUnconstrainedSufficed;
  /// Changes of the unconstrained optimum (the l of §4.2).
  int64_t unconstrained_changes = 0;
  /// Cost of the unconstrained optimum the probe computed — the lower
  /// bound the explain report quotes as the optimality-gap baseline.
  double unconstrained_cost = 0.0;
  /// Unified counters accumulated over both phases (unconstrained
  /// probe plus the chosen constrained technique).
  SolveStats stats;
};

/// The hybrid strategy §6.4 suggests: Figure 4 shows the k-aware
/// graph's cost growing linearly in k while merging's cost shrinks as
/// k approaches the unconstrained change count l. The hybrid first
/// solves the unconstrained problem (cheap, and merging needs it
/// anyway); if its change count l <= k it is returned as-is. Otherwise
/// the work estimates
///
///   k-aware graph:  (k+1) * n * |C|^2        relaxations
///   merging:        |C| * (l^2 - k^2) / 2    candidate evaluations
///
/// are compared and the cheaper technique runs. Merging is heuristic,
/// so the hybrid trades optimality for speed exactly where Figure 4
/// shows the optimal technique becoming expensive.
///
/// Both phases fan their cost probes out across `pool` when one is
/// given; results are identical for any thread count. With a `tracer`
/// the solve records a "hybrid.probe" span around the unconstrained
/// probe and a "hybrid.kaware" or "hybrid.merge" span around the
/// chosen constrained phase.
///
/// Resilience: when the chosen constrained technique fails, the hybrid
/// retries the other one before surfacing an error — a failure of one
/// branch must never hide an answer the other branch can give. With a
/// `budget`, the probe and the constrained phase share it; if the
/// budget is already spent after the probe the hybrid goes straight to
/// merging, whose static fallback answers immediately, and the result
/// carries stats.deadline_hit. A budget that never expires changes
/// nothing: the result is byte-identical to an un-budgeted run.
///
/// `progress` receives the phases' updates (probe, then the chosen
/// constrained technique; thread-safe callback required — see
/// common/progress.h); `logger` records the branch choice with both
/// work estimates, plus the phases' own events. Both optional, both
/// observational only.
///
/// `tracker` (optional) flows into both phases, which charge their own
/// allocation classes (kCostMatrix, kSequenceGraph, kKAwareTable,
/// kMergingTable); the hybrid itself allocates nothing tracked.
Result<HybridResult> SolveHybrid(const DesignProblem& problem, int64_t k,
                                 ThreadPool* pool = nullptr,
                                 Tracer* tracer = nullptr,
                                 const Budget* budget = nullptr,
                                 const ProgressFn* progress = nullptr,
                                 Logger* logger = nullptr,
                                 ResourceTracker* tracker = nullptr,
                                 CostCache* cost_cache = nullptr);

}  // namespace cdpd

#endif  // CDPD_CORE_HYBRID_OPTIMIZER_H_
