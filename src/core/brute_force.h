#ifndef CDPD_CORE_BRUTE_FORCE_H_
#define CDPD_CORE_BRUTE_FORCE_H_

#include <cstdint>

#include "common/result.h"
#include "core/design_problem.h"

namespace cdpd {

/// Exhaustive reference optimizer: enumerates all |candidates|^n
/// design sequences and returns the cheapest one with at most k
/// changes (k < 0 means unconstrained). Exponential — a test oracle
/// for the graph algorithms, guarded to refuse instances with more
/// than `max_sequences` sequences.
Result<DesignSchedule> SolveBruteForce(const DesignProblem& problem, int64_t k,
                                       int64_t max_sequences = 4'000'000);

}  // namespace cdpd

#endif  // CDPD_CORE_BRUTE_FORCE_H_
