#include "core/greedy_seq.h"

#include <algorithm>
#include <limits>

#include "common/stopwatch.h"
#include "core/unconstrained_optimizer.h"

namespace cdpd {

Result<GreedySeqResult> SolveGreedySeq(const DesignProblem& problem,
                                       std::optional<int64_t> k,
                                       const GreedySeqOptions& options,
                                       ThreadPool* pool, Tracer* tracer,
                                       const Budget* budget,
                                       const ProgressFn* progress,
                                       Logger* logger,
                                       ResourceTracker* tracker,
                                       CostCache* cost_cache) {
  if (problem.what_if == nullptr) {
    return Status::InvalidArgument("design problem has no what-if oracle");
  }
  if (options.candidate_indexes.empty()) {
    return Status::InvalidArgument("GREEDY-SEQ needs candidate indexes");
  }
  const WhatIfEngine& what_if = *problem.what_if;
  const Stopwatch watch;
  const int64_t costings_before = what_if.costings();
  const int64_t rows = what_if.model().num_rows();
  const size_t num_indexes = options.candidate_indexes.size();

  GreedySeqResult result;
  result.stats.threads_used = pool != nullptr ? pool->num_threads() : 1;

  // Per-segment greedy construction; every intermediate configuration
  // becomes a candidate, giving O(m) candidates per segment. Each
  // growth step prices all candidate indexes in parallel (disjoint
  // writes into `grown_costs`), then picks the winner with a serial
  // scan in index order — the same argmin the serial loop computes.
  // Meters the reduced set as it grows (released when the solve
  // returns, error paths included). A limit tripped mid-growth stops
  // the construction at the next budget poll; the partial set is still
  // a valid (smaller) candidate set.
  struct CandidateCharge {
    ResourceTracker* tracker;
    int64_t bytes = 0;
    void Add(const Configuration& config) {
      if (tracker == nullptr) return;
      int64_t b = static_cast<int64_t>(sizeof(Configuration));
      for (const IndexDef& index : config.indexes()) {
        b += static_cast<int64_t>(
            sizeof(IndexDef) +
            index.key_columns().size() *
                sizeof(index.key_columns()[0]));
      }
      tracker->Reserve(MemComponent::kCandidates, b);
      bytes += b;
    }
    ~CandidateCharge() {
      if (tracker != nullptr) {
        tracker->Release(MemComponent::kCandidates, bytes);
      }
    }
  } candidate_charge{tracker};

  std::vector<Configuration> reduced;
  reduced.push_back(Configuration::Empty());
  reduced.push_back(problem.initial);
  candidate_charge.Add(reduced[0]);
  candidate_charge.Add(reduced[1]);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> grown_costs(num_indexes, kInf);
  // Expiry is polled between growth steps, never inside one: a step's
  // ParallelFor runs to completion so grown_costs never mixes stale
  // cells, and the reduced set stays a deterministic prefix of the
  // un-budgeted construction.
  CDPD_LOG(logger, LogLevel::kInfo, "greedyseq.start",
           LogField("segments", problem.num_segments()),
           LogField("candidate_indexes", num_indexes));
  bool grow_expired = false;
  for (size_t segment = 0;
       segment < problem.num_segments() && !grow_expired; ++segment) {
    ReportProgress(progress, "greedyseq.grow",
                   static_cast<double>(segment) /
                       static_cast<double>(problem.num_segments()));
    CDPD_TRACE_SPAN(tracer, "greedyseq.grow", "solver",
                    static_cast<int64_t>(segment));
    Configuration current;
    double current_cost = what_if.SegmentCost(segment, current);
    for (;;) {
      if (BudgetExpired(budget)) {
        grow_expired = true;
        break;
      }
      ParallelFor(pool, 0, num_indexes, [&](size_t i) {
        const IndexDef& index = options.candidate_indexes[i];
        grown_costs[i] = kInf;
        if (current.Contains(index)) return;
        const Configuration grown = current.With(index);
        if (grown.num_indexes() > options.max_indexes_per_config) return;
        if (grown.SizePages(rows) > problem.space_bound_pages) return;
        grown_costs[i] = what_if.SegmentCost(segment, grown);
      });
      result.stats.candidate_evaluations +=
          static_cast<int64_t>(num_indexes);
      double best_cost = current_cost;
      const IndexDef* best_index = nullptr;
      for (size_t i = 0; i < num_indexes; ++i) {
        if (grown_costs[i] < best_cost) {
          best_cost = grown_costs[i];
          best_index = &options.candidate_indexes[i];
        }
      }
      if (best_index == nullptr) break;
      current = current.With(*best_index);
      current_cost = best_cost;
      reduced.push_back(current);
      candidate_charge.Add(current);
    }
  }
  std::sort(reduced.begin(), reduced.end());
  reduced.erase(std::unique(reduced.begin(), reduced.end()), reduced.end());

  DesignProblem reduced_problem = problem;
  reduced_problem.candidates = reduced;

  result.reduced_candidates = std::move(reduced);
  SolveStats graph_stats;
  {
    CDPD_TRACE_SPAN(tracer, "greedyseq.graph", "solver",
                    static_cast<int64_t>(reduced_problem.candidates.size()));
    // When the growth was cut short the partial reduced set is the
    // best candidate set solved so far — run the graph search on it
    // WITHOUT the budget so a feasible schedule is guaranteed (the set
    // always contains the empty and initial configurations). When the
    // growth completed, pass the budget through and inherit the graph
    // search's own anytime semantics.
    const Budget* graph_budget = grow_expired ? nullptr : budget;
    if (grow_expired) {
      CDPD_LOG(logger, LogLevel::kWarn, "greedyseq.grow_deadline",
               LogField("reduced_candidates",
                        reduced_problem.candidates.size()));
    } else {
      CDPD_LOG(logger, LogLevel::kInfo, "greedyseq.grown",
               LogField("reduced_candidates",
                        reduced_problem.candidates.size()));
    }
    if (!k.has_value()) {
      CDPD_ASSIGN_OR_RETURN(
          result.schedule,
          SolveUnconstrained(reduced_problem, &graph_stats, pool, tracer,
                             graph_budget, progress, logger, tracker,
                             cost_cache));
    } else {
      CDPD_ASSIGN_OR_RETURN(
          result.schedule,
          SolveKAware(reduced_problem, *k, &graph_stats, pool, tracer,
                      graph_budget, progress, logger, tracker, cost_cache));
    }
  }
  result.stats.nodes_expanded = graph_stats.nodes_expanded;
  result.stats.relaxations = graph_stats.relaxations;
  result.stats.deadline_hit = grow_expired || graph_stats.deadline_hit;
  result.stats.best_effort = grow_expired || graph_stats.best_effort;
  result.stats.wall_seconds = watch.ElapsedSeconds();
  result.stats.costings = what_if.costings() - costings_before;
  return result;
}

}  // namespace cdpd
