#include "core/greedy_seq.h"

#include <algorithm>
#include <limits>

#include "core/unconstrained_optimizer.h"

namespace cdpd {

Result<GreedySeqResult> SolveGreedySeq(const DesignProblem& problem, int64_t k,
                                       const GreedySeqOptions& options) {
  if (problem.what_if == nullptr) {
    return Status::InvalidArgument("design problem has no what-if oracle");
  }
  if (options.candidate_indexes.empty()) {
    return Status::InvalidArgument("GREEDY-SEQ needs candidate indexes");
  }
  const WhatIfEngine& what_if = *problem.what_if;
  const int64_t rows = what_if.model().num_rows();

  // Per-segment greedy construction; every intermediate configuration
  // becomes a candidate, giving O(m) candidates per segment.
  std::vector<Configuration> reduced;
  reduced.push_back(Configuration::Empty());
  reduced.push_back(problem.initial);
  for (size_t segment = 0; segment < problem.num_segments(); ++segment) {
    Configuration current;
    double current_cost = what_if.SegmentCost(segment, current);
    for (;;) {
      double best_cost = current_cost;
      const IndexDef* best_index = nullptr;
      for (const IndexDef& index : options.candidate_indexes) {
        if (current.Contains(index)) continue;
        const Configuration grown = current.With(index);
        if (grown.num_indexes() > options.max_indexes_per_config) continue;
        if (grown.SizePages(rows) > problem.space_bound_pages) continue;
        const double cost = what_if.SegmentCost(segment, grown);
        if (cost < best_cost) {
          best_cost = cost;
          best_index = &index;
        }
      }
      if (best_index == nullptr) break;
      current = current.With(*best_index);
      current_cost = best_cost;
      reduced.push_back(current);
    }
  }
  std::sort(reduced.begin(), reduced.end());
  reduced.erase(std::unique(reduced.begin(), reduced.end()), reduced.end());

  DesignProblem reduced_problem = problem;
  reduced_problem.candidates = reduced;

  GreedySeqResult result;
  result.reduced_candidates = std::move(reduced);
  if (k < 0) {
    CDPD_ASSIGN_OR_RETURN(result.schedule,
                          SolveUnconstrained(reduced_problem));
  } else {
    CDPD_ASSIGN_OR_RETURN(
        result.schedule,
        SolveKAware(reduced_problem, k, &result.solve_stats));
  }
  return result;
}

}  // namespace cdpd
