#ifndef CDPD_CORE_DESIGN_PROBLEM_H_
#define CDPD_CORE_DESIGN_PROBLEM_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "advisor/candidate_space.h"
#include "catalog/configuration.h"
#include "common/result.h"
#include "cost/what_if.h"

namespace cdpd {

/// An instance of the (constrained) dynamic physical design problem of
/// Definition 1: a segmented workload (behind the what-if oracle), a
/// candidate configuration space, an initial design C0, a space bound
/// b, and — supplied separately to each optimizer — a change bound k.
struct DesignProblem {
  /// EXEC/TRANS oracle over the workload's segments. Not owned; must
  /// outlive the problem.
  const WhatIfEngine* what_if = nullptr;

  /// The pinned configuration space the C_i are drawn from, addressed
  /// by ConfigId inside every solver (a std::vector<Configuration> or
  /// braced list assigned here promotes implicitly). Every entry must
  /// satisfy SIZE <= space_bound_pages (Validate checks).
  CandidateSpace candidates;

  /// C0: the design in effect before S_1. Need not be in `candidates`.
  Configuration initial;

  /// Optional destination constraint ("the rightmost node... can serve
  /// to constrain the final configuration"). When set, the transition
  /// TRANS(C_n, final) is added to every schedule's cost; per the
  /// paper's experiments the final transition happens after the last
  /// statement and does not count against k.
  std::optional<Configuration> final_config;

  /// Space bound b in pages.
  int64_t space_bound_pages = std::numeric_limits<int64_t>::max();

  /// Whether C0 != C1 counts against the change bound k. The paper's
  /// Definition 1 reads as if it does, but its experiments clearly do
  /// not charge the initial index build as one of the k changes (the
  /// k=2 design of Table 2 changes design at both major shifts *and*
  /// builds an initial index); the default matches the experiments.
  bool count_initial_change = false;

  size_t num_segments() const { return what_if->num_segments(); }

  /// Structural sanity: oracle present, non-empty candidate set, every
  /// candidate (and the initial/final designs) within the space bound.
  Status Validate() const;
};

/// A solution: one configuration per workload segment, plus its
/// sequence execution cost Σ EXEC(S_i, C_i) + TRANS(C_{i-1}, C_i)
/// (including TRANS(C_n, final) when the destination is constrained).
struct DesignSchedule {
  std::vector<Configuration> configs;
  double total_cost = 0.0;
};

/// Number of design changes of `configs` under the problem's counting
/// policy: |{i in [2, n] : C_{i-1} != C_i}|, plus 1 if
/// count_initial_change and C0 != C1.
int64_t CountChanges(const DesignProblem& problem,
                     const std::vector<Configuration>& configs);

/// The cheapest feasible *static* schedule: one candidate held across
/// every segment (at most one change — the initial build — so any
/// k >= 1 is satisfied, as is k = 0 unless the initial change counts).
/// This is the solvers' last-resort anytime fallback when a deadline
/// expires before they have a better feasible answer; the serial scan
/// over candidates is deterministic (first minimum wins).
/// FailedPrecondition when no candidate satisfies the bound (only
/// possible for k = 0 with count_initial_change and C0 absent from
/// the candidate set).
Result<DesignSchedule> BestStaticSchedule(const DesignProblem& problem,
                                          std::optional<int64_t> k);

/// Recomputes the sequence execution cost of `configs` from the
/// oracle. Every optimizer's reported total_cost must agree with this
/// (the tests enforce it).
double EvaluateScheduleCost(const DesignProblem& problem,
                            const std::vector<Configuration>& configs);

}  // namespace cdpd

#endif  // CDPD_CORE_DESIGN_PROBLEM_H_
