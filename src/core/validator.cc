#include "core/validator.h"

#include <algorithm>
#include <cmath>

namespace cdpd {

Status ValidateSchedule(const DesignProblem& problem,
                        const DesignSchedule& schedule,
                        std::optional<int64_t> k) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  if (schedule.configs.size() != problem.num_segments()) {
    return Status::InvalidArgument(
        "schedule covers " + std::to_string(schedule.configs.size()) +
        " segments; problem has " + std::to_string(problem.num_segments()));
  }
  const Schema& schema = problem.what_if->model().schema();
  const int64_t rows = problem.what_if->model().num_rows();
  for (size_t i = 0; i < schedule.configs.size(); ++i) {
    const Configuration& config = schedule.configs[i];
    if (std::find(problem.candidates.begin(), problem.candidates.end(),
                  config) == problem.candidates.end()) {
      return Status::InvalidArgument("segment " + std::to_string(i + 1) +
                                     " uses non-candidate configuration " +
                                     config.ToString(schema));
    }
    if (config.SizePages(rows) > problem.space_bound_pages) {
      return Status::InvalidArgument("segment " + std::to_string(i + 1) +
                                     " configuration " +
                                     config.ToString(schema) +
                                     " violates the space bound");
    }
  }
  const int64_t changes = CountChanges(problem, schedule.configs);
  if (k.has_value() && changes > *k) {
    return Status::InvalidArgument("schedule has " + std::to_string(changes) +
                                   " changes; bound is " + std::to_string(*k));
  }
  const double expected = EvaluateScheduleCost(problem, schedule.configs);
  const double tolerance =
      1e-9 * std::max({1.0, std::abs(expected), std::abs(schedule.total_cost)});
  if (std::abs(expected - schedule.total_cost) > tolerance) {
    return Status::Internal(
        "schedule reports cost " + std::to_string(schedule.total_cost) +
        " but evaluates to " + std::to_string(expected));
  }
  return Status::OK();
}

}  // namespace cdpd
