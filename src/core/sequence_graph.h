#ifndef CDPD_CORE_SEQUENCE_GRAPH_H_
#define CDPD_CORE_SEQUENCE_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/design_problem.h"

namespace cdpd {

/// The explicit sequence graph of Agrawal et al. (Figure 1): a DAG
/// with a source node (the initial design C0), one node per
/// (stage, candidate configuration), and a destination node. Node
/// weights EXEC(S_x, C_j) are folded into the incoming edge weights,
/// so a path's weight is exactly the sequence execution cost of the
/// design schedule it spells.
///
/// The DP solvers (core/unconstrained_optimizer.h, k_aware_graph.h) do
/// not materialize this graph; it exists for introspection (node/edge
/// inventory, DOT rendering) and for the shortest-path *ranking*
/// approach of §5, which enumerates whole paths.
class SequenceGraph {
 public:
  using NodeId = int32_t;

  struct Edge {
    NodeId from = 0;
    NodeId to = 0;
    double weight = 0.0;
  };

  /// Builds the graph; the problem must Validate() and must outlive
  /// the graph. When `matrix` is given (a precomputed
  /// WhatIfEngine::PrecomputeCostMatrix over problem.candidates), edge
  /// weights are read from the dense tables instead of re-deriving
  /// every transition, which removes the O(n |C|^2) configuration
  /// diffs from the build.
  static Result<SequenceGraph> Build(const DesignProblem& problem,
                                     const CostMatrix* matrix = nullptr);

  NodeId source() const { return 0; }
  NodeId destination() const { return destination_; }
  int64_t num_nodes() const { return destination_ + 1; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  size_t num_stages() const { return num_stages_; }
  size_t num_configs() const { return problem_->candidates.size(); }

  /// Stage of a node: 0 for the source, 1..n for statement stages,
  /// n+1 for the destination.
  size_t NodeStage(NodeId node) const;
  /// Candidate-configuration index of a stage node.
  size_t NodeConfigIndex(NodeId node) const;
  NodeId StageNode(size_t stage, size_t config_index) const;

  const std::vector<Edge>& edges() const { return edges_; }
  /// Edges entering `node` (what path ranking walks backwards).
  const std::vector<int32_t>& InEdgeIds(NodeId node) const {
    return in_edges_[static_cast<size_t>(node)];
  }
  /// Edges leaving `node` (what forward shortest path relaxes).
  const std::vector<int32_t>& OutEdgeIds(NodeId node) const {
    return out_edges_[static_cast<size_t>(node)];
  }
  const Edge& edge(int32_t id) const {
    return edges_[static_cast<size_t>(id)];
  }

  const DesignProblem& problem() const { return *problem_; }

  /// The schedule a source-to-destination node path spells (drops the
  /// source/destination endpoints).
  std::vector<Configuration> PathConfigs(
      const std::vector<NodeId>& path) const;

  /// Design changes along a path under the problem's counting policy.
  int64_t PathChanges(const std::vector<NodeId>& path) const;

  /// Graphviz rendering (small graphs; used by the Figure 1 bench).
  std::string ToDot() const;

 private:
  SequenceGraph() = default;

  void AddEdge(NodeId from, NodeId to, double weight);

  const DesignProblem* problem_ = nullptr;
  size_t num_stages_ = 0;
  NodeId destination_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int32_t>> in_edges_;
  std::vector<std::vector<int32_t>> out_edges_;
};

/// Single-source shortest paths from the graph's source over the DAG
/// (stage order is a topological order), in O(|V| + |E|).
struct DagShortestPaths {
  std::vector<double> dist;        // Per node; +inf if unreachable.
  std::vector<int32_t> parent_edge;  // Edge id into each node; -1 at source.
};

DagShortestPaths ComputeShortestPaths(const SequenceGraph& graph);

/// Predicted bytes of a materialized SequenceGraph over n stages and m
/// candidate configurations — the edge array plus both adjacency
/// indexes — what SolveByRanking charges to
/// MemComponent::kSequenceGraph before Build. Saturates at INT64_MAX.
int64_t EstimateSequenceGraphBytes(int64_t num_stages, int64_t num_configs);

/// Reconstructs the node path from the source to `target` (inclusive).
std::vector<SequenceGraph::NodeId> ExtractPath(const SequenceGraph& graph,
                                               const DagShortestPaths& paths,
                                               SequenceGraph::NodeId target);

}  // namespace cdpd

#endif  // CDPD_CORE_SEQUENCE_GRAPH_H_
