#include "core/design_merging.h"

#include <algorithm>
#include <limits>

#include "common/stopwatch.h"

namespace cdpd {

namespace {

/// A maximal run of consecutive segments executed under one
/// configuration.
struct Run {
  Configuration config;
  size_t begin = 0;  // First segment index.
  size_t end = 0;    // One past the last segment index.
};

std::vector<Run> BuildRuns(const std::vector<Configuration>& configs) {
  std::vector<Run> runs;
  for (size_t i = 0; i < configs.size(); ++i) {
    if (!runs.empty() && runs.back().config == configs[i]) {
      runs.back().end = i + 1;
    } else {
      runs.push_back(Run{configs[i], i, i + 1});
    }
  }
  return runs;
}

int64_t RunChanges(const DesignProblem& problem, const std::vector<Run>& runs) {
  if (runs.empty()) return 0;
  int64_t changes = static_cast<int64_t>(runs.size()) - 1;
  if (problem.count_initial_change &&
      !(runs.front().config == problem.initial)) {
    ++changes;
  }
  return changes;
}

/// Cost of the transition leaving the last run (forced final design),
/// or 0 when the destination is unconstrained.
double ExitCost(const DesignProblem& problem, const Configuration& last) {
  if (!problem.final_config.has_value()) return 0.0;
  return problem.what_if->TransitionCost(last, *problem.final_config);
}

}  // namespace

Result<DesignSchedule> MergeToConstraint(const DesignProblem& problem,
                                         const DesignSchedule& initial_schedule,
                                         int64_t k, SolveStats* stats,
                                         ThreadPool* pool, Tracer* tracer,
                                         const Budget* budget,
                                         const ProgressFn* progress,
                                         Logger* logger,
                                         ResourceTracker* tracker) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  if (k < 0) {
    return Status::InvalidArgument("change bound k must be >= 0");
  }
  if (initial_schedule.configs.size() != problem.num_segments()) {
    return Status::InvalidArgument(
        "initial schedule has " +
        std::to_string(initial_schedule.configs.size()) + " segments, problem has " +
        std::to_string(problem.num_segments()));
  }

  SolveStats local_stats;
  local_stats.threads_used = pool != nullptr ? pool->num_threads() : 1;
  const Stopwatch watch;
  const WhatIfEngine& what_if = *problem.what_if;
  const int64_t costings_before = what_if.costings();
  std::vector<Run> runs = BuildRuns(initial_schedule.configs);
  const int64_t initial_changes = RunChanges(problem, runs);
  CDPD_LOG(logger, LogLevel::kInfo, "merging.start",
           LogField("initial_changes", initial_changes), LogField("k", k),
           LogField("candidates", problem.candidates.size()));

  // The mid-refinement runs still violate k, so they are never a
  // feasible answer — on a budget expiry or a refused memory
  // reservation the solve degrades to the cheapest static design
  // instead. Shared by both exits.
  const auto static_fallback =
      [&](int64_t changes, const char* cause) -> Result<DesignSchedule> {
    CDPD_LOG(logger, LogLevel::kWarn, "merging.fallback",
             LogField("changes", changes), LogField("k", k),
             LogField("cause", cause));
    Result<DesignSchedule> fallback = BestStaticSchedule(problem, k);
    if (!fallback.ok()) {
      return Status::DeadlineExceeded(
          "budget expired with " + std::to_string(changes) +
          " changes still above k = " + std::to_string(k) +
          ", and no static design satisfies the bound");
    }
    local_stats.deadline_hit = true;
    local_stats.best_effort = true;
    local_stats.wall_seconds = watch.ElapsedSeconds();
    local_stats.costings = what_if.costings() - costings_before;
    if (stats != nullptr) *stats = local_stats;
    return std::move(fallback).value();
  };

  for (;;) {
    const int64_t changes = RunChanges(problem, runs);
    // Fraction of the excess changes merged away so far.
    if (initial_changes > k) {
      ReportProgress(progress, "merging",
                     static_cast<double>(initial_changes - changes) /
                         static_cast<double>(initial_changes - k));
    }
    if (changes <= k) break;
    if (BudgetExpired(budget)) {
      return static_fallback(changes, "deadline");
    }
    CDPD_TRACE_SPAN(tracer, "merging.step", "solver", changes);
    if (runs.size() == 1) {
      // Only possible when the initial change counts and k == 0: the
      // single remaining run must be C0 itself.
      const bool c0_available =
          std::find(problem.candidates.begin(), problem.candidates.end(),
                    problem.initial) != problem.candidates.end();
      if (!c0_available) {
        return Status::FailedPrecondition(
            "k = 0 with a counted initial change requires the initial "
            "configuration to be a candidate");
      }
      runs.front().config = problem.initial;
      ++local_stats.merge_steps;
      break;
    }

    // Parallel phase: evaluate every (pair, replacement) penalty into
    // a dense table (disjoint writes; the what-if memo cache is
    // thread-safe). The winning cell is then picked by a serial scan
    // in the serial iteration order, so ties break identically for
    // any thread count.
    const size_t num_pairs = runs.size() - 1;
    const size_t num_cands = problem.candidates.size();
    // This round's penalty tables, released when the round ends. A
    // refusal degrades now rather than waiting for the next budget
    // poll — the tables are exactly what there is no budget for.
    const ScopedReservation round_reservation = ScopedReservation::Try(
        tracker, MemComponent::kMergingTable,
        static_cast<int64_t>((num_pairs + num_pairs * num_cands) *
                             sizeof(double)));
    if (!round_reservation.ok()) {
      return static_fallback(changes, "memory-limit");
    }
    std::vector<double> old_costs(num_pairs);
    ParallelFor(pool, 0, num_pairs, [&](size_t i) {
      const Run& left = runs[i];
      const Run& right = runs[i + 1];
      const Configuration& prev =
          i == 0 ? problem.initial : runs[i - 1].config;
      const bool has_next = i + 2 < runs.size();
      double old_cost = what_if.TransitionCost(prev, left.config) +
                        what_if.RangeCost(left.begin, left.end, left.config) +
                        what_if.TransitionCost(left.config, right.config) +
                        what_if.RangeCost(right.begin, right.end, right.config);
      old_cost += has_next
                      ? what_if.TransitionCost(right.config, runs[i + 2].config)
                      : ExitCost(problem, right.config);
      old_costs[i] = old_cost;
    });
    std::vector<double> penalties(num_pairs * num_cands);
    ParallelFor(pool, 0, num_pairs * num_cands, [&](size_t cell) {
      const size_t i = cell / num_cands;
      const Run& left = runs[i];
      const Run& right = runs[i + 1];
      const Configuration& prev =
          i == 0 ? problem.initial : runs[i - 1].config;
      const bool has_next = i + 2 < runs.size();
      const Configuration& replacement = problem.candidates[cell % num_cands];
      double new_cost =
          what_if.TransitionCost(prev, replacement) +
          what_if.RangeCost(left.begin, right.end, replacement);
      new_cost += has_next
                      ? what_if.TransitionCost(replacement, runs[i + 2].config)
                      : ExitCost(problem, replacement);
      penalties[cell] = new_cost - old_costs[i];
    });
    local_stats.candidate_evaluations +=
        static_cast<int64_t>(num_pairs * num_cands);

    double best_penalty = std::numeric_limits<double>::infinity();
    size_t best_pair = 0;
    Configuration best_replacement;
    for (size_t cell = 0; cell < penalties.size(); ++cell) {
      if (penalties[cell] < best_penalty) {
        best_penalty = penalties[cell];
        best_pair = cell / num_cands;
        best_replacement = problem.candidates[cell % num_cands];
      }
    }

    // Replace the chosen pair, then coalesce equal neighbours (this is
    // how a step can remove two changes when C' equals C_{i-1} or
    // C_{i+2}).
    runs[best_pair].config = best_replacement;
    runs[best_pair].end = runs[best_pair + 1].end;
    runs.erase(runs.begin() + static_cast<int64_t>(best_pair) + 1);
    ++local_stats.merge_steps;
    std::vector<Run> coalesced;
    for (Run& run : runs) {
      if (!coalesced.empty() && coalesced.back().config == run.config) {
        coalesced.back().end = run.end;
      } else {
        coalesced.push_back(run);
      }
    }
    runs = std::move(coalesced);
  }

  DesignSchedule schedule;
  schedule.configs.resize(problem.num_segments());
  for (const Run& run : runs) {
    for (size_t i = run.begin; i < run.end; ++i) {
      schedule.configs[i] = run.config;
    }
  }
  schedule.total_cost = EvaluateScheduleCost(problem, schedule.configs);
  CDPD_LOG(logger, LogLevel::kInfo, "merging.end",
           LogField("cost", schedule.total_cost),
           LogField("merge_steps", local_stats.merge_steps),
           LogField("candidate_evaluations",
                    local_stats.candidate_evaluations));
  local_stats.wall_seconds = watch.ElapsedSeconds();
  local_stats.costings = what_if.costings() - costings_before;
  if (stats != nullptr) *stats = local_stats;
  return schedule;
}

}  // namespace cdpd
