#include "core/k_aware_graph.h"

#include <limits>

#include "common/stopwatch.h"

namespace cdpd {

KAwareGraphSize ComputeKAwareGraphSize(int64_t num_stages, int64_t num_configs,
                                       int64_t k) {
  KAwareGraphSize size;
  const int64_t layers = k + 1;
  size.nodes = num_stages * layers * num_configs + 2;
  if (num_stages == 0) {
    size.edges = 0;
    return size;
  }
  // Source edges: into every stage-1 node of layer 0 (the initial
  // design choice; see DesignProblem::count_initial_change for why the
  // first transition does not consume a layer by default).
  int64_t edges = num_configs;
  // Between consecutive stages, per layer: num_configs stay edges, and
  // num_configs * (num_configs - 1) change edges into the next layer
  // (absent from the last layer).
  const int64_t change_edges = num_configs * (num_configs - 1);
  edges += (num_stages - 1) *
           (layers * num_configs + (layers - 1) * change_edges);
  // Destination edges: from every node of the last stage.
  edges += layers * num_configs;
  size.edges = edges;
  return size;
}

Result<DesignSchedule> SolveKAware(const DesignProblem& problem, int64_t k,
                                   SolveStats* stats, ThreadPool* pool,
                                   Tracer* tracer) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  if (k < 0) {
    return Status::InvalidArgument("change bound k must be >= 0");
  }
  const WhatIfEngine& what_if = *problem.what_if;
  const Stopwatch watch;
  const int64_t costings_before = what_if.costings();
  const int64_t hits_before = what_if.cache_hits();
  const size_t n = problem.num_segments();
  const std::vector<Configuration>& configs = problem.candidates;
  const size_t m = configs.size();
  const size_t layers = static_cast<size_t>(k) + 1;

  SolveStats local_stats;
  local_stats.threads_used = pool != nullptr ? pool->num_threads() : 1;
  DesignSchedule schedule;
  if (n == 0) {
    if (problem.final_config.has_value()) {
      schedule.total_cost =
          what_if.TransitionCost(problem.initial, *problem.final_config);
    }
    local_stats.wall_seconds = watch.ElapsedSeconds();
    if (stats != nullptr) *stats = local_stats;
    return schedule;
  }

  // Phase 1 (parallel): dense EXEC/TRANS matrices plus the boundary
  // transition vectors. After this, the DP touches no shared mutable
  // state — every probe is a read-only table lookup.
  CostMatrix matrix;
  std::vector<double> init_trans(m, 0.0);
  std::vector<double> final_trans(m, 0.0);
  {
    CDPD_TRACE_SPAN(tracer, "kaware.precompute", "solver");
    matrix = what_if.PrecomputeCostMatrix(configs, pool, tracer);
    ParallelFor(pool, 0, m, [&](size_t c) {
      init_trans[c] = what_if.TransitionCost(problem.initial, configs[c]);
      if (problem.final_config.has_value()) {
        final_trans[c] =
            what_if.TransitionCost(configs[c], *problem.final_config);
      }
    });
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dist[l * m + c]: cheapest way to execute S_1..S_i with
  // C_i = configs[c] using exactly layer l (number of changes
  // consumed).
  std::vector<double> dist(layers * m, kInf);
  struct Parent {
    int32_t layer = -1;
    int32_t config = -1;
  };
  // parent[(stage * layers + l) * m + c] for path reconstruction.
  std::vector<Parent> parent(n * layers * m);

  for (size_t c = 0; c < m; ++c) {
    const bool is_initial = configs[c] == problem.initial;
    const size_t layer =
        (problem.count_initial_change && !is_initial) ? 1 : 0;
    if (layer >= layers) continue;
    const double cost = init_trans[c] + matrix.Exec(0, c);
    if (cost < dist[layer * m + c]) {
      dist[layer * m + c] = cost;
      ++local_stats.nodes_expanded;
    }
  }

  // Phase 2: the layered DP, one parallel sweep over the (layer,
  // config) cells per stage. Each cell depends only on the previous
  // stage's dist array and scans predecessors in the same order as the
  // serial loop, so the argmin (and hence the schedule) is
  // thread-count-invariant.
  std::vector<double> next(layers * m, kInf);
  CDPD_TRACE_SPAN(tracer, "kaware.dp", "solver",
                  static_cast<int64_t>(n - 1));
  for (size_t stage = 1; stage < n; ++stage) {
    CDPD_TRACE_SPAN(tracer, "kaware.stage", "solver",
                    static_cast<int64_t>(stage));
    Parent* stage_parent = parent.data() + stage * layers * m;
    ParallelFor(pool, 0, layers * m, [&](size_t cell) {
      const size_t l = cell / m;
      const size_t c = cell % m;
      double best = kInf;
      Parent best_parent;
      // Stay edge: same configuration, same layer.
      if (dist[cell] < kInf) {
        best = dist[cell];
        best_parent =
            Parent{static_cast<int32_t>(l), static_cast<int32_t>(c)};
      }
      // Change edges: arrive from a different configuration one layer
      // up.
      if (l > 0) {
        const double* prev_layer = dist.data() + (l - 1) * m;
        for (size_t p = 0; p < m; ++p) {
          if (p == c || prev_layer[p] == kInf) continue;
          const double cost = prev_layer[p] + matrix.Trans(p, c);
          if (cost < best) {
            best = cost;
            best_parent = Parent{static_cast<int32_t>(l - 1),
                                 static_cast<int32_t>(p)};
          }
        }
      }
      if (best < kInf) {
        next[cell] = best + matrix.Exec(stage, c);
        stage_parent[cell] = best_parent;
      } else {
        next[cell] = kInf;
      }
    });
    std::swap(dist, next);
    for (size_t cell = 0; cell < layers * m; ++cell) {
      if (dist[cell] < kInf) ++local_stats.nodes_expanded;
    }
  }
  // Relaxation count (closed form, matching the serial edge counting:
  // one stay relaxation per cell plus m-1 change relaxations per cell
  // above layer 0, per interior stage).
  local_stats.relaxations =
      static_cast<int64_t>(n - 1) *
      (static_cast<int64_t>(layers * m) +
       static_cast<int64_t>((layers - 1) * m) * static_cast<int64_t>(m - 1));

  double best = kInf;
  size_t best_layer = 0;
  size_t best_config = 0;
  for (size_t l = 0; l < layers; ++l) {
    for (size_t c = 0; c < m; ++c) {
      if (dist[l * m + c] == kInf) continue;
      double cost = dist[l * m + c];
      if (problem.final_config.has_value()) {
        cost += final_trans[c];
      }
      if (cost < best) {
        best = cost;
        best_layer = l;
        best_config = c;
      }
    }
  }
  if (best == kInf) {
    return Status::Internal("k-aware graph has no feasible path");
  }

  schedule.total_cost = best;
  schedule.configs.resize(n);
  size_t l = best_layer;
  size_t c = best_config;
  for (size_t stage = n; stage-- > 0;) {
    schedule.configs[stage] = configs[c];
    if (stage == 0) break;
    const Parent p = parent[(stage * layers + l) * m + c];
    l = static_cast<size_t>(p.layer);
    c = static_cast<size_t>(p.config);
  }
  local_stats.wall_seconds = watch.ElapsedSeconds();
  local_stats.costings = what_if.costings() - costings_before;
  local_stats.cache_hits = what_if.cache_hits() - hits_before;
  if (stats != nullptr) *stats = local_stats;
  return schedule;
}

}  // namespace cdpd
