#include "core/k_aware_graph.h"

#include <limits>

namespace cdpd {

KAwareGraphSize ComputeKAwareGraphSize(int64_t num_stages, int64_t num_configs,
                                       int64_t k) {
  KAwareGraphSize size;
  const int64_t layers = k + 1;
  size.nodes = num_stages * layers * num_configs + 2;
  if (num_stages == 0) {
    size.edges = 0;
    return size;
  }
  // Source edges: into every stage-1 node of layer 0 (the initial
  // design choice; see DesignProblem::count_initial_change for why the
  // first transition does not consume a layer by default).
  int64_t edges = num_configs;
  // Between consecutive stages, per layer: num_configs stay edges, and
  // num_configs * (num_configs - 1) change edges into the next layer
  // (absent from the last layer).
  const int64_t change_edges = num_configs * (num_configs - 1);
  edges += (num_stages - 1) *
           (layers * num_configs + (layers - 1) * change_edges);
  // Destination edges: from every node of the last stage.
  edges += layers * num_configs;
  size.edges = edges;
  return size;
}

Result<DesignSchedule> SolveKAware(const DesignProblem& problem, int64_t k,
                                   KAwareSolveStats* stats) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  if (k < 0) {
    return Status::InvalidArgument("change bound k must be >= 0");
  }
  const WhatIfEngine& what_if = *problem.what_if;
  const size_t n = problem.num_segments();
  const std::vector<Configuration>& configs = problem.candidates;
  const size_t m = configs.size();
  const size_t layers = static_cast<size_t>(k) + 1;

  KAwareSolveStats local_stats;
  DesignSchedule schedule;
  if (n == 0) {
    if (problem.final_config.has_value()) {
      schedule.total_cost =
          what_if.TransitionCost(problem.initial, *problem.final_config);
    }
    if (stats != nullptr) *stats = local_stats;
    return schedule;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dist[l][c]: cheapest way to execute S_1..S_i with C_i = configs[c]
  // using exactly-reachable layer l (number of changes consumed).
  std::vector<std::vector<double>> dist(layers,
                                        std::vector<double>(m, kInf));
  struct Parent {
    int32_t layer = -1;
    int32_t config = -1;
  };
  // parent[i][l][c] for path reconstruction.
  std::vector<std::vector<std::vector<Parent>>> parent(
      n, std::vector<std::vector<Parent>>(layers, std::vector<Parent>(m)));

  for (size_t c = 0; c < m; ++c) {
    const bool is_initial = configs[c] == problem.initial;
    const size_t layer =
        (problem.count_initial_change && !is_initial) ? 1 : 0;
    if (layer >= layers) continue;
    const double cost = what_if.TransitionCost(problem.initial, configs[c]) +
                        what_if.SegmentCost(0, configs[c]);
    if (cost < dist[layer][c]) {
      dist[layer][c] = cost;
      ++local_stats.states;
    }
  }

  for (size_t stage = 1; stage < n; ++stage) {
    std::vector<std::vector<double>> next(layers,
                                          std::vector<double>(m, kInf));
    for (size_t l = 0; l < layers; ++l) {
      for (size_t c = 0; c < m; ++c) {
        double best = kInf;
        Parent best_parent;
        // Stay edge: same configuration, same layer.
        if (dist[l][c] < best) {
          best = dist[l][c];
          best_parent = Parent{static_cast<int32_t>(l),
                               static_cast<int32_t>(c)};
        }
        ++local_stats.relaxations;
        // Change edges: arrive from a different configuration one
        // layer up.
        if (l > 0) {
          for (size_t p = 0; p < m; ++p) {
            if (p == c) continue;
            ++local_stats.relaxations;
            if (dist[l - 1][p] == kInf) continue;
            const double cost =
                dist[l - 1][p] +
                what_if.TransitionCost(configs[p], configs[c]);
            if (cost < best) {
              best = cost;
              best_parent = Parent{static_cast<int32_t>(l - 1),
                                   static_cast<int32_t>(p)};
            }
          }
        }
        if (best < kInf) {
          next[l][c] = best + what_if.SegmentCost(stage, configs[c]);
          parent[stage][l][c] = best_parent;
          ++local_stats.states;
        }
      }
    }
    dist = std::move(next);
  }

  double best = kInf;
  size_t best_layer = 0;
  size_t best_config = 0;
  for (size_t l = 0; l < layers; ++l) {
    for (size_t c = 0; c < m; ++c) {
      if (dist[l][c] == kInf) continue;
      double cost = dist[l][c];
      if (problem.final_config.has_value()) {
        cost += what_if.TransitionCost(configs[c], *problem.final_config);
      }
      if (cost < best) {
        best = cost;
        best_layer = l;
        best_config = c;
      }
    }
  }
  if (best == kInf) {
    return Status::Internal("k-aware graph has no feasible path");
  }

  schedule.total_cost = best;
  schedule.configs.resize(n);
  size_t l = best_layer;
  size_t c = best_config;
  for (size_t stage = n; stage-- > 0;) {
    schedule.configs[stage] = configs[c];
    if (stage == 0) break;
    const Parent p = parent[stage][l][c];
    l = static_cast<size_t>(p.layer);
    c = static_cast<size_t>(p.config);
  }
  if (stats != nullptr) *stats = local_stats;
  return schedule;
}

}  // namespace cdpd
