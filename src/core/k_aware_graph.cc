#include "core/k_aware_graph.h"

#include <limits>

#include "common/math_util.h"
#include "common/stopwatch.h"

namespace cdpd {

KAwareGraphSize ComputeKAwareGraphSize(int64_t num_stages, int64_t num_configs,
                                       int64_t k) {
  KAwareGraphSize size;
  // Saturating throughout: k + 1 alone overflows for k = INT64_MAX,
  // and the node/edge products overflow long before that.
  const int64_t layers = SaturatingAdd(k, 1);
  size.nodes = SaturatingAdd(
      SaturatingMul(SaturatingMul(num_stages, layers), num_configs), 2);
  if (num_stages == 0) {
    size.edges = 0;
    return size;
  }
  // Source edges: into every stage-1 node of layer 0 (the initial
  // design choice; see DesignProblem::count_initial_change for why the
  // first transition does not consume a layer by default).
  int64_t edges = num_configs;
  // Between consecutive stages, per layer: num_configs stay edges, and
  // num_configs * (num_configs - 1) change edges into the next layer
  // (absent from the last layer).
  const int64_t change_edges =
      SaturatingMul(num_configs, num_configs > 0 ? num_configs - 1 : 0);
  const int64_t per_gap =
      SaturatingAdd(SaturatingMul(layers, num_configs),
                    SaturatingMul(layers - 1, change_edges));
  edges = SaturatingAdd(edges, SaturatingMul(num_stages - 1, per_gap));
  // Destination edges: from every node of the last stage.
  edges = SaturatingAdd(edges, SaturatingMul(layers, num_configs));
  size.edges = edges;
  return size;
}

int64_t PredictKAwareTableBytes(int64_t num_stages, int64_t num_configs,
                                int64_t k, bool count_initial_change) {
  if (num_stages <= 0 || num_configs <= 0) return 0;
  if (k < 0) k = 0;
  // The same layer clamp SolveKAware applies before sizing its tables.
  const int64_t max_changes = num_stages - 1 + (count_initial_change ? 1 : 0);
  const int64_t layers =
      SaturatingAdd(k >= max_changes ? max_changes : k, 1);
  const int64_t layer_cells = SaturatingMul(layers, num_configs);
  // dist + next: two layers x m double arrays.
  int64_t bytes = SaturatingMul(
      SaturatingMul(int64_t{2}, layer_cells),
      static_cast<int64_t>(sizeof(double)));
  // parent: n x layers x m cells of 8 bytes ({int32 layer, int32
  // config}).
  bytes = SaturatingAdd(
      bytes, SaturatingMul(SaturatingMul(num_stages, layer_cells),
                           int64_t{8}));
  // init_trans + final_trans boundary vectors.
  bytes = SaturatingAdd(
      bytes, SaturatingMul(SaturatingMul(int64_t{2}, num_configs),
                           static_cast<int64_t>(sizeof(double))));
  return bytes;
}

Result<DesignSchedule> SolveKAware(const DesignProblem& problem, int64_t k,
                                   SolveStats* stats, ThreadPool* pool,
                                   Tracer* tracer, const Budget* budget,
                                   const ProgressFn* progress, Logger* logger,
                                   ResourceTracker* tracker,
                                   CostCache* cost_cache) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  if (k < 0) {
    return Status::InvalidArgument("change bound k must be >= 0");
  }
  const WhatIfEngine& what_if = *problem.what_if;
  const Stopwatch watch;
  const int64_t costings_before = what_if.costings();
  const size_t n = problem.num_segments();
  const CandidateSpace& configs = problem.candidates;
  const size_t m = configs.size();

  SolveStats local_stats;
  local_stats.threads_used = pool != nullptr ? pool->num_threads() : 1;
  DesignSchedule schedule;
  if (n == 0) {
    if (problem.final_config.has_value()) {
      schedule.total_cost =
          what_if.TransitionCost(problem.initial, *problem.final_config);
    }
    local_stats.wall_seconds = watch.ElapsedSeconds();
    if (stats != nullptr) *stats = local_stats;
    return schedule;
  }

  // No schedule over n segments can make more changes than n - 1
  // interior switches plus (when it counts) the initial build, so a
  // larger k buys nothing — clamp before sizing the DP table. The
  // clamp also makes k = INT64_MAX safe: layers is computed from the
  // clamped value, never from k + 1 directly.
  const int64_t max_changes =
      static_cast<int64_t>(n) - 1 + (problem.count_initial_change ? 1 : 0);
  const size_t layers =
      static_cast<size_t>(k >= max_changes ? max_changes : k) + 1;
  // The parent table holds n * layers * m cells; reject sizes that
  // overflow int64 before allocating (the allocation itself would
  // otherwise wrap size_t arithmetic or bad_alloc unpredictably).
  int64_t table_cells = 0;
  if (!CheckedMul(static_cast<int64_t>(n), static_cast<int64_t>(layers),
                  &table_cells) ||
      !CheckedMul(table_cells, static_cast<int64_t>(m), &table_cells)) {
    return Status::InvalidArgument(
        "k-aware DP table of " + std::to_string(n) + " stages x " +
        std::to_string(layers) + " layers x " + std::to_string(m) +
        " candidate configurations overflows the addressable size");
  }

  // Charge the two big allocation classes before making either. A
  // refusal (the tracker's soft limit would be passed) degrades to the
  // cheapest static schedule instead of allocating past budget — the
  // same anytime contract as a deadline, reached before any table
  // exists.
  ScopedReservation matrix_reservation = ScopedReservation::Try(
      tracker, MemComponent::kCostMatrix, CostMatrix::EstimateBytes(n, m));
  ScopedReservation table_reservation;
  if (matrix_reservation.ok()) {
    table_reservation = ScopedReservation::Try(
        tracker, MemComponent::kKAwareTable,
        PredictKAwareTableBytes(static_cast<int64_t>(n),
                                static_cast<int64_t>(m), k,
                                problem.count_initial_change));
  }
  if (!matrix_reservation.ok() || !table_reservation.ok()) {
    CDPD_LOG(logger, LogLevel::kWarn, "kaware.memory_limit",
             LogField("limit_bytes", tracker->limit_bytes()),
             LogField("fallback", "best-static"));
    CDPD_ASSIGN_OR_RETURN(schedule, BestStaticSchedule(problem, k));
    local_stats.deadline_hit = true;
    local_stats.best_effort = true;
    local_stats.wall_seconds = watch.ElapsedSeconds();
    local_stats.costings = what_if.costings() - costings_before;
    if (stats != nullptr) *stats = local_stats;
    return schedule;
  }

  // Phase 1 (parallel): dense EXEC/TRANS matrices plus the boundary
  // transition vectors. After this, the DP touches no shared mutable
  // state — every probe is a read-only table lookup.
  CostMatrix matrix;
  std::vector<double> init_trans(m, 0.0);
  std::vector<double> final_trans(m, 0.0);
  CDPD_LOG(logger, LogLevel::kInfo, "kaware.start", LogField("segments", n),
           LogField("candidates", m), LogField("k", k),
           LogField("layers", layers));
  {
    CDPD_TRACE_SPAN(tracer, "kaware.precompute", "solver");
    CDPD_ASSIGN_OR_RETURN(
        matrix, what_if.PrecomputeCostMatrix(configs, pool, tracer, budget,
                                             progress, logger, cost_cache,
                                             tracker));
    if (!matrix.complete()) {
      return Status::DeadlineExceeded(
          "budget expired during the what-if precompute, before any "
          "feasible schedule could be priced");
    }
    ParallelFor(pool, 0, m, [&](size_t c) {
      init_trans[c] = what_if.TransitionCost(problem.initial, configs[c]);
      if (problem.final_config.has_value()) {
        final_trans[c] =
            what_if.TransitionCost(configs[c], *problem.final_config);
      }
    });
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dist[l * m + c]: cheapest way to execute S_1..S_i with
  // C_i = configs[c] using exactly layer l (number of changes
  // consumed).
  std::vector<double> dist(layers * m, kInf);
  struct Parent {
    int32_t layer = -1;
    int32_t config = -1;
  };
  // parent[(stage * layers + l) * m + c] for path reconstruction.
  std::vector<Parent> parent(n * layers * m);

  for (size_t c = 0; c < m; ++c) {
    const bool is_initial = configs[c] == problem.initial;
    const size_t layer =
        (problem.count_initial_change && !is_initial) ? 1 : 0;
    if (layer >= layers) continue;
    const double cost = init_trans[c] + matrix.Exec(0, c);
    if (cost < dist[layer * m + c]) {
      dist[layer * m + c] = cost;
      ++local_stats.nodes_expanded;
    }
  }

  // Phase 2: the layered DP, one parallel sweep over the (layer,
  // config) cells per stage. Each cell depends only on the previous
  // stage's dist array and scans predecessors in the same order as the
  // serial loop, so the argmin (and hence the schedule) is
  // thread-count-invariant.
  std::vector<double> next(layers * m, kInf);

  const auto finish = [&](DesignSchedule done) -> DesignSchedule {
    local_stats.wall_seconds = watch.ElapsedSeconds();
    local_stats.costings = what_if.costings() - costings_before;
    if (stats != nullptr) *stats = local_stats;
    return done;
  };
  // Anytime fallback: freeze the cheapest completed DP prefix. Holding
  // the chosen cell's configuration for the remaining stages adds zero
  // design changes, so whatever layer the prefix ended in, the frozen
  // schedule still makes at most k changes. dist holds the
  // stage-`last_stage` values; parent rows 1..last_stage are filled.
  const auto freeze_prefix =
      [&](size_t last_stage) -> Result<DesignSchedule> {
    double best = kInf;
    size_t best_l = 0;
    size_t best_c = 0;
    for (size_t l = 0; l < layers; ++l) {
      for (size_t c = 0; c < m; ++c) {
        if (dist[l * m + c] == kInf) continue;
        double cost =
            dist[l * m + c] + matrix.ExecRange(last_stage + 1, n, c);
        if (problem.final_config.has_value()) cost += final_trans[c];
        if (cost < best) {
          best = cost;
          best_l = l;
          best_c = c;
        }
      }
    }
    if (best == kInf) {
      return Status::DeadlineExceeded(
          "budget expired before any feasible schedule was found (the "
          "completed k-aware DP prefix has no reachable state)");
    }
    DesignSchedule frozen;
    frozen.configs.assign(n, configs[best_c]);
    size_t l = best_l;
    size_t c = best_c;
    for (size_t stage = last_stage; stage-- > 0;) {
      const Parent p = parent[((stage + 1) * layers + l) * m + c];
      l = static_cast<size_t>(p.layer);
      c = static_cast<size_t>(p.config);
      frozen.configs[stage] = configs[c];
    }
    frozen.total_cost = EvaluateScheduleCost(problem, frozen.configs);
    local_stats.deadline_hit = true;
    local_stats.best_effort = true;
    return frozen;
  };

  CDPD_TRACE_SPAN(tracer, "kaware.dp", "solver",
                  static_cast<int64_t>(n - 1));
  for (size_t stage = 1; stage < n; ++stage) {
    if (BudgetExpired(budget)) {
      local_stats.relaxations =
          static_cast<int64_t>(stage - 1) *
          (static_cast<int64_t>(layers * m) +
           static_cast<int64_t>((layers - 1) * m) *
               static_cast<int64_t>(m - 1));
      CDPD_LOG(logger, LogLevel::kWarn, "kaware.deadline",
               LogField("stage", stage), LogField("stages", n));
      CDPD_ASSIGN_OR_RETURN(DesignSchedule frozen, freeze_prefix(stage - 1));
      return finish(std::move(frozen));
    }
    ReportProgress(progress, "kaware.dp",
                   static_cast<double>(stage) / static_cast<double>(n));
    CDPD_TRACE_SPAN(tracer, "kaware.stage", "solver",
                    static_cast<int64_t>(stage));
    Parent* stage_parent = parent.data() + stage * layers * m;
    const double* dist_data = dist.data();
    ParallelFor(pool, 0, m, [&](size_t c) {
      // One transposed TRANS row per destination config, reused across
      // every layer of this stage: the row stays cache-hot while the
      // layer loop sweeps it, and each sweep is a unit-stride read
      // (trans_into[p] == Trans(p, c)) instead of a stride-m gather.
      const double* trans_into = matrix.TransInto(c);
      const double exec = matrix.Exec(stage, c);
      for (size_t l = 0; l < layers; ++l) {
        const size_t cell = l * m + c;
        // Stay edge: same configuration, same layer. An unreachable
        // cell carries +inf through unchanged — no guard needed.
        double best = dist_data[cell];
        Parent best_parent =
            Parent{static_cast<int32_t>(l), static_cast<int32_t>(c)};
        // Change edges: arrive from a different configuration one
        // layer up. The p == c exclusion becomes two contiguous
        // ranges [0, c) and (c, m); both sweep ascending, so the
        // argmin tie-break matches the serial p = 0..m-1 scan.
        // Unreachable predecessors need no kInf guard either:
        // inf + finite = inf never wins `cost < best`.
        if (l > 0) {
          const double* prev_layer = dist_data + (l - 1) * m;
          for (size_t p = 0; p < c; ++p) {
            const double cost = prev_layer[p] + trans_into[p];
            if (cost < best) {
              best = cost;
              best_parent = Parent{static_cast<int32_t>(l - 1),
                                   static_cast<int32_t>(p)};
            }
          }
          for (size_t p = c + 1; p < m; ++p) {
            const double cost = prev_layer[p] + trans_into[p];
            if (cost < best) {
              best = cost;
              best_parent = Parent{static_cast<int32_t>(l - 1),
                                   static_cast<int32_t>(p)};
            }
          }
        }
        if (best < kInf) {
          next[cell] = best + exec;
          stage_parent[cell] = best_parent;
        } else {
          next[cell] = kInf;
        }
      }
    });
    std::swap(dist, next);
    for (size_t cell = 0; cell < layers * m; ++cell) {
      if (dist[cell] < kInf) ++local_stats.nodes_expanded;
    }
  }
  // Relaxation count (closed form, matching the serial edge counting:
  // one stay relaxation per cell plus m-1 change relaxations per cell
  // above layer 0, per interior stage).
  local_stats.relaxations =
      static_cast<int64_t>(n - 1) *
      (static_cast<int64_t>(layers * m) +
       static_cast<int64_t>((layers - 1) * m) * static_cast<int64_t>(m - 1));

  double best = kInf;
  size_t best_layer = 0;
  size_t best_config = 0;
  for (size_t l = 0; l < layers; ++l) {
    for (size_t c = 0; c < m; ++c) {
      if (dist[l * m + c] == kInf) continue;
      double cost = dist[l * m + c];
      if (problem.final_config.has_value()) {
        cost += final_trans[c];
      }
      if (cost < best) {
        best = cost;
        best_layer = l;
        best_config = c;
      }
    }
  }
  if (best == kInf) {
    return Status::Internal("k-aware graph has no feasible path");
  }

  schedule.total_cost = best;
  schedule.configs.resize(n);
  size_t l = best_layer;
  size_t c = best_config;
  for (size_t stage = n; stage-- > 0;) {
    schedule.configs[stage] = configs[c];
    if (stage == 0) break;
    const Parent p = parent[(stage * layers + l) * m + c];
    l = static_cast<size_t>(p.layer);
    c = static_cast<size_t>(p.config);
  }
  ReportProgress(progress, "kaware.dp", 1.0, schedule.total_cost);
  CDPD_LOG(logger, LogLevel::kInfo, "kaware.end",
           LogField("cost", schedule.total_cost),
           LogField("nodes_expanded", local_stats.nodes_expanded),
           LogField("relaxations", local_stats.relaxations));
  local_stats.wall_seconds = watch.ElapsedSeconds();
  local_stats.costings = what_if.costings() - costings_before;
  if (stats != nullptr) *stats = local_stats;
  return schedule;
}

}  // namespace cdpd
