#include "core/unconstrained_optimizer.h"

#include <limits>

#include "common/stopwatch.h"

namespace cdpd {

Result<DesignSchedule> SolveUnconstrained(const DesignProblem& problem,
                                          SolveStats* stats, ThreadPool* pool,
                                          Tracer* tracer, const Budget* budget,
                                          const ProgressFn* progress,
                                          Logger* logger,
                                          ResourceTracker* tracker,
                                          CostCache* cost_cache) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  const WhatIfEngine& what_if = *problem.what_if;
  const Stopwatch watch;
  const int64_t costings_before = what_if.costings();
  const size_t n = problem.num_segments();
  const CandidateSpace& configs = problem.candidates;
  const size_t m = configs.size();

  SolveStats local_stats;
  local_stats.threads_used = pool != nullptr ? pool->num_threads() : 1;
  DesignSchedule schedule;
  if (n == 0) {
    if (problem.final_config.has_value()) {
      schedule.total_cost =
          what_if.TransitionCost(problem.initial, *problem.final_config);
    }
    local_stats.wall_seconds = watch.ElapsedSeconds();
    if (stats != nullptr) *stats = local_stats;
    return schedule;
  }

  CDPD_LOG(logger, LogLevel::kInfo, "unconstrained.start",
           LogField("segments", n), LogField("candidates", m));

  // Charge the matrix and the DP arrays (dist/next doubles plus the
  // n x m parent table) before allocating either; a refusal degrades
  // to the cheapest static schedule instead of blowing the budget.
  ScopedReservation matrix_reservation = ScopedReservation::Try(
      tracker, MemComponent::kCostMatrix, CostMatrix::EstimateBytes(n, m));
  ScopedReservation dp_reservation;
  if (matrix_reservation.ok()) {
    dp_reservation = ScopedReservation::Try(
        tracker, MemComponent::kSequenceGraph,
        static_cast<int64_t>((2 * m) * sizeof(double) +
                             n * m * sizeof(size_t)));
  }
  if (!matrix_reservation.ok() || !dp_reservation.ok()) {
    CDPD_LOG(logger, LogLevel::kWarn, "unconstrained.memory_limit",
             LogField("limit_bytes", tracker->limit_bytes()),
             LogField("fallback", "best-static"));
    CDPD_ASSIGN_OR_RETURN(schedule,
                          BestStaticSchedule(problem, std::nullopt));
    local_stats.deadline_hit = true;
    local_stats.best_effort = true;
    local_stats.wall_seconds = watch.ElapsedSeconds();
    local_stats.costings = what_if.costings() - costings_before;
    if (stats != nullptr) *stats = local_stats;
    return schedule;
  }

  // Parallel precompute; the DP below is pure table lookups.
  CostMatrix matrix;
  {
    CDPD_TRACE_SPAN(tracer, "unconstrained.precompute", "solver");
    CDPD_ASSIGN_OR_RETURN(
        matrix, what_if.PrecomputeCostMatrix(configs, pool, tracer, budget,
                                             progress, logger, cost_cache,
                                             tracker));
  }
  if (!matrix.complete()) {
    return Status::DeadlineExceeded(
        "budget expired during the what-if precompute, before any "
        "feasible schedule could be priced");
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(m);
  std::vector<std::vector<size_t>> parent(n, std::vector<size_t>(m, 0));

  CDPD_TRACE_SPAN(tracer, "unconstrained.dp", "solver",
                  static_cast<int64_t>(n));
  ParallelFor(pool, 0, m, [&](size_t c) {
    dist[c] = what_if.TransitionCost(problem.initial, configs[c]) +
              matrix.Exec(0, c);
  });
  std::vector<double> next(m, kInf);

  const auto finish = [&](DesignSchedule done) -> DesignSchedule {
    local_stats.wall_seconds = watch.ElapsedSeconds();
    local_stats.costings = what_if.costings() - costings_before;
    if (stats != nullptr) *stats = local_stats;
    return done;
  };
  // Anytime fallback: the budget expired with the DP `last_stage`
  // stages deep — freeze the cheapest completed prefix by holding its
  // final configuration for the remaining stages. dist holds the
  // stage-`last_stage` values and parent rows 1..last_stage are
  // filled, so the frozen schedule is exactly a DP prefix plus a
  // no-change tail (always feasible: the unconstrained problem has no
  // change bound).
  const auto freeze_prefix = [&](size_t last_stage) -> DesignSchedule {
    double best = kInf;
    size_t best_c = 0;
    for (size_t c = 0; c < m; ++c) {
      double cost = dist[c] + matrix.ExecRange(last_stage + 1, n, c);
      if (problem.final_config.has_value()) {
        cost += what_if.TransitionCost(configs[c], *problem.final_config);
      }
      if (cost < best) {
        best = cost;
        best_c = c;
      }
    }
    DesignSchedule frozen;
    frozen.configs.assign(n, configs[best_c]);
    size_t c = best_c;
    for (size_t s = last_stage + 1; s-- > 0;) {
      frozen.configs[s] = configs[c];
      c = parent[s][c];
    }
    frozen.total_cost = EvaluateScheduleCost(problem, frozen.configs);
    local_stats.deadline_hit = true;
    local_stats.best_effort = true;
    return frozen;
  };

  for (size_t stage = 1; stage < n; ++stage) {
    if (BudgetExpired(budget)) {
      local_stats.nodes_expanded = static_cast<int64_t>(stage * m);
      local_stats.relaxations =
          static_cast<int64_t>(stage - 1) * static_cast<int64_t>(m * m);
      CDPD_LOG(logger, LogLevel::kWarn, "unconstrained.deadline",
               LogField("stage", stage), LogField("stages", n));
      return finish(freeze_prefix(stage - 1));
    }
    ReportProgress(progress, "unconstrained.dp",
                   static_cast<double>(stage) / static_cast<double>(n));
    CDPD_TRACE_SPAN(tracer, "unconstrained.stage", "solver",
                    static_cast<int64_t>(stage));
    std::vector<size_t>& stage_parent = parent[stage];
    const double* dist_data = dist.data();
    ParallelFor(pool, 0, m, [&](size_t c) {
      // Unit-stride sweep over the transposed TRANS row: for the fixed
      // destination c, trans_into[p] == Trans(p, c).
      const double* trans_into = matrix.TransInto(c);
      double best = kInf;
      size_t best_prev = 0;
      for (size_t p = 0; p < m; ++p) {
        const double cost = dist_data[p] + trans_into[p];
        if (cost < best) {
          best = cost;
          best_prev = p;
        }
      }
      next[c] = best + matrix.Exec(stage, c);
      stage_parent[c] = best_prev;
    });
    std::swap(dist, next);
  }
  local_stats.nodes_expanded = static_cast<int64_t>(n * m);
  local_stats.relaxations =
      static_cast<int64_t>(n - 1) * static_cast<int64_t>(m * m);

  // Destination: unconstrained, or a forced final transition.
  double best = kInf;
  size_t best_last = 0;
  for (size_t c = 0; c < m; ++c) {
    double cost = dist[c];
    if (problem.final_config.has_value()) {
      cost += what_if.TransitionCost(configs[c], *problem.final_config);
    }
    if (cost < best) {
      best = cost;
      best_last = c;
    }
  }

  schedule.total_cost = best;
  schedule.configs.resize(n);
  size_t c = best_last;
  for (size_t stage = n; stage-- > 0;) {
    schedule.configs[stage] = configs[c];
    c = parent[stage][c];
  }
  ReportProgress(progress, "unconstrained.dp", 1.0, schedule.total_cost);
  CDPD_LOG(logger, LogLevel::kInfo, "unconstrained.end",
           LogField("cost", schedule.total_cost),
           LogField("nodes_expanded", local_stats.nodes_expanded),
           LogField("relaxations", local_stats.relaxations));
  local_stats.wall_seconds = watch.ElapsedSeconds();
  local_stats.costings = what_if.costings() - costings_before;
  if (stats != nullptr) *stats = local_stats;
  return schedule;
}

}  // namespace cdpd
