#include "core/unconstrained_optimizer.h"

#include <limits>

namespace cdpd {

Result<DesignSchedule> SolveUnconstrained(const DesignProblem& problem) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  const WhatIfEngine& what_if = *problem.what_if;
  const size_t n = problem.num_segments();
  const std::vector<Configuration>& configs = problem.candidates;
  const size_t m = configs.size();

  DesignSchedule schedule;
  if (n == 0) {
    if (problem.final_config.has_value()) {
      schedule.total_cost =
          what_if.TransitionCost(problem.initial, *problem.final_config);
    }
    return schedule;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(m);
  std::vector<std::vector<size_t>> parent(n, std::vector<size_t>(m, 0));

  for (size_t c = 0; c < m; ++c) {
    dist[c] = what_if.TransitionCost(problem.initial, configs[c]) +
              what_if.SegmentCost(0, configs[c]);
  }
  for (size_t stage = 1; stage < n; ++stage) {
    std::vector<double> next(m, kInf);
    for (size_t c = 0; c < m; ++c) {
      double best = kInf;
      size_t best_prev = 0;
      for (size_t p = 0; p < m; ++p) {
        const double cost =
            dist[p] + what_if.TransitionCost(configs[p], configs[c]);
        if (cost < best) {
          best = cost;
          best_prev = p;
        }
      }
      next[c] = best + what_if.SegmentCost(stage, configs[c]);
      parent[stage][c] = best_prev;
    }
    dist = std::move(next);
  }

  // Destination: unconstrained, or a forced final transition.
  double best = kInf;
  size_t best_last = 0;
  for (size_t c = 0; c < m; ++c) {
    double cost = dist[c];
    if (problem.final_config.has_value()) {
      cost += what_if.TransitionCost(configs[c], *problem.final_config);
    }
    if (cost < best) {
      best = cost;
      best_last = c;
    }
  }

  schedule.total_cost = best;
  schedule.configs.resize(n);
  size_t c = best_last;
  for (size_t stage = n; stage-- > 0;) {
    schedule.configs[stage] = configs[c];
    c = parent[stage][c];
  }
  return schedule;
}

}  // namespace cdpd
