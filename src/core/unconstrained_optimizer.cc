#include "core/unconstrained_optimizer.h"

#include <limits>

#include "common/stopwatch.h"

namespace cdpd {

Result<DesignSchedule> SolveUnconstrained(const DesignProblem& problem,
                                          SolveStats* stats, ThreadPool* pool,
                                          Tracer* tracer) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  const WhatIfEngine& what_if = *problem.what_if;
  const Stopwatch watch;
  const int64_t costings_before = what_if.costings();
  const int64_t hits_before = what_if.cache_hits();
  const size_t n = problem.num_segments();
  const std::vector<Configuration>& configs = problem.candidates;
  const size_t m = configs.size();

  SolveStats local_stats;
  local_stats.threads_used = pool != nullptr ? pool->num_threads() : 1;
  DesignSchedule schedule;
  if (n == 0) {
    if (problem.final_config.has_value()) {
      schedule.total_cost =
          what_if.TransitionCost(problem.initial, *problem.final_config);
    }
    local_stats.wall_seconds = watch.ElapsedSeconds();
    if (stats != nullptr) *stats = local_stats;
    return schedule;
  }

  // Parallel precompute; the DP below is pure table lookups.
  CostMatrix matrix;
  {
    CDPD_TRACE_SPAN(tracer, "unconstrained.precompute", "solver");
    matrix = what_if.PrecomputeCostMatrix(configs, pool, tracer);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(m);
  std::vector<std::vector<size_t>> parent(n, std::vector<size_t>(m, 0));

  CDPD_TRACE_SPAN(tracer, "unconstrained.dp", "solver",
                  static_cast<int64_t>(n));
  ParallelFor(pool, 0, m, [&](size_t c) {
    dist[c] = what_if.TransitionCost(problem.initial, configs[c]) +
              matrix.Exec(0, c);
  });
  std::vector<double> next(m, kInf);
  for (size_t stage = 1; stage < n; ++stage) {
    CDPD_TRACE_SPAN(tracer, "unconstrained.stage", "solver",
                    static_cast<int64_t>(stage));
    std::vector<size_t>& stage_parent = parent[stage];
    ParallelFor(pool, 0, m, [&](size_t c) {
      double best = kInf;
      size_t best_prev = 0;
      for (size_t p = 0; p < m; ++p) {
        const double cost = dist[p] + matrix.Trans(p, c);
        if (cost < best) {
          best = cost;
          best_prev = p;
        }
      }
      next[c] = best + matrix.Exec(stage, c);
      stage_parent[c] = best_prev;
    });
    std::swap(dist, next);
  }
  local_stats.nodes_expanded = static_cast<int64_t>(n * m);
  local_stats.relaxations =
      static_cast<int64_t>(n - 1) * static_cast<int64_t>(m * m);

  // Destination: unconstrained, or a forced final transition.
  double best = kInf;
  size_t best_last = 0;
  for (size_t c = 0; c < m; ++c) {
    double cost = dist[c];
    if (problem.final_config.has_value()) {
      cost += what_if.TransitionCost(configs[c], *problem.final_config);
    }
    if (cost < best) {
      best = cost;
      best_last = c;
    }
  }

  schedule.total_cost = best;
  schedule.configs.resize(n);
  size_t c = best_last;
  for (size_t stage = n; stage-- > 0;) {
    schedule.configs[stage] = configs[c];
    c = parent[stage][c];
  }
  local_stats.wall_seconds = watch.ElapsedSeconds();
  local_stats.costings = what_if.costings() - costings_before;
  local_stats.cache_hits = what_if.cache_hits() - hits_before;
  if (stats != nullptr) *stats = local_stats;
  return schedule;
}

}  // namespace cdpd
