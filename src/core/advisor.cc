#include "core/advisor.h"

#include "core/validator.h"

namespace cdpd {

Status AdvisorOptions::Validate() const {
  if (block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  if (k.has_value() && *k < 0) {
    return Status::InvalidArgument(
        "change bound k must be >= 0 when set (use nullopt for "
        "unconstrained)");
  }
  if (space_bound_pages <= 0) {
    return Status::InvalidArgument("space_bound_pages must be positive");
  }
  if (max_indexes_per_config < 1) {
    return Status::InvalidArgument("max_indexes_per_config must be >= 1");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (ranking_max_paths <= 0) {
    return Status::InvalidArgument("ranking_max_paths must be positive");
  }
  if (deadline.has_value() && deadline->count() < 0) {
    return Status::InvalidArgument(
        "deadline must be >= 0 when set (use nullopt for no deadline)");
  }
  if (memory_limit_bytes.has_value() && *memory_limit_bytes <= 0) {
    return Status::InvalidArgument(
        "memory_limit_bytes must be > 0 when set (use nullopt for no "
        "limit)");
  }
  CDPD_RETURN_IF_ERROR(segmented.Validate());
  return Status::OK();
}

Result<Recommendation> Advisor::Recommend(const Workload& workload,
                                          const AdvisorOptions& options) const {
  CDPD_RETURN_IF_ERROR(options.Validate());

  Recommendation rec;
  if (options.segmentation == SegmentationMode::kAdaptive) {
    AdaptiveSegmentOptions adaptive = options.adaptive;
    if (adaptive.base_block_size == 0) {
      adaptive.base_block_size = options.block_size;
    }
    rec.segments =
        SegmentAdaptive(model_->schema(), workload.Span(), adaptive);
  } else {
    rec.segments = SegmentFixed(workload.size(), options.block_size);
  }

  CDPD_LOG(options.observability.logger, LogLevel::kInfo, "advisor.segmented",
           LogField("statements", workload.size()),
           LogField("segments", rec.segments.size()),
           LogField("adaptive",
                    options.segmentation == SegmentationMode::kAdaptive));

  // Candidate indexes: given or generated from the workload.
  rec.candidate_indexes = options.candidate_indexes;
  if (rec.candidate_indexes.empty()) {
    rec.candidate_indexes =
        GenerateCandidateIndexes(model_->schema(), workload.Span(),
                                 rec.segments, options.candidate_gen);
  }

  // Candidate configurations under the space bound.
  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = options.max_indexes_per_config;
  enum_options.space_bound_pages = options.space_bound_pages;
  enum_options.num_rows = model_->num_rows();
  CDPD_ASSIGN_OR_RETURN(
      rec.candidate_configs,
      EnumerateConfigurations(rec.candidate_indexes, enum_options));

  CDPD_LOG(options.observability.logger, LogLevel::kInfo, "advisor.candidates",
           LogField("candidate_indexes", rec.candidate_indexes.size()),
           LogField("candidate_configs", rec.candidate_configs.size()));

  WhatIfEngine what_if(model_, workload.Span(), rec.segments);
  DesignProblem problem;
  problem.what_if = &what_if;
  problem.candidates = rec.candidate_configs;
  problem.initial = options.initial_config;
  problem.final_config = options.final_config;
  problem.space_bound_pages = options.space_bound_pages;
  problem.count_initial_change = options.count_initial_change;

  SolveOptions solve_options;
  solve_options.method = options.method;
  solve_options.k = options.k;
  solve_options.num_threads = options.num_threads;
  solve_options.ranking_max_paths = options.ranking_max_paths;
  solve_options.observability = options.observability;
  solve_options.prune_dominated = options.prune_dominated;
  solve_options.segmented = options.segmented;
  solve_options.cost_cache = options.cost_cache;
  solve_options.explain = options.explain;
  solve_options.deadline = options.deadline;
  solve_options.cancel = options.cancel;
  solve_options.memory_limit_bytes = options.memory_limit_bytes;
  if (options.method == OptimizerMethod::kGreedySeq) {
    solve_options.greedy.candidate_indexes = rec.candidate_indexes;
    solve_options.greedy.max_indexes_per_config =
        options.max_indexes_per_config;
  }

  CDPD_ASSIGN_OR_RETURN(SolveResult solved, Solve(problem, solve_options));
  rec.schedule = std::move(solved.schedule);
  rec.stats = solved.stats;
  rec.optimize_seconds = solved.stats.wall_seconds;
  rec.method_detail = std::move(solved.method_detail);
  rec.explain = std::move(solved.explain);
  if (!solved.reduced_candidates.empty()) {
    // GREEDY-SEQ searched its own reduced configuration set; report
    // that set so the recommendation is reproducible.
    rec.candidate_configs = std::move(solved.reduced_candidates);
    problem.candidates = rec.candidate_configs;
  }

  rec.changes = CountChanges(problem, rec.schedule.configs);
  CDPD_RETURN_IF_ERROR(ValidateSchedule(problem, rec.schedule, options.k));
  return rec;
}

}  // namespace cdpd
