#include "core/advisor.h"

#include "common/stopwatch.h"
#include "core/design_merging.h"
#include "core/greedy_seq.h"
#include "core/hybrid_optimizer.h"
#include "core/k_aware_graph.h"
#include "core/path_ranking.h"
#include "core/unconstrained_optimizer.h"
#include "core/validator.h"

namespace cdpd {

std::string_view OptimizerMethodToString(OptimizerMethod method) {
  switch (method) {
    case OptimizerMethod::kOptimal:
      return "optimal";
    case OptimizerMethod::kGreedySeq:
      return "greedy-seq";
    case OptimizerMethod::kMerging:
      return "merging";
    case OptimizerMethod::kRanking:
      return "ranking";
    case OptimizerMethod::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

Result<Recommendation> Advisor::Recommend(const Workload& workload,
                                          const AdvisorOptions& options) const {
  if (options.block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }

  Recommendation rec;
  if (options.segmentation == SegmentationMode::kAdaptive) {
    AdaptiveSegmentOptions adaptive = options.adaptive;
    if (adaptive.base_block_size == 0) {
      adaptive.base_block_size = options.block_size;
    }
    rec.segments =
        SegmentAdaptive(model_->schema(), workload.Span(), adaptive);
  } else {
    rec.segments = SegmentFixed(workload.size(), options.block_size);
  }

  // Candidate indexes: given or generated from the workload.
  rec.candidate_indexes = options.candidate_indexes;
  if (rec.candidate_indexes.empty()) {
    rec.candidate_indexes =
        GenerateCandidateIndexes(model_->schema(), workload.Span(),
                                 rec.segments, options.candidate_gen);
  }

  // Candidate configurations under the space bound.
  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = options.max_indexes_per_config;
  enum_options.space_bound_pages = options.space_bound_pages;
  enum_options.num_rows = model_->num_rows();
  CDPD_ASSIGN_OR_RETURN(
      rec.candidate_configs,
      EnumerateConfigurations(rec.candidate_indexes, enum_options));

  WhatIfEngine what_if(model_, workload.Span(), rec.segments);
  DesignProblem problem;
  problem.what_if = &what_if;
  problem.candidates = rec.candidate_configs;
  problem.initial = options.initial_config;
  problem.final_config = options.final_config;
  problem.space_bound_pages = options.space_bound_pages;
  problem.count_initial_change = options.count_initial_change;

  Stopwatch watch;
  switch (options.method) {
    case OptimizerMethod::kOptimal: {
      if (options.k < 0) {
        CDPD_ASSIGN_OR_RETURN(rec.schedule, SolveUnconstrained(problem));
        rec.method_detail = "sequence-graph shortest path";
      } else {
        CDPD_ASSIGN_OR_RETURN(rec.schedule, SolveKAware(problem, options.k));
        rec.method_detail = "k-aware sequence graph";
      }
      break;
    }
    case OptimizerMethod::kGreedySeq: {
      GreedySeqOptions greedy;
      greedy.candidate_indexes = rec.candidate_indexes;
      greedy.max_indexes_per_config = options.max_indexes_per_config;
      CDPD_ASSIGN_OR_RETURN(GreedySeqResult greedy_result,
                            SolveGreedySeq(problem, options.k, greedy));
      rec.schedule = std::move(greedy_result.schedule);
      rec.candidate_configs = std::move(greedy_result.reduced_candidates);
      problem.candidates = rec.candidate_configs;
      rec.method_detail =
          "greedy-seq reduced candidates: " +
          std::to_string(rec.candidate_configs.size());
      break;
    }
    case OptimizerMethod::kMerging: {
      CDPD_ASSIGN_OR_RETURN(DesignSchedule unconstrained,
                            SolveUnconstrained(problem));
      if (options.k < 0) {
        rec.schedule = std::move(unconstrained);
        rec.method_detail = "merging (no constraint; unconstrained optimum)";
      } else {
        MergingStats stats;
        CDPD_ASSIGN_OR_RETURN(
            rec.schedule,
            MergeToConstraint(problem, unconstrained, options.k, &stats));
        rec.method_detail =
            "merging steps: " + std::to_string(stats.steps);
      }
      break;
    }
    case OptimizerMethod::kRanking: {
      if (options.k < 0) {
        CDPD_ASSIGN_OR_RETURN(rec.schedule, SolveUnconstrained(problem));
        rec.method_detail = "ranking (no constraint; shortest path)";
      } else {
        RankingStats stats;
        CDPD_ASSIGN_OR_RETURN(
            rec.schedule,
            SolveByRanking(problem, options.k, options.ranking_max_paths,
                           &stats));
        rec.method_detail =
            "ranked paths: " + std::to_string(stats.paths_enumerated);
      }
      break;
    }
    case OptimizerMethod::kHybrid: {
      if (options.k < 0) {
        CDPD_ASSIGN_OR_RETURN(rec.schedule, SolveUnconstrained(problem));
        rec.method_detail = "hybrid (no constraint; shortest path)";
      } else {
        CDPD_ASSIGN_OR_RETURN(HybridResult hybrid,
                              SolveHybrid(problem, options.k));
        rec.schedule = std::move(hybrid.schedule);
        rec.method_detail =
            std::string("hybrid chose ") +
            std::string(HybridChoiceToString(hybrid.choice));
      }
      break;
    }
  }
  rec.optimize_seconds = watch.ElapsedSeconds();
  rec.changes = CountChanges(problem, rec.schedule.configs);
  CDPD_RETURN_IF_ERROR(ValidateSchedule(problem, rec.schedule, options.k));
  return rec;
}

}  // namespace cdpd
