#ifndef CDPD_CORE_SOLVER_H_
#define CDPD_CORE_SOLVER_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/budget.h"
#include "common/observability.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/design_problem.h"
#include "core/explain.h"
#include "core/greedy_seq.h"
#include "core/segment_solver.h"
#include "core/solve_stats.h"
#include "cost/cost_cache.h"

namespace cdpd {

/// The solution technique to run (§3–§5 of the paper plus the hybrid
/// §6.4 suggests).
enum class OptimizerMethod {
  kOptimal,    // Sequence graph (unconstrained) / k-aware sequence graph.
  kGreedySeq,  // GREEDY-SEQ candidate reduction, then k-aware graph.
  kMerging,    // Unconstrained optimum refined by sequential merging.
  kRanking,    // Shortest-path ranking until <= k changes.
  kHybrid,     // k-aware graph for small k, merging for large k.
};

std::string_view OptimizerMethodToString(OptimizerMethod method);

/// The inverse of OptimizerMethodToString: parses the wire/CLI spelling
/// ("optimal" | "greedy-seq" | "merging" | "ranking" | "hybrid").
/// Shared by the RECOMMEND request parser and the journal replay
/// harness so a recorded method name round-trips exactly.
Result<OptimizerMethod> OptimizerMethodFromString(std::string_view name);

/// Everything that parameterizes one Solve() call, uniform across the
/// five techniques. Replaces the divergent free-function signatures
/// (SolveKAware/SolveGreedySeq/SolveHybrid/SolveByRanking/
/// SolveUnconstrained), which remain available as lower-level entry
/// points.
struct SolveOptions {
  OptimizerMethod method = OptimizerMethod::kOptimal;
  /// Change bound k; nullopt = unconstrained (no magic -1 sentinel).
  std::optional<int64_t> k;
  /// Worker threads for the what-if precompute and the DP sweeps.
  /// 0 = ThreadPool::DefaultThreadCount() (the CDPD_THREADS
  /// environment variable, else the hardware concurrency); 1 = serial.
  /// Results are identical for any value.
  int num_threads = 0;
  /// Borrowed worker pool (optional — must outlive the Solve call).
  /// When set it overrides num_threads and the solve spins up no pool
  /// of its own; this is how SolverSession amortizes thread start-up
  /// across repeated Solve() calls. Safe to share across sequential
  /// solves; results are identical either way.
  ThreadPool* pool = nullptr;
  /// Enumeration cap for the ranking method.
  int64_t ranking_max_paths = 1'000'000;
  /// GREEDY-SEQ parameters (candidate indexes + per-config cap); only
  /// read when method == kGreedySeq.
  GreedySeqOptions greedy;
  /// The observability sinks in one bundle (all optional, all
  /// borrowed — must outlive the Solve call; see
  /// common/observability.h). `metrics` receives the "solver.*"
  /// counters (via SolveStats::PublishTo), the what-if engine's
  /// "whatif.*" metrics, and the owned pool's "threadpool.*" metrics;
  /// `tracer` records a "solve" span plus per-phase solver spans;
  /// `logger` gets phase start/end events, candidate-set sizes,
  /// anytime-fallback warnings, and deadline hits; `progress` is
  /// invoked at the solvers' budget poll sites (MUST be thread-safe —
  /// precompute shards report from worker threads). Unset sinks cost
  /// one pointer test per site. None perturb results: schedules,
  /// costs, and counters are byte-identical with or without them, for
  /// any thread count.
  Observability observability;

  /// Drop candidate configurations that provably cannot appear in any
  /// optimal schedule (see advisor/dominance.h for the exactness
  /// argument) before dispatching to the method. Exact for every
  /// method: the optimal cost is unchanged, though a method may return
  /// a different cost-identical schedule when the pruned configuration
  /// was one of several optima. The pruning pass probes O(shapes * m +
  /// m^2) costs up front — worth it when m is large or n is huge
  /// (every DP stage then scans fewer configs), skippable when m is
  /// already tiny. stats.pruned_configs reports the drop count.
  bool prune_dominated = false;

  /// Segment-parallel solving of the k-aware DP (method == kOptimal
  /// with k set only; see core/segment_solver.h). The default
  /// (num_chunks = 0, auto) engages chunking only when the stage
  /// sequence is long enough to amortize it, so short solves are
  /// byte-identical to the monolithic path.
  SegmentSolveOptions segmented;

  /// Build a per-transition EXEC/TRANS attribution of the returned
  /// schedule into SolveResult::explain (see core/explain.h). Costs
  /// one extra pass over the schedule through the memoized what-if
  /// cache after the solve; never changes the schedule.
  bool explain = false;

  /// Wall-clock budget for the whole solve (measured from Solve()
  /// entry). On expiry the solve returns the best feasible schedule it
  /// has found so far — flagged with SolveResult::stats.deadline_hit —
  /// and fails with DeadlineExceeded only when nothing feasible exists
  /// yet (see DESIGN.md §6d for each method's anytime fallback).
  /// nullopt = no deadline; checking is free in that case (one null
  /// pointer test per poll site).
  std::optional<std::chrono::milliseconds> deadline;
  /// Cooperative cancellation (optional, borrowed — must outlive the
  /// Solve call). Cancel() makes the solve wind down at its next poll
  /// site with the same anytime semantics as a deadline expiry; safe
  /// to call from any thread.
  const CancelToken* cancel = nullptr;

  /// Soft byte budget over the solve's tracked allocations (the
  /// what-if cost matrix, the DP tables, the sequence graph, the
  /// ranking queue, the greedy candidate set, the merging tables).
  /// When a reservation would pass the budget the solve degrades
  /// through the same anytime machinery as a deadline — it returns the
  /// best feasible schedule it can build within budget, flagged with
  /// stats.memory_limit_hit, and never overshoots by more than the one
  /// allocation block that tripped the flag. nullopt = no limit
  /// (allocations are still tracked, for stats.peak_bytes_total).
  std::optional<int64_t> memory_limit_bytes;

  /// Persistent what-if cost cache (optional, borrowed — must outlive
  /// the Solve call). When set, the precompute answers per-statement
  /// probes from the cache and inserts what it had to cost, so a
  /// second Solve() over an unchanged cost model and candidate
  /// universe is nearly costing-free. The cache self-invalidates on a
  /// cost-model change (see cost/cost_cache.h), may be shared by
  /// concurrent solves, and its growth during this solve is charged
  /// against memory_limit_bytes under MemComponent::kCostCache.
  /// Observational invariant: schedules and costs are bit-identical
  /// with or without a cache; only probe counts and wall time change.
  CostCache* cost_cache = nullptr;

  /// All option validation in one place: k >= 0 when set,
  /// num_threads >= 0, ranking_max_paths > 0, deadline >= 0 when set,
  /// memory_limit_bytes > 0 when set, greedy candidate indexes
  /// present for kGreedySeq, and sensible segment widths
  /// (segmented.Validate()).
  Status Validate() const;
};

/// Uniform outcome of a Solve() call.
struct SolveResult {
  DesignSchedule schedule;
  /// Unified counters (wall time, costings, cost-cache traffic,
  /// threads used, nodes expanded, ...) for every method.
  SolveStats stats;
  /// Technique detail (e.g. which branch the hybrid picked).
  std::string method_detail;
  /// kGreedySeq only: the reduced configuration set the graph search
  /// actually ran on (empty for every other method).
  std::vector<Configuration> reduced_candidates;
  /// The tracer the solve recorded into (== SolveOptions::tracer;
  /// null when tracing was off). Export its spans with
  /// Tracer::ToChromeJson() / ToTextTree().
  Tracer* tracer = nullptr;
  /// Cost of the unconstrained optimum, when the method computed one
  /// on the way (every unconstrained dispatch, merging's first phase,
  /// and the hybrid's probe). The explain report quotes it as the
  /// optimality-gap baseline; absent when the method never priced the
  /// unconstrained problem (k-aware graph, ranking with a bound).
  std::optional<double> unconstrained_cost;
  /// Per-transition attribution of `schedule` (set iff
  /// SolveOptions::explain). Render with ExplainReport::ToText /
  /// ToJson.
  std::optional<ExplainReport> explain;
};

/// The unified solver entry point: dispatches to the technique
/// `options.method` selects, handling the unconstrained case
/// (options.k == nullopt) uniformly — methods whose constrained logic
/// needs a bound fall back to the plain sequence-graph optimum, which
/// is exact for all of them. A thread pool of options.num_threads
/// workers is spun up for the what-if precompute and the parallel DP
/// sweeps; schedules and costs are identical for any thread count.
///
/// With options.deadline / options.cancel set the solve is *anytime*:
/// expiry or cancellation makes it return its best feasible schedule
/// so far with stats.deadline_hit = true (published as the
/// "solver.deadline_hit" metric), or DeadlineExceeded when nothing
/// feasible has been found yet. A deadline that never fires leaves
/// the result byte-identical to an undeadlined run.
Result<SolveResult> Solve(const DesignProblem& problem,
                          const SolveOptions& options);

}  // namespace cdpd

#endif  // CDPD_CORE_SOLVER_H_
