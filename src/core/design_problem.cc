#include "core/design_problem.h"

namespace cdpd {

Status DesignProblem::Validate() const {
  if (what_if == nullptr) {
    return Status::InvalidArgument("design problem has no what-if oracle");
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("design problem has no candidate "
                                   "configurations");
  }
  const int64_t rows = what_if->model().num_rows();
  for (const Configuration& config : candidates) {
    if (config.SizePages(rows) > space_bound_pages) {
      return Status::InvalidArgument(
          "candidate configuration " +
          config.ToString(what_if->model().schema()) +
          " violates the space bound");
    }
  }
  if (initial.SizePages(rows) > space_bound_pages) {
    return Status::InvalidArgument("initial configuration violates the "
                                   "space bound");
  }
  if (final_config.has_value() &&
      final_config->SizePages(rows) > space_bound_pages) {
    return Status::InvalidArgument("final configuration violates the "
                                   "space bound");
  }
  return Status::OK();
}

int64_t CountChanges(const DesignProblem& problem,
                     const std::vector<Configuration>& configs) {
  if (configs.empty()) return 0;
  int64_t changes = 0;
  if (problem.count_initial_change && !(configs.front() == problem.initial)) {
    ++changes;
  }
  for (size_t i = 1; i < configs.size(); ++i) {
    if (!(configs[i - 1] == configs[i])) ++changes;
  }
  return changes;
}

Result<DesignSchedule> BestStaticSchedule(const DesignProblem& problem,
                                          std::optional<int64_t> k) {
  CDPD_RETURN_IF_ERROR(problem.Validate());
  const WhatIfEngine& what_if = *problem.what_if;
  const size_t n = problem.num_segments();
  double best = std::numeric_limits<double>::infinity();
  const Configuration* best_config = nullptr;
  for (const Configuration& config : problem.candidates) {
    // A static design makes at most one change — the initial build —
    // and only when that build is charged against k.
    const int64_t changes =
        problem.count_initial_change && !(config == problem.initial) ? 1 : 0;
    if (k.has_value() && changes > *k) continue;
    double cost = what_if.TransitionCost(problem.initial, config) +
                  what_if.RangeCost(0, n, config);
    if (problem.final_config.has_value()) {
      cost += what_if.TransitionCost(config, *problem.final_config);
    }
    if (cost < best) {
      best = cost;
      best_config = &config;
    }
  }
  if (best_config == nullptr) {
    return Status::FailedPrecondition(
        "no candidate configuration admits a static design within the "
        "change bound (k = 0 with a counted initial change requires the "
        "initial configuration to be a candidate)");
  }
  DesignSchedule schedule;
  schedule.configs.assign(n, *best_config);
  schedule.total_cost = EvaluateScheduleCost(problem, schedule.configs);
  return schedule;
}

double EvaluateScheduleCost(const DesignProblem& problem,
                            const std::vector<Configuration>& configs) {
  const WhatIfEngine& what_if = *problem.what_if;
  double cost = 0.0;
  const Configuration* previous = &problem.initial;
  for (size_t i = 0; i < configs.size(); ++i) {
    cost += what_if.TransitionCost(*previous, configs[i]);
    cost += what_if.SegmentCost(i, configs[i]);
    previous = &configs[i];
  }
  if (problem.final_config.has_value()) {
    cost += what_if.TransitionCost(*previous, *problem.final_config);
  }
  return cost;
}

}  // namespace cdpd
