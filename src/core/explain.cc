#include "core/explain.h"

#include <cstdio>

#include "common/json_util.h"
#include "core/k_aware_graph.h"

namespace cdpd {

namespace {

/// %.6g rendering for the human-readable report (the JSON renderer
/// uses the round-trippable %.17g from json_util).
std::string ShortDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// "build I(a), I(c,d); drop I(b)" — the physical work of a delta.
std::string DescribeWork(const Schema& schema,
                         const std::vector<IndexDef>& built,
                         const std::vector<IndexDef>& dropped) {
  std::string out;
  if (!built.empty()) {
    out += "build ";
    for (size_t i = 0; i < built.size(); ++i) {
      if (i > 0) out += ", ";
      out += built[i].ToString(schema);
    }
  }
  if (!dropped.empty()) {
    if (!out.empty()) out += "; ";
    out += "drop ";
    for (size_t i = 0; i < dropped.size(); ++i) {
      if (i > 0) out += ", ";
      out += dropped[i].ToString(schema);
    }
  }
  if (out.empty()) out = "(no physical change)";
  return out;
}

void AppendIndexArray(std::string* out, const Schema& schema,
                      const std::vector<IndexDef>& indexes) {
  out->push_back('[');
  for (size_t i = 0; i < indexes.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append(JsonString(indexes[i].ToString(schema)));
  }
  out->push_back(']');
}

}  // namespace

ExplainReport BuildExplainReport(const DesignProblem& problem,
                                 const DesignSchedule& schedule,
                                 std::string_view method,
                                 std::string_view method_detail,
                                 std::optional<int64_t> k,
                                 const SolveStats& stats,
                                 std::optional<double> unconstrained_cost) {
  const WhatIfEngine& what_if = *problem.what_if;
  const std::vector<Segment>& segments = what_if.segments();
  const std::vector<Configuration>& configs = schedule.configs;
  const size_t n = configs.size();

  ExplainReport report;
  report.method = std::string(method);
  report.method_detail = std::string(method_detail);
  report.k = k;
  report.num_segments = n;
  report.num_statements = segments.empty() ? 0 : segments.back().end;
  report.changes_used = CountChanges(problem, configs);
  report.stats = stats;
  report.deadline_hit = stats.deadline_hit;
  report.best_effort = stats.best_effort;
  report.solver_reported_cost = schedule.total_cost;
  report.unconstrained_cost = unconstrained_cost;
  // Space-bound check: what §3 says the k-aware table should cost for
  // these dimensions, against what the tracker saw the solve reserve.
  if (k.has_value()) {
    report.predicted_kaware_bytes = PredictKAwareTableBytes(
        static_cast<int64_t>(problem.num_segments()),
        static_cast<int64_t>(problem.candidates.size()), *k,
        problem.count_initial_change);
  }
  report.actual_kaware_bytes =
      stats.component_peak_bytes[static_cast<size_t>(
          MemComponent::kKAwareTable)];

  // Totals, accumulated in exactly EvaluateScheduleCost's interleaved
  // TRANS/EXEC order so `total_cost` reproduces the solver-reported
  // schedule cost bit-for-bit (floating-point addition is order
  // sensitive; the side totals use their own accumulators).
  double total = 0.0;
  double exec_total = 0.0;
  double trans_total = 0.0;
  const Configuration* previous = &problem.initial;
  for (size_t i = 0; i < n; ++i) {
    const double trans = what_if.TransitionCost(*previous, configs[i]);
    total += trans;
    trans_total += trans;
    const double exec = what_if.SegmentCost(i, configs[i]);
    total += exec;
    exec_total += exec;
    previous = &configs[i];
  }
  if (problem.final_config.has_value()) {
    const double trans = what_if.TransitionCost(*previous, *problem.final_config);
    total += trans;
    trans_total += trans;
  }
  report.total_cost = total;
  report.exec_total = exec_total;
  report.trans_total = trans_total;
  report.exact = total == schedule.total_cost;
  if (unconstrained_cost.has_value()) {
    report.optimality_gap = total - *unconstrained_cost;
  }

  // One ExplainTransition per actual design change, walking the runs
  // of equal configurations.
  auto add_transition = [&](size_t first_segment, const Configuration& from,
                            const Configuration& to, std::string_view kind,
                            bool counts_against_k) {
    ExplainTransition t;
    t.segment = first_segment;
    t.first_statement = first_segment < n ? segments[first_segment].begin
                                          : report.num_statements;
    t.from = from;
    t.to = to;
    ConfigurationDelta delta = DiffConfigurations(from, to);
    t.built = std::move(delta.created);
    t.dropped = std::move(delta.dropped);
    t.trans_cost = what_if.TransitionCost(from, to);
    t.kind = kind;
    t.counts_against_k = counts_against_k;
    // The run: consecutive segments holding `to`.
    size_t run_end = first_segment;
    while (run_end < n && configs[run_end] == to) ++run_end;
    t.run_end = run_end;
    t.run_end_statement =
        run_end > first_segment ? segments[run_end - 1].end : t.first_statement;
    // Savings versus having stayed in `from`, with the earliest
    // statement by which they recoup TRANS.
    double cumulative = 0.0;
    for (size_t j = first_segment; j < run_end; ++j) {
      cumulative += what_if.SegmentCost(j, from) - what_if.SegmentCost(j, to);
      if (!t.break_even_statement.has_value() && cumulative >= t.trans_cost) {
        t.break_even_statement = segments[j].end;
      }
    }
    t.exec_savings = cumulative;
    report.transitions.push_back(std::move(t));
  };

  previous = &problem.initial;
  for (size_t i = 0; i < n; ++i) {
    if (configs[i] != *previous) {
      const bool initial = i == 0;
      add_transition(i, *previous, configs[i],
                     initial ? "initial" : "interior",
                     !initial || problem.count_initial_change);
    }
    previous = &configs[i];
  }
  if (problem.final_config.has_value() && *problem.final_config != *previous) {
    // The paper's destination constraint: happens after the last
    // statement and never counts against k.
    add_transition(n, *previous, *problem.final_config, "final", false);
  }
  return report;
}

std::string ExplainReport::ToText(const Schema& schema) const {
  std::string out;
  out += "explain (schema v" + std::to_string(kSchemaVersion) + ")\n";
  out += "  method:         " + method;
  if (!method_detail.empty()) out += " — " + method_detail;
  out += "\n";
  out += "  k:              ";
  out += k.has_value() ? std::to_string(*k) : std::string("unconstrained");
  out += ", changes used: " + std::to_string(changes_used) + "\n";
  out += "  workload:       " + std::to_string(num_statements) +
         " statements in " + std::to_string(num_segments) + " segments\n";
  out += "  schedule cost:  " + ShortDouble(total_cost) +
         (exact ? "  (attribution exact)\n"
                : "  (solver reported " + ShortDouble(solver_reported_cost) +
                      ")\n");
  out += "    EXEC total:   " + ShortDouble(exec_total) + "\n";
  out += "    TRANS total:  " + ShortDouble(trans_total) + "\n";
  if (unconstrained_cost.has_value()) {
    out += "  unconstrained:  " + ShortDouble(*unconstrained_cost) +
           "  (gap " + ShortDouble(optimality_gap.value_or(0.0)) +
           " = price of the change budget)\n";
  }
  out += "  provenance:     ";
  if (deadline_hit) {
    out += "deadline hit — anytime fallback\n";
  } else if (best_effort) {
    out += "best-effort fallback\n";
  } else {
    out += "normal\n";
  }
  out += "  solve:          " + ShortDouble(stats.wall_seconds) + " s, " +
         std::to_string(stats.threads_used) + " threads, " +
         std::to_string(stats.costings) + " costings (cost cache " +
         std::to_string(stats.cost_cache_hits) + " hits / " +
         std::to_string(stats.cost_cache_misses) + " misses)\n";
  // Scale line only when pruning or segmenting actually engaged, so
  // golden reports from plain solves render byte-identically.
  if (stats.pruned_configs > 0 || stats.segment_chunks > 0) {
    out += "  scale:          " + std::to_string(stats.pruned_configs) +
           " dominated configs pruned";
    if (stats.segment_chunks > 0) {
      out += ", " + std::to_string(stats.segment_chunks) +
             " segment chunks (stitch window " +
             std::to_string(stats.stitch_window) + ")";
    }
    out += "\n";
  }
  // Memory block only when the solve tracked anything (golden reports
  // built without a tracker render byte-identically to schema v1).
  if (stats.peak_bytes_total > 0 || predicted_kaware_bytes > 0 ||
      stats.memory_limit_hit) {
    out += "  memory:         peak " + std::to_string(stats.peak_bytes_total) +
           " bytes tracked, cpu " + ShortDouble(stats.cpu_seconds) + " s";
    if (stats.memory_limit_hit) out += "  (memory limit hit)";
    out += "\n";
    if (predicted_kaware_bytes > 0) {
      out += "    k-aware:      predicted " +
             std::to_string(predicted_kaware_bytes) + " bytes";
      if (actual_kaware_bytes > 0) {
        out += ", actual " + std::to_string(actual_kaware_bytes) +
               " bytes (ratio " +
               ShortDouble(static_cast<double>(actual_kaware_bytes) /
                           static_cast<double>(predicted_kaware_bytes)) +
               ")";
      } else {
        out += ", table never built";
      }
      out += "\n";
    }
  }

  out += "transitions (" + std::to_string(transitions.size()) + "):\n";
  // Two passes so the statement and work columns align.
  std::vector<std::string> stmt_col;
  std::vector<std::string> work_col;
  size_t stmt_width = 0;
  size_t work_width = 0;
  for (const ExplainTransition& t : transitions) {
    std::string stmt = t.kind == "final"
                           ? std::string("@end")
                           : "@stmt " + std::to_string(t.first_statement);
    if (stmt.size() > stmt_width) stmt_width = stmt.size();
    stmt_col.push_back(std::move(stmt));
    std::string work = DescribeWork(schema, t.built, t.dropped);
    if (work.size() > work_width) work_width = work.size();
    work_col.push_back(std::move(work));
  }
  for (size_t i = 0; i < transitions.size(); ++i) {
    const ExplainTransition& t = transitions[i];
    out += "  " + stmt_col[i];
    out.append(stmt_width - stmt_col[i].size() + 2, ' ');
    out += t.kind == "initial" ? "initial " : t.kind == "final" ? "final   "
                                                                : "change  ";
    out += work_col[i];
    out.append(work_width - work_col[i].size() + 2, ' ');
    out += "TRANS " + ShortDouble(t.trans_cost);
    if (t.kind == "final") {
      out += "  (destination constraint)";
    } else {
      out += "  saves " + ShortDouble(t.exec_savings) + " over stmts [" +
             std::to_string(t.first_statement) + ", " +
             std::to_string(t.run_end_statement) + ")";
      if (t.break_even_statement.has_value()) {
        out += "  break-even @stmt " + std::to_string(*t.break_even_statement);
      } else {
        out += "  never breaks even in its run";
      }
    }
    if (!t.counts_against_k && t.kind == "initial") {
      out += "  (free: initial build)";
    }
    out += "\n";
  }
  return out;
}

std::string ExplainReport::ToJson(const Schema& schema) const {
  std::string out = "{";
  out += "\"schema_version\": " + std::to_string(kSchemaVersion);
  out += ", \"kind\": \"cdpd.explain\"";
  out += ", \"summary\": {";
  out += "\"method\": " + JsonString(method);
  out += ", \"method_detail\": " + JsonString(method_detail);
  out += ", \"k\": " + (k.has_value() ? std::to_string(*k) : "null");
  out += ", \"changes_used\": " + std::to_string(changes_used);
  out += ", \"num_segments\": " + std::to_string(num_segments);
  out += ", \"num_statements\": " + std::to_string(num_statements);
  out += ", \"exec_total\": " + JsonDouble(exec_total);
  out += ", \"trans_total\": " + JsonDouble(trans_total);
  out += ", \"total_cost\": " + JsonDouble(total_cost);
  out += ", \"solver_reported_cost\": " + JsonDouble(solver_reported_cost);
  out += std::string(", \"exact\": ") + (exact ? "true" : "false");
  out += ", \"unconstrained_cost\": " +
         (unconstrained_cost.has_value() ? JsonDouble(*unconstrained_cost)
                                         : "null");
  out += ", \"optimality_gap\": " +
         (optimality_gap.has_value() ? JsonDouble(*optimality_gap) : "null");
  out += std::string(", \"deadline_hit\": ") + (deadline_hit ? "true" : "false");
  out += std::string(", \"best_effort\": ") + (best_effort ? "true" : "false");
  out += ", \"predicted_kaware_bytes\": " +
         std::to_string(predicted_kaware_bytes);
  out += ", \"actual_kaware_bytes\": " + std::to_string(actual_kaware_bytes);
  out += ", \"kaware_bytes_ratio\": " +
         (predicted_kaware_bytes > 0 && actual_kaware_bytes > 0
              ? JsonDouble(static_cast<double>(actual_kaware_bytes) /
                           static_cast<double>(predicted_kaware_bytes))
              : std::string("null"));
  out += "}";
  out += ", \"stats\": " + stats.ToJson();
  out += ", \"transitions\": [";
  for (size_t i = 0; i < transitions.size(); ++i) {
    const ExplainTransition& t = transitions[i];
    if (i > 0) out += ", ";
    out += "{";
    out += "\"kind\": " + JsonString(t.kind);
    out += ", \"segment\": " + std::to_string(t.segment);
    out += ", \"first_statement\": " + std::to_string(t.first_statement);
    out += ", \"run_end\": " + std::to_string(t.run_end);
    out += ", \"run_end_statement\": " + std::to_string(t.run_end_statement);
    out += ", \"counts_against_k\": ";
    out += t.counts_against_k ? "true" : "false";
    out += ", \"from\": " + JsonString(t.from.ToString(schema));
    out += ", \"to\": " + JsonString(t.to.ToString(schema));
    out += ", \"built\": ";
    AppendIndexArray(&out, schema, t.built);
    out += ", \"dropped\": ";
    AppendIndexArray(&out, schema, t.dropped);
    out += ", \"trans_cost\": " + JsonDouble(t.trans_cost);
    out += ", \"exec_savings\": " + JsonDouble(t.exec_savings);
    out += ", \"break_even_statement\": " +
           (t.break_even_statement.has_value()
                ? std::to_string(*t.break_even_statement)
                : "null");
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace cdpd
