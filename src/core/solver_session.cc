#include "core/solver_session.h"

#include <utility>

namespace cdpd {

Status SessionOptions::Validate() const {
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (cost_cache_max_bytes < 0) {
    return Status::InvalidArgument(
        "cost_cache_max_bytes must be >= 0 (0 = unbounded)");
  }
  return Status::OK();
}

SolverSession::SolverSession(SessionOptions options)
    : options_(std::move(options)) {
  if (options_.num_threads < 0) options_.num_threads = 0;
  if (options_.cost_cache_max_bytes < 0) options_.cost_cache_max_bytes = 0;
  const int threads = options_.num_threads == 0
                          ? ThreadPool::DefaultThreadCount()
                          : options_.num_threads;
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(threads);
    if (options_.observability.metrics != nullptr) {
      pool_->EnableMetrics(options_.observability.metrics);
    }
    if (options_.observability.logger != nullptr) {
      pool_->EnableLogging(options_.observability.logger);
    }
  }
  if (options_.enable_cost_cache) {
    cost_cache_ = std::make_unique<CostCache>(options_.cost_cache_max_bytes);
  }
}

Result<SolveResult> SolverSession::Solve(const DesignProblem& problem,
                                         const SolveOptions& options) {
  SolveOptions effective = options;
  // Per-call resources win; the session's fill the gaps.
  if (effective.pool == nullptr) effective.pool = pool_.get();
  if (effective.cost_cache == nullptr) {
    effective.cost_cache = cost_cache_.get();
  }
  effective.observability =
      options.observability.OrElse(options_.observability);
  CDPD_ASSIGN_OR_RETURN(SolveResult result,
                        cdpd::Solve(problem, effective));
  {
    std::lock_guard<std::mutex> lock(mu_);
    total_stats_.Accumulate(result.stats);
    ++solves_;
  }
  return result;
}

SolveStats SolverSession::total_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_stats_;
}

int64_t SolverSession::solves() const {
  std::lock_guard<std::mutex> lock(mu_);
  return solves_;
}

}  // namespace cdpd
