#ifndef CDPD_CORE_VALIDATOR_H_
#define CDPD_CORE_VALIDATOR_H_

#include <cstdint>
#include <optional>

#include "common/result.h"
#include "core/design_problem.h"

namespace cdpd {

/// Checks that `schedule` is a well-formed solution of `problem` with
/// change bound `k` (nullopt = unconstrained):
///  * one configuration per segment,
///  * every configuration drawn from the candidate set,
///  * every configuration within the space bound b,
///  * at most k design changes under the problem's counting policy,
///  * total_cost consistent with the oracle (relative tolerance 1e-9).
Status ValidateSchedule(const DesignProblem& problem,
                        const DesignSchedule& schedule,
                        std::optional<int64_t> k);

}  // namespace cdpd

#endif  // CDPD_CORE_VALIDATOR_H_
