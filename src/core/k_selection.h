#ifndef CDPD_CORE_K_SELECTION_H_
#define CDPD_CORE_K_SELECTION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/advisor.h"
#include "workload/workload.h"

namespace cdpd {

/// Options for the automatic change-bound chooser.
struct KSelectionOptions {
  /// Change bounds to evaluate. nullopt means unconstrained.
  std::vector<std::optional<int64_t>> candidate_ks = {0, 1,  2, 3,
                                                      4, 6,  8, std::nullopt};
  /// Advisor parameters used for every candidate k (its `k` field is
  /// overwritten per candidate).
  AdvisorOptions advisor;
  /// When no independent evaluation traces are supplied, this many
  /// jittered variants of the design trace are synthesized.
  int num_synthetic_variants = 5;
  /// Window (in blocks) of the synthetic jitter: blocks are shuffled
  /// within windows of this size, preserving macro phases while
  /// scrambling the micro pattern a tight fit latches onto.
  size_t jitter_window_blocks = 4;
  uint64_t seed = 1;
};

/// Evaluation of one candidate change bound.
struct KCandidateOutcome {
  /// The evaluated bound; nullopt = unconstrained.
  std::optional<int64_t> k;
  int64_t changes = 0;
  /// Cost of the recommendation on the design trace itself.
  double fit_cost = 0.0;
  /// Mean cost of the (positionally replayed) recommendation over the
  /// evaluation traces — the generalization score.
  double eval_cost = 0.0;
};

struct KSelectionReport {
  std::vector<KCandidateOutcome> outcomes;
  /// The k minimizing eval_cost (nullopt = unconstrained won).
  std::optional<int64_t> chosen_k = 0;
  std::string ToString() const;
};

/// Synthesizes workload variants that are "similar but not identical"
/// to `trace` (the paper's framing of a representative trace): block
/// contents are kept, but block order is shuffled within windows of
/// `window_blocks`, so major phases survive and minor-fluctuation
/// timing does not. `block_size` defines the blocks.
std::vector<Workload> MakeJitteredVariants(const Workload& trace,
                                           size_t block_size,
                                           size_t window_blocks, int count,
                                           uint64_t seed);

/// Addresses the paper's first open question ("how to choose an
/// appropriate change constraint k?") by holdout validation: for each
/// candidate k, recommend a design from `design_trace`, replay the
/// schedule positionally against each evaluation trace, and pick the k
/// with the lowest mean replay cost. If `eval_traces` is empty,
/// synthetic jittered variants of the design trace are used.
Result<KSelectionReport> ChooseChangeBound(
    const CostModel& model, const Workload& design_trace,
    const std::vector<Workload>& eval_traces,
    const KSelectionOptions& options = {});

}  // namespace cdpd

#endif  // CDPD_CORE_K_SELECTION_H_
