#include "core/solve_stats.h"

#include <cmath>

namespace cdpd {

void SolveStats::PublishTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const int64_t wall_us = static_cast<int64_t>(std::llround(
      wall_seconds * 1e6));
  registry->counter("solver.solves")->Add(1);
  registry->counter("solver.wall_us")->Add(wall_us);
  registry->counter("solver.costings")->Add(costings);
  registry->counter("cost_cache.hits")->Add(cost_cache_hits);
  registry->counter("cost_cache.misses")->Add(cost_cache_misses);
  registry->counter("cost_cache.evictions")->Add(cost_cache_evictions);
  registry->counter("solver.nodes_expanded")->Add(nodes_expanded);
  registry->counter("solver.relaxations")->Add(relaxations);
  registry->counter("solver.paths_enumerated")->Add(paths_enumerated);
  registry->counter("solver.merge_steps")->Add(merge_steps);
  registry->counter("solver.candidate_evaluations")
      ->Add(candidate_evaluations);
  registry->counter("solver.pruned_configs")->Add(pruned_configs);
  registry->gauge("solver.segment_chunks")->UpdateMax(segment_chunks);
  registry->gauge("solver.stitch_window")->UpdateMax(stitch_window);
  registry->counter("solver.deadline_hit")->Add(deadline_hit ? 1 : 0);
  registry->counter("solver.best_effort")->Add(best_effort ? 1 : 0);
  registry->counter("solver.cpu_us")
      ->Add(static_cast<int64_t>(std::llround(cpu_seconds * 1e6)));
  registry->counter("solver.memory_limit_hit")->Add(memory_limit_hit ? 1 : 0);
  registry->gauge("solver.peak_bytes_total")->UpdateMax(peak_bytes_total);
  for (int i = 0; i < kNumMemComponents; ++i) {
    if (component_peak_bytes[i] == 0) continue;
    registry
        ->gauge("solver.peak_bytes_" +
                std::string(MemComponentName(static_cast<MemComponent>(i))))
        ->UpdateMax(component_peak_bytes[i]);
  }
  registry->gauge("solver.threads_used")->UpdateMax(threads_used);
  registry->histogram("solver.solve_wall_us")
      ->Record(static_cast<double>(wall_us));
}

std::string SolveStats::ToJson() const {
  const int64_t wall_us =
      static_cast<int64_t>(std::llround(wall_seconds * 1e6));
  std::string out = "{";
  out += "\"wall_us\": " + std::to_string(wall_us);
  out += ", \"costings\": " + std::to_string(costings);
  out += ", \"cost_cache_hits\": " + std::to_string(cost_cache_hits);
  out += ", \"cost_cache_misses\": " + std::to_string(cost_cache_misses);
  out += ", \"cost_cache_evictions\": " + std::to_string(cost_cache_evictions);
  out += ", \"threads_used\": " + std::to_string(threads_used);
  out += ", \"nodes_expanded\": " + std::to_string(nodes_expanded);
  out += ", \"relaxations\": " + std::to_string(relaxations);
  out += ", \"paths_enumerated\": " + std::to_string(paths_enumerated);
  out += ", \"merge_steps\": " + std::to_string(merge_steps);
  out += ", \"candidate_evaluations\": " + std::to_string(candidate_evaluations);
  out += ", \"pruned_configs\": " + std::to_string(pruned_configs);
  out += ", \"segment_chunks\": " + std::to_string(segment_chunks);
  out += ", \"stitch_window\": " + std::to_string(stitch_window);
  out += std::string(", \"deadline_hit\": ") +
         (deadline_hit ? "true" : "false");
  out += std::string(", \"best_effort\": ") + (best_effort ? "true" : "false");
  out += ", \"cpu_us\": " +
         std::to_string(static_cast<int64_t>(std::llround(cpu_seconds * 1e6)));
  out += ", \"peak_bytes_total\": " + std::to_string(peak_bytes_total);
  for (int i = 0; i < kNumMemComponents; ++i) {
    out += ", \"peak_bytes_" +
           std::string(MemComponentName(static_cast<MemComponent>(i))) +
           "\": " + std::to_string(component_peak_bytes[i]);
  }
  out += std::string(", \"memory_limit_hit\": ") +
         (memory_limit_hit ? "true" : "false");
  out += "}";
  return out;
}

SolveStats SolveStats::FromSnapshot(const MetricsSnapshot& snapshot) {
  SolveStats stats;
  stats.wall_seconds =
      static_cast<double>(snapshot.CounterValue("solver.wall_us")) / 1e6;
  stats.costings = snapshot.CounterValue("solver.costings");
  stats.cost_cache_hits = snapshot.CounterValue("cost_cache.hits");
  stats.cost_cache_misses = snapshot.CounterValue("cost_cache.misses");
  stats.cost_cache_evictions = snapshot.CounterValue("cost_cache.evictions");
  stats.nodes_expanded = snapshot.CounterValue("solver.nodes_expanded");
  stats.relaxations = snapshot.CounterValue("solver.relaxations");
  stats.paths_enumerated = snapshot.CounterValue("solver.paths_enumerated");
  stats.merge_steps = snapshot.CounterValue("solver.merge_steps");
  stats.candidate_evaluations =
      snapshot.CounterValue("solver.candidate_evaluations");
  stats.pruned_configs = snapshot.CounterValue("solver.pruned_configs");
  stats.segment_chunks = snapshot.GaugeValue("solver.segment_chunks");
  stats.stitch_window = snapshot.GaugeValue("solver.stitch_window");
  stats.deadline_hit = snapshot.CounterValue("solver.deadline_hit") > 0;
  stats.best_effort = snapshot.CounterValue("solver.best_effort") > 0;
  stats.cpu_seconds =
      static_cast<double>(snapshot.CounterValue("solver.cpu_us")) / 1e6;
  stats.memory_limit_hit =
      snapshot.CounterValue("solver.memory_limit_hit") > 0;
  stats.peak_bytes_total = snapshot.GaugeValue("solver.peak_bytes_total");
  for (int i = 0; i < kNumMemComponents; ++i) {
    stats.component_peak_bytes[i] = snapshot.GaugeValue(
        "solver.peak_bytes_" +
        std::string(MemComponentName(static_cast<MemComponent>(i))));
  }
  const int64_t threads = snapshot.GaugeValue("solver.threads_used");
  stats.threads_used = threads > 0 ? static_cast<int>(threads) : 1;
  return stats;
}

}  // namespace cdpd
