#include "engine/executor.h"

#include <algorithm>
#include <chrono>

#include "index/btree.h"

namespace cdpd {

namespace {

/// Position of `column` within the key of `def`, or -1 if absent.
int32_t KeyPosition(const IndexDef& def, ColumnId column) {
  const auto& keys = def.key_columns();
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] == column) return static_cast<int32_t>(i);
  }
  return -1;
}

}  // namespace

Status Executor::LocateMatches(const BoundStatement& statement,
                               ColumnId select_column,
                               const AccessPathChoice& plan,
                               AccessStats* stats, std::vector<RowId>* rids,
                               std::vector<Value>* values) {
  const std::string& table_name = model_->schema().table_name();
  CDPD_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(table_name));
  const ColumnId where_column = statement.where_column;
  // Point predicates are the degenerate range [v, v]; every access
  // path below filters with the same inclusive bounds.
  const bool is_range = statement.type == StatementType::kSelectRange;
  const Value lo = is_range ? statement.where_lo : statement.where_value;
  const Value hi = is_range ? statement.where_hi : statement.where_value;
  auto in_range = [lo, hi](Value v) { return v >= lo && v <= hi; };

  switch (plan.kind) {
    case AccessPathKind::kTableScan: {
      table->Scan(stats, [&](RowId row) {
        stats->rows_examined += 1;
        if (in_range(table->GetValue(row, where_column))) {
          rids->push_back(row);
          values->push_back(table->GetValue(row, select_column));
        }
      });
      return Status::OK();
    }
    case AccessPathKind::kIndexSeek: {
      CDPD_ASSIGN_OR_RETURN(const BTree* tree,
                            catalog_->GetIndex(table_name, *plan.index));
      const int32_t select_pos = KeyPosition(*plan.index, select_column);
      if (select_pos < 0) {
        return Status::Internal("IndexSeek plan does not cover the select");
      }
      tree->SeekValueRange(lo, hi, stats, [&](const IndexEntry& entry) {
        stats->rows_examined += 1;
        rids->push_back(entry.rid);
        values->push_back(entry.key.value(select_pos));
      });
      return Status::OK();
    }
    case AccessPathKind::kIndexSeekWithFetch: {
      CDPD_ASSIGN_OR_RETURN(const BTree* tree,
                            catalog_->GetIndex(table_name, *plan.index));
      tree->SeekValueRange(lo, hi, stats, [&](const IndexEntry& entry) {
        stats->rows_examined += 1;
        table->ChargeRandomFetch(entry.rid, stats);
        rids->push_back(entry.rid);
        values->push_back(table->GetValue(entry.rid, select_column));
      });
      return Status::OK();
    }
    case AccessPathKind::kCoveringScan: {
      CDPD_ASSIGN_OR_RETURN(const BTree* tree,
                            catalog_->GetIndex(table_name, *plan.index));
      const int32_t where_pos = KeyPosition(*plan.index, where_column);
      const int32_t select_pos = KeyPosition(*plan.index, select_column);
      if (where_pos < 0 || select_pos < 0) {
        return Status::Internal("CoveringScan plan does not cover statement");
      }
      tree->ScanLeaves(stats, [&](const IndexEntry& entry) {
        stats->rows_examined += 1;
        if (in_range(entry.key.value(where_pos))) {
          rids->push_back(entry.rid);
          values->push_back(entry.key.value(select_pos));
        }
      });
      return Status::OK();
    }
  }
  return Status::Internal("unknown access path kind");
}

Result<ExecutionResult> Executor::ExecuteSelect(const BoundStatement& statement,
                                                AccessStats* stats) {
  const Configuration config =
      catalog_->CurrentConfiguration(model_->schema().table_name());
  ExecutionResult result;
  result.plan = model_->ChooseAccessPath(statement, config);
  std::vector<RowId> rids;
  CDPD_RETURN_IF_ERROR(LocateMatches(statement, statement.select_column,
                                     result.plan, stats, &rids,
                                     &result.values));
  result.rows_affected = static_cast<int64_t>(result.values.size());
  return result;
}

Result<ExecutionResult> Executor::ExecuteUpdate(const BoundStatement& statement,
                                                AccessStats* stats) {
  const std::string& table_name = model_->schema().table_name();
  const Configuration config = catalog_->CurrentConfiguration(table_name);
  CDPD_ASSIGN_OR_RETURN(Table* table, catalog_->GetTableMutable(table_name));

  ExecutionResult result;
  result.plan = model_->ChooseAccessPath(statement, config);

  // Locate all matching rows first (half-way updates must not re-match).
  std::vector<RowId> rids;
  std::vector<Value> old_values;
  CDPD_RETURN_IF_ERROR(LocateMatches(statement, statement.where_column,
                                     result.plan, stats, &rids, &old_values));

  // Indexes whose key contains the updated column need maintenance.
  std::vector<BTree*> affected;
  for (const IndexDef& def : config.indexes()) {
    if (!def.ContainsColumn(statement.set_column)) continue;
    CDPD_ASSIGN_OR_RETURN(BTree * tree,
                          catalog_->GetIndexMutable(table_name, def));
    affected.push_back(tree);
  }

  for (RowId rid : rids) {
    std::vector<IndexEntry> old_entries;
    old_entries.reserve(affected.size());
    for (BTree* tree : affected) {
      old_entries.push_back(
          IndexEntry{ExtractKey(*table, tree->def(), rid), rid});
    }
    // Rewrite the heap row (read + write of its page).
    stats->random_pages += 1;
    stats->written_pages += 1;
    CDPD_RETURN_IF_ERROR(
        table->SetValue(rid, statement.set_column, statement.set_value));
    for (size_t i = 0; i < affected.size(); ++i) {
      BTree* tree = affected[i];
      if (!tree->Erase(old_entries[i], stats)) {
        return Status::Internal("index entry missing during UPDATE");
      }
      tree->Insert(IndexEntry{ExtractKey(*table, tree->def(), rid), rid},
                   stats);
    }
  }
  result.rows_affected = static_cast<int64_t>(rids.size());
  return result;
}

Result<ExecutionResult> Executor::ExecuteInsert(const BoundStatement& statement,
                                                AccessStats* stats) {
  const std::string& table_name = model_->schema().table_name();
  CDPD_ASSIGN_OR_RETURN(Table* table, catalog_->GetTableMutable(table_name));
  const Configuration config = catalog_->CurrentConfiguration(table_name);

  CDPD_ASSIGN_OR_RETURN(RowId rid, table->AppendRow(statement.insert_values));
  stats->written_pages += 1;  // Amortized heap page write.
  for (const IndexDef& def : config.indexes()) {
    CDPD_ASSIGN_OR_RETURN(BTree * tree,
                          catalog_->GetIndexMutable(table_name, def));
    tree->Insert(IndexEntry{ExtractKey(*table, def, rid), rid}, stats);
  }
  ExecutionResult result;
  result.rows_affected = 1;
  return result;
}

Result<ExecutionResult> Executor::ExecuteDispatch(
    const BoundStatement& statement, AccessStats* stats) {
  switch (statement.type) {
    case StatementType::kSelectPoint:
    case StatementType::kSelectRange:
      return ExecuteSelect(statement, stats);
    case StatementType::kUpdatePoint:
      return ExecuteUpdate(statement, stats);
    case StatementType::kInsert:
      return ExecuteInsert(statement, stats);
  }
  return Status::InvalidArgument("unknown statement type");
}

Result<ExecutionResult> Executor::Execute(const BoundStatement& statement,
                                          AccessStats* stats) {
  if (metrics_statements_ == nullptr) {
    return ExecuteDispatch(statement, stats);
  }
  // Instrumented path: charge the statement's page-access delta and
  // latency to the registry. The delta is computed against the
  // caller's running stats, so aggregation batches charge correctly.
  const AccessStats before = *stats;
  const auto start = std::chrono::steady_clock::now();
  Result<ExecutionResult> result = ExecuteDispatch(statement, stats);
  metrics_statement_us_->Record(std::chrono::duration<double, std::micro>(
                                    std::chrono::steady_clock::now() - start)
                                    .count());
  metrics_statements_->Add(1);
  metrics_sequential_pages_->Add(stats->sequential_pages -
                                 before.sequential_pages);
  metrics_random_pages_->Add(stats->random_pages - before.random_pages);
  metrics_written_pages_->Add(stats->written_pages - before.written_pages);
  metrics_rows_examined_->Add(stats->rows_examined - before.rows_examined);
  return result;
}

void Executor::SetMetrics(MetricsRegistry* registry) {
  if constexpr (!kMetricsCompiledIn) return;
  if (registry == nullptr) {
    metrics_statements_ = nullptr;
    metrics_sequential_pages_ = nullptr;
    metrics_random_pages_ = nullptr;
    metrics_written_pages_ = nullptr;
    metrics_rows_examined_ = nullptr;
    metrics_statement_us_ = nullptr;
    return;
  }
  metrics_statements_ = registry->counter("engine.statements");
  metrics_sequential_pages_ = registry->counter("engine.sequential_pages");
  metrics_random_pages_ = registry->counter("engine.random_pages");
  metrics_written_pages_ = registry->counter("engine.written_pages");
  metrics_rows_examined_ = registry->counter("engine.rows_examined");
  metrics_statement_us_ = registry->histogram("engine.statement_us");
}

}  // namespace cdpd
