#include "engine/database.h"

#include <chrono>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace cdpd {

Database::Database(std::unique_ptr<CostModel> model)
    : model_(std::move(model)) {
  executor_ = std::make_unique<Executor>(&catalog_, model_.get());
}

Result<std::unique_ptr<Database>> Database::Create(const Schema& schema,
                                                   int64_t num_rows,
                                                   int64_t domain_size,
                                                   uint64_t seed,
                                                   CostParams params) {
  if (num_rows < 0) {
    return Status::InvalidArgument("num_rows must be non-negative");
  }
  if (domain_size <= 0) {
    return Status::InvalidArgument("domain_size must be positive");
  }
  auto model =
      std::make_unique<CostModel>(schema, num_rows, domain_size, params);
  std::unique_ptr<Database> db(new Database(std::move(model)));
  CDPD_ASSIGN_OR_RETURN(Table * table, db->catalog_.CreateTable(schema));
  Rng rng(seed);
  table->PopulateUniform(num_rows, 0, domain_size, &rng);
  return db;
}

const Table& Database::table() const {
  // The table is created in Create(); lookup cannot fail.
  return *catalog_.GetTable(schema().table_name()).value();
}

Result<Table*> Database::GetTableForBulkLoad() {
  if (!current_configuration().empty()) {
    return Status::FailedPrecondition(
        "bulk-load access requires an index-free table; drop indexes "
        "first (ApplyConfiguration({}))");
  }
  return catalog_.GetTableMutable(schema().table_name());
}

Status Database::ApplyConfiguration(const Configuration& target,
                                    AccessStats* stats) {
  const std::string& table_name = schema().table_name();
  const ConfigurationDelta delta =
      DiffConfigurations(catalog_.CurrentConfiguration(table_name), target);
  // Drop first so peak space stays low during the transition.
  for (const IndexDef& def : delta.dropped) {
    CDPD_RETURN_IF_ERROR(catalog_.DropIndex(table_name, def, stats));
    if (metrics_index_drops_ != nullptr) metrics_index_drops_->Add(1);
  }
  for (const IndexDef& def : delta.created) {
    const auto start = metrics_index_build_us_ != nullptr
                           ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
    CDPD_RETURN_IF_ERROR(catalog_.CreateIndex(table_name, def, stats));
    if (metrics_index_builds_ != nullptr) metrics_index_builds_->Add(1);
    if (metrics_index_build_us_ != nullptr) {
      metrics_index_build_us_->Record(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
  }
  return Status::OK();
}

void Database::SetMetrics(MetricsRegistry* registry) {
  if constexpr (!kMetricsCompiledIn) return;
  executor_->SetMetrics(registry);
  if (registry == nullptr) {
    metrics_index_builds_ = nullptr;
    metrics_index_drops_ = nullptr;
    metrics_index_build_us_ = nullptr;
    return;
  }
  metrics_index_builds_ = registry->counter("engine.index_builds");
  metrics_index_drops_ = registry->counter("engine.index_drops");
  metrics_index_build_us_ = registry->histogram("engine.index_build_us");
}

Result<ExecutionResult> Database::Execute(const BoundStatement& statement,
                                          AccessStats* stats) {
  return executor_->Execute(statement, stats);
}

Result<ExecutionResult> Database::ExecuteSql(std::string_view sql,
                                             AccessStats* stats) {
  CDPD_ASSIGN_OR_RETURN(StatementAst ast, ParseStatement(sql));
  if (std::holds_alternative<CreateIndexAst>(ast) ||
      std::holds_alternative<DropIndexAst>(ast)) {
    bool create = false;
    CDPD_ASSIGN_OR_RETURN(IndexDef def, BindIndexDdl(schema(), ast, &create));
    const std::string& table_name = schema().table_name();
    if (create) {
      CDPD_RETURN_IF_ERROR(catalog_.CreateIndex(table_name, def, stats));
    } else {
      CDPD_RETURN_IF_ERROR(catalog_.DropIndex(table_name, def, stats));
    }
    return ExecutionResult{};
  }
  CDPD_ASSIGN_OR_RETURN(BoundStatement bound, BindStatement(schema(), ast));
  return executor_->Execute(bound, stats);
}

Result<WorkloadRunResult> Database::RunWorkload(
    std::span<const BoundStatement> batch) {
  WorkloadRunResult result;
  Stopwatch watch;
  for (const BoundStatement& statement : batch) {
    CDPD_ASSIGN_OR_RETURN(ExecutionResult ignored,
                          executor_->Execute(statement, &result.stats));
    (void)ignored;
    ++result.statements;
  }
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace cdpd
