#ifndef CDPD_ENGINE_EXECUTOR_H_
#define CDPD_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "storage/access_stats.h"
#include "workload/statement.h"

namespace cdpd {

/// Outcome of executing one statement.
struct ExecutionResult {
  /// For SELECT: the selected column's values of all matching rows
  /// (in plan order — sort before comparing across plans).
  std::vector<Value> values;
  /// Rows returned (SELECT), updated (UPDATE) or inserted (INSERT).
  int64_t rows_affected = 0;
  /// The access path that was executed.
  AccessPathChoice plan;
};

/// Physically executes bound statements against the catalog's tables
/// and B+-trees. Plans are chosen by the same CostModel the design
/// advisor prices with, so estimated and executed plans agree (a
/// property the tests enforce). All physical work is charged to the
/// caller's AccessStats.
class Executor {
 public:
  /// `catalog` and `model` must outlive the executor.
  Executor(Catalog* catalog, const CostModel* model)
      : catalog_(catalog), model_(model) {}

  /// Executes one statement against the table named by the cost
  /// model's schema.
  Result<ExecutionResult> Execute(const BoundStatement& statement,
                                  AccessStats* stats);

  /// Mirrors execution activity into `registry` — the
  /// "engine.statements" counter, per-kind page-access counters
  /// ("engine.sequential_pages" / "engine.random_pages" /
  /// "engine.written_pages" / "engine.rows_examined", derived from the
  /// per-statement AccessStats deltas), and the "engine.statement_us"
  /// latency histogram. Pass nullptr to detach; no-op when metrics are
  /// compiled out.
  void SetMetrics(MetricsRegistry* registry);

 private:
  Result<ExecutionResult> ExecuteSelect(const BoundStatement& statement,
                                        AccessStats* stats);
  Result<ExecutionResult> ExecuteUpdate(const BoundStatement& statement,
                                        AccessStats* stats);
  Result<ExecutionResult> ExecuteInsert(const BoundStatement& statement,
                                        AccessStats* stats);

  /// Runs the chosen access path for a point predicate; emits
  /// (rid, value of `select_column`) pairs via out-vectors.
  Status LocateMatches(const BoundStatement& statement,
                       ColumnId select_column, const AccessPathChoice& plan,
                       AccessStats* stats, std::vector<RowId>* rids,
                       std::vector<Value>* values);

  /// The Execute body, minus instrumentation.
  Result<ExecutionResult> ExecuteDispatch(const BoundStatement& statement,
                                          AccessStats* stats);

  Catalog* catalog_;
  const CostModel* model_;
  // Metric sinks, null until SetMetrics. Set before execution starts.
  Counter* metrics_statements_ = nullptr;
  Counter* metrics_sequential_pages_ = nullptr;
  Counter* metrics_random_pages_ = nullptr;
  Counter* metrics_written_pages_ = nullptr;
  Counter* metrics_rows_examined_ = nullptr;
  Histogram* metrics_statement_us_ = nullptr;
};

}  // namespace cdpd

#endif  // CDPD_ENGINE_EXECUTOR_H_
