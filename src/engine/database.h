#ifndef CDPD_ENGINE_DATABASE_H_
#define CDPD_ENGINE_DATABASE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "engine/executor.h"
#include "workload/statement.h"

namespace cdpd {

/// Aggregate outcome of running a statement sequence.
struct WorkloadRunResult {
  AccessStats stats;
  double wall_seconds = 0.0;
  int64_t statements = 0;
};

/// The user-facing database facade: one table, its indexes, an
/// executor, and the cost model — everything the paper's experiments
/// run against. Design transitions are applied with
/// ApplyConfiguration(), which does the physical index builds/drops
/// that TRANS() prices.
class Database {
 public:
  /// Creates a database with `schema`, populated with `num_rows` rows
  /// of uniform values in [0, domain_size), and a cost model with
  /// `params`. The paper's instance is MakePaperSchema() with 2.5 M
  /// rows and domain 500000.
  static Result<std::unique_ptr<Database>> Create(const Schema& schema,
                                                  int64_t num_rows,
                                                  int64_t domain_size,
                                                  uint64_t seed,
                                                  CostParams params = {});

  const Schema& schema() const { return model_->schema(); }
  const CostModel& cost_model() const { return *model_; }
  const Catalog& catalog() const { return catalog_; }
  const Table& table() const;

  /// The active physical design of the table.
  Configuration current_configuration() const {
    return catalog_.CurrentConfiguration(schema().table_name());
  }

  /// Mutable access to the heap for bulk loading or transforming data
  /// (e.g. installing a skewed distribution) before any indexes exist.
  /// Fails with FailedPrecondition once indexes are materialized —
  /// their entries would silently go stale. Callers must not change
  /// the row count (the cost model's cardinality is fixed at Create).
  Result<Table*> GetTableForBulkLoad();

  /// Transitions the physical design to `target`: creates the missing
  /// indexes, drops the superfluous ones. Charges the work to `stats`.
  Status ApplyConfiguration(const Configuration& target, AccessStats* stats);

  /// Executes one bound statement.
  Result<ExecutionResult> Execute(const BoundStatement& statement,
                                  AccessStats* stats);

  /// Parses, binds, and executes one SQL statement (DML or index DDL).
  Result<ExecutionResult> ExecuteSql(std::string_view sql, AccessStats* stats);

  /// Executes a statement sequence under the current design, returning
  /// aggregate physical work and wall time.
  Result<WorkloadRunResult> RunWorkload(std::span<const BoundStatement> batch);

  /// Mirrors engine activity into `registry`: the executor's
  /// "engine.statements"/page-access/latency metrics (see
  /// Executor::SetMetrics) plus design-transition metrics —
  /// "engine.index_builds" / "engine.index_drops" counters and the
  /// "engine.index_build_us" histogram. Pass nullptr to detach; no-op
  /// when metrics are compiled out.
  void SetMetrics(MetricsRegistry* registry);

 private:
  Database(std::unique_ptr<CostModel> model);

  Catalog catalog_;
  std::unique_ptr<CostModel> model_;
  std::unique_ptr<Executor> executor_;
  // Metric sinks, null until SetMetrics.
  Counter* metrics_index_builds_ = nullptr;
  Counter* metrics_index_drops_ = nullptr;
  Histogram* metrics_index_build_us_ = nullptr;
};

}  // namespace cdpd

#endif  // CDPD_ENGINE_DATABASE_H_
