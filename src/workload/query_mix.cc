#include "workload/query_mix.h"

#include "common/string_util.h"

namespace cdpd {

std::vector<QueryMix> MakePaperQueryMixes() {
  return {
      QueryMix{"A", {0.55, 0.25, 0.10, 0.10}},
      QueryMix{"B", {0.25, 0.55, 0.10, 0.10}},
      QueryMix{"C", {0.10, 0.10, 0.55, 0.25}},
      QueryMix{"D", {0.10, 0.10, 0.25, 0.55}},
  };
}

int FindMixByName(const std::vector<QueryMix>& mixes, std::string_view name) {
  for (size_t i = 0; i < mixes.size(); ++i) {
    if (EqualsIgnoreCase(mixes[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace cdpd
