#ifndef CDPD_WORKLOAD_GENERATOR_H_
#define CDPD_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "workload/query_mix.h"
#include "workload/workload.h"

namespace cdpd {

/// Options for mixed DML generation (extension beyond the paper's pure
/// point-query workloads: exercise index-maintenance costs).
struct DmlMixOptions {
  /// Fraction of statements that are UPDATEs (set a random column of
  /// rows matched by a mix-drawn predicate).
  double update_fraction = 0.0;
  /// Fraction of statements that are INSERTs of a uniform random row.
  double insert_fraction = 0.0;
  /// Fraction of statements that are range SELECTs (BETWEEN) whose
  /// predicate column is mix-drawn and whose width is uniform in
  /// [1, max_range_width].
  double range_fraction = 0.0;
  int64_t max_range_width = 1000;
};

/// Generates the paper's workloads: point queries whose predicate (and
/// selected) column is drawn from a QueryMix and whose literal is
/// uniform in [0, domain_size). Deterministic given the Rng seed.
class WorkloadGenerator {
 public:
  /// `schema` must have as many columns as the mixes weight.
  WorkloadGenerator(Schema schema, int64_t domain_size, uint64_t seed);

  const Schema& schema() const { return schema_; }

  /// One point query drawn from `mix`.
  BoundStatement GenerateQuery(const QueryMix& mix);

  /// `count` point queries drawn from `mix`.
  std::vector<BoundStatement> GenerateFromMix(const QueryMix& mix,
                                              size_t count);

  /// A phased workload: blocks[i] names the mix (index into `mixes`)
  /// of the i-th block of `block_size` statements. Optionally blends in
  /// updates/inserts per `dml`. This is the shape of W1/W2/W3.
  Result<Workload> GenerateBlocked(const std::vector<QueryMix>& mixes,
                                   const std::vector<int>& blocks,
                                   size_t block_size,
                                   const DmlMixOptions& dml = {});

 private:
  BoundStatement GenerateDml(const QueryMix& mix, const DmlMixOptions& dml);

  Schema schema_;
  int64_t domain_size_;
  Rng rng_;
};

}  // namespace cdpd

#endif  // CDPD_WORKLOAD_GENERATOR_H_
