#include "workload/generator.h"

namespace cdpd {

WorkloadGenerator::WorkloadGenerator(Schema schema, int64_t domain_size,
                                     uint64_t seed)
    : schema_(std::move(schema)), domain_size_(domain_size), rng_(seed) {}

BoundStatement WorkloadGenerator::GenerateQuery(const QueryMix& mix) {
  const auto column =
      static_cast<ColumnId>(rng_.PickWeighted(mix.column_weights));
  const Value value = rng_.UniformInt(0, domain_size_ - 1);
  return BoundStatement::SelectPoint(column, column, value);
}

std::vector<BoundStatement> WorkloadGenerator::GenerateFromMix(
    const QueryMix& mix, size_t count) {
  std::vector<BoundStatement> statements;
  statements.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    statements.push_back(GenerateQuery(mix));
  }
  return statements;
}

BoundStatement WorkloadGenerator::GenerateDml(const QueryMix& mix,
                                              const DmlMixOptions& dml) {
  // Bands of the unit interval: updates, inserts, ranges, then point
  // queries for the remainder.
  const double roll = rng_.NextDouble();
  if (roll < dml.update_fraction) {
    const auto where_column =
        static_cast<ColumnId>(rng_.PickWeighted(mix.column_weights));
    const auto set_column = static_cast<ColumnId>(
        rng_.NextBounded(static_cast<uint64_t>(schema_.num_columns())));
    return BoundStatement::UpdatePoint(
        set_column, rng_.UniformInt(0, domain_size_ - 1), where_column,
        rng_.UniformInt(0, domain_size_ - 1));
  }
  if (roll < dml.update_fraction + dml.insert_fraction) {
    std::vector<Value> values;
    values.reserve(static_cast<size_t>(schema_.num_columns()));
    for (int32_t i = 0; i < schema_.num_columns(); ++i) {
      values.push_back(rng_.UniformInt(0, domain_size_ - 1));
    }
    return BoundStatement::Insert(std::move(values));
  }
  if (roll <
      dml.update_fraction + dml.insert_fraction + dml.range_fraction) {
    const auto column =
        static_cast<ColumnId>(rng_.PickWeighted(mix.column_weights));
    const Value width = rng_.UniformInt(1, dml.max_range_width);
    const Value lo = rng_.UniformInt(0, domain_size_ - 1);
    const Value hi = std::min<Value>(lo + width - 1, domain_size_ - 1);
    return BoundStatement::SelectRange(column, column, lo, hi);
  }
  return GenerateQuery(mix);
}

Result<Workload> WorkloadGenerator::GenerateBlocked(
    const std::vector<QueryMix>& mixes, const std::vector<int>& blocks,
    size_t block_size, const DmlMixOptions& dml) {
  if (block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  if (dml.update_fraction < 0 || dml.insert_fraction < 0 ||
      dml.range_fraction < 0 ||
      dml.update_fraction + dml.insert_fraction + dml.range_fraction > 1.0) {
    return Status::InvalidArgument("DML fractions must be in [0, 1]");
  }
  if (dml.range_fraction > 0 && dml.max_range_width < 1) {
    return Status::InvalidArgument("max_range_width must be >= 1");
  }
  for (const QueryMix& mix : mixes) {
    if (static_cast<int32_t>(mix.column_weights.size()) !=
        schema_.num_columns()) {
      return Status::InvalidArgument("mix '" + mix.name + "' weights " +
                                     std::to_string(mix.column_weights.size()) +
                                     " columns; schema has " +
                                     std::to_string(schema_.num_columns()));
    }
  }
  Workload workload;
  workload.block_size = block_size;
  workload.statements.reserve(blocks.size() * block_size);
  for (int mix_index : blocks) {
    if (mix_index < 0 || static_cast<size_t>(mix_index) >= mixes.size()) {
      return Status::InvalidArgument("block references mix index " +
                                     std::to_string(mix_index));
    }
    const QueryMix& mix = mixes[static_cast<size_t>(mix_index)];
    workload.block_mix_names.push_back(mix.name);
    for (size_t i = 0; i < block_size; ++i) {
      workload.statements.push_back(GenerateDml(mix, dml));
    }
  }
  return workload;
}

}  // namespace cdpd
