#include "workload/statement.h"

namespace cdpd {

std::string BoundStatement::ToString(const Schema& schema) const {
  switch (type) {
    case StatementType::kSelectPoint:
      return "SELECT " + schema.column_name(select_column) + " FROM " +
             schema.table_name() + " WHERE " +
             schema.column_name(where_column) + " = " +
             std::to_string(where_value);
    case StatementType::kSelectRange:
      return "SELECT " + schema.column_name(select_column) + " FROM " +
             schema.table_name() + " WHERE " +
             schema.column_name(where_column) + " BETWEEN " +
             std::to_string(where_lo) + " AND " + std::to_string(where_hi);
    case StatementType::kUpdatePoint:
      return "UPDATE " + schema.table_name() + " SET " +
             schema.column_name(set_column) + " = " +
             std::to_string(set_value) + " WHERE " +
             schema.column_name(where_column) + " = " +
             std::to_string(where_value);
    case StatementType::kInsert: {
      std::string out = "INSERT INTO " + schema.table_name() + " VALUES (";
      for (size_t i = 0; i < insert_values.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(insert_values[i]);
      }
      return out + ")";
    }
  }
  return "<invalid statement>";
}

}  // namespace cdpd
