#ifndef CDPD_WORKLOAD_WORKLOAD_H_
#define CDPD_WORKLOAD_WORKLOAD_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "workload/statement.h"

namespace cdpd {

/// A half-open range [begin, end) of statement positions — one stage
/// S_i of the design problem. The paper's formulation has one stage per
/// statement; grouping statements into blocks (the paper reports
/// designs per 500-query block in Table 2) is the practical way to keep
/// the sequence graph small, and a block size of 1 recovers the
/// per-statement formulation exactly.
struct Segment {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool operator==(const Segment&) const = default;
};

/// A statement sequence plus optional per-block labelling (which query
/// mix generated each block) used when printing Table 2.
struct Workload {
  std::vector<BoundStatement> statements;
  /// Mix name per generated block ("A".."D"); empty when not generated
  /// from mixes. blocks_size gives the generation block granularity.
  std::vector<std::string> block_mix_names;
  size_t block_size = 0;

  size_t size() const { return statements.size(); }
  std::span<const BoundStatement> Span() const { return statements; }
};

/// Cuts [0, total) into consecutive segments of `block_size` (the last
/// may be shorter). block_size must be > 0.
std::vector<Segment> SegmentFixed(size_t total, size_t block_size);

/// Groups `stages` (the solver's DP stages — fixed blocks or adaptive
/// phases) into at most `num_chunks` consecutive runs of stages,
/// balanced by *statement* weight: chunk t ends at the first stage
/// whose cumulative statement count reaches t/num_chunks of the total.
/// Returned segments index into `stages` (half-open stage-index
/// ranges), exactly cover [0, stages.size()), and each holds at least
/// one stage — so a chunk boundary never splits a stage, which is how
/// segment-parallel solving respects adaptive_segmenter phase
/// boundaries while still load-balancing variable-length phases.
/// Deterministic; independent of any thread count. num_chunks is
/// clamped to stages.size(); num_chunks == 0 yields one chunk.
std::vector<Segment> SplitStagesBalanced(const std::vector<Segment>& stages,
                                         size_t num_chunks);

}  // namespace cdpd

#endif  // CDPD_WORKLOAD_WORKLOAD_H_
