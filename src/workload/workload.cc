#include "workload/workload.h"

#include <cassert>

namespace cdpd {

std::vector<Segment> SegmentFixed(size_t total, size_t block_size) {
  assert(block_size > 0);
  std::vector<Segment> segments;
  segments.reserve((total + block_size - 1) / block_size);
  for (size_t begin = 0; begin < total; begin += block_size) {
    segments.push_back(Segment{begin, std::min(total, begin + block_size)});
  }
  return segments;
}

}  // namespace cdpd
