#include "workload/workload.h"

#include <cassert>

namespace cdpd {

std::vector<Segment> SegmentFixed(size_t total, size_t block_size) {
  assert(block_size > 0);
  std::vector<Segment> segments;
  segments.reserve((total + block_size - 1) / block_size);
  for (size_t begin = 0; begin < total; begin += block_size) {
    segments.push_back(Segment{begin, std::min(total, begin + block_size)});
  }
  return segments;
}

std::vector<Segment> SplitStagesBalanced(const std::vector<Segment>& stages,
                                         size_t num_chunks) {
  const size_t n = stages.size();
  if (num_chunks == 0) num_chunks = 1;
  if (num_chunks > n) num_chunks = n;
  std::vector<Segment> chunks;
  if (n == 0) return chunks;
  chunks.reserve(num_chunks);
  uint64_t total = 0;
  for (const Segment& stage : stages) total += stage.size();
  size_t begin = 0;
  uint64_t cum = 0;
  for (size_t t = 0; t < num_chunks; ++t) {
    // Every chunk takes at least one stage, and leaves at least one
    // stage per chunk still to cut.
    size_t end = begin + 1;
    cum += stages[begin].size();
    const uint64_t target = (total * (t + 1)) / num_chunks;
    const size_t max_end = n - (num_chunks - t - 1);
    while (end < max_end && cum < target) {
      cum += stages[end].size();
      ++end;
    }
    // The last chunk absorbs whatever remains (zero-weight trailing
    // stages would otherwise be dropped by the weight test).
    if (t + 1 == num_chunks) end = n;
    chunks.push_back(Segment{begin, end});
    begin = end;
  }
  return chunks;
}

}  // namespace cdpd
