#include "workload/standard_workloads.h"

#include "common/string_util.h"

namespace cdpd {

namespace {

/// One phase of ten blocks alternating two mixes with the given run
/// length (2 blocks = minor shift every 1000 queries, 1 block = every
/// 500 queries), starting with `first`.
void AppendPhase(char first, char second, int run_blocks,
                 std::vector<std::string>* out) {
  for (int block = 0; block < 10; ++block) {
    const bool use_first = (block / run_blocks) % 2 == 0;
    out->push_back(std::string(1, use_first ? first : second));
  }
}

}  // namespace

std::vector<std::string> PaperBlockMixLetters(std::string_view workload_name) {
  std::vector<std::string> letters;
  letters.reserve(30);
  if (EqualsIgnoreCase(workload_name, "W1")) {
    AppendPhase('A', 'B', 2, &letters);
    AppendPhase('C', 'D', 2, &letters);
    AppendPhase('A', 'B', 2, &letters);
  } else if (EqualsIgnoreCase(workload_name, "W2")) {
    AppendPhase('A', 'B', 1, &letters);
    AppendPhase('C', 'D', 1, &letters);
    AppendPhase('A', 'B', 1, &letters);
  } else if (EqualsIgnoreCase(workload_name, "W3")) {
    AppendPhase('B', 'A', 2, &letters);
    AppendPhase('D', 'C', 2, &letters);
    AppendPhase('B', 'A', 2, &letters);
  }
  return letters;
}

Result<Workload> MakeScaledPaperWorkload(std::string_view workload_name,
                                         size_t block_size,
                                         WorkloadGenerator* generator) {
  const std::vector<std::string> letters = PaperBlockMixLetters(workload_name);
  if (letters.empty()) {
    return Status::InvalidArgument("unknown workload '" +
                                   std::string(workload_name) +
                                   "' (expected W1, W2 or W3)");
  }
  const std::vector<QueryMix> mixes = MakePaperQueryMixes();
  std::vector<int> blocks;
  blocks.reserve(letters.size());
  for (const std::string& letter : letters) {
    const int mix = FindMixByName(mixes, letter);
    if (mix < 0) {
      return Status::Internal("mix letter '" + letter + "' not in Table 1");
    }
    blocks.push_back(mix);
  }
  return generator->GenerateBlocked(mixes, blocks, block_size);
}

Result<Workload> MakePaperWorkload(std::string_view workload_name,
                                   WorkloadGenerator* generator) {
  return MakeScaledPaperWorkload(workload_name, kPaperBlockSize, generator);
}

}  // namespace cdpd
