#include "workload/shift_detector.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace cdpd {

namespace {

/// Normalized predicate-column distribution of one block (empty if the
/// block has no predicates).
std::vector<double> BlockDistribution(
    std::span<const BoundStatement> statements, const Segment& block,
    size_t num_columns) {
  std::vector<double> dist(num_columns, 0.0);
  double total = 0;
  for (size_t i = block.begin; i < block.end; ++i) {
    const BoundStatement& s = statements[i];
    switch (s.type) {
      case StatementType::kSelectPoint:
      case StatementType::kSelectRange:
      case StatementType::kUpdatePoint:
        dist[static_cast<size_t>(s.where_column)] += 1;
        total += 1;
        break;
      case StatementType::kInsert:
        break;
    }
  }
  if (total > 0) {
    for (double& d : dist) d /= total;
  }
  return dist;
}

/// Average of block distributions [begin, end).
std::vector<double> WindowAverage(const std::vector<std::vector<double>>& dists,
                                  size_t begin, size_t end) {
  std::vector<double> avg(dists.empty() ? 0 : dists[0].size(), 0.0);
  for (size_t b = begin; b < end; ++b) {
    for (size_t c = 0; c < avg.size(); ++c) avg[c] += dists[b][c];
  }
  const double n = static_cast<double>(end - begin);
  if (n > 0) {
    for (double& a : avg) a /= n;
  }
  return avg;
}

double TotalVariation(const std::vector<double>& p,
                      const std::vector<double>& q) {
  double tv = 0;
  for (size_t i = 0; i < p.size(); ++i) tv += std::abs(p[i] - q[i]);
  return tv / 2.0;
}

}  // namespace

std::string ShiftReport::ToString() const {
  std::string out = "detected " + std::to_string(shifts.size()) +
                    " major shift(s); suggested k = " +
                    std::to_string(suggested_k) + "\n";
  for (const DetectedShift& shift : shifts) {
    out += "  at statement " + std::to_string(shift.statement_index + 1) +
           " (block " + std::to_string(shift.block_index) + "), distance " +
           FormatDouble(shift.distance, 3) + "\n";
  }
  return out;
}

ShiftReport DetectMajorShifts(const Schema& schema,
                              std::span<const BoundStatement> statements,
                              const ShiftDetectionOptions& options) {
  ShiftReport report;
  if (options.block_size == 0 || options.window_blocks == 0) return report;
  const std::vector<Segment> blocks =
      SegmentFixed(statements.size(), options.block_size);
  const size_t window = options.window_blocks;
  if (blocks.size() < 2 * window) return report;

  const auto num_columns = static_cast<size_t>(schema.num_columns());
  std::vector<std::vector<double>> dists;
  dists.reserve(blocks.size());
  for (const Segment& block : blocks) {
    dists.push_back(BlockDistribution(statements, block, num_columns));
  }

  // Candidate boundaries: TV distance between the window averages on
  // either side.
  struct Candidate {
    size_t boundary;
    double distance;
  };
  std::vector<Candidate> candidates;
  for (size_t b = window; b + window <= blocks.size(); ++b) {
    const double tv = TotalVariation(WindowAverage(dists, b - window, b),
                                     WindowAverage(dists, b, b + window));
    if (tv > options.threshold) {
      candidates.push_back(Candidate{b, tv});
    }
  }

  // Cluster candidates closer than one window and keep each cluster's
  // strongest boundary (a single shift raises every straddling
  // boundary above the threshold).
  size_t i = 0;
  while (i < candidates.size()) {
    size_t j = i;
    size_t best = i;
    while (j + 1 < candidates.size() &&
           candidates[j + 1].boundary - candidates[j].boundary <= window) {
      ++j;
      if (candidates[j].distance > candidates[best].distance) best = j;
    }
    DetectedShift shift;
    shift.block_index = candidates[best].boundary;
    shift.statement_index = blocks[candidates[best].boundary].begin;
    shift.distance = candidates[best].distance;
    report.shifts.push_back(shift);
    i = j + 1;
  }
  report.suggested_k = static_cast<int64_t>(report.shifts.size());
  return report;
}

}  // namespace cdpd
