#ifndef CDPD_WORKLOAD_QUERY_MIX_H_
#define CDPD_WORKLOAD_QUERY_MIX_H_

#include <string>
#include <vector>

#include "storage/schema.h"

namespace cdpd {

/// A query mix: the probability that a generated point query touches
/// each column of the schema (Table 1 of the paper). Queries have the
/// form  SELECT <col> FROM t WHERE <col> = <randValue>  with <col>
/// drawn from this distribution.
struct QueryMix {
  std::string name;
  /// One weight per schema column; need not be normalized.
  std::vector<double> column_weights;

  bool operator==(const QueryMix&) const = default;
};

/// The four mixes of Table 1 over columns (a, b, c, d):
///   Mix A: 55% a, 25% b, 10% c, 10% d
///   Mix B: 25% a, 55% b, 10% c, 10% d
///   Mix C: 10% a, 10% b, 55% c, 25% d
///   Mix D: 10% a, 10% b, 25% c, 55% d
std::vector<QueryMix> MakePaperQueryMixes();

/// Index of the mix named `name` ("A".."D") in MakePaperQueryMixes().
/// Returns -1 if unknown.
int FindMixByName(const std::vector<QueryMix>& mixes, std::string_view name);

}  // namespace cdpd

#endif  // CDPD_WORKLOAD_QUERY_MIX_H_
