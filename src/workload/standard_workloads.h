#ifndef CDPD_WORKLOAD_STANDARD_WORKLOADS_H_
#define CDPD_WORKLOAD_STANDARD_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/generator.h"
#include "workload/workload.h"

namespace cdpd {

/// Block size at which Table 2 reports W1/W2/W3 (500 queries).
inline constexpr size_t kPaperBlockSize = 500;

/// Mix letter ("A".."D") of each 500-query block of the three dynamic
/// workloads of Table 2:
///
///   W1 — three 5000-query phases with a minor shift every 1000
///        queries: phase 1 and 3 alternate A/B, phase 2 alternates C/D.
///   W2 — same phases, but minor shifts every 500 queries.
///   W3 — same cadence as W1 but out of phase: B where W1 uses A, etc.
std::vector<std::string> PaperBlockMixLetters(std::string_view workload_name);

/// Generates one of the paper's workloads ("W1", "W2" or "W3") with the
/// given generator. Each call consumes generator randomness; pass
/// separately seeded generators for independent workloads.
Result<Workload> MakePaperWorkload(std::string_view workload_name,
                                   WorkloadGenerator* generator);

/// Scaled-down variant for unit tests and quick demos: same phase
/// structure, `block_size` queries per block.
Result<Workload> MakeScaledPaperWorkload(std::string_view workload_name,
                                         size_t block_size,
                                         WorkloadGenerator* generator);

}  // namespace cdpd

#endif  // CDPD_WORKLOAD_STANDARD_WORKLOADS_H_
