#ifndef CDPD_WORKLOAD_SHIFT_DETECTOR_H_
#define CDPD_WORKLOAD_SHIFT_DETECTOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "workload/statement.h"
#include "workload/workload.h"

namespace cdpd {

/// Options of the major-shift detector.
struct ShiftDetectionOptions {
  /// Statements per block (the detector's time resolution).
  size_t block_size = 500;
  /// Blocks on each side of a boundary whose *average* predicate-
  /// column distributions are compared. Averaging over a window is
  /// what filters minor fluctuations: a persistent change moves the
  /// window average, an alternation does not.
  size_t window_blocks = 4;
  /// Total-variation distance above which a boundary is a major shift.
  double threshold = 0.3;
};

/// A detected persistent workload change.
struct DetectedShift {
  /// First block of the new regime.
  size_t block_index = 0;
  /// Statement position of the shift.
  size_t statement_index = 0;
  /// Total-variation distance between the regime averages.
  double distance = 0.0;
};

struct ShiftReport {
  std::vector<DetectedShift> shifts;
  /// The k the paper's guidance derives from the trace: "a value equal
  /// to or a bit larger than the number of anticipated fluctuations".
  int64_t suggested_k = 0;
  std::string ToString() const;
};

/// Detects *major* workload shifts in a statement sequence by sliding
/// a window pair over block-level predicate-column distributions and
/// reporting boundaries where the average distribution changes
/// persistently (total-variation distance above the threshold).
/// Minor fluctuations — e.g. W1's A<->B alternation every 1000 queries
/// — cancel out in the window averages; the phase changes at 5000 and
/// 10000 do not. Suggested_k = number of detected shifts, directly
/// instantiating the paper's domain-knowledge guidance for choosing k.
ShiftReport DetectMajorShifts(const Schema& schema,
                              std::span<const BoundStatement> statements,
                              const ShiftDetectionOptions& options = {});

}  // namespace cdpd

#endif  // CDPD_WORKLOAD_SHIFT_DETECTOR_H_
