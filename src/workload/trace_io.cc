#include "workload/trace_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace cdpd {

std::string WriteTrace(const Schema& schema, const Workload& workload) {
  std::string out;
  out += "-- cdpd workload trace: " + std::to_string(workload.size()) +
         " statements over " + schema.ToString() + "\n";
  const bool blocked =
      workload.block_size > 0 && !workload.block_mix_names.empty();
  size_t block = static_cast<size_t>(-1);
  for (size_t i = 0; i < workload.statements.size(); ++i) {
    if (blocked && i / workload.block_size != block) {
      block = i / workload.block_size;
      out += "-- block " + std::to_string(block);
      if (block < workload.block_mix_names.size()) {
        out += " mix " + workload.block_mix_names[block];
      }
      out += "\n";
    }
    out += workload.statements[i].ToString(schema);
    out += ";\n";
  }
  return out;
}

Status WriteTraceFile(const std::string& path, const Schema& schema,
                      const Workload& workload) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  file << WriteTrace(schema, workload);
  file.close();
  if (!file) {
    return Status::Internal("error writing '" + path + "'");
  }
  return Status::OK();
}

Result<Workload> ReadTrace(const Schema& schema, std::string_view text) {
  Workload workload;
  size_t current_block = 0;
  bool saw_block_comments = false;
  size_t line_number = 0;
  size_t block_begin_statement = 0;

  std::istringstream stream{std::string(text)};
  std::string raw_line;
  while (std::getline(stream, raw_line)) {
    ++line_number;
    const std::string_view line = Trim(raw_line);
    if (line.empty()) continue;
    if (line.substr(0, 2) == "--") {
      // Block marker comments carry the mix labels; other comments are
      // ignored.
      const std::vector<std::string> words =
          Split(std::string(Trim(line.substr(2))), ' ');
      if (words.size() >= 2 && words[0] == "block") {
        saw_block_comments = true;
        current_block = static_cast<size_t>(std::atoll(words[1].c_str()));
        while (workload.block_mix_names.size() <= current_block) {
          workload.block_mix_names.emplace_back();
        }
        if (words.size() >= 4 && words[2] == "mix") {
          workload.block_mix_names[current_block] = words[3];
        }
        if (current_block == 1 && workload.block_size == 0) {
          workload.block_size = workload.size() - block_begin_statement;
        }
        block_begin_statement = workload.size();
      }
      continue;
    }
    auto ast = ParseStatement(line);
    if (!ast.ok()) {
      return Status::ParseError("line " + std::to_string(line_number) + ": " +
                                ast.status().message());
    }
    if (std::holds_alternative<CreateIndexAst>(*ast) ||
        std::holds_alternative<DropIndexAst>(*ast)) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": index DDL is not allowed in a workload trace");
    }
    auto bound = BindStatement(schema, *ast);
    if (!bound.ok()) {
      return Status(bound.status().code(),
                    "line " + std::to_string(line_number) + ": " +
                        bound.status().message());
    }
    workload.statements.push_back(std::move(bound).value());
  }
  if (!saw_block_comments) {
    workload.block_mix_names.clear();
    workload.block_size = 0;
  }
  return workload;
}

Result<Workload> ReadTraceFile(const std::string& path,
                               const Schema& schema) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open trace file '" + path + "'");
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return ReadTrace(schema, contents.str());
}

}  // namespace cdpd
