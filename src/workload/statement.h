#ifndef CDPD_WORKLOAD_STATEMENT_H_
#define CDPD_WORKLOAD_STATEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/schema.h"

namespace cdpd {

/// Kinds of workload statements. The paper's workloads consist of point
/// SELECTs ("SELECT <col> FROM t WHERE <col> = <v>"); range SELECTs
/// (BETWEEN), UPDATE and INSERT are supported so that selectivity and
/// index-maintenance costs are exercised and the formulation's
/// "queries and updates" is honoured.
enum class StatementType {
  kSelectPoint,
  kSelectRange,
  kUpdatePoint,
  kInsert,
};

/// A statement with all names resolved against a schema — the S_i of
/// the problem formulation. This is the representation the executor and
/// the cost model operate on; SQL text is bound to it by sql/binder.h.
struct BoundStatement {
  StatementType type = StatementType::kSelectPoint;

  // kSelectPoint: SELECT select_column WHERE where_column = where_value.
  // kSelectRange: SELECT select_column
  //               WHERE where_column BETWEEN where_lo AND where_hi.
  // kUpdatePoint: UPDATE SET set_column = set_value
  //               WHERE where_column = where_value.
  ColumnId select_column = 0;
  ColumnId where_column = 0;
  Value where_value = 0;
  Value where_lo = 0;  // Inclusive range bounds (kSelectRange).
  Value where_hi = 0;
  ColumnId set_column = 0;
  Value set_value = 0;

  // kInsert: one row of values, in schema column order.
  std::vector<Value> insert_values;

  static BoundStatement SelectPoint(ColumnId select_column,
                                    ColumnId where_column, Value where_value) {
    BoundStatement s;
    s.type = StatementType::kSelectPoint;
    s.select_column = select_column;
    s.where_column = where_column;
    s.where_value = where_value;
    return s;
  }

  /// Range select with inclusive bounds; requires lo <= hi.
  static BoundStatement SelectRange(ColumnId select_column,
                                    ColumnId where_column, Value lo,
                                    Value hi) {
    BoundStatement s;
    s.type = StatementType::kSelectRange;
    s.select_column = select_column;
    s.where_column = where_column;
    s.where_lo = lo;
    s.where_hi = hi;
    return s;
  }

  static BoundStatement UpdatePoint(ColumnId set_column, Value set_value,
                                    ColumnId where_column, Value where_value) {
    BoundStatement s;
    s.type = StatementType::kUpdatePoint;
    s.set_column = set_column;
    s.set_value = set_value;
    s.where_column = where_column;
    s.where_value = where_value;
    return s;
  }

  static BoundStatement Insert(std::vector<Value> values) {
    BoundStatement s;
    s.type = StatementType::kInsert;
    s.insert_values = std::move(values);
    return s;
  }

  /// SQL-ish rendering against `schema`, for logs and debugging.
  std::string ToString(const Schema& schema) const;

  bool operator==(const BoundStatement& other) const = default;
};

}  // namespace cdpd

#endif  // CDPD_WORKLOAD_STATEMENT_H_
