#ifndef CDPD_WORKLOAD_TRACE_IO_H_
#define CDPD_WORKLOAD_TRACE_IO_H_

#include <string>

#include "common/result.h"
#include "workload/workload.h"

namespace cdpd {

/// Serializes a workload trace as a SQL script: one statement per
/// line, terminated with ';'. Block structure (when present) is
/// preserved as comment lines of the form
///
///   -- block 7 mix B
///
/// so a captured trace round-trips through ReadTrace() losslessly,
/// including the Table 2 mix labels.
std::string WriteTrace(const Schema& schema, const Workload& workload);

/// Writes WriteTrace() output to `path`. Fails with Internal on I/O
/// errors.
Status WriteTraceFile(const std::string& path, const Schema& schema,
                      const Workload& workload);

/// Parses a trace produced by WriteTrace() — or any ';'-terminated,
/// one-statement-per-line SQL script with optional '--' comments —
/// into a bound workload. Statement kinds are restricted to the DML
/// dialect (index DDL in a trace is rejected: physical design is the
/// advisor's output, not its input).
Result<Workload> ReadTrace(const Schema& schema, std::string_view text);

/// Reads and parses a trace file.
Result<Workload> ReadTraceFile(const std::string& path, const Schema& schema);

}  // namespace cdpd

#endif  // CDPD_WORKLOAD_TRACE_IO_H_
