#ifndef CDPD_WORKLOAD_ADAPTIVE_SEGMENTER_H_
#define CDPD_WORKLOAD_ADAPTIVE_SEGMENTER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "storage/schema.h"
#include "workload/statement.h"
#include "workload/workload.h"

namespace cdpd {

/// Options for distribution-driven segmentation.
struct AdaptiveSegmentOptions {
  /// Resolution: statements per base block. Segment boundaries only
  /// fall on base-block boundaries.
  size_t base_block_size = 500;
  /// Adjacent blocks merge into one stage while the total-variation
  /// distance between the running segment's predicate-column
  /// distribution and the next block's stays at or below this.
  double merge_threshold = 0.15;
  /// Cap on blocks per segment (0 = unlimited). Bounding segment
  /// length keeps EXEC profiles from averaging away slow drift.
  size_t max_segment_blocks = 0;
};

/// Cuts a statement sequence into variable-length stages whose
/// contents are distributionally homogeneous: blocks are merged while
/// the workload "looks the same" and a new stage starts when it
/// shifts. Compared to fixed-size stages this shrinks the sequence
/// graph (fewer stages where the workload is stable) without blurring
/// phase boundaries — the failure mode of large fixed blocks that
/// Ablation D exposes. Fully deterministic.
std::vector<Segment> SegmentAdaptive(const Schema& schema,
                                     std::span<const BoundStatement> statements,
                                     const AdaptiveSegmentOptions& options = {});

}  // namespace cdpd

#endif  // CDPD_WORKLOAD_ADAPTIVE_SEGMENTER_H_
