#include "workload/adaptive_segmenter.h"

#include <cmath>

namespace cdpd {

namespace {

/// Unnormalized predicate-column counts of [begin, end).
std::vector<double> CountColumns(std::span<const BoundStatement> statements,
                                 size_t begin, size_t end,
                                 size_t num_columns) {
  std::vector<double> counts(num_columns, 0.0);
  for (size_t i = begin; i < end; ++i) {
    const BoundStatement& s = statements[i];
    switch (s.type) {
      case StatementType::kSelectPoint:
      case StatementType::kSelectRange:
      case StatementType::kUpdatePoint:
        counts[static_cast<size_t>(s.where_column)] += 1;
        break;
      case StatementType::kInsert:
        break;
    }
  }
  return counts;
}

/// Total-variation distance between two count vectors after
/// normalization (0 if either is empty).
double Distance(const std::vector<double>& a, const std::vector<double>& b) {
  double total_a = 0;
  double total_b = 0;
  for (double v : a) total_a += v;
  for (double v : b) total_b += v;
  if (total_a == 0 || total_b == 0) return 0.0;
  double tv = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    tv += std::abs(a[i] / total_a - b[i] / total_b);
  }
  return tv / 2.0;
}

}  // namespace

std::vector<Segment> SegmentAdaptive(
    const Schema& schema, std::span<const BoundStatement> statements,
    const AdaptiveSegmentOptions& options) {
  std::vector<Segment> segments;
  if (options.base_block_size == 0 || statements.empty()) return segments;
  const std::vector<Segment> blocks =
      SegmentFixed(statements.size(), options.base_block_size);
  const auto num_columns = static_cast<size_t>(schema.num_columns());

  Segment current = blocks[0];
  std::vector<double> current_counts =
      CountColumns(statements, current.begin, current.end, num_columns);
  size_t current_blocks = 1;

  for (size_t b = 1; b < blocks.size(); ++b) {
    const Segment& block = blocks[b];
    const std::vector<double> block_counts =
        CountColumns(statements, block.begin, block.end, num_columns);
    const bool under_cap = options.max_segment_blocks == 0 ||
                           current_blocks < options.max_segment_blocks;
    if (under_cap &&
        Distance(current_counts, block_counts) <= options.merge_threshold) {
      current.end = block.end;
      for (size_t c = 0; c < num_columns; ++c) {
        current_counts[c] += block_counts[c];
      }
      ++current_blocks;
    } else {
      segments.push_back(current);
      current = block;
      current_counts = block_counts;
      current_blocks = 1;
    }
  }
  segments.push_back(current);
  return segments;
}

}  // namespace cdpd
