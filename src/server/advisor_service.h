#ifndef CDPD_SERVER_ADVISOR_SERVICE_H_
#define CDPD_SERVER_ADVISOR_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/configuration.h"
#include "common/budget.h"
#include "common/metrics.h"
#include "common/observability.h"
#include "common/result.h"
#include "core/solver.h"
#include "core/solver_session.h"
#include "cost/cost_model.h"
#include "cost/what_if.h"
#include "server/frame.h"
#include "server/slow_log.h"
#include "storage/schema.h"
#include "workload/workload.h"

namespace cdpd {

class Recorder;

/// The git commit this binary was built from. CI stamps it through the
/// CDPD_GIT_SHA environment variable (read once, at first call);
/// "unknown" otherwise. Reported by /varz and postmortem manifests.
const std::string& BuildGitSha();

/// The CMake build flavor ("Release", "Debug", ...; "unknown" when the
/// build did not stamp one).
std::string_view BuildTypeName();

/// Everything that parameterizes a resident advisor: the catalog (one
/// schema + cost-model state, fixed for the service's lifetime), the
/// pinned candidate space, the sliding workload window, and the
/// request defaults a client can override per call.
struct ServiceOptions {
  Schema schema = MakePaperSchema();
  /// Cost-model table size and value domain (the paper's instance is
  /// 2.5 M rows over a 500 k domain; the default is the CLI's demo
  /// scale).
  int64_t rows = 250'000;
  int64_t domain_size = 500'000;
  CostParams params;
  /// Candidate indexes the recommendations draw from; empty =
  /// MakePaperCandidateIndexes(schema). Pinned at construction so the
  /// candidate universe — and with it the cost cache's validity token —
  /// never changes across re-solves: that is what keeps the warm-start
  /// hit rate high over a sliding window.
  std::vector<IndexDef> candidate_indexes;
  int32_t max_indexes_per_config = 1;
  int64_t space_bound_pages = std::numeric_limits<int64_t>::max();
  /// Statements per advisor segment (DP stage).
  size_t block_size = 100;
  /// Sliding-window cap: INGEST keeps only the most recent this-many
  /// statements (0 = unbounded, the window only grows).
  size_t window_statements = 10'000;
  /// Request defaults; a RECOMMEND payload's own fields win.
  std::optional<int64_t> k = 2;
  OptimizerMethod method = OptimizerMethod::kOptimal;
  std::optional<std::chrono::milliseconds> default_deadline;
  std::optional<int64_t> default_memory_limit_bytes;
  /// Worker threads of the resident SolverSession's pool (0 =
  /// hardware default) and the byte cap of its persistent cost cache
  /// (0 = unbounded).
  int num_threads = 0;
  int64_t cost_cache_max_bytes = 0;
  /// Extra observability sinks layered *under* the service's own
  /// metrics registry (the registry always receives the solver and
  /// server metrics; these add tracing/logging/progress).
  Observability observability;
  /// Slowest-request entries GET /slowlog keeps (0 disables) and the
  /// recent-request ring GET /trace?id= resolves ids from.
  size_t slow_log_capacity = 32;
  size_t slow_log_recent = 256;
  /// When non-empty, the first failed request flushes a postmortem
  /// bundle under `<postmortem_dir>/failure` (once per process — the
  /// first failure is the interesting one; see WritePostmortemBundle).
  std::string postmortem_dir;

  Status Validate() const;
};

/// Per-request attribution the transport threads into Handle(): the
/// wire request id (empty when the client sent none and the server
/// generated one) and an optional request-scoped tracer the service
/// opens its parse/solve spans on — the solver's own spans land on the
/// same tracer through SolveOptions::observability.
struct RequestContext {
  std::string_view request_id;
  Tracer* tracer = nullptr;
};

/// INGEST outcome: how many statements the batch added and what the
/// window looks like now.
struct IngestAck {
  size_t accepted = 0;          // Statements parsed from this batch.
  size_t window_statements = 0; // Window size after the slide.
  size_t dropped = 0;           // Statements the cap pushed out.
  uint64_t epoch = 0;           // Window version (bumps every ingest).
  std::string ToJson() const;
};

/// WHATIF outcome: the hypothetical configuration's estimated workload
/// cost over the current window.
struct WhatIfAnswer {
  Configuration config;
  double exec_cost = 0.0;       // Σ_i EXEC(S_i, config).
  double base_exec_cost = 0.0;  // Σ_i EXEC(S_i, current initial).
  double build_cost = 0.0;      // TRANS(current initial, config).
  size_t segments = 0;
  std::string ToJson(const Schema& schema) const;
};

/// Per-request knobs of a RECOMMEND, parsed from its key=value payload
/// (see ParseRecommendRequest). Unset fields fall back to the
/// ServiceOptions defaults; deadline/memory map onto the solver's QoS
/// plumbing (SolveOptions::deadline / memory_limit_bytes).
struct RecommendRequest {
  std::optional<int64_t> k;
  std::optional<OptimizerMethod> method;
  std::optional<std::chrono::milliseconds> deadline;
  std::optional<int64_t> memory_limit_bytes;
  bool prune = false;
  int segment_chunks = 0;
  /// Adopt the recommended final configuration as the service's
  /// initial design for subsequent requests — the "the advisor lives
  /// alongside the workload" loop where each window's solution becomes
  /// the next window's C0.
  bool apply = false;
};

/// Strict parse of a RECOMMEND payload: newline-separated key=value
/// pairs (k, method, deadline_ms, memory_limit_bytes, prune, chunks,
/// apply), '#' comments, blank lines ignored. Unknown keys and
/// malformed integers are InvalidArgument — a typo must not silently
/// fall back to defaults.
Result<RecommendRequest> ParseRecommendRequest(std::string_view text);

/// RECOMMEND outcome: the schedule (compressed to its change points),
/// the change count, and the solve's stats.
struct RecommendAnswer {
  DesignSchedule schedule;
  std::vector<Segment> segments;
  int64_t changes = 0;
  std::optional<int64_t> k;
  OptimizerMethod method = OptimizerMethod::kOptimal;
  SolveStats stats;
  std::string method_detail;
  /// True when the identical-window short-circuit served the resident
  /// solution instead of re-solving (bit-identical by determinism —
  /// only taken for deadline-free requests).
  bool reused_resident = false;
  uint64_t epoch = 0;
  std::string ToJson(const Schema& schema) const;
};

/// The resident advisor behind advisor_server: keeps the catalog, a
/// warm SolverSession (persistent cost cache + thread pool + metrics),
/// the sliding workload window, and the last solution resident across
/// requests.
///
/// Warm-start semantics (see docs/serving.md): the candidate universe
/// and cost model are pinned at construction, so the persistent cost
/// cache's validity token never changes and every statement shape the
/// window has seen before is answered from cache — a re-solve over a
/// slid window re-costs only the shapes that are genuinely new. The
/// last solution is kept resident: a RECOMMEND over an unchanged
/// window with unchanged options returns it without re-solving. Both
/// reuses are *observationally invariant*: every answer is bit-
/// identical to a cold one-shot Solve() over the same window (the
/// solvers are deterministic and the cache never changes values — the
/// property tests pin this).
///
/// Thread-safe: INGEST swaps an immutable window snapshot under a
/// mutex; WHATIF/RECOMMEND read whichever snapshot was current when
/// they started (the what-if engine's memo and the solver session are
/// internally synchronized), so concurrent clients never block each
/// other on a long solve.
class AdvisorService {
 public:
  /// `options` must Validate().
  explicit AdvisorService(ServiceOptions options);

  const Schema& schema() const { return options_.schema; }
  const ServiceOptions& options() const { return options_; }
  /// The service-owned registry: solver metrics, cost-cache gauges,
  /// and the server layer's request counters/latency histograms all
  /// land here; STATS serializes it.
  MetricsRegistry* registry() { return &registry_; }
  SolverSession* session() { return &session_; }
  /// The bounded record of the slowest (and most recent) requests the
  /// transport served; GET /slowlog and /trace?id= read it.
  SlowLog* slow_log() { return &slow_log_; }
  /// The flight recorder the transport journals served requests into,
  /// or null when not recording. The service does not own it; the
  /// owner (advisor_server's main, a test) sets it after construction
  /// and must outlive the traffic. Atomic so /varz and the transport
  /// can read it without a lock.
  Recorder* recorder() const {
    return recorder_.load(std::memory_order_acquire);
  }
  void set_recorder(Recorder* recorder) {
    recorder_.store(recorder, std::memory_order_release);
  }
  /// Seconds since this service was constructed (steady clock).
  double UptimeSeconds() const;
  /// Readiness for traffic: the catalog is pinned at construction, so
  /// the service is ready once the first INGEST left a non-empty
  /// window to solve over (GET /readyz).
  bool ready() const { return window_size() > 0; }
  /// Trips the service-wide cancel token: every in-flight solve winds
  /// down through the anytime machinery. Called by the server on
  /// SHUTDOWN; irreversible.
  void CancelAll() { cancel_.Cancel(); }

  /// Current window size / version (snapshot reads).
  size_t window_size() const;
  uint64_t epoch() const;
  /// The design subsequent solves start from (C0; updated by a
  /// RECOMMEND with apply=1).
  Configuration initial_config() const;

  // Typed entry points (tests and in-process callers). `tracer`
  // (optional) receives the solve's spans — the per-request tracer the
  // transport passes through RequestContext.
  Result<IngestAck> IngestSql(std::string_view sql);
  Result<WhatIfAnswer> WhatIfConfig(const Configuration& config);
  Result<RecommendAnswer> RecommendNow(const RecommendRequest& request,
                                       Tracer* tracer = nullptr);

  /// Wire entry point: dispatches a request frame's opcode to the
  /// typed methods and serializes the answer as JSON, opening
  /// "request.parse" / "request.solve" spans on ctx.tracer. kShutdown
  /// is the server's job (transport lifecycle), not the service's — it
  /// is rejected here.
  Result<std::string> Handle(uint8_t opcode, std::string_view payload,
                             const RequestContext& ctx);
  Result<std::string> Handle(uint8_t opcode, std::string_view payload) {
    return Handle(opcode, payload, RequestContext{});
  }

  /// One coherent registry reading, refreshed with the cache, window,
  /// and process gauges — what /varz serializes as JSON and /metrics
  /// renders as Prometheus text.
  MetricsSnapshot StatsSnapshot();

  /// Metrics snapshot JSON ({"counters":...,"gauges":...,
  /// "histograms":...}), refreshed with the cache and process gauges.
  std::string StatsJson();

  /// The /varz document: build identity (git_sha, build_type), uptime,
  /// the recorder's status, and then the full StatsJson content
  /// (counters/gauges/histograms) at the top level — a strict superset
  /// of StatsJson, so existing consumers keep working.
  std::string VarzJson();

  /// Flushes a failure postmortem bundle to
  /// `<options().postmortem_dir>/failure` — at most once per process,
  /// and only when postmortem_dir is configured. The transport calls
  /// this when a request fails; later failures are no-ops so a
  /// misbehaving client cannot grind the server with bundle IO.
  void MaybeWriteFailurePostmortem(const std::string& reason);

  /// Parses a WHATIF payload: ';'-separated indexes, each a
  /// comma-separated column list ("a" / "a,b;c" / "{}" or empty for
  /// the empty configuration).
  Result<Configuration> ParseConfigSpec(std::string_view spec) const;

 private:
  /// One immutable window version: statements, their segmentation, and
  /// the memoizing what-if engine over them. Swapped wholesale by
  /// INGEST; readers hold the shared_ptr for as long as they need it.
  struct WindowState {
    std::vector<BoundStatement> statements;
    std::vector<Segment> segments;
    std::unique_ptr<WhatIfEngine> engine;
    uint64_t epoch = 0;
  };

  /// The resident last solution and the request shape it answers.
  struct ResidentSolution {
    uint64_t epoch = 0;
    std::string options_key;
    std::shared_ptr<const RecommendAnswer> answer;
  };

  std::shared_ptr<const WindowState> CurrentWindow() const;

  ServiceOptions options_;
  CostModel model_;
  std::vector<IndexDef> candidate_indexes_;
  std::vector<Configuration> candidate_configs_;
  MetricsRegistry registry_;
  SolverSession session_;
  CancelToken cancel_;
  SlowLog slow_log_;
  std::atomic<Recorder*> recorder_{nullptr};
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  std::atomic<bool> failure_postmortem_written_{false};

  mutable std::mutex mu_;
  std::shared_ptr<const WindowState> window_;
  Configuration initial_;
  ResidentSolution resident_;
};

}  // namespace cdpd

#endif  // CDPD_SERVER_ADVISOR_SERVICE_H_
