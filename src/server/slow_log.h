#ifndef CDPD_SERVER_SLOW_LOG_H_
#define CDPD_SERVER_SLOW_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/tracing.h"

namespace cdpd {

/// One fully-served request as the slow log remembers it: identity,
/// outcome, wall time **including the response write**, and the
/// per-request trace summary (parse → solve → respond spans, plus the
/// solver's own spans when the op solved anything). Span names are
/// string literals, so the copied events stay valid after the
/// per-request Tracer is gone.
struct SlowLogEntry {
  std::string request_id;
  std::string op;           // "whatif", "recommend", ...
  uint8_t wire_status = 0;  // 0 = success (see WireStatusCode).
  int64_t start_unix_us = 0;
  int64_t duration_us = 0;
  uint64_t window_epoch = 0;
  size_t request_bytes = 0;
  size_t response_bytes = 0;
  std::vector<Tracer::Event> spans;

  /// {"request_id":...,"op":...,"duration_us":...,"spans":[...]}.
  std::string ToJson() const;
};

/// A bounded, thread-safe record of the N slowest requests plus a
/// short ring of the most recent ones. The slowest set backs
/// GET /slowlog (what should a human look at first?); the recent ring
/// backs GET /trace?id= (any just-issued request id resolves, slow or
/// not). Both are bounded, so a server that lives for months never
/// grows this beyond (capacity + recent_capacity) entries.
class SlowLog {
 public:
  explicit SlowLog(size_t capacity = 32, size_t recent_capacity = 256)
      : capacity_(capacity), recent_capacity_(recent_capacity) {}
  SlowLog(const SlowLog&) = delete;
  SlowLog& operator=(const SlowLog&) = delete;

  /// Records one served request: always enters the recent ring
  /// (evicting the oldest), enters the slowest set iff it beats the
  /// current floor (evicting the fastest resident).
  void Record(SlowLogEntry entry);

  /// The slowest recorded requests, slowest first.
  std::vector<SlowLogEntry> Slowest() const;

  /// Looks `request_id` up in the recent ring (newest first), then the
  /// slowest set — a slow request stays resolvable after it ages out
  /// of the ring.
  std::optional<SlowLogEntry> Find(std::string_view request_id) const;

  /// Requests recorded since construction (not capped).
  int64_t recorded() const;

  size_t capacity() const { return capacity_; }
  size_t recent_capacity() const { return recent_capacity_; }

  /// Entries currently in the recent ring (never above
  /// recent_capacity() — the bound the concurrency test pins).
  size_t recent_size() const;

  /// {"capacity":N,"recorded":M,"entries":[slowest-first...]}.
  std::string ToJson() const;

 private:
  const size_t capacity_;
  const size_t recent_capacity_;
  mutable std::mutex mu_;
  std::vector<SlowLogEntry> slowest_;  // Sorted, slowest first.
  std::deque<SlowLogEntry> recent_;    // Newest at the back.
  int64_t recorded_ = 0;
};

}  // namespace cdpd

#endif  // CDPD_SERVER_SLOW_LOG_H_
