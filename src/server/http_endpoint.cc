#include "server/http_endpoint.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "server/frame.h"
#include "server/recorder.h"
#include "server/slow_log.h"

namespace cdpd {

namespace {

std::string_view StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

}  // namespace

HttpResponse HttpEndpoint::Route(std::string_view target) {
  std::string_view path = target;
  std::string_view query;
  const size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }
  service_->registry()->counter("server.http_requests")->Add(1);

  HttpResponse response;
  if (path == "/metrics") {
    // The 0.0.4 text exposition format Prometheus scrapes.
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = service_->StatsSnapshot().ToPrometheus();
    return response;
  }
  if (path == "/healthz") {
    response.body = "ok\n";
    return response;
  }
  if (path == "/readyz") {
    if (service_->ready()) {
      response.body = "ready\n";
    } else {
      response.status = 503;
      response.body = "not ready: waiting for the first INGEST\n";
    }
    return response;
  }
  if (path == "/varz") {
    response.content_type = "application/json";
    response.body = service_->VarzJson();
    return response;
  }
  if (path == "/recorder") {
    Recorder* recorder = service_->recorder();
    response.content_type = "application/json";
    if (recorder == nullptr) {
      response.body = "{\"recording\":false}";
      return response;
    }
    if (query == "rotate=1") {
      const Status status = recorder->Rotate();
      if (!status.ok()) {
        response.status = 503;
        response.content_type = "text/plain; charset=utf-8";
        response.body = status.message() + "\n";
        return response;
      }
    }
    response.body = recorder->StatusJson();
    return response;
  }
  if (path == "/slowlog") {
    response.content_type = "application/json";
    response.body = service_->slow_log()->ToJson();
    return response;
  }
  if (path == "/trace") {
    constexpr std::string_view kIdParam = "id=";
    std::string_view id;
    for (std::string_view rest = query; !rest.empty();) {
      const size_t amp = rest.find('&');
      const std::string_view param = rest.substr(0, amp);
      rest = amp == std::string_view::npos ? std::string_view()
                                          : rest.substr(amp + 1);
      if (param.substr(0, kIdParam.size()) == kIdParam) {
        id = param.substr(kIdParam.size());
      }
    }
    if (id.empty() || !ValidateRequestId(id).ok()) {
      response.status = 400;
      response.body = "usage: /trace?id=<request-id>\n";
      return response;
    }
    std::optional<SlowLogEntry> entry = service_->slow_log()->Find(id);
    if (!entry.has_value()) {
      response.status = 404;
      response.body = "no recorded request with that id (the recent ring "
                      "holds the last " +
                      std::to_string(service_->options().slow_log_recent) +
                      " requests)\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = entry->ToJson();
    return response;
  }
  response.status = 404;
  response.body =
      "not found; endpoints: /metrics /healthz /readyz /varz /slowlog "
      "/trace?id= /recorder\n";
  return response;
}

#if defined(_WIN32)

HttpEndpoint::~HttpEndpoint() = default;
Status HttpEndpoint::Start(const HttpOptions&) {
  return Status::Internal("the observability endpoint requires POSIX sockets");
}
void HttpEndpoint::Shutdown() {}
void HttpEndpoint::AcceptLoop() {}
void HttpEndpoint::ServeConnection(Connection*) {}
void HttpEndpoint::ReapFinished() {}

#else

HttpEndpoint::~HttpEndpoint() { Shutdown(); }

Status HttpEndpoint::Start(const HttpOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host '" + options.host +
                                   "' as an IPv4 address");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind to " + options.host + ":" +
                            std::to_string(options.port) + " failed: " +
                            error);
  }
  if (::listen(fd, options.backlog) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen failed: " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpEndpoint::AcceptLoop() {
  for (;;) {
    ReapFinished();
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0 || stopping_.load(std::memory_order_acquire)) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      // A transient failure must not kill the observability listener
      // for the rest of the process's life: aborted handshakes just
      // retry, and descriptor exhaustion (often caused elsewhere in
      // the process) is waited out.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(fd);
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    open_fds_.push_back(fd);
    connections_.push_back(std::move(conn));
    // Spawned under conn_mu_: the handler's completion store can only
    // happen after its own final conn_mu_ section, i.e. after this
    // assignment — so a reaper never joins a half-assigned thread.
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void HttpEndpoint::ReapFinished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i]->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(connections_[i]));
        connections_.erase(connections_.begin() +
                           static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  // `done` is the handler's last act, so these joins return promptly.
  for (std::unique_ptr<Connection>& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void HttpEndpoint::ServeConnection(Connection* conn) {
  const int fd = conn->fd;
  // Read until the header terminator; the request line is all we use.
  // 8 KiB is generous for "GET /metrics HTTP/1.1" plus curl's headers.
  std::string request;
  char buf[1024];
  bool have_headers = false;
  while (request.size() < 8192) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      request.append(buf, static_cast<size_t>(n));
      if (request.find("\r\n\r\n") != std::string::npos ||
          request.find("\n\n") != std::string::npos) {
        have_headers = true;
        break;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }

  HttpResponse response;
  if (!have_headers) {
    response.status = 400;
    response.body = "malformed request\n";
  } else {
    const size_t line_end = request.find_first_of("\r\n");
    const std::string_view line =
        std::string_view(request).substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
      response.status = 400;
      response.body = "malformed request line\n";
    } else if (line.substr(0, sp1) != "GET") {
      response.status = 405;
      response.body = "only GET is served\n";
    } else {
      response = Route(line.substr(sp1 + 1, sp2 - sp1 - 1));
    }
  }

  std::string wire = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     std::string(StatusText(response.status)) + "\r\n";
  wire += "Content-Type: " + response.content_type + "\r\n";
  wire += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  wire += "Connection: close\r\n\r\n";
  wire += response.body;
  (void)WriteExact(fd, wire.data(), wire.size());

  // Drop the fd from the shutdown set *before* closing it: once closed
  // the number can be recycled by any other part of the process, and a
  // concurrent Shutdown() iterating open_fds_ must never shut down a
  // stranger's descriptor.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < open_fds_.size(); ++i) {
      if (open_fds_[i] == fd) {
        open_fds_.erase(open_fds_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  ::close(fd);
  // Last act: publish completion so the accept loop can reap this
  // thread. Nothing may touch `this` or `conn` past this store.
  conn->done.store(true, std::memory_order_release);
}

void HttpEndpoint::Shutdown() {
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
    const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (lfd >= 0) {
      ::shutdown(lfd, SHUT_RDWR);
      ::close(lfd);
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int open_fd : open_fds_) {
      ::shutdown(open_fd, SHUT_RDWR);
    }
  }
  std::lock_guard<std::mutex> lock(join_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  for (;;) {
    std::vector<std::unique_ptr<Connection>> batch;
    {
      std::lock_guard<std::mutex> conn_lock(conn_mu_);
      batch.swap(connections_);
    }
    if (batch.empty()) break;
    for (std::unique_ptr<Connection>& conn : batch) {
      if (conn->thread.joinable()) conn->thread.join();
    }
  }
}

#endif  // _WIN32

}  // namespace cdpd
