#include "server/journal.h"

#include <fcntl.h>
#include <sys/stat.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/json_util.h"
#include "server/frame.h"

namespace cdpd {

namespace {

/// Slice-by-8 CRC tables: table[0] is the classic byte-at-a-time
/// table; table[k][b] advances byte b through k additional zero bytes,
/// so eight input bytes fold into the CRC with eight independent table
/// lookups instead of an eight-deep dependency chain. The writer
/// checksums every frame at request rate — byte-at-a-time CRC was a
/// measurable slice of the recording overhead.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xff] ^ (prev >> 8);
    }
  }
  return tables;
}

uint32_t LoadU32Le(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

void AppendLenPrefixed(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Overwrites 4 already-appended bytes at `at` with `v` LE — for
/// patching a frame's length/CRC slots once the body is in place.
void StoreU32(std::string* out, size_t at, uint32_t v) {
  (*out)[at] = static_cast<char>(v & 0xff);
  (*out)[at + 1] = static_cast<char>((v >> 8) & 0xff);
  (*out)[at + 2] = static_cast<char>((v >> 16) & 0xff);
  (*out)[at + 3] = static_cast<char>((v >> 24) & 0xff);
}

size_t EncodedRecordSize(const JournalRecord& record) {
  return 3 + 8 + 3 * 8 + 3 * 4 + record.request_id.size() +
         record.payload.size() + record.response.size();
}

void AppendRecordBody(std::string* out, const JournalRecord& record) {
  out->push_back(static_cast<char>(record.opcode));
  out->push_back(static_cast<char>(record.wire_status));
  out->push_back(static_cast<char>(record.flags));
  AppendU64(out, record.window_epoch);
  AppendI64(out, record.mono_us);
  AppendI64(out, record.wall_us);
  AppendI64(out, record.duration_us);
  AppendLenPrefixed(out, record.request_id);
  AppendLenPrefixed(out, record.payload);
  AppendLenPrefixed(out, record.response);
}

/// Cursor over a decoded record's bytes; every read checks bounds.
class ByteCursor {
 public:
  explicit ByteCursor(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(bytes_.data() + pos_);
    *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  bool ReadI64(int64_t* v) {
    uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool ReadLenPrefixed(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (pos_ + len > bytes_.size()) return false;
    s->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Finds `"key":` at the top level of a flat JSON object and returns a
/// view of the raw value token (number, "string", null). The meta JSON
/// is machine-written by JournalMeta::ToJson, so a key scanner is
/// enough — no nesting, no arrays, no escaped quotes inside keys.
bool FindJsonValue(std::string_view json, std::string_view key,
                   std::string_view* value) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const size_t at = json.find(needle);
  if (at == std::string_view::npos) return false;
  size_t start = at + needle.size();
  while (start < json.size() && json[start] == ' ') ++start;
  if (start >= json.size()) return false;
  size_t end = start;
  if (json[end] == '"') {
    end = json.find('"', end + 1);
    if (end == std::string_view::npos) return false;
    ++end;  // Include the closing quote.
  } else {
    while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  }
  *value = json.substr(start, end - start);
  return true;
}

Result<int64_t> ParseJsonInt(std::string_view token, std::string_view key) {
  errno = 0;
  char* end = nullptr;
  const std::string buf(token);
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("journal meta field '" + std::string(key) +
                                   "' is not an integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<std::string> ParseJsonString(std::string_view token,
                                    std::string_view key) {
  if (token.size() < 2 || token.front() != '"' || token.back() != '"') {
    return Status::InvalidArgument("journal meta field '" + std::string(key) +
                                   "' is not a string: " + std::string(token));
  }
  return std::string(token.substr(1, token.size() - 2));
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      BuildCrcTables();
  uint32_t crc = 0xffffffffu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  while (n >= 8) {
    const uint32_t lo = LoadU32Le(p) ^ crc;
    const uint32_t hi = LoadU32Le(p + 4);
    crc = kTables[7][lo & 0xff] ^ kTables[6][(lo >> 8) & 0xff] ^
          kTables[5][(lo >> 16) & 0xff] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xff] ^ kTables[2][(hi >> 8) & 0xff] ^
          kTables[1][(hi >> 16) & 0xff] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    crc = kTables[0][(crc ^ *p) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string EncodeJournalRecord(const JournalRecord& record) {
  std::string out;
  out.reserve(EncodedRecordSize(record));
  AppendRecordBody(&out, record);
  return out;
}

Result<JournalRecord> DecodeJournalRecord(std::string_view bytes) {
  JournalRecord record;
  ByteCursor cursor(bytes);
  if (cursor.ReadU8(&record.opcode) && cursor.ReadU8(&record.wire_status) &&
      cursor.ReadU8(&record.flags) && cursor.ReadU64(&record.window_epoch) &&
      cursor.ReadI64(&record.mono_us) && cursor.ReadI64(&record.wall_us) &&
      cursor.ReadI64(&record.duration_us) &&
      cursor.ReadLenPrefixed(&record.request_id) &&
      cursor.ReadLenPrefixed(&record.payload) &&
      cursor.ReadLenPrefixed(&record.response) && cursor.exhausted()) {
    return record;
  }
  return Status::InvalidArgument(
      "journal record of " + std::to_string(bytes.size()) +
      " bytes is malformed (short field or trailing garbage)");
}

std::string JournalMeta::ToJson() const {
  std::string out = "{";
  out += "\"rows\":" + std::to_string(rows);
  out += ",\"domain_size\":" + std::to_string(domain_size);
  out += ",\"block_size\":" + std::to_string(block_size);
  out += ",\"window_statements\":" + std::to_string(window_statements);
  out += ",\"k\":";
  out += k.has_value() ? std::to_string(*k) : "null";
  out += ",\"method\":" + JsonString(method);
  out += ",\"max_indexes_per_config\":" + std::to_string(max_indexes_per_config);
  out += "}";
  return out;
}

Result<JournalMeta> JournalMeta::FromJson(std::string_view json) {
  JournalMeta meta;
  struct IntField {
    std::string_view key;
    int64_t* dest;
  };
  const IntField int_fields[] = {
      {"rows", &meta.rows},
      {"domain_size", &meta.domain_size},
      {"block_size", &meta.block_size},
      {"window_statements", &meta.window_statements},
      {"max_indexes_per_config", &meta.max_indexes_per_config},
  };
  for (const IntField& field : int_fields) {
    std::string_view token;
    if (!FindJsonValue(json, field.key, &token)) {
      return Status::InvalidArgument("journal meta is missing field '" +
                                     std::string(field.key) + "'");
    }
    CDPD_ASSIGN_OR_RETURN(*field.dest, ParseJsonInt(token, field.key));
  }
  std::string_view token;
  if (!FindJsonValue(json, "k", &token)) {
    return Status::InvalidArgument("journal meta is missing field 'k'");
  }
  if (token == "null") {
    meta.k.reset();
  } else {
    CDPD_ASSIGN_OR_RETURN(int64_t k, ParseJsonInt(token, "k"));
    meta.k = k;
  }
  if (!FindJsonValue(json, "method", &token)) {
    return Status::InvalidArgument("journal meta is missing field 'method'");
  }
  CDPD_ASSIGN_OR_RETURN(meta.method, ParseJsonString(token, "method"));
  return meta;
}

std::string JournalSegmentPath(const std::string& base, int index) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".%06d", index);
  return base + suffix;
}

#if defined(_WIN32)

Status JournalWriter::Open(const std::string&, const JournalMeta&) {
  return Status::Internal("the journal requires POSIX file IO");
}
Status JournalWriter::Append(const JournalRecord&, int64_t*) {
  return Status::Internal("the journal requires POSIX file IO");
}
Status JournalWriter::Sync() {
  return Status::Internal("the journal requires POSIX file IO");
}
Status JournalWriter::Close() { return Status::OK(); }
Status JournalWriter::FlushBuffer() { return Status::OK(); }

JournalReader::~JournalReader() = default;
Status JournalReader::Open(const std::string&) {
  return Status::Internal("the journal requires POSIX file IO");
}
bool JournalReader::Next(JournalRecord*) { return false; }
bool JournalReader::OpenCurrentSegment() { return false; }
void JournalReader::MarkTruncated(const std::string&) {}

#else

Status JournalWriter::Open(const std::string& path, const JournalMeta& meta) {
  CDPD_RETURN_IF_ERROR(Close());
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("cannot create journal segment", path);
  fd_ = fd;
  path_ = path;
  bytes_written_ = 0;

  const std::string meta_json = meta.ToJson();
  std::string header(kJournalMagic, sizeof(kJournalMagic));
  AppendU32(&header, static_cast<uint32_t>(meta_json.size()));
  AppendU32(&header, Crc32(meta_json));
  header.append(meta_json);
  const Status status = WriteExact(fd_, header.data(), header.size());
  if (!status.ok()) {
    Close();
    return status;
  }
  bytes_written_ = static_cast<int64_t>(header.size());
  return Status::OK();
}

Status JournalWriter::Append(const JournalRecord& record, int64_t* bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("journal writer is closed");
  // Encode straight into the output buffer — length and CRC are
  // patched in once the body is in place, so a frame costs no
  // intermediate string (the writer runs at request rate).
  const size_t frame_at = buffer_.size();
  buffer_.reserve(frame_at + 8 + EncodedRecordSize(record));
  buffer_.append(8, '\0');
  AppendRecordBody(&buffer_, record);
  const size_t body_len = buffer_.size() - frame_at - 8;
  StoreU32(&buffer_, frame_at, static_cast<uint32_t>(body_len));
  StoreU32(&buffer_, frame_at + 4,
           Crc32(std::string_view(buffer_).substr(frame_at + 8)));
  const size_t frame_bytes = 8 + body_len;
  bytes_written_ += static_cast<int64_t>(frame_bytes);
  if (bytes != nullptr) *bytes = static_cast<int64_t>(frame_bytes);
  // One write syscall per many frames: the recorder's writer thread
  // appends at request rate, and a per-frame write() would make the
  // kernel the bottleneck long before the disk is.
  if (buffer_.size() >= 256u * 1024u) return FlushBuffer();
  return Status::OK();
}

Status JournalWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  const Status status = WriteExact(fd_, buffer_.data(), buffer_.size());
  buffer_.clear();
  return status;
}

Status JournalWriter::Sync() {
  if (fd_ < 0) return Status::OK();
  CDPD_RETURN_IF_ERROR(FlushBuffer());
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync failed on", path_);
  return Status::OK();
}

Status JournalWriter::Close() {
  if (fd_ < 0) return Status::OK();
  const Status sync = Sync();
  ::close(fd_);
  fd_ = -1;
  return sync;
}

JournalReader::~JournalReader() {
  if (fd_ >= 0) ::close(fd_);
}

Status JournalReader::Open(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
    segments_.push_back(path);
  } else {
    // A journal base: collect `<base>.000000`, `<base>.000001`, ...
    for (int index = 0;; ++index) {
      const std::string segment = JournalSegmentPath(path, index);
      if (::stat(segment.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) break;
      segments_.push_back(segment);
    }
    if (segments_.empty()) {
      return Status::NotFound("no journal at '" + path +
                              "' (neither a segment file nor a base with " +
                              JournalSegmentPath(path, 0) + ")");
    }
  }
  if (!OpenCurrentSegment()) {
    // The very first segment's header is unreadable: the journal as a
    // whole is unusable, so report it as an open error rather than an
    // empty truncated stream.
    return Status::InvalidArgument("journal '" + path +
                                   "' is unreadable: " + truncated_error_);
  }
  return Status::OK();
}

bool JournalReader::OpenCurrentSegment() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (segment_index_ >= segments_.size()) return false;
  const std::string& path = segments_[segment_index_];
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) {
    MarkTruncated("cannot open segment " + path + ": " +
                  std::strerror(errno));
    return false;
  }

  char magic[sizeof(kJournalMagic)];
  bool clean_eof = false;
  if (!ReadExact(fd_, magic, sizeof(magic), &clean_eof).ok() ||
      std::memcmp(magic, kJournalMagic, sizeof(magic)) != 0) {
    MarkTruncated("segment " + path + " has a bad or missing magic header");
    return false;
  }
  unsigned char lens[8];
  if (!ReadExact(fd_, lens, sizeof(lens)).ok()) {
    MarkTruncated("segment " + path + " has a torn meta header");
    return false;
  }
  const uint32_t meta_len = static_cast<uint32_t>(lens[0]) |
                            (static_cast<uint32_t>(lens[1]) << 8) |
                            (static_cast<uint32_t>(lens[2]) << 16) |
                            (static_cast<uint32_t>(lens[3]) << 24);
  const uint32_t meta_crc = static_cast<uint32_t>(lens[4]) |
                            (static_cast<uint32_t>(lens[5]) << 8) |
                            (static_cast<uint32_t>(lens[6]) << 16) |
                            (static_cast<uint32_t>(lens[7]) << 24);
  if (meta_len > kMaxJournalRecordBytes) {
    MarkTruncated("segment " + path + " declares an implausible " +
                  std::to_string(meta_len) + "-byte meta header");
    return false;
  }
  std::string meta_json(meta_len, '\0');
  if (meta_len > 0 && !ReadExact(fd_, meta_json.data(), meta_len).ok()) {
    MarkTruncated("segment " + path + " has a torn meta header");
    return false;
  }
  if (Crc32(meta_json) != meta_crc) {
    MarkTruncated("segment " + path + " fails the meta CRC check");
    return false;
  }
  Result<JournalMeta> meta = JournalMeta::FromJson(meta_json);
  if (!meta.ok()) {
    MarkTruncated("segment " + path + ": " + meta.status().message());
    return false;
  }
  // Every segment carries the same meta; the first one read wins.
  if (!header_read_) {
    meta_ = std::move(meta).value();
    header_read_ = true;
  }
  return true;
}

bool JournalReader::Next(JournalRecord* record) {
  while (fd_ >= 0) {
    unsigned char lens[8];
    bool clean_eof = false;
    const Status header = ReadExact(fd_, lens, sizeof(lens), &clean_eof);
    if (!header.ok()) {
      if (clean_eof) {
        // Clean end of this segment: advance to the next one.
        ++segment_index_;
        if (!OpenCurrentSegment()) return false;
        continue;
      }
      MarkTruncated("segment " + segments_[segment_index_] +
                    " ends with a torn frame header");
      return false;
    }
    const uint32_t record_len = static_cast<uint32_t>(lens[0]) |
                                (static_cast<uint32_t>(lens[1]) << 8) |
                                (static_cast<uint32_t>(lens[2]) << 16) |
                                (static_cast<uint32_t>(lens[3]) << 24);
    const uint32_t record_crc = static_cast<uint32_t>(lens[4]) |
                                (static_cast<uint32_t>(lens[5]) << 8) |
                                (static_cast<uint32_t>(lens[6]) << 16) |
                                (static_cast<uint32_t>(lens[7]) << 24);
    if (record_len > kMaxJournalRecordBytes) {
      MarkTruncated("segment " + segments_[segment_index_] +
                    " declares an implausible " + std::to_string(record_len) +
                    "-byte record");
      return false;
    }
    std::string body(record_len, '\0');
    if (record_len > 0 && !ReadExact(fd_, body.data(), record_len).ok()) {
      MarkTruncated("segment " + segments_[segment_index_] +
                    " ends with a torn record body");
      return false;
    }
    if (Crc32(body) != record_crc) {
      MarkTruncated("segment " + segments_[segment_index_] + " record " +
                    std::to_string(records_read_) + " fails its CRC check");
      return false;
    }
    Result<JournalRecord> decoded = DecodeJournalRecord(body);
    if (!decoded.ok()) {
      MarkTruncated("segment " + segments_[segment_index_] + ": " +
                    decoded.status().message());
      return false;
    }
    *record = std::move(decoded).value();
    ++records_read_;
    return true;
  }
  return false;
}

void JournalReader::MarkTruncated(const std::string& error) {
  truncated_ = true;
  truncated_error_ = error;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // Damage invalidates the rest of the stream, later segments included.
  segment_index_ = segments_.size();
}

#endif  // _WIN32

}  // namespace cdpd
