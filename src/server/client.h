#ifndef CDPD_SERVER_CLIENT_H_
#define CDPD_SERVER_CLIENT_H_

#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "server/frame.h"

namespace cdpd {

/// A blocking client of the advisor serving protocol: one TCP
/// connection, one in-flight request at a time (the protocol is
/// strictly request/response per connection — run several clients for
/// concurrency; bench_serving does exactly that).
///
/// Every call returns the response payload on success; a non-zero wire
/// status comes back as the corresponding Status with the server's
/// message. Transport failures (connection reset, short frame) are
/// Internal.
///
/// Request ids: by default every call attaches a generated request-id
/// header (kRequestIdFlag + "id\n" payload prefix) and verifies the
/// server echoes it; last_request_id() reports the id of the most
/// recent call, which /slowlog and /trace?id= resolve server-side.
/// set_next_request_id() overrides the id for the next call (end-to-end
/// correlation with an external system); set_request_ids_enabled(false)
/// restores the pre-id wire bytes for servers that predate the header.
///
/// Move-only; the destructor closes the connection.
class AdvisorClient {
 public:
  static Result<AdvisorClient> Connect(const std::string& host, int port);

  AdvisorClient(AdvisorClient&& other) noexcept
      : fd_(other.fd_),
        request_ids_enabled_(other.request_ids_enabled_),
        next_request_id_(std::move(other.next_request_id_)),
        last_request_id_(std::move(other.last_request_id_)) {
    other.fd_ = -1;
  }
  AdvisorClient& operator=(AdvisorClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      request_ids_enabled_ = other.request_ids_enabled_;
      next_request_id_ = std::move(other.next_request_id_);
      last_request_id_ = std::move(other.last_request_id_);
      other.fd_ = -1;
    }
    return *this;
  }
  AdvisorClient(const AdvisorClient&) = delete;
  AdvisorClient& operator=(const AdvisorClient&) = delete;
  ~AdvisorClient() { Close(); }

  /// One request/response exchange.
  Result<std::string> Call(ServerOp op, std::string_view payload);

  /// Transport liveness (empty payload both ways).
  Status Ping();
  /// Feeds ';'-terminated SQL statements into the sliding window;
  /// returns the JSON ack ({"accepted":...,"window_statements":...}).
  Result<std::string> Ingest(std::string_view sql);
  /// Prices a hypothetical configuration ("a" / "a,b;c" / "{}") over
  /// the current window; returns the JSON answer.
  Result<std::string> WhatIf(std::string_view config_spec);
  /// Requests a re-solve; `options` is the key=value request text (see
  /// ParseRecommendRequest), "" for the service defaults. Returns the
  /// JSON recommendation.
  Result<std::string> Recommend(std::string_view options);
  /// The server's metrics snapshot JSON.
  Result<std::string> Stats();
  /// Asks the server to stop (acked before the server exits).
  Status Shutdown();

  bool connected() const { return fd_ >= 0; }

  /// Attach request-id headers to outgoing frames (default true). Off,
  /// the client's wire bytes are identical to the pre-id protocol.
  void set_request_ids_enabled(bool enabled) {
    request_ids_enabled_ = enabled;
  }
  bool request_ids_enabled() const { return request_ids_enabled_; }

  /// Overrides the id of the next call only (must satisfy
  /// ValidateRequestId; an invalid id fails that call). Subsequent
  /// calls go back to generated ids.
  void set_next_request_id(std::string id) {
    next_request_id_ = std::move(id);
  }

  /// The id the most recent call carried ("" before the first call or
  /// with ids disabled) — what /trace?id= resolves.
  const std::string& last_request_id() const { return last_request_id_; }

 private:
  explicit AdvisorClient(int fd) : fd_(fd) {}
  void Close();

  int fd_ = -1;
  bool request_ids_enabled_ = true;
  std::string next_request_id_;
  std::string last_request_id_;
};

}  // namespace cdpd

#endif  // CDPD_SERVER_CLIENT_H_
