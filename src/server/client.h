#ifndef CDPD_SERVER_CLIENT_H_
#define CDPD_SERVER_CLIENT_H_

#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "server/frame.h"

namespace cdpd {

/// A blocking client of the advisor serving protocol: one TCP
/// connection, one in-flight request at a time (the protocol is
/// strictly request/response per connection — run several clients for
/// concurrency; bench_serving does exactly that).
///
/// Every call returns the response payload on success; a non-zero wire
/// status comes back as the corresponding Status with the server's
/// message. Transport failures (connection reset, short frame) are
/// Internal.
///
/// Move-only; the destructor closes the connection.
class AdvisorClient {
 public:
  static Result<AdvisorClient> Connect(const std::string& host, int port);

  AdvisorClient(AdvisorClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  AdvisorClient& operator=(AdvisorClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  AdvisorClient(const AdvisorClient&) = delete;
  AdvisorClient& operator=(const AdvisorClient&) = delete;
  ~AdvisorClient() { Close(); }

  /// One request/response exchange.
  Result<std::string> Call(ServerOp op, std::string_view payload);

  /// Transport liveness (empty payload both ways).
  Status Ping();
  /// Feeds ';'-terminated SQL statements into the sliding window;
  /// returns the JSON ack ({"accepted":...,"window_statements":...}).
  Result<std::string> Ingest(std::string_view sql);
  /// Prices a hypothetical configuration ("a" / "a,b;c" / "{}") over
  /// the current window; returns the JSON answer.
  Result<std::string> WhatIf(std::string_view config_spec);
  /// Requests a re-solve; `options` is the key=value request text (see
  /// ParseRecommendRequest), "" for the service defaults. Returns the
  /// JSON recommendation.
  Result<std::string> Recommend(std::string_view options);
  /// The server's metrics snapshot JSON.
  Result<std::string> Stats();
  /// Asks the server to stop (acked before the server exits).
  Status Shutdown();

  bool connected() const { return fd_ >= 0; }

 private:
  explicit AdvisorClient(int fd) : fd_(fd) {}
  void Close();

  int fd_ = -1;
};

}  // namespace cdpd

#endif  // CDPD_SERVER_CLIENT_H_
