#include "server/recorder.h"

#include <fcntl.h>
#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/json_util.h"
#include "server/advisor_service.h"
#include "server/frame.h"

namespace cdpd {

Recorder::Recorder(Options options) : options_(std::move(options)) {}

Result<std::unique_ptr<Recorder>> Recorder::Open(Options options,
                                                 MetricsRegistry* registry) {
  if (options.path.empty()) {
    return Status::InvalidArgument("recorder journal path is empty");
  }
  if (options.ring_capacity == 0) {
    return Status::InvalidArgument("recorder ring capacity must be positive");
  }
  if (options.segment_max_bytes <= 0) {
    return Status::InvalidArgument(
        "recorder segment size must be positive bytes");
  }
  std::unique_ptr<Recorder> recorder(new Recorder(std::move(options)));

  // Resume after the last existing segment — a restarted server must
  // not overwrite the journal its predecessor left behind.
  int index = 0;
  struct stat st;
  while (::stat(JournalSegmentPath(recorder->options_.path, index).c_str(),
                &st) == 0) {
    ++index;
  }
  const std::string segment =
      JournalSegmentPath(recorder->options_.path, index);
  CDPD_RETURN_IF_ERROR(
      recorder->writer_.Open(segment, recorder->options_.meta));
  recorder->segment_index_ = index;
  recorder->segment_path_ = segment;

  if (registry != nullptr) {
    recorder->metric_frames_written_ =
        registry->counter("recorder.frames_written");
    recorder->metric_bytes_written_ =
        registry->counter("recorder.bytes_written");
    recorder->metric_frames_dropped_ =
        registry->counter("recorder.frames_dropped");
    recorder->metric_write_errors_ =
        registry->counter("recorder.write_errors");
    recorder->metric_ring_depth_ = registry->gauge("recorder.ring_depth");
    recorder->metric_segments_ = registry->gauge("recorder.segments");
    registry->gauge("recorder.enabled")->Set(1);
    recorder->metric_ring_depth_->Set(0);
    recorder->metric_segments_->Set(index + 1);
  }

  recorder->writer_thread_ = std::thread([r = recorder.get()] {
    r->WriterLoop();
  });
  return recorder;
}

Recorder::~Recorder() { Close(); }

void Recorder::Append(JournalRecord record) {
  frames_appended_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    if (metric_frames_dropped_ != nullptr) metric_frames_dropped_->Add(1);
    return;
  }
  if (ring_.size() >= options_.ring_capacity) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    if (metric_frames_dropped_ != nullptr) metric_frames_dropped_->Add(1);
    return;
  }
  ring_.push_back(std::move(record));
  if (metric_ring_depth_ != nullptr) {
    metric_ring_depth_->Set(static_cast<int64_t>(ring_.size()));
  }
  // No notify on the hot path: a futex wake per request at tens of kHz
  // costs more serving throughput than the journal is worth. The
  // writer polls the ring every couple of milliseconds; Append only
  // kicks it awake when the ring is half full (real backpressure).
  if (ring_.size() >= options_.ring_capacity / 2) work_cv_.notify_one();
}

Status Recorder::Rotate() {
  int64_t ticket = 0;
  const int64_t errors_before =
      write_errors_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return Status::FailedPrecondition("recorder is closed");
    rotate_requested_ = true;
    ticket = ++flush_requested_;
    work_cv_.notify_one();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return flush_done_ >= ticket || stop_; });
  if (write_errors_.load(std::memory_order_relaxed) > errors_before) {
    return Status::Internal("journal rotation failed: " + last_error_);
  }
  return Status::OK();
}

Status Recorder::Flush() {
  int64_t ticket = 0;
  const int64_t errors_before =
      write_errors_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return Status::FailedPrecondition("recorder is closed");
    ticket = ++flush_requested_;
    work_cv_.notify_one();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return flush_done_ >= ticket || stop_; });
  if (write_errors_.load(std::memory_order_relaxed) > errors_before) {
    return Status::Internal("journal flush failed: " + last_error_);
  }
  return Status::OK();
}

void Recorder::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    work_cv_.notify_all();
    done_cv_.notify_all();
  }
  if (writer_thread_.joinable()) writer_thread_.join();
}

void Recorder::WriterLoop() {
  // Reused across iterations: its storage ping-pongs with ring_'s via
  // the swap below, so neither side reallocates once warmed up.
  std::vector<JournalRecord> batch;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Polling wait: Append() deliberately does not notify (see there),
    // so the writer checks for work on a short period. Control events
    // (flush, rotate, close, backpressure) still notify for promptness.
    work_cv_.wait_for(lock, std::chrono::milliseconds(2), [&] {
      return stop_ || !ring_.empty() || rotate_requested_ ||
             flush_requested_ > flush_done_;
    });
    if (!stop_ && ring_.empty() && !rotate_requested_ &&
        flush_requested_ <= flush_done_) {
      // Timed out with nothing queued. Pay the fsync for anything
      // still unsynced now, while the server is quiet — under load
      // the frame-count threshold takes over, so an fsync never sits
      // between a request and its response timing.
      if (unsynced_frames_ > 0) {
        lock.unlock();
        const Status sync = writer_.Sync();
        if (!sync.ok()) RecordWriteError(sync);
        unsynced_frames_ = 0;
        lock.lock();
      }
      continue;
    }
    const bool stopping = stop_;
    batch.clear();
    batch.swap(ring_);
    const bool rotate = rotate_requested_;
    rotate_requested_ = false;
    const int64_t flush_ticket = flush_requested_;
    if (metric_ring_depth_ != nullptr) metric_ring_depth_->Set(0);
    lock.unlock();

    for (JournalRecord& record : batch) {
      int64_t bytes = 0;
      const Status status = writer_.Append(record, &bytes);
      if (status.ok()) {
        frames_written_.fetch_add(1, std::memory_order_relaxed);
        bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
        if (metric_frames_written_ != nullptr) metric_frames_written_->Add(1);
        if (metric_bytes_written_ != nullptr) {
          metric_bytes_written_->Add(bytes);
        }
        if (++unsynced_frames_ >= options_.fsync_every_frames) {
          const Status sync = writer_.Sync();
          if (!sync.ok()) RecordWriteError(sync);
          unsynced_frames_ = 0;
        }
        if (writer_.bytes_written() >= options_.segment_max_bytes) {
          DoRotate();
        }
      } else {
        RecordWriteError(status);
      }
    }
    if (rotate) DoRotate();
    const bool flushing = flush_ticket > flush_done_;
    if ((flushing || stopping) && unsynced_frames_ > 0) {
      const Status sync = writer_.Sync();
      if (!sync.ok()) RecordWriteError(sync);
      unsynced_frames_ = 0;
    }

    lock.lock();
    // The in-memory tail is maintained here, not in Append(): copying
    // the record's strings on the hot path costs every request an
    // allocation + memcpy under mu_. Tail() unions tail_ with the
    // still-pending ring_, so nothing is invisible in the meantime.
    if (options_.tail_frames > 0) {
      for (JournalRecord& record : batch) {
        tail_.push_back(std::move(record));
      }
      while (tail_.size() > options_.tail_frames) tail_.pop_front();
    }
    if (flushing && ring_.empty()) {
      flush_done_ = flush_ticket;
      done_cv_.notify_all();
    }
    if (stopping && ring_.empty() && !rotate_requested_) {
      flush_done_ = flush_requested_;
      done_cv_.notify_all();
      break;
    }
  }
  lock.unlock();
  const Status close = writer_.Close();
  if (!close.ok()) RecordWriteError(close);
}

void Recorder::DoRotate() {
  const Status close = writer_.Close();
  if (!close.ok()) RecordWriteError(close);
  int next_index = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_index = segment_index_ + 1;
  }
  const std::string next_path = JournalSegmentPath(options_.path, next_index);
  const Status open = writer_.Open(next_path, options_.meta);
  if (!open.ok()) RecordWriteError(open);
  unsynced_frames_ = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    segment_index_ = next_index;
    segment_path_ = next_path;
  }
  if (metric_segments_ != nullptr) metric_segments_->Set(next_index + 1);
}

void Recorder::RecordWriteError(const Status& status) {
  write_errors_.fetch_add(1, std::memory_order_relaxed);
  if (metric_write_errors_ != nullptr) metric_write_errors_->Add(1);
  std::lock_guard<std::mutex> lock(mu_);
  last_error_ = status.message();
}

std::string Recorder::StatusJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"recording\":true";
  out += ",\"path\":" + JsonString(options_.path);
  out += ",\"segment\":" + JsonString(segment_path_);
  out += ",\"segment_index\":" + std::to_string(segment_index_);
  out += ",\"frames_appended\":" +
         std::to_string(frames_appended_.load(std::memory_order_relaxed));
  out += ",\"frames_written\":" +
         std::to_string(frames_written_.load(std::memory_order_relaxed));
  out += ",\"frames_dropped\":" +
         std::to_string(frames_dropped_.load(std::memory_order_relaxed));
  out += ",\"bytes_written\":" +
         std::to_string(bytes_written_.load(std::memory_order_relaxed));
  out += ",\"ring_depth\":" + std::to_string(ring_.size());
  out += ",\"ring_capacity\":" + std::to_string(options_.ring_capacity);
  out += ",\"segment_max_bytes\":" +
         std::to_string(options_.segment_max_bytes);
  out += ",\"write_errors\":" +
         std::to_string(write_errors_.load(std::memory_order_relaxed));
  out += ",\"last_error\":" + JsonString(last_error_);
  out += "}";
  return out;
}

std::vector<JournalRecord> Recorder::Tail() const {
  std::lock_guard<std::mutex> lock(mu_);
  // tail_ holds what the writer has consumed; ring_ holds what it has
  // not got to yet. Their concatenation is the true append order.
  std::vector<JournalRecord> out(tail_.begin(), tail_.end());
  out.insert(out.end(), ring_.begin(), ring_.end());
  if (options_.tail_frames > 0 && out.size() > options_.tail_frames) {
    out.erase(out.begin(),
              out.end() - static_cast<ptrdiff_t>(options_.tail_frames));
  }
  return out;
}

namespace {

/// mkdir -p: creates every missing component of `dir`.
Status MakeDirs(const std::string& dir) {
  std::string prefix;
  size_t pos = 0;
  while (pos <= dir.size()) {
    const size_t slash = dir.find('/', pos);
    const size_t end = slash == std::string::npos ? dir.size() : slash;
    prefix = dir.substr(0, end);
    pos = end + 1;
    if (prefix.empty() || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("cannot create directory " + prefix + ": " +
                              std::strerror(errno));
    }
    if (slash == std::string::npos) break;
  }
  return Status::OK();
}

Status WriteWholeFile(const std::string& path, std::string_view content) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create " + path + ": " +
                            std::strerror(errno));
  }
  const Status status = WriteExact(fd, content.data(), content.size());
  ::close(fd);
  return status;
}

/// `s` truncated to `limit` bytes with a marker — postmortem files are
/// for humans; a multi-megabyte ingest payload would drown them.
std::string Clipped(std::string_view s, size_t limit = 2048) {
  if (s.size() <= limit) return std::string(s);
  return std::string(s.substr(0, limit)) + "...[" +
         std::to_string(s.size() - limit) + " bytes clipped]";
}

std::string TailToJson(const std::vector<JournalRecord>& tail) {
  std::string out = "{\"frames\":[";
  for (size_t i = 0; i < tail.size(); ++i) {
    const JournalRecord& r = tail[i];
    if (i > 0) out += ",";
    out += "{\"op\":" + JsonString(ServerOpName(r.opcode));
    out += ",\"request_id\":" + JsonString(r.request_id);
    out += ",\"wire_status\":" + std::to_string(static_cast<int>(r.wire_status));
    out += ",\"window_epoch\":" + std::to_string(r.window_epoch);
    out += ",\"wall_us\":" + std::to_string(r.wall_us);
    out += ",\"duration_us\":" + std::to_string(r.duration_us);
    out += ",\"payload_bytes\":" + std::to_string(r.payload.size());
    out += ",\"response_bytes\":" + std::to_string(r.response.size());
    out += ",\"payload\":" + JsonString(Clipped(r.payload));
    out += ",\"response\":" + JsonString(Clipped(r.response));
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace

Status WritePostmortemBundle(AdvisorService* service, Recorder* recorder,
                             const std::string& dir,
                             const std::string& reason) {
  CDPD_RETURN_IF_ERROR(MakeDirs(dir));
  Status first_error = Status::OK();
  const auto keep = [&first_error](const Status& status) {
    if (first_error.ok() && !status.ok()) first_error = status;
  };

  const int64_t unix_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::string manifest = "{\"reason\":" + JsonString(reason);
  manifest += ",\"unix_time_us\":" + std::to_string(unix_us);
  manifest += ",\"git_sha\":" + JsonString(BuildGitSha());
  manifest += ",\"build_type\":" + JsonString(BuildTypeName());
  manifest += ",\"uptime_seconds\":" + JsonDouble(service->UptimeSeconds());
  manifest += ",\"recorder\":";
  manifest += recorder != nullptr ? recorder->StatusJson()
                                  : std::string("{\"recording\":false}");
  manifest += "}";
  keep(WriteWholeFile(dir + "/manifest.json", manifest));

  keep(WriteWholeFile(dir + "/varz.json", service->VarzJson()));
  keep(WriteWholeFile(dir + "/slowlog.json", service->slow_log()->ToJson()));
  keep(WriteWholeFile(dir + "/metrics.prom",
                      service->StatsSnapshot().ToPrometheus()));
  if (recorder != nullptr) {
    keep(WriteWholeFile(dir + "/journal_tail.json",
                        TailToJson(recorder->Tail())));
  }
  return first_error;
}

}  // namespace cdpd
