#ifndef CDPD_SERVER_ADVISOR_SERVER_H_
#define CDPD_SERVER_ADVISOR_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/advisor_service.h"

namespace cdpd {

/// Transport knobs of the advisor server.
struct ServerOptions {
  /// Loopback by default: the protocol is unauthenticated, so the
  /// server should not listen on a routable interface unless the
  /// deployment supplies its own perimeter.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is reported by port().
  int port = 0;
  int backlog = 64;
};

/// The advisor's TCP front end: accepts connections on a loopback
/// socket and speaks the length-prefixed frame protocol of
/// server/frame.h, dispatching each request frame to an AdvisorService
/// (borrowed — must outlive the server) on a per-connection thread.
/// One request, one response; requests on one connection are
/// sequential, concurrency comes from multiple connections.
///
/// Lifecycle: Start() binds and spawns the accept thread; Wait()
/// blocks until a SHUTDOWN frame (or Shutdown() from another thread)
/// stops the server; the destructor shuts down and joins. A SHUTDOWN
/// request is acked first, then the listener closes, in-flight solves
/// are cancelled through the service's cancel token, and every
/// connection thread is joined.
///
/// Per-request metrics land in the service registry: the
/// "server.requests" / "server.request_errors" counters, the
/// "server.inflight_requests" gauge, a per-opcode "server.op.<name>"
/// counter and "server.op_us.<name>" latency histogram, and the
/// overall "server.request_us" histogram (p50/p95/p99 via
/// MetricsSnapshot). Latency is recorded *after* the response write
/// completes, so it covers the full server-observed request.
///
/// Request ids: a frame whose tag carries kRequestIdFlag prefixes its
/// payload with an "id\n" header; the server echoes the id on the
/// response (same flag, same header) and stamps it into every log
/// line, the latency histograms' exemplars, and the slow-log entry
/// with its request-scoped span tree (parse → solve → respond).
/// Unflagged frames round-trip bit-identically to the pre-id protocol.
class AdvisorServer {
 public:
  /// `service` is borrowed and must outlive the server.
  explicit AdvisorServer(AdvisorService* service) : service_(service) {}
  AdvisorServer(const AdvisorServer&) = delete;
  AdvisorServer& operator=(const AdvisorServer&) = delete;
  ~AdvisorServer();

  /// Binds, listens, and spawns the accept thread. Fails with Internal
  /// on socket errors (port in use, no permission).
  Status Start(const ServerOptions& options = {});

  /// The bound port (the ephemeral port when options.port was 0); 0
  /// before Start().
  int port() const { return port_; }

  /// Blocks until the server has stopped (SHUTDOWN frame or
  /// Shutdown()).
  void Wait();

  /// Stops accepting, cancels in-flight solves, unblocks connection
  /// reads, and joins every thread. Idempotent; safe from any thread
  /// (including a connection handler, via the deferred self-join in
  /// Wait()).
  void Shutdown();

  /// The non-blocking half of Shutdown(): flips the stop flag, cancels
  /// solves, closes the listener, and unblocks connection reads —
  /// without joining anything, so it is safe from a connection handler
  /// and from a signal watcher while another thread sits in Wait().
  void RequestStop();

 private:
  /// One accepted connection: its socket, the thread serving it, and a
  /// completion flag the accept loop polls so finished threads are
  /// joined during operation rather than hoarding one mapped stack per
  /// past connection until shutdown.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    int fd;
    std::atomic<bool> done{false};
    std::thread thread;
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Joins and frees every connection whose handler has finished.
  /// Called by the accept loop before each accept.
  void ReapFinished();

  AdvisorService* service_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<int> open_fds_;
  /// Serializes Wait()/Shutdown() joins (either may be called from the
  /// main thread and the destructor).
  std::mutex join_mu_;
};

}  // namespace cdpd

#endif  // CDPD_SERVER_ADVISOR_SERVER_H_
