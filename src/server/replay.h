#ifndef CDPD_SERVER_REPLAY_H_
#define CDPD_SERVER_REPLAY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "server/advisor_service.h"
#include "server/journal.h"

namespace cdpd {

/// How a recorded journal is replayed (tools/advisor_replay):
///
/// - In-process (port == 0): a fresh AdvisorService is built from the
///   journal's meta header and every recorded request is re-issued
///   through Handle(). Each response is checked against the recorded
///   one — the determinism property the resident advisor guarantees
///   (see docs/serving.md): same request sequence, bit-identical
///   answers, timing fields excepted.
/// - Live TCP (port > 0): the requests are re-sent to a running
///   advisor_server over the wire, preserving the recorded
///   inter-arrival gaps scaled by `speed` — load reproduction, no
///   response verification (the target's state is not the recording's).
struct ReplayOptions {
  std::string host = "127.0.0.1";
  /// 0 = in-process verify mode; > 0 = live TCP replay.
  int port = 0;
  /// Inter-arrival pacing for TCP replay: 0 replays as fast as
  /// possible, 1.0 preserves the recorded gaps, 2.0 halves them.
  /// Ignored in-process (verification wants throughput).
  double speed = 0.0;
  /// Forward recorded SHUTDOWN frames in TCP mode (default: skipped,
  /// so replaying a journal does not kill the target server).
  bool send_shutdown = false;
  /// Cap on retained human-readable mismatch descriptions.
  size_t max_mismatch_details = 8;
};

struct ReplayOutcome {
  int64_t frames = 0;     // Journal records read.
  int64_t replayed = 0;   // Requests re-issued.
  int64_t skipped = 0;    // Frames not re-issued (shutdown, unknown op).
  int64_t compared = 0;   // Responses strictly compared (in-process).
  int64_t mismatches = 0; // Comparisons that failed.
  std::map<std::string, int64_t> op_counts;  // By opcode name.
  /// The journal ended at damage rather than a clean EOF; replay
  /// covered everything up to the last valid frame.
  bool truncated = false;
  std::string truncated_error;
  /// TCP mode: the connection died mid-replay (non-empty = the error);
  /// everything counted above still happened.
  std::string transport_error;
  double wall_seconds = 0.0;
  std::vector<std::string> mismatch_details;

  bool ok() const { return mismatches == 0; }
};

/// The portion of a RECOMMEND response JSON that a deterministic
/// re-solve must reproduce exactly: everything up to the timing fields
/// (epoch, reused_resident, segments, changes, k, method,
/// method_detail, total_cost) plus the full change-point schedule.
/// wall_seconds, cache hit counts, and the stats block legitimately
/// differ between runs and are cut out.
std::string DeterministicRecommendCore(std::string_view response_json);

/// A fresh service equivalent to the one that wrote the journal.
Result<ServiceOptions> ServiceOptionsFromMeta(const JournalMeta& meta);

/// Reads the journal at `path` (a base or one segment file) and
/// replays it per `options`. Fails on an unreadable journal or an
/// unreachable target; mismatches and truncation are reported in the
/// outcome, not as errors — the caller decides what is fatal.
Result<ReplayOutcome> ReplayJournal(const std::string& path,
                                    const ReplayOptions& options);

}  // namespace cdpd

#endif  // CDPD_SERVER_REPLAY_H_
