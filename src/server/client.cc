#include "server/client.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <utility>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace cdpd {

#if defined(_WIN32)

Result<AdvisorClient> AdvisorClient::Connect(const std::string&, int) {
  return Status::Internal("advisor serving requires POSIX sockets");
}
void AdvisorClient::Close() {}

#else

Result<AdvisorClient> AdvisorClient::Connect(const std::string& host,
                                             int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host '" + host +
                                   "' as an IPv4 address");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect to " + host + ":" +
                            std::to_string(port) + " failed: " + error);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return AdvisorClient(fd);
}

void AdvisorClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

#endif  // _WIN32

namespace {

/// Process-unique client-side ids: a connect-time-ish epoch plus a
/// dense counter. No cryptographic uniqueness needed — collisions only
/// blur which slow-log entry is whose.
std::string GenerateClientRequestId() {
  static const int64_t epoch_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  static std::atomic<uint64_t> next{0};
  return "c" + std::to_string(epoch_us) + "-" +
         std::to_string(next.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

Result<std::string> AdvisorClient::Call(ServerOp op,
                                        std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  std::string request_id;
  if (!next_request_id_.empty()) {
    request_id = std::move(next_request_id_);
    next_request_id_.clear();
  } else if (request_ids_enabled_) {
    request_id = GenerateClientRequestId();
  }
  if (request_id.empty()) {
    last_request_id_.clear();
    CDPD_RETURN_IF_ERROR(WriteFrame(fd_, static_cast<uint8_t>(op), payload));
  } else {
    std::string wire;
    CDPD_RETURN_IF_ERROR(AttachRequestId(request_id, payload, &wire));
    CDPD_RETURN_IF_ERROR(WriteFrame(
        fd_, static_cast<uint8_t>(static_cast<uint8_t>(op) | kRequestIdFlag),
        wire));
    last_request_id_ = std::move(request_id);
  }
  Frame response;
  CDPD_RETURN_IF_ERROR(ReadFrame(fd_, &response));
  std::string_view body = response.payload;
  if (HasRequestId(response.opcode)) {
    std::string_view echoed;
    CDPD_RETURN_IF_ERROR(SplitRequestId(response.payload, &echoed, &body));
    if (!last_request_id_.empty() && echoed != last_request_id_) {
      return Status::Internal("response echoes request id '" +
                              std::string(echoed) + "' for request '" +
                              last_request_id_ + "'");
    }
  }
  const uint8_t status = BaseTag(response.opcode);
  if (status != 0) {
    return StatusFromWire(status, body);
  }
  return std::string(body);
}

Status AdvisorClient::Ping() { return Call(ServerOp::kPing, "").status(); }

Result<std::string> AdvisorClient::Ingest(std::string_view sql) {
  return Call(ServerOp::kIngest, sql);
}

Result<std::string> AdvisorClient::WhatIf(std::string_view config_spec) {
  return Call(ServerOp::kWhatIf, config_spec);
}

Result<std::string> AdvisorClient::Recommend(std::string_view options) {
  return Call(ServerOp::kRecommend, options);
}

Result<std::string> AdvisorClient::Stats() {
  return Call(ServerOp::kStats, "");
}

Status AdvisorClient::Shutdown() {
  return Call(ServerOp::kShutdown, "").status();
}

}  // namespace cdpd
