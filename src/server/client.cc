#include "server/client.h"

#include <cstring>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace cdpd {

#if defined(_WIN32)

Result<AdvisorClient> AdvisorClient::Connect(const std::string&, int) {
  return Status::Internal("advisor serving requires POSIX sockets");
}
void AdvisorClient::Close() {}

#else

Result<AdvisorClient> AdvisorClient::Connect(const std::string& host,
                                             int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host '" + host +
                                   "' as an IPv4 address");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect to " + host + ":" +
                            std::to_string(port) + " failed: " + error);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return AdvisorClient(fd);
}

void AdvisorClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

#endif  // _WIN32

Result<std::string> AdvisorClient::Call(ServerOp op,
                                        std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  CDPD_RETURN_IF_ERROR(
      WriteFrame(fd_, static_cast<uint8_t>(op), payload));
  Frame response;
  CDPD_RETURN_IF_ERROR(ReadFrame(fd_, &response));
  if (response.opcode != 0) {
    return StatusFromWire(response.opcode, response.payload);
  }
  return std::move(response.payload);
}

Status AdvisorClient::Ping() { return Call(ServerOp::kPing, "").status(); }

Result<std::string> AdvisorClient::Ingest(std::string_view sql) {
  return Call(ServerOp::kIngest, sql);
}

Result<std::string> AdvisorClient::WhatIf(std::string_view config_spec) {
  return Call(ServerOp::kWhatIf, config_spec);
}

Result<std::string> AdvisorClient::Recommend(std::string_view options) {
  return Call(ServerOp::kRecommend, options);
}

Result<std::string> AdvisorClient::Stats() {
  return Call(ServerOp::kStats, "");
}

Status AdvisorClient::Shutdown() {
  return Call(ServerOp::kShutdown, "").status();
}

}  // namespace cdpd
