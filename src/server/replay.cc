#include "server/replay.h"

#include <chrono>
#include <thread>
#include <utility>

#include "core/solver.h"
#include "server/client.h"
#include "server/frame.h"

namespace cdpd {

namespace {

bool IsReplayableOp(uint8_t opcode) {
  switch (static_cast<ServerOp>(opcode)) {
    case ServerOp::kPing:
    case ServerOp::kIngest:
    case ServerOp::kWhatIf:
    case ServerOp::kRecommend:
    case ServerOp::kStats:
      return true;
    default:
      return false;
  }
}

/// Whether this record's response must be reproduced bit-identically
/// by a fresh service fed the same request sequence. STATS snapshots
/// metrics (timings, memory) and error bodies are prose — those only
/// have their status byte checked. A RECOMMEND that carried a deadline
/// is anytime: its answer depends on wall time, so it is excluded too.
bool IsDeterministicResponse(const JournalRecord& record) {
  if (record.wire_status != 0) return false;
  switch (static_cast<ServerOp>(record.opcode)) {
    case ServerOp::kPing:
    case ServerOp::kIngest:
    case ServerOp::kWhatIf:
      return true;
    case ServerOp::kRecommend:
      return record.payload.find("deadline_ms") == std::string::npos;
    default:
      return false;
  }
}

void NoteMismatch(ReplayOutcome* outcome, const ReplayOptions& options,
                  std::string detail) {
  ++outcome->mismatches;
  if (outcome->mismatch_details.size() < options.max_mismatch_details) {
    outcome->mismatch_details.push_back(std::move(detail));
  }
}

/// In-process verification of one record against a fresh service.
void VerifyRecord(AdvisorService* service, const JournalRecord& record,
                  const ReplayOptions& options, ReplayOutcome* outcome) {
  RequestContext ctx;
  ctx.request_id = record.request_id;
  const Result<std::string> result =
      service->Handle(record.opcode, record.payload, ctx);
  ++outcome->replayed;

  const uint8_t status_byte =
      result.ok() ? 0 : WireStatusCode(result.status());
  const std::string frame_tag = "frame " + std::to_string(outcome->frames) +
                                " (" + std::string(ServerOpName(record.opcode)) +
                                ", id=" + record.request_id + ")";
  if (status_byte != record.wire_status) {
    NoteMismatch(outcome, options,
                 frame_tag + ": recorded wire status " +
                     std::to_string(static_cast<int>(record.wire_status)) +
                     ", replay produced " +
                     std::to_string(static_cast<int>(status_byte)) +
                     (result.ok() ? "" : " (" + result.status().message() +
                                             ")"));
    return;
  }
  if (!IsDeterministicResponse(record)) return;

  ++outcome->compared;
  const std::string& replayed = result.value();
  const bool recommend =
      record.opcode == static_cast<uint8_t>(ServerOp::kRecommend);
  const std::string want = recommend
                               ? DeterministicRecommendCore(record.response)
                               : record.response;
  const std::string got =
      recommend ? DeterministicRecommendCore(replayed) : replayed;
  if (want != got) {
    // Pinpoint the first divergent byte — "responses differ" alone is
    // useless against two multi-kilobyte JSON documents.
    size_t at = 0;
    while (at < want.size() && at < got.size() && want[at] == got[at]) ++at;
    const auto context = [at](const std::string& s) {
      const size_t begin = at < 40 ? 0 : at - 40;
      return s.substr(begin, 80);
    };
    NoteMismatch(outcome, options,
                 frame_tag + ": responses diverge at byte " +
                     std::to_string(at) + "; recorded ..." + context(want) +
                     "... vs replayed ..." + context(got) + "...");
  }
}

}  // namespace

std::string DeterministicRecommendCore(std::string_view response_json) {
  const size_t wall = response_json.find(",\"wall_seconds\":");
  const size_t schedule = response_json.find(",\"schedule\":");
  const size_t stats = response_json.find(",\"stats\":");
  if (wall == std::string_view::npos || schedule == std::string_view::npos ||
      stats == std::string_view::npos || stats < schedule ||
      schedule < wall) {
    // Not the shape RecommendAnswer::ToJson produces — compare as-is.
    return std::string(response_json);
  }
  std::string core(response_json.substr(0, wall));
  core += response_json.substr(schedule, stats - schedule);
  return core;
}

Result<ServiceOptions> ServiceOptionsFromMeta(const JournalMeta& meta) {
  ServiceOptions options;
  options.rows = meta.rows;
  options.domain_size = meta.domain_size;
  options.block_size = static_cast<size_t>(meta.block_size);
  options.window_statements = static_cast<size_t>(meta.window_statements);
  options.k = meta.k;
  CDPD_ASSIGN_OR_RETURN(options.method,
                        OptimizerMethodFromString(meta.method));
  options.max_indexes_per_config =
      static_cast<int32_t>(meta.max_indexes_per_config);
  CDPD_RETURN_IF_ERROR(options.Validate());
  return options;
}

Result<ReplayOutcome> ReplayJournal(const std::string& path,
                                    const ReplayOptions& options) {
  JournalReader reader;
  CDPD_RETURN_IF_ERROR(reader.Open(path));

  ReplayOutcome outcome;
  const auto start = std::chrono::steady_clock::now();

  if (options.port > 0) {
    // Live TCP replay: reproduce the session (and optionally its
    // pacing) against a running server.
    CDPD_ASSIGN_OR_RETURN(AdvisorClient client,
                          AdvisorClient::Connect(options.host, options.port));
    int64_t previous_mono_us = 0;
    JournalRecord record;
    while (reader.Next(&record)) {
      ++outcome.frames;
      ++outcome.op_counts[std::string(ServerOpName(record.opcode))];
      if (options.speed > 0.0 && previous_mono_us > 0 &&
          record.mono_us > previous_mono_us) {
        const double gap_us =
            static_cast<double>(record.mono_us - previous_mono_us) /
            options.speed;
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<int64_t>(gap_us)));
      }
      previous_mono_us = record.mono_us;

      const bool shutdown =
          record.opcode == static_cast<uint8_t>(ServerOp::kShutdown);
      if ((shutdown && !options.send_shutdown) ||
          (!shutdown && !IsReplayableOp(record.opcode))) {
        ++outcome.skipped;
        continue;
      }
      if (record.has_wire_request_id()) {
        client.set_request_ids_enabled(true);
        client.set_next_request_id(record.request_id);
      } else {
        client.set_request_ids_enabled(false);
      }
      const Result<std::string> result = client.Call(
          static_cast<ServerOp>(record.opcode), record.payload);
      ++outcome.replayed;
      client.set_request_ids_enabled(true);
      // An Internal status from Call is the transport dying (reset,
      // short frame) — a server-side error rides back as its own wire
      // code and is a legitimate replayed answer. Keep the counts so
      // far; the caller sees how far the replay got.
      if (!result.ok() &&
          result.status().code() == StatusCode::kInternal) {
        outcome.transport_error = result.status().message();
        break;
      }
      if (shutdown) break;  // The target is stopping; nothing follows.
    }
  } else {
    // In-process verify: rebuild the service the journal describes and
    // property-check every deterministic response.
    CDPD_ASSIGN_OR_RETURN(ServiceOptions service_options,
                          ServiceOptionsFromMeta(reader.meta()));
    AdvisorService service(std::move(service_options));
    JournalRecord record;
    while (reader.Next(&record)) {
      ++outcome.frames;
      ++outcome.op_counts[std::string(ServerOpName(record.opcode))];
      if (!IsReplayableOp(record.opcode)) {
        ++outcome.skipped;
        continue;
      }
      VerifyRecord(&service, record, options, &outcome);
    }
  }

  outcome.truncated = reader.truncated();
  outcome.truncated_error = reader.truncated_error();
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return outcome;
}

}  // namespace cdpd
