#include "server/slow_log.h"

#include <algorithm>
#include <utility>

#include "common/json_util.h"

namespace cdpd {

std::string SlowLogEntry::ToJson() const {
  std::string out = "{\"request_id\":" + JsonString(request_id);
  out += ",\"op\":" + JsonString(op);
  out += ",\"wire_status\":" + std::to_string(static_cast<int>(wire_status));
  out += ",\"start_unix_us\":" + std::to_string(start_unix_us);
  out += ",\"duration_us\":" + std::to_string(duration_us);
  out += ",\"window_epoch\":" + std::to_string(window_epoch);
  out += ",\"request_bytes\":" + std::to_string(request_bytes);
  out += ",\"response_bytes\":" + std::to_string(response_bytes);
  out += ",\"spans\":" + Tracer::EventsToJson(spans);
  out += "}";
  return out;
}

void SlowLog::Record(SlowLogEntry entry) {
  if (capacity_ == 0 && recent_capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (recent_capacity_ > 0) {
    recent_.push_back(entry);
    if (recent_.size() > recent_capacity_) recent_.pop_front();
  }
  if (capacity_ == 0) return;
  if (slowest_.size() >= capacity_ &&
      entry.duration_us <= slowest_.back().duration_us) {
    return;  // Faster than the current floor: not a slow request.
  }
  // Insert keeping the slowest-first order; the comparison is on
  // duration only, so ties keep insertion order (stable).
  const auto at = std::upper_bound(
      slowest_.begin(), slowest_.end(), entry,
      [](const SlowLogEntry& a, const SlowLogEntry& b) {
        return a.duration_us > b.duration_us;
      });
  slowest_.insert(at, std::move(entry));
  if (slowest_.size() > capacity_) slowest_.pop_back();
}

std::vector<SlowLogEntry> SlowLog::Slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slowest_;
}

std::optional<SlowLogEntry> SlowLog::Find(std::string_view request_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (it->request_id == request_id) return *it;
  }
  for (const SlowLogEntry& entry : slowest_) {
    if (entry.request_id == request_id) return entry;
  }
  return std::nullopt;
}

int64_t SlowLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

size_t SlowLog::recent_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recent_.size();
}

std::string SlowLog::ToJson() const {
  std::vector<SlowLogEntry> entries;
  int64_t recorded = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries = slowest_;
    recorded = recorded_;
  }
  std::string out = "{\"capacity\":" + std::to_string(capacity_);
  out += ",\"recorded\":" + std::to_string(recorded);
  out += ",\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ",";
    out += entries[i].ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace cdpd
