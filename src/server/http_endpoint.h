#ifndef CDPD_SERVER_HTTP_ENDPOINT_H_
#define CDPD_SERVER_HTTP_ENDPOINT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/advisor_service.h"

namespace cdpd {

/// Transport knobs of the observability listener.
struct HttpOptions {
  /// Loopback by default, same rationale as ServerOptions: the
  /// endpoints are unauthenticated.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is reported by port().
  int port = 0;
  int backlog = 16;
};

/// One parsed HTTP request target and the response to send back —
/// separated from the socket loop so the routing logic is unit-testable
/// without a live listener.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// The advisor's observability plane: a minimal HTTP/1.0 listener that
/// runs in the same process as the frame-protocol server (separate
/// port) and serves read-only views of the AdvisorService:
///
///   GET /metrics   Prometheus text exposition of the live snapshot
///                  (counters, gauges, histogram summaries, exemplars).
///   GET /healthz   200 once the process serves — liveness.
///   GET /readyz    200 after the first INGEST left a non-empty window
///                  (the catalog is pinned at construction), else 503 —
///                  readiness for real traffic.
///   GET /varz      The metrics snapshot as JSON (StatsJson).
///   GET /slowlog   The slowest recorded requests, slowest first, with
///                  their span trees.
///   GET /trace?id=<request-id>
///                  One request's slow-log entry by id (recent ring
///                  first), 404 when the id has aged out.
///
/// One request per connection (Connection: close), one thread per
/// connection; request bodies are ignored and only GET is served. The
/// service is borrowed and must outlive the endpoint.
class HttpEndpoint {
 public:
  explicit HttpEndpoint(AdvisorService* service) : service_(service) {}
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;
  ~HttpEndpoint();

  /// Binds, listens, and spawns the accept thread.
  Status Start(const HttpOptions& options = {});

  /// The bound port (the ephemeral port when options.port was 0); 0
  /// before Start().
  int port() const { return port_; }

  /// Stops accepting, unblocks in-flight connections, joins all
  /// threads. Idempotent.
  void Shutdown();

  /// Connections still tracked (serving, or finished and awaiting the
  /// accept loop's next reap). Exposed so tests can assert the set
  /// stays bounded across many sequential requests.
  size_t TrackedConnectionsForTest() {
    std::lock_guard<std::mutex> lock(conn_mu_);
    return connections_.size();
  }

  /// Pure routing: maps a request target ("/metrics",
  /// "/trace?id=abc") to the response the socket loop would send.
  /// Exposed for tests.
  HttpResponse Route(std::string_view target);

 private:
  /// One accepted connection: its socket, the thread serving it, and a
  /// completion flag the accept loop polls so finished threads are
  /// joined during operation — an unjoined thread keeps its stack
  /// mapped, and a server scraped every few seconds must not hoard one
  /// mapping per past request until shutdown.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    int fd;
    std::atomic<bool> done{false};
    std::thread thread;
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Joins and frees every connection whose handler has finished.
  /// Called by the accept loop before each accept.
  void ReapFinished();

  AdvisorService* service_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<int> open_fds_;
  std::mutex join_mu_;
};

}  // namespace cdpd

#endif  // CDPD_SERVER_HTTP_ENDPOINT_H_
