#ifndef CDPD_SERVER_HTTP_ENDPOINT_H_
#define CDPD_SERVER_HTTP_ENDPOINT_H_

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/advisor_service.h"

namespace cdpd {

/// Transport knobs of the observability listener.
struct HttpOptions {
  /// Loopback by default, same rationale as ServerOptions: the
  /// endpoints are unauthenticated.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is reported by port().
  int port = 0;
  int backlog = 16;
};

/// One parsed HTTP request target and the response to send back —
/// separated from the socket loop so the routing logic is unit-testable
/// without a live listener.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// The advisor's observability plane: a minimal HTTP/1.0 listener that
/// runs in the same process as the frame-protocol server (separate
/// port) and serves read-only views of the AdvisorService:
///
///   GET /metrics   Prometheus text exposition of the live snapshot
///                  (counters, gauges, histogram summaries, exemplars).
///   GET /healthz   200 once the process serves — liveness.
///   GET /readyz    200 after the first INGEST left a non-empty window
///                  (the catalog is pinned at construction), else 503 —
///                  readiness for real traffic.
///   GET /varz      The metrics snapshot as JSON (StatsJson).
///   GET /slowlog   The slowest recorded requests, slowest first, with
///                  their span trees.
///   GET /trace?id=<request-id>
///                  One request's slow-log entry by id (recent ring
///                  first), 404 when the id has aged out.
///
/// One request per connection (Connection: close), one thread per
/// connection; request bodies are ignored and only GET is served. The
/// service is borrowed and must outlive the endpoint.
class HttpEndpoint {
 public:
  explicit HttpEndpoint(AdvisorService* service) : service_(service) {}
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;
  ~HttpEndpoint();

  /// Binds, listens, and spawns the accept thread.
  Status Start(const HttpOptions& options = {});

  /// The bound port (the ephemeral port when options.port was 0); 0
  /// before Start().
  int port() const { return port_; }

  /// Stops accepting, unblocks in-flight connections, joins all
  /// threads. Idempotent.
  void Shutdown();

  /// Pure routing: maps a request target ("/metrics",
  /// "/trace?id=abc") to the response the socket loop would send.
  /// Exposed for tests.
  HttpResponse Route(std::string_view target);

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  AdvisorService* service_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::vector<int> open_fds_;
  std::mutex join_mu_;
};

}  // namespace cdpd

#endif  // CDPD_SERVER_HTTP_ENDPOINT_H_
