#include "server/frame.h"

#include <cerrno>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace cdpd {

std::string_view ServerOpName(uint8_t opcode) {
  switch (static_cast<ServerOp>(opcode)) {
    case ServerOp::kPing:
      return "ping";
    case ServerOp::kIngest:
      return "ingest";
    case ServerOp::kWhatIf:
      return "whatif";
    case ServerOp::kRecommend:
      return "recommend";
    case ServerOp::kStats:
      return "stats";
    case ServerOp::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

uint8_t WireStatusCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kFailedPrecondition:
      return 3;
    case StatusCode::kResourceExhausted:
      return 4;
    case StatusCode::kDeadlineExceeded:
      return 5;
    default:
      return 6;  // Internal / anything a newer peer might add.
  }
}

Status StatusFromWire(uint8_t code, std::string_view message) {
  std::string msg(message);
  switch (code) {
    case 0:
      return Status::OK();
    case 1:
      return Status::InvalidArgument(std::move(msg));
    case 2:
      return Status::NotFound(std::move(msg));
    case 3:
      return Status::FailedPrecondition(std::move(msg));
    case 4:
      return Status::ResourceExhausted(std::move(msg));
    case 5:
      return Status::DeadlineExceeded(std::move(msg));
    default:
      return Status::Internal(std::move(msg));
  }
}

Status ValidateRequestId(std::string_view id) {
  if (id.empty()) return Status::InvalidArgument("request id is empty");
  if (id.size() > kMaxRequestIdBytes) {
    return Status::InvalidArgument(
        "request id of " + std::to_string(id.size()) +
        " bytes exceeds the " + std::to_string(kMaxRequestIdBytes) +
        "-byte cap");
  }
  for (char c : id) {
    if (c < 0x21 || c > 0x7e || c == '"' || c == '\\') {
      return Status::InvalidArgument(
          "request id contains a character outside printable ASCII "
          "(spaces, quotes, and backslashes are also rejected)");
    }
  }
  return Status::OK();
}

Status AttachRequestId(std::string_view id, std::string_view payload,
                       std::string* out) {
  CDPD_RETURN_IF_ERROR(ValidateRequestId(id));
  out->clear();
  out->reserve(id.size() + 1 + payload.size());
  out->append(id);
  out->push_back('\n');
  out->append(payload);
  return Status::OK();
}

Status SplitRequestId(std::string_view wire_payload, std::string_view* id,
                      std::string_view* payload) {
  const size_t newline = wire_payload.find('\n');
  if (newline == std::string_view::npos) {
    return Status::InvalidArgument(
        "flagged frame carries no request-id header line");
  }
  const std::string_view header = wire_payload.substr(0, newline);
  CDPD_RETURN_IF_ERROR(ValidateRequestId(header));
  *id = header;
  *payload = wire_payload.substr(newline + 1);
  return Status::OK();
}

Status EncodeFrame(uint8_t tag, std::string_view payload, std::string* out) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxPayloadBytes) +
        "-byte protocol cap");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  // Little-endian length prefix, independent of host order.
  out->push_back(static_cast<char>(len & 0xff));
  out->push_back(static_cast<char>((len >> 8) & 0xff));
  out->push_back(static_cast<char>((len >> 16) & 0xff));
  out->push_back(static_cast<char>((len >> 24) & 0xff));
  out->push_back(static_cast<char>(tag));
  out->append(payload);
  return Status::OK();
}

#if defined(_WIN32)

Status ReadExact(int, void*, size_t, bool*) {
  return Status::Internal("advisor serving requires POSIX sockets");
}
Status WriteExact(int, const void*, size_t) {
  return Status::Internal("advisor serving requires POSIX sockets");
}

#else

Status ReadExact(int fd, void* data, size_t size, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  char* out = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, out + done, size - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0 && done == 0 && clean_eof != nullptr) *clean_eof = true;
    return Status::Internal(n == 0 ? "connection closed"
                                   : std::string("read failed: ") +
                                         std::strerror(errno));
  }
  return Status::OK();
}

Status WriteExact(int fd, const void* data, size_t size) {
  const char* in = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, in + done, size - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("write failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

#endif  // _WIN32

Status ReadFrame(int fd, Frame* frame, bool* clean_eof) {
  unsigned char header[5];
  CDPD_RETURN_IF_ERROR(ReadExact(fd, header, sizeof(header), clean_eof));
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       (static_cast<uint32_t>(header[1]) << 8) |
                       (static_cast<uint32_t>(header[2]) << 16) |
                       (static_cast<uint32_t>(header[3]) << 24);
  if (len > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "frame declares a " + std::to_string(len) +
        "-byte payload, above the " + std::to_string(kMaxPayloadBytes) +
        "-byte protocol cap");
  }
  frame->opcode = header[4];
  frame->payload.resize(len);
  if (len > 0) {
    CDPD_RETURN_IF_ERROR(ReadExact(fd, frame->payload.data(), len));
  }
  return Status::OK();
}

Status WriteFrame(int fd, uint8_t tag, std::string_view payload) {
  std::string wire;
  wire.reserve(5 + payload.size());
  CDPD_RETURN_IF_ERROR(EncodeFrame(tag, payload, &wire));
  return WriteExact(fd, wire.data(), wire.size());
}

}  // namespace cdpd
