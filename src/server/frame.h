#ifndef CDPD_SERVER_FRAME_H_
#define CDPD_SERVER_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace cdpd {

/// The advisor serving protocol's wire unit. Every exchange is one
/// request frame followed by one response frame on the same
/// connection:
///
///   request:  [u32 payload_len LE] [u8 opcode] [payload_len bytes]
///   response: [u32 payload_len LE] [u8 status] [payload_len bytes]
///
/// payload_len counts the payload only (the opcode/status byte is not
/// included), so an empty-payload frame is exactly 5 bytes. The length
/// prefix is little-endian regardless of host order. A frame whose
/// declared payload exceeds kMaxPayloadBytes is rejected before any
/// allocation — a garbage or hostile length prefix cannot make the
/// server reserve gigabytes.
///
/// Response status 0 is success; any other value is a StatusCode from
/// common/status.h mapped through WireStatusCode, with the payload
/// carrying the human-readable error message.
struct Frame {
  uint8_t opcode = 0;
  std::string payload;
};

/// Request opcodes (see docs/serving.md for payload formats).
enum class ServerOp : uint8_t {
  kPing = 0,       // Empty payload; empty reply. Transport liveness.
  kIngest = 1,     // SQL text (';'-terminated statements) -> JSON ack.
  kWhatIf = 2,     // Column-list config spec -> JSON estimated cost.
  kRecommend = 3,  // key=value option lines -> JSON recommendation.
  kStats = 4,      // Empty payload -> metrics snapshot JSON.
  kShutdown = 5,   // Empty payload; ack, then the server stops.
};

/// Hard cap on a frame's payload (16 MiB): larger than any plausible
/// ingest batch, small enough that a corrupt length prefix fails fast.
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;

/// The stable lowercase name of an opcode ("ping", "ingest", ...;
/// "unknown" for anything outside the ServerOp range). Shared by the
/// transport's metrics/logs, the flight recorder's journal dumps, and
/// advisor_replay's report.
std::string_view ServerOpName(uint8_t opcode);

/// Optional request-id header. A client that wants end-to-end
/// attribution sets the top bit of the opcode byte and prefixes the
/// payload with `<request-id>\n`; the server echoes the same flag and
/// id on the response (success or error) and stamps the id into its
/// logs, metric exemplars, slow log, and per-request trace. Frames
/// without the flag are the PR 8 wire format, byte for byte — an old
/// client round-trips bit-identically against a new server.
///
/// Opcodes and wire status codes both live in [0, 0x7f], so the flag
/// bit is unambiguous in both directions; BaseTag() recovers the
/// opcode/status.
inline constexpr uint8_t kRequestIdFlag = 0x80;

/// Longest accepted request id. Ids are opaque client-chosen tokens;
/// the cap keeps header parsing trivially bounded.
inline constexpr size_t kMaxRequestIdBytes = 128;

inline constexpr uint8_t BaseTag(uint8_t tag) {
  return static_cast<uint8_t>(tag & 0x7f);
}
inline constexpr bool HasRequestId(uint8_t tag) {
  return (tag & kRequestIdFlag) != 0;
}

/// Checks an id is usable as a wire header: non-empty, at most
/// kMaxRequestIdBytes, printable ASCII, no '\n'/'"'/'\\' (the id is
/// embedded raw in the header line and in JSON/log output).
Status ValidateRequestId(std::string_view id);

/// `id` + '\n' + `payload`, validated. The result is the flagged
/// frame's payload.
Status AttachRequestId(std::string_view id, std::string_view payload,
                       std::string* out);

/// Splits a flagged frame's payload back into the id and the real
/// payload (views into `wire_payload` — no copy). Fails when the
/// header line is missing or the id is invalid.
Status SplitRequestId(std::string_view wire_payload, std::string_view* id,
                      std::string_view* payload);

/// The one-byte wire form of a Status (0 = OK). Stable across
/// releases: new StatusCode values map to the generic internal code
/// rather than shifting existing ones.
uint8_t WireStatusCode(const Status& status);

/// Reconstructs a Status from a response frame's status byte and
/// payload (the error message). Byte 0 yields OK whatever the payload.
Status StatusFromWire(uint8_t code, std::string_view message);

/// Appends one encoded frame (length prefix + tag byte + payload) to
/// `out`. `tag` is the opcode of a request or the wire status of a
/// response. Fails with InvalidArgument when the payload exceeds
/// kMaxPayloadBytes.
Status EncodeFrame(uint8_t tag, std::string_view payload, std::string* out);

/// Reads exactly `size` bytes from `fd`, riding out short reads and
/// EINTR. Fails ("connection closed") when the peer closes mid-read —
/// at offset 0 this is the clean end of a connection; the caller
/// distinguishes via `clean_eof`.
Status ReadExact(int fd, void* data, size_t size, bool* clean_eof = nullptr);

/// Writes exactly `size` bytes to `fd`, riding out short writes and
/// EINTR.
Status WriteExact(int fd, const void* data, size_t size);

/// Reads one frame from `fd`. `clean_eof` (optional) is set when the
/// peer closed the connection cleanly before the first length byte —
/// the normal end of a client session, reported as an error status
/// but not a protocol violation. A declared payload above
/// kMaxPayloadBytes fails with InvalidArgument before allocating.
Status ReadFrame(int fd, Frame* frame, bool* clean_eof = nullptr);

/// Encodes and writes one frame to `fd`.
Status WriteFrame(int fd, uint8_t tag, std::string_view payload);

}  // namespace cdpd

#endif  // CDPD_SERVER_FRAME_H_
