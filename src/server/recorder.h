#ifndef CDPD_SERVER_RECORDER_H_
#define CDPD_SERVER_RECORDER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "server/journal.h"

namespace cdpd {

class AdvisorService;

/// The workload flight recorder: accepts one JournalRecord per served
/// request from the transport's connection threads and persists them to
/// a rotated journal (see journal.h) from a dedicated writer thread.
///
/// The hot-path contract is that Append() NEVER touches the disk: it
/// pushes into a bounded in-memory ring under a mutex and returns. When
/// the writer falls behind and the ring fills, new frames are dropped
/// (and counted as recorder.frames_dropped) rather than stalling
/// request serving — the journal is an observability artifact, and an
/// incomplete journal beats a slow server.
///
/// The recorder also keeps the last `tail_frames` appended records in
/// memory; postmortem bundles dump this tail so the moments before a
/// crash or SIGTERM are visible even if the writer had not flushed
/// them yet.
class Recorder {
 public:
  struct Options {
    /// Journal base path; segments land at `<path>.000000`, ...
    std::string path;
    /// Service parameters stamped into every segment header so replay
    /// can rebuild an equivalent service.
    JournalMeta meta;
    /// Bounded ring between Append() and the writer thread.
    size_t ring_capacity = 4096;
    /// Rotate to a new segment once the current one passes this size.
    int64_t segment_max_bytes = 64ll << 20;
    /// fsync after this many written frames under sustained load
    /// (1 = every frame). The writer also fsyncs whenever a poll finds
    /// the ring idle, so at low request rates the durability lag is a
    /// few milliseconds regardless of this value; the threshold only
    /// bounds the lag while requests keep arriving.
    int64_t fsync_every_frames = 4096;
    /// Most-recent records kept in memory for postmortem bundles.
    size_t tail_frames = 256;
  };

  /// Opens the first segment and starts the writer thread. `registry`
  /// (optional) receives the recorder.* metrics.
  static Result<std::unique_ptr<Recorder>> Open(Options options,
                                                MetricsRegistry* registry);

  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Enqueues one record. Constant-time, never blocks on IO; drops
  /// (and counts) when the ring is full or the recorder is closed.
  void Append(JournalRecord record);

  /// Asks the writer to start a fresh segment, then waits until every
  /// record appended before this call is on disk in the old one.
  Status Rotate();

  /// Waits until every record appended before this call is written and
  /// fsynced.
  Status Flush();

  /// Flush + stop the writer thread + close the segment. Idempotent;
  /// Append() after Close() counts as a drop.
  void Close();

  /// {"recording":true,"path":...,"segment":...,counters...} — what
  /// GET /recorder serves.
  std::string StatusJson() const;

  /// The most recent records (oldest first), bounded by tail_frames.
  std::vector<JournalRecord> Tail() const;

  const std::string& path() const { return options_.path; }
  const JournalMeta& meta() const { return options_.meta; }
  int64_t frames_written() const {
    return frames_written_.load(std::memory_order_relaxed);
  }
  int64_t frames_dropped() const {
    return frames_dropped_.load(std::memory_order_relaxed);
  }

 private:
  explicit Recorder(Options options);

  void WriterLoop();
  /// Writer-thread only: closes the current segment and opens index
  /// `segment_index_ + 1`.
  void DoRotate();
  void RecordWriteError(const Status& status);

  Options options_;

  // Hot-path counters (also mirrored into the registry when present).
  std::atomic<int64_t> frames_appended_{0};
  std::atomic<int64_t> frames_written_{0};
  std::atomic<int64_t> frames_dropped_{0};
  std::atomic<int64_t> bytes_written_{0};
  std::atomic<int64_t> write_errors_{0};

  Counter* metric_frames_written_ = nullptr;
  Counter* metric_bytes_written_ = nullptr;
  Counter* metric_frames_dropped_ = nullptr;
  Counter* metric_write_errors_ = nullptr;
  Gauge* metric_ring_depth_ = nullptr;
  Gauge* metric_segments_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Ring non-empty / control change.
  std::condition_variable done_cv_;   // Writer progress (Flush/Rotate).
  /// A vector, not a deque: the writer drains it whole by swapping in
  /// an already-grown empty vector, so steady-state appends never
  /// allocate (a deque pays a chunk allocation every few pushes).
  std::vector<JournalRecord> ring_;
  std::deque<JournalRecord> tail_;
  bool stop_ = false;
  bool rotate_requested_ = false;
  /// Flush ticketing: a Flush() takes ticket flush_requested_+1 and
  /// waits for flush_done_ to reach it; the writer bumps flush_done_
  /// after draining the ring and fsyncing.
  int64_t flush_requested_ = 0;
  int64_t flush_done_ = 0;
  int segment_index_ = 0;
  std::string segment_path_;
  std::string last_error_;

  // Writer-thread state (no lock needed).
  JournalWriter writer_;
  int64_t unsynced_frames_ = 0;

  std::thread writer_thread_;
};

/// Writes a postmortem bundle — the artifacts a human wants when an
/// advisor_server died or misbehaved — into directory `dir` (created
/// if missing):
///
///   manifest.json       why/when the bundle was taken, git_sha, uptime
///   varz.json           the /varz snapshot (build info + all metrics)
///   slowlog.json        slowest requests with their span trees
///   metrics.prom        Prometheus exposition of every metric
///   journal_tail.json   the recorder's in-memory tail (when recording)
///
/// `recorder` may be null (no --record): the tail file is skipped.
/// Best-effort: returns the first error but writes as many files as it
/// can.
Status WritePostmortemBundle(AdvisorService* service, Recorder* recorder,
                             const std::string& dir,
                             const std::string& reason);

}  // namespace cdpd

#endif  // CDPD_SERVER_RECORDER_H_
