#include "server/advisor_server.h"

#include <chrono>
#include <cstring>
#include <utility>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace cdpd {

#if defined(_WIN32)

AdvisorServer::~AdvisorServer() = default;
Status AdvisorServer::Start(const ServerOptions&) {
  return Status::Internal("advisor serving requires POSIX sockets");
}
void AdvisorServer::Wait() {}
void AdvisorServer::Shutdown() {}
void AdvisorServer::AcceptLoop() {}
void AdvisorServer::ServeConnection(int) {}
void AdvisorServer::RequestStop() {}

#else

namespace {

std::string_view OpName(uint8_t opcode) {
  switch (static_cast<ServerOp>(opcode)) {
    case ServerOp::kPing:
      return "ping";
    case ServerOp::kIngest:
      return "ingest";
    case ServerOp::kWhatIf:
      return "whatif";
    case ServerOp::kRecommend:
      return "recommend";
    case ServerOp::kStats:
      return "stats";
    case ServerOp::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

}  // namespace

AdvisorServer::~AdvisorServer() { Shutdown(); }

Status AdvisorServer::Start(const ServerOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host '" + options.host +
                                   "' as an IPv4 address");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind to " + options.host + ":" +
                            std::to_string(options.port) + " failed: " +
                            error);
  }
  if (::listen(fd, options.backlog) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen failed: " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AdvisorServer::AcceptLoop() {
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0 || stopping_.load(std::memory_order_acquire)) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // The listener was closed by RequestStop, or broke; either way
      // the accept loop is done.
      break;
    }
    const int one = 1;
    // One small request frame per round trip — Nagle only adds
    // latency here.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    open_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void AdvisorServer::ServeConnection(int fd) {
  MetricsRegistry* registry = service_->registry();
  // Registry pointers are stable — resolve once per connection so the
  // per-request hot path touches only lock-free metrics.
  Counter* requests = registry->counter("server.requests");
  Counter* errors = registry->counter("server.request_errors");
  Histogram* latency = registry->histogram("server.request_us");
  for (;;) {
    Frame frame;
    bool clean_eof = false;
    if (!ReadFrame(fd, &frame, &clean_eof).ok()) break;
    const auto start = std::chrono::steady_clock::now();
    requests->Add(1);
    registry->counter("server.op." + std::string(OpName(frame.opcode)))
        ->Add(1);
    if (frame.opcode == static_cast<uint8_t>(ServerOp::kShutdown)) {
      // Ack first so the requesting client sees a clean success, then
      // stop the transport. RequestStop never joins, so calling it
      // from this handler thread is safe.
      (void)WriteFrame(fd, 0, "");
      RequestStop();
      break;
    }
    uint8_t status_byte = 0;
    std::string payload;
    Result<std::string> result = service_->Handle(frame.opcode, frame.payload);
    if (result.ok()) {
      payload = std::move(result).value();
    } else {
      status_byte = WireStatusCode(result.status());
      payload = result.status().message();
      errors->Add(1);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    latency->Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
    if (!WriteFrame(fd, status_byte, payload).ok()) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (size_t i = 0; i < open_fds_.size(); ++i) {
    if (open_fds_[i] == fd) {
      open_fds_.erase(open_fds_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
}

void AdvisorServer::RequestStop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  service_->CancelAll();
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    // shutdown() wakes a blocked accept(); close() releases the port.
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const int fd : open_fds_) {
    // Unblock reads so every connection thread can wind down; the
    // threads close their own fds.
    ::shutdown(fd, SHUT_RDWR);
  }
}

void AdvisorServer::Wait() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // The listener is gone, so connections_ can only shrink now; drain
  // it in batches until every handler has exited.
  for (;;) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> conn_lock(conn_mu_);
      batch.swap(connections_);
    }
    if (batch.empty()) break;
    for (std::thread& thread : batch) {
      if (thread.joinable()) thread.join();
    }
  }
}

void AdvisorServer::Shutdown() {
  RequestStop();
  Wait();
}

#endif  // _WIN32

}  // namespace cdpd
