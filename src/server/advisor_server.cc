#include "server/advisor_server.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "common/log.h"
#include "common/tracing.h"
#include "server/recorder.h"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace cdpd {

#if defined(_WIN32)

AdvisorServer::~AdvisorServer() = default;
Status AdvisorServer::Start(const ServerOptions&) {
  return Status::Internal("advisor serving requires POSIX sockets");
}
void AdvisorServer::Wait() {}
void AdvisorServer::Shutdown() {}
void AdvisorServer::AcceptLoop() {}
void AdvisorServer::ServeConnection(Connection*) {}
void AdvisorServer::ReapFinished() {}
void AdvisorServer::RequestStop() {}

#else

namespace {

/// Ops whose requests get a per-request Tracer and a slow-log entry.
/// Pings and stats polls stay untraced: they are the throughput floor,
/// and a monitoring loop must not evict real solves from the log.
bool IsTracedOp(uint8_t opcode) {
  switch (static_cast<ServerOp>(opcode)) {
    case ServerOp::kIngest:
    case ServerOp::kWhatIf:
    case ServerOp::kRecommend:
      return true;
    default:
      return false;
  }
}

/// Server-generated fallback id for clients that sent none — keeps the
/// slow log and log lines attributable without changing what goes back
/// on the wire (an unflagged request gets an unflagged response).
std::string GenerateServerRequestId() {
  static std::atomic<uint64_t> next{0};
  return "srv-" + std::to_string(next.fetch_add(1, std::memory_order_relaxed));
}

int64_t UnixMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

int64_t SteadyMicros(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             t.time_since_epoch())
      .count();
}

}  // namespace

AdvisorServer::~AdvisorServer() { Shutdown(); }

Status AdvisorServer::Start(const ServerOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host '" + options.host +
                                   "' as an IPv4 address");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind to " + options.host + ":" +
                            std::to_string(options.port) + " failed: " +
                            error);
  }
  if (::listen(fd, options.backlog) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen failed: " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AdvisorServer::AcceptLoop() {
  for (;;) {
    ReapFinished();
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0 || stopping_.load(std::memory_order_acquire)) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      // A transient failure must not permanently kill the listener
      // while the process lives on: aborted handshakes just retry,
      // and descriptor exhaustion is waited out.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      // The listener was closed by RequestStop, or broke; either way
      // the accept loop is done.
      break;
    }
    const int one = 1;
    // One small request frame per round trip — Nagle only adds
    // latency here.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(fd);
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    open_fds_.push_back(fd);
    connections_.push_back(std::move(conn));
    // Spawned under conn_mu_: the handler's completion store can only
    // happen after its own final conn_mu_ section, i.e. after this
    // assignment — so a reaper never joins a half-assigned thread.
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void AdvisorServer::ReapFinished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i]->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(connections_[i]));
        connections_.erase(connections_.begin() +
                           static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  // `done` is the handler's last act, so these joins return promptly.
  for (std::unique_ptr<Connection>& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void AdvisorServer::ServeConnection(Connection* conn) {
  const int fd = conn->fd;
  MetricsRegistry* registry = service_->registry();
  // Registry pointers are stable — resolve once per connection so the
  // per-request hot path touches only lock-free metrics.
  Counter* requests = registry->counter("server.requests");
  Counter* errors = registry->counter("server.request_errors");
  Histogram* latency = registry->histogram("server.request_us");
  Gauge* inflight = registry->gauge("server.inflight_requests");
  for (;;) {
    Frame frame;
    bool clean_eof = false;
    if (!ReadFrame(fd, &frame, &clean_eof).ok()) break;
    const auto start = std::chrono::steady_clock::now();
    const int64_t start_unix_us = UnixMicrosNow();
    const uint8_t opcode = BaseTag(frame.opcode);
    const bool wire_id = HasRequestId(frame.opcode);
    inflight->Add(1);
    requests->Add(1);
    const std::string_view op_name = ServerOpName(opcode);
    registry->counter("server.op." + std::string(op_name))->Add(1);

    // Resolve the request id (wire header, or a server-generated
    // fallback) and the opcode's real payload. An unparsable header is
    // a request error like any other — but answered unflagged, since
    // there is no trustworthy id to echo.
    std::string request_id;
    std::string_view payload_view = frame.payload;
    Status id_status = Status::OK();
    if (wire_id) {
      std::string_view id;
      id_status = SplitRequestId(frame.payload, &id, &payload_view);
      if (id_status.ok()) request_id.assign(id);
    }
    if (request_id.empty()) request_id = GenerateServerRequestId();
    // Every log line this request produces on this thread carries the
    // id, whatever logger it lands in.
    LogContext log_ctx("request_id", request_id);

    if (id_status.ok() &&
        opcode == static_cast<uint8_t>(ServerOp::kShutdown)) {
      // Ack first so the requesting client sees a clean success, then
      // stop the transport. RequestStop never joins, so calling it
      // from this handler thread is safe.
      std::string ack;
      uint8_t ack_tag = 0;
      if (wire_id &&
          AttachRequestId(request_id, "", &ack).ok()) {
        ack_tag = static_cast<uint8_t>(ack_tag | kRequestIdFlag);
      }
      (void)WriteFrame(fd, ack_tag, ack);
      if (Recorder* recorder = service_->recorder()) {
        JournalRecord record;
        record.opcode = opcode;
        if (wire_id) record.flags |= JournalRecord::kFlagWireRequestId;
        record.window_epoch = service_->epoch();
        record.mono_us = SteadyMicros(start);
        record.wall_us = start_unix_us;
        record.duration_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        record.request_id = request_id;
        recorder->Append(std::move(record));
      }
      inflight->Add(-1);
      RequestStop();
      break;
    }

    // Solve-class ops get a request-scoped span tree; the transport
    // owns it, the service and solver add spans through RequestContext.
    const bool traced = id_status.ok() && IsTracedOp(opcode);
    Tracer tracer;
    uint8_t status_byte = 0;
    std::string body;
    if (!id_status.ok()) {
      status_byte = WireStatusCode(id_status);
      body = id_status.message();
      errors->Add(1);
    } else {
      RequestContext ctx;
      ctx.request_id = request_id;
      ctx.tracer = traced ? &tracer : nullptr;
      Result<std::string> result = service_->Handle(opcode, payload_view, ctx);
      if (result.ok()) {
        body = std::move(result).value();
      } else {
        status_byte = WireStatusCode(result.status());
        body = result.status().message();
        errors->Add(1);
      }
    }

    // A flagged request is answered flagged: same status code space in
    // the low bits, the echoed id as the payload's header line.
    uint8_t wire_tag = status_byte;
    std::string wire_payload;
    std::string_view response = body;
    if (wire_id && id_status.ok() &&
        AttachRequestId(request_id, body, &wire_payload).ok()) {
      wire_tag = static_cast<uint8_t>(wire_tag | kRequestIdFlag);
      response = wire_payload;
    }
    Status write_status;
    {
      CDPD_TRACE_SPAN(traced ? &tracer : nullptr, "request.respond", "server",
                      static_cast<int64_t>(response.size()));
      write_status = WriteFrame(fd, wire_tag, response);
    }

    // Latency includes the response write — a stalled client reading a
    // large answer is server-observed time, and the bug of recording
    // before WriteExact hid exactly that.
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double elapsed_us = static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
    // Only traced ops leave an exemplar: an exemplar id the exposition
    // advertises must resolve via /trace?id=, and only traced requests
    // enter the slow log. Untraced ping/stats samples stay anonymous.
    Histogram* op_latency =
        registry->histogram("server.op_us." + std::string(op_name));
    if (traced) {
      latency->Record(elapsed_us, request_id);
      op_latency->Record(elapsed_us, request_id);
    } else {
      latency->Record(elapsed_us);
      op_latency->Record(elapsed_us);
    }
    if (traced) {
      SlowLogEntry entry;
      entry.request_id = request_id;
      entry.op = std::string(op_name);
      entry.wire_status = status_byte;
      entry.start_unix_us = start_unix_us;
      entry.duration_us = static_cast<int64_t>(elapsed_us);
      entry.window_epoch = service_->epoch();
      entry.request_bytes = frame.payload.size();
      entry.response_bytes = response.size();
      entry.spans = tracer.Events();
      service_->slow_log()->Record(std::move(entry));
      registry->counter("server.slowlog_recorded")->Add(1);
    }
    // Journal the served request exactly as the service saw it: the
    // real payload and the response body, id headers stripped. Append
    // only buffers in memory — the hot path never waits on the disk.
    if (Recorder* recorder = service_->recorder()) {
      JournalRecord record;
      record.opcode = opcode;
      record.wire_status = status_byte;
      if (wire_id && id_status.ok()) {
        record.flags |= JournalRecord::kFlagWireRequestId;
      }
      record.window_epoch = service_->epoch();
      record.mono_us = SteadyMicros(start);
      record.wall_us = start_unix_us;
      record.duration_us = static_cast<int64_t>(elapsed_us);
      record.request_id = request_id;
      record.payload.assign(payload_view);
      if (status_byte == 0) {
        // Last use of the body on the success path — steal it rather
        // than copy a response at request rate.
        record.response = std::move(body);
      } else {
        record.response = body;  // The failure postmortem below needs it.
      }
      recorder->Append(std::move(record));
    }
    if (status_byte != 0) {
      service_->MaybeWriteFailurePostmortem(
          std::string("request failed: op=") + std::string(op_name) +
          " request_id=" + request_id + " error=" + body);
    }
    inflight->Add(-1);
    if (!write_status.ok()) break;
  }
  // Drop the fd from the shutdown set *before* closing it: once closed
  // the number can be recycled by any other part of the process, and a
  // concurrent RequestStop() iterating open_fds_ must never shut down
  // a stranger's descriptor.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < open_fds_.size(); ++i) {
      if (open_fds_[i] == fd) {
        open_fds_.erase(open_fds_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  ::close(fd);
  // Last act: publish completion so the accept loop can reap this
  // thread. Nothing may touch `this` or `conn` past this store.
  conn->done.store(true, std::memory_order_release);
}

void AdvisorServer::RequestStop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  service_->CancelAll();
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    // shutdown() wakes a blocked accept(); close() releases the port.
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const int fd : open_fds_) {
    // Unblock reads so every connection thread can wind down; the
    // threads close their own fds.
    ::shutdown(fd, SHUT_RDWR);
  }
}

void AdvisorServer::Wait() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // The listener is gone, so connections_ can only shrink now; drain
  // it in batches until every handler has exited.
  for (;;) {
    std::vector<std::unique_ptr<Connection>> batch;
    {
      std::lock_guard<std::mutex> conn_lock(conn_mu_);
      batch.swap(connections_);
    }
    if (batch.empty()) break;
    for (std::unique_ptr<Connection>& conn : batch) {
      if (conn->thread.joinable()) conn->thread.join();
    }
  }
}

void AdvisorServer::Shutdown() {
  RequestStop();
  Wait();
}

#endif  // _WIN32

}  // namespace cdpd
