#include "server/advisor_service.h"

#include <cstdlib>
#include <span>
#include <utility>

#include "advisor/config_enumeration.h"
#include "common/json_util.h"
#include "common/resource_tracker.h"
#include "common/string_util.h"
#include "core/design_problem.h"
#include "core/validator.h"
#include "index/index_def.h"
#include "server/recorder.h"
#include "workload/trace_io.h"

namespace cdpd {

const std::string& BuildGitSha() {
  static const std::string sha = [] {
    const char* env = std::getenv("CDPD_GIT_SHA");
    return std::string(env != nullptr && *env != '\0' ? env : "unknown");
  }();
  return sha;
}

std::string_view BuildTypeName() {
#if defined(CDPD_BUILD_TYPE)
  if (std::string_view(CDPD_BUILD_TYPE).empty()) return "unknown";
  return CDPD_BUILD_TYPE;
#else
  return "unknown";
#endif
}

namespace {

/// Strict base-10 int64 parse: the whole (trimmed) field must be a
/// number — "12x", "", and overflow are errors, unlike std::atoll's
/// silent 0.
bool ParseInt64Strict(std::string_view text, int64_t* out) {
  const std::string field(Trim(text));
  if (field.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseBoolStrict(std::string_view text, bool* out) {
  const std::string_view field = Trim(text);
  if (field == "1" || EqualsIgnoreCase(field, "true")) {
    *out = true;
    return true;
  }
  if (field == "0" || EqualsIgnoreCase(field, "false")) {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

Status ServiceOptions::Validate() const {
  if (rows <= 0) return Status::InvalidArgument("rows must be positive");
  if (domain_size <= 0) {
    return Status::InvalidArgument("domain_size must be positive");
  }
  if (block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  if (max_indexes_per_config < 1) {
    return Status::InvalidArgument("max_indexes_per_config must be >= 1");
  }
  if (space_bound_pages <= 0) {
    return Status::InvalidArgument("space_bound_pages must be positive");
  }
  if (k.has_value() && *k < 0) {
    return Status::InvalidArgument("default k must be >= 0 when set");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (cost_cache_max_bytes < 0) {
    return Status::InvalidArgument("cost_cache_max_bytes must be >= 0");
  }
  if (default_deadline.has_value() && default_deadline->count() < 0) {
    return Status::InvalidArgument("default_deadline must be >= 0 when set");
  }
  if (default_memory_limit_bytes.has_value() &&
      *default_memory_limit_bytes <= 0) {
    return Status::InvalidArgument(
        "default_memory_limit_bytes must be > 0 when set");
  }
  return Status::OK();
}

std::string IngestAck::ToJson() const {
  std::string out = "{\"accepted\":" + std::to_string(accepted) +
                    ",\"window_statements\":" +
                    std::to_string(window_statements) +
                    ",\"dropped\":" + std::to_string(dropped) +
                    ",\"epoch\":" + std::to_string(epoch) + "}";
  return out;
}

std::string WhatIfAnswer::ToJson(const Schema& schema) const {
  std::string out = "{\"config\":" + JsonString(config.ToString(schema)) +
                    ",\"exec_cost\":" + JsonDouble(exec_cost) +
                    ",\"base_exec_cost\":" + JsonDouble(base_exec_cost) +
                    ",\"build_cost\":" + JsonDouble(build_cost) +
                    ",\"segments\":" + std::to_string(segments) + "}";
  return out;
}

Result<RecommendRequest> ParseRecommendRequest(std::string_view text) {
  RecommendRequest request;
  for (const std::string& raw_line : Split(text, '\n')) {
    const std::string_view line = Trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("malformed request line '" +
                                     std::string(line) +
                                     "' (expected key=value)");
    }
    const std::string_view key = Trim(line.substr(0, eq));
    const std::string_view value = line.substr(eq + 1);
    if (key == "k") {
      int64_t k = 0;
      if (!ParseInt64Strict(value, &k)) {
        return Status::InvalidArgument("malformed k '" + std::string(value) +
                                       "'");
      }
      request.k = k;  // k < 0 selects the unconstrained solve.
    } else if (key == "method") {
      CDPD_ASSIGN_OR_RETURN(request.method,
                            OptimizerMethodFromString(Trim(value)));
    } else if (key == "deadline_ms") {
      int64_t ms = 0;
      if (!ParseInt64Strict(value, &ms) || ms < 0) {
        return Status::InvalidArgument("malformed deadline_ms '" +
                                       std::string(value) + "'");
      }
      request.deadline = std::chrono::milliseconds(ms);
    } else if (key == "memory_limit_bytes") {
      int64_t bytes = 0;
      if (!ParseInt64Strict(value, &bytes) || bytes <= 0) {
        return Status::InvalidArgument("malformed memory_limit_bytes '" +
                                       std::string(value) + "'");
      }
      request.memory_limit_bytes = bytes;
    } else if (key == "prune") {
      if (!ParseBoolStrict(value, &request.prune)) {
        return Status::InvalidArgument("malformed prune '" +
                                       std::string(value) + "'");
      }
    } else if (key == "chunks") {
      int64_t chunks = 0;
      if (!ParseInt64Strict(value, &chunks) || chunks < 0) {
        return Status::InvalidArgument("malformed chunks '" +
                                       std::string(value) + "'");
      }
      request.segment_chunks = static_cast<int>(chunks);
    } else if (key == "apply") {
      if (!ParseBoolStrict(value, &request.apply)) {
        return Status::InvalidArgument("malformed apply '" +
                                       std::string(value) + "'");
      }
    } else {
      return Status::InvalidArgument("unknown request key '" +
                                     std::string(key) + "'");
    }
  }
  return request;
}

std::string RecommendAnswer::ToJson(const Schema& schema) const {
  std::string out = "{";
  out += "\"epoch\":" + std::to_string(epoch);
  out += ",\"reused_resident\":";
  out += reused_resident ? "true" : "false";
  out += ",\"segments\":" + std::to_string(segments.size());
  out += ",\"changes\":" + std::to_string(changes);
  out += ",\"k\":";
  out += k.has_value() ? std::to_string(*k) : std::string("null");
  out += ",\"method\":" +
         JsonString(std::string(OptimizerMethodToString(method)));
  out += ",\"method_detail\":" + JsonString(method_detail);
  out += ",\"total_cost\":" + JsonDouble(schedule.total_cost);
  out += ",\"wall_seconds\":" + JsonDouble(stats.wall_seconds);
  out += ",\"cost_cache_hits\":" + std::to_string(stats.cost_cache_hits);
  out += ",\"cost_cache_misses\":" + std::to_string(stats.cost_cache_misses);
  out += ",\"deadline_hit\":";
  out += stats.deadline_hit ? "true" : "false";
  out += ",\"memory_limit_hit\":";
  out += stats.memory_limit_hit ? "true" : "false";
  // The schedule compressed to its change points: which configuration
  // takes effect before which statement.
  out += ",\"schedule\":[";
  const Configuration* previous = nullptr;
  bool first = true;
  for (size_t s = 0; s < segments.size(); ++s) {
    const Configuration& config = schedule.configs[s];
    if (previous == nullptr || !(config == *previous)) {
      if (!first) out += ",";
      first = false;
      out += "{\"from_statement\":" + std::to_string(segments[s].begin + 1) +
             ",\"config\":" + JsonString(config.ToString(schema)) + "}";
    }
    previous = &config;
  }
  out += "]";
  out += ",\"stats\":" + stats.ToJson();
  out += "}";
  return out;
}

AdvisorService::AdvisorService(ServiceOptions options)
    : options_(std::move(options)),
      model_(options_.schema, options_.rows, options_.domain_size,
             options_.params),
      session_([this] {
        SessionOptions session_options;
        session_options.num_threads = options_.num_threads;
        session_options.enable_cost_cache = true;
        session_options.cost_cache_max_bytes = options_.cost_cache_max_bytes;
        // The service registry always sees the solver metrics (STATS
        // serializes it); the caller's sinks fill the other slots.
        session_options.observability = options_.observability;
        session_options.observability.metrics = &registry_;
        return session_options;
      }()),
      slow_log_(options_.slow_log_capacity, options_.slow_log_recent) {
  candidate_indexes_ = options_.candidate_indexes;
  if (candidate_indexes_.empty()) {
    candidate_indexes_ = MakePaperCandidateIndexes(options_.schema);
  }
  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = options_.max_indexes_per_config;
  enum_options.space_bound_pages = options_.space_bound_pages;
  enum_options.num_rows = model_.num_rows();
  auto configs = EnumerateConfigurations(candidate_indexes_, enum_options);
  // Enumeration only fails on a degenerate space bound; the service
  // then still serves (the empty configuration is always feasible).
  candidate_configs_ = configs.ok()
                           ? std::move(configs).value()
                           : std::vector<Configuration>{Configuration()};

  auto window = std::make_shared<WindowState>();
  window->engine = std::make_unique<WhatIfEngine>(
      &model_, std::span<const BoundStatement>(window->statements),
      window->segments);
  window_ = std::move(window);
}

std::shared_ptr<const AdvisorService::WindowState>
AdvisorService::CurrentWindow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_;
}

size_t AdvisorService::window_size() const {
  return CurrentWindow()->statements.size();
}

uint64_t AdvisorService::epoch() const { return CurrentWindow()->epoch; }

Configuration AdvisorService::initial_config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return initial_;
}

Result<IngestAck> AdvisorService::IngestSql(std::string_view sql) {
  CDPD_ASSIGN_OR_RETURN(Workload batch, ReadTrace(options_.schema, sql));
  const size_t accepted = batch.size();
  std::lock_guard<std::mutex> lock(mu_);
  if (accepted == 0) {
    // A comment-only batch changes nothing; keep the window (and the
    // resident solution) valid.
    IngestAck ack;
    ack.window_statements = window_->statements.size();
    ack.epoch = window_->epoch;
    return ack;
  }
  auto next = std::make_shared<WindowState>();
  next->statements.reserve(window_->statements.size() + accepted);
  next->statements = window_->statements;
  for (BoundStatement& statement : batch.statements) {
    next->statements.push_back(std::move(statement));
  }
  size_t dropped = 0;
  if (options_.window_statements > 0 &&
      next->statements.size() > options_.window_statements) {
    dropped = next->statements.size() - options_.window_statements;
    next->statements.erase(next->statements.begin(),
                           next->statements.begin() +
                               static_cast<ptrdiff_t>(dropped));
  }
  next->segments =
      SegmentFixed(next->statements.size(), options_.block_size);
  next->engine = std::make_unique<WhatIfEngine>(
      &model_, std::span<const BoundStatement>(next->statements),
      next->segments);
  next->epoch = window_->epoch + 1;
  window_ = std::move(next);

  registry_.counter("server.ingested_statements")
      ->Add(static_cast<int64_t>(accepted));
  registry_.gauge("server.window_statements")
      ->Set(static_cast<int64_t>(window_->statements.size()));
  registry_.gauge("server.window_epoch")
      ->Set(static_cast<int64_t>(window_->epoch));

  IngestAck ack;
  ack.accepted = accepted;
  ack.window_statements = window_->statements.size();
  ack.dropped = dropped;
  ack.epoch = window_->epoch;
  return ack;
}

Result<Configuration> AdvisorService::ParseConfigSpec(
    std::string_view spec) const {
  const std::string_view trimmed = Trim(spec);
  if (trimmed.empty() || trimmed == "{}") return Configuration();
  std::vector<IndexDef> indexes;
  for (const std::string& group : Split(trimmed, ';')) {
    if (Trim(group).empty()) continue;
    std::vector<std::string> names;
    for (const std::string& name : Split(group, ',')) {
      const std::string_view field = Trim(name);
      if (field.empty()) {
        return Status::InvalidArgument("empty column name in config spec '" +
                                       std::string(spec) + "'");
      }
      names.emplace_back(field);
    }
    CDPD_ASSIGN_OR_RETURN(IndexDef def,
                          IndexDef::FromColumnNames(options_.schema, names));
    indexes.push_back(std::move(def));
  }
  return Configuration(std::move(indexes));
}

Result<WhatIfAnswer> AdvisorService::WhatIfConfig(const Configuration& config) {
  if (config.SizePages(model_.num_rows()) > options_.space_bound_pages) {
    return Status::InvalidArgument(
        "configuration exceeds the space bound of " +
        std::to_string(options_.space_bound_pages) + " pages");
  }
  const std::shared_ptr<const WindowState> window = CurrentWindow();
  const Configuration initial = initial_config();
  WhatIfAnswer answer;
  answer.config = config;
  answer.segments = window->segments.size();
  for (size_t i = 0; i < window->segments.size(); ++i) {
    answer.exec_cost += window->engine->SegmentCost(i, config);
    answer.base_exec_cost += window->engine->SegmentCost(i, initial);
  }
  answer.build_cost = window->engine->TransitionCost(initial, config);
  registry_.counter("server.whatifs")->Add(1);
  return answer;
}

Result<RecommendAnswer> AdvisorService::RecommendNow(
    const RecommendRequest& request, Tracer* tracer) {
  const std::shared_ptr<const WindowState> window = CurrentWindow();
  if (window->segments.empty()) {
    return Status::FailedPrecondition(
        "workload window is empty — INGEST statements first");
  }
  const Configuration initial = initial_config();

  // Effective request: per-request fields win over the service
  // defaults; k < 0 selects the unconstrained solve.
  std::optional<int64_t> k = options_.k;
  if (request.k.has_value()) {
    k = *request.k < 0 ? std::nullopt : std::optional<int64_t>(*request.k);
  }
  const OptimizerMethod method = request.method.value_or(options_.method);
  const std::optional<std::chrono::milliseconds> deadline =
      request.deadline.has_value() ? request.deadline
                                   : options_.default_deadline;
  const std::optional<int64_t> memory_limit =
      request.memory_limit_bytes.has_value()
          ? request.memory_limit_bytes
          : options_.default_memory_limit_bytes;

  // Everything the answer depends on besides the window itself: the
  // resident solution is only reused when all of it matches.
  std::string key = "k=";
  key += k.has_value() ? std::to_string(*k) : std::string("none");
  key += ";method=" + std::string(OptimizerMethodToString(method));
  key += ";prune=" + std::to_string(request.prune ? 1 : 0);
  key += ";chunks=" + std::to_string(request.segment_chunks);
  key += ";deadline=" +
         (deadline.has_value() ? std::to_string(deadline->count())
                               : std::string("none"));
  key += ";mem=" +
         (memory_limit.has_value() ? std::to_string(*memory_limit)
                                   : std::string("none"));
  key += ";initial=" + initial.ToString(options_.schema);

  // Identical-window short-circuit — sound only for deadline-free
  // requests (a deadline-bounded solve's degradation point depends on
  // wall time, so its result is not a pure function of the inputs).
  if (!deadline.has_value()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (resident_.answer != nullptr && resident_.epoch == window->epoch &&
        resident_.options_key == key) {
      RecommendAnswer reused = *resident_.answer;
      reused.reused_resident = true;
      registry_.counter("server.recommends")->Add(1);
      registry_.counter("server.recommends_reused")->Add(1);
      return reused;
    }
  }

  DesignProblem problem;
  problem.what_if = window->engine.get();
  problem.candidates = candidate_configs_;
  problem.initial = initial;
  problem.space_bound_pages = options_.space_bound_pages;

  SolveOptions solve_options;
  solve_options.method = method;
  solve_options.k = k;
  solve_options.prune_dominated = request.prune;
  solve_options.segmented.num_chunks = request.segment_chunks;
  solve_options.deadline = deadline;
  solve_options.memory_limit_bytes = memory_limit;
  solve_options.cancel = &cancel_;
  // Per-call sinks win slot-by-slot over the session defaults, so the
  // request-scoped tracer captures this solve's spans while metrics
  // keep flowing into the service registry.
  solve_options.observability.tracer = tracer;
  if (method == OptimizerMethod::kGreedySeq) {
    solve_options.greedy.candidate_indexes = candidate_indexes_;
    solve_options.greedy.max_indexes_per_config =
        options_.max_indexes_per_config;
  }

  CDPD_ASSIGN_OR_RETURN(SolveResult solved,
                        session_.Solve(problem, solve_options));
  if (!solved.reduced_candidates.empty()) {
    // GREEDY-SEQ validated against the reduced set it searched.
    problem.candidates = solved.reduced_candidates;
  }
  CDPD_RETURN_IF_ERROR(ValidateSchedule(problem, solved.schedule, k));

  auto answer = std::make_shared<RecommendAnswer>();
  answer->schedule = std::move(solved.schedule);
  answer->segments = window->segments;
  answer->changes = CountChanges(problem, answer->schedule.configs);
  answer->k = k;
  answer->method = method;
  answer->stats = solved.stats;
  answer->method_detail = std::move(solved.method_detail);
  answer->epoch = window->epoch;

  {
    std::lock_guard<std::mutex> lock(mu_);
    resident_.epoch = window->epoch;
    resident_.options_key = key;
    resident_.answer = answer;
    if (request.apply && !answer->schedule.configs.empty()) {
      initial_ = answer->schedule.configs.back();
    }
  }
  registry_.counter("server.recommends")->Add(1);
  if (session_.cost_cache() != nullptr) {
    session_.cost_cache()->PublishTo(&registry_);
  }
  SampleProcessMemory(&registry_);
  return *answer;
}

Result<std::string> AdvisorService::Handle(uint8_t opcode,
                                           std::string_view payload,
                                           const RequestContext& ctx) {
  switch (static_cast<ServerOp>(opcode)) {
    case ServerOp::kPing:
      return std::string();
    case ServerOp::kIngest: {
      // Parse and window swap are one operation here (ReadTrace runs
      // inside IngestSql), so the whole op is the "solve" span.
      CDPD_TRACE_SPAN(ctx.tracer, "request.solve", "server");
      CDPD_ASSIGN_OR_RETURN(IngestAck ack, IngestSql(payload));
      return ack.ToJson();
    }
    case ServerOp::kWhatIf: {
      Result<Configuration> config = [&]() -> Result<Configuration> {
        CDPD_TRACE_SPAN(ctx.tracer, "request.parse", "server");
        return ParseConfigSpec(payload);
      }();
      CDPD_RETURN_IF_ERROR(config.status());
      CDPD_TRACE_SPAN(ctx.tracer, "request.solve", "server");
      CDPD_ASSIGN_OR_RETURN(WhatIfAnswer answer, WhatIfConfig(*config));
      return answer.ToJson(options_.schema);
    }
    case ServerOp::kRecommend: {
      Result<RecommendRequest> request = [&]() -> Result<RecommendRequest> {
        CDPD_TRACE_SPAN(ctx.tracer, "request.parse", "server");
        return ParseRecommendRequest(payload);
      }();
      CDPD_RETURN_IF_ERROR(request.status());
      CDPD_TRACE_SPAN(ctx.tracer, "request.solve", "server");
      CDPD_ASSIGN_OR_RETURN(RecommendAnswer answer,
                            RecommendNow(*request, ctx.tracer));
      return answer.ToJson(options_.schema);
    }
    case ServerOp::kStats:
      return StatsJson();
    case ServerOp::kShutdown:
      return Status::InvalidArgument(
          "SHUTDOWN is handled by the transport, not the service");
  }
  return Status::InvalidArgument("unknown opcode " +
                                 std::to_string(static_cast<int>(opcode)));
}

MetricsSnapshot AdvisorService::StatsSnapshot() {
  if (session_.cost_cache() != nullptr) {
    session_.cost_cache()->PublishTo(&registry_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry_.gauge("server.window_statements")
        ->Set(static_cast<int64_t>(window_->statements.size()));
    registry_.gauge("server.window_epoch")
        ->Set(static_cast<int64_t>(window_->epoch));
  }
  registry_.gauge("server.slowlog_entries")
      ->Set(static_cast<int64_t>(slow_log_.Slowest().size()));
  registry_.counter("server.slowlog_recorded");  // Ensure it is visible.
  SampleProcessMemory(&registry_);
  return registry_.Snapshot();
}

std::string AdvisorService::StatsJson() { return StatsSnapshot().ToJson(); }

double AdvisorService::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

std::string AdvisorService::VarzJson() {
  std::string out = "{\"git_sha\":" + JsonString(BuildGitSha());
  out += ",\"build_type\":" + JsonString(BuildTypeName());
  out += ",\"uptime_seconds\":" + JsonDouble(UptimeSeconds());
  out += ",\"recorder\":";
  Recorder* recorder = recorder_.load(std::memory_order_acquire);
  out += recorder != nullptr ? recorder->StatusJson()
                             : std::string("{\"recording\":false}");
  // Splice the stats document's members in at the top level: StatsJson
  // yields "{...}"; drop its opening brace and keep the rest.
  const std::string stats = StatsJson();
  out += ",";
  out += std::string_view(stats).substr(1);
  return out;
}

void AdvisorService::MaybeWriteFailurePostmortem(const std::string& reason) {
  if (options_.postmortem_dir.empty()) return;
  bool expected = false;
  if (!failure_postmortem_written_.compare_exchange_strong(expected, true)) {
    return;
  }
  const Status status =
      WritePostmortemBundle(this, recorder_.load(std::memory_order_acquire),
                            options_.postmortem_dir + "/failure", reason);
  if (!status.ok()) {
    CDPD_LOG(options_.observability.logger, LogLevel::kWarn,
             "postmortem.write_failed", {"reason", reason},
             {"error", status.message()});
  }
}

}  // namespace cdpd
