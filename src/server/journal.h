#ifndef CDPD_SERVER_JOURNAL_H_
#define CDPD_SERVER_JOURNAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cdpd {

/// The workload flight recorder's durable unit: one fully-served
/// request as the transport observed it — the opcode and raw payload
/// that arrived, the response body and wire status that went back, and
/// enough context (window epoch, timestamps, duration) to replay the
/// session deterministically and to reconstruct its timing.
///
/// `mono_us` is a monotonic capture timestamp (steady clock): the
/// difference between consecutive frames is the original inter-arrival
/// gap, which advisor_replay can preserve or compress (--speed).
/// `wall_us` is the wall clock at the same instant, for humans lining
/// a journal up against external logs.
struct JournalRecord {
  /// flags bit: the request id arrived on the wire (kRequestIdFlag) —
  /// replay re-attaches it; a server-generated fallback id is recorded
  /// for attribution but never re-sent.
  static constexpr uint8_t kFlagWireRequestId = 0x01;

  uint8_t opcode = 0;
  uint8_t wire_status = 0;  // 0 = success (see WireStatusCode).
  uint8_t flags = 0;
  uint64_t window_epoch = 0;  // Service epoch after the request.
  int64_t mono_us = 0;
  int64_t wall_us = 0;
  int64_t duration_us = 0;  // Includes the response write.
  std::string request_id;
  std::string payload;   // The op's real payload (id header stripped).
  std::string response;  // Response body (id header stripped).

  bool has_wire_request_id() const {
    return (flags & kFlagWireRequestId) != 0;
  }
};

/// On-disk layout of a journal segment:
///
///   [8-byte magic "CDPDJRN1"]
///   [u32 meta_len LE] [u32 crc32(meta) LE] [meta_len bytes JSON]
///   then zero or more frames:
///   [u32 record_len LE] [u32 crc32(record) LE] [record_len bytes]
///
/// Every length is validated against a hard cap before allocation and
/// every body is CRC-checked, so a torn tail (the process died
/// mid-write) or flipped bits are detected: the reader stops cleanly
/// at the last valid frame and reports `truncated()` instead of
/// crashing or replaying garbage.
inline constexpr char kJournalMagic[8] = {'C', 'D', 'P', 'D',
                                          'J', 'R', 'N', '1'};

/// Caps a declared record length: a record carries at most a request
/// payload plus a response payload (each bounded by the wire protocol)
/// plus a small fixed header.
inline constexpr uint32_t kMaxJournalRecordBytes = (2u * (16u << 20)) + 4096u;

/// CRC-32 (IEEE 802.3, reflected, as used by zip/png) of `data`.
uint32_t Crc32(std::string_view data);

/// Serializes `record` into the journal's binary record form (no
/// length/CRC framing — JournalWriter adds that).
std::string EncodeJournalRecord(const JournalRecord& record);

/// The inverse of EncodeJournalRecord. Fails on short or
/// internally-inconsistent bytes.
Result<JournalRecord> DecodeJournalRecord(std::string_view bytes);

/// What a journal needs to remember about the service that produced it
/// so replay can reconstruct an equivalent fresh AdvisorService: the
/// catalog scale, segmentation, window cap, and request defaults.
/// Serialized as JSON into every segment's header — any one segment
/// file is self-describing.
struct JournalMeta {
  int64_t rows = 250'000;
  int64_t domain_size = 500'000;
  int64_t block_size = 100;
  int64_t window_statements = 10'000;
  /// Default change bound; nullopt = unconstrained.
  std::optional<int64_t> k = 2;
  std::string method = "optimal";
  int64_t max_indexes_per_config = 1;

  std::string ToJson() const;
  static Result<JournalMeta> FromJson(std::string_view json);
};

/// The path of segment `index` of the journal at `base`:
/// `<base>.000000`, `<base>.000001`, ... Rotation only ever creates the
/// next index; segments are never renamed, so readers see a stable
/// ordered set.
std::string JournalSegmentPath(const std::string& base, int index);

/// Appends records to one journal segment file. Not thread-safe — the
/// recorder's single writer thread owns it. Open() writes the header
/// (magic + meta) immediately; Append() frames into a user-space
/// buffer that is written out once it passes ~256 KiB (one syscall per
/// many frames, not per frame), and Sync() flushes the buffer and
/// fsyncs, so the durability lag is under the caller's control.
class JournalWriter {
 public:
  JournalWriter() = default;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter() { Close(); }

  /// Creates (truncating) `path` and writes the header.
  Status Open(const std::string& path, const JournalMeta& meta);

  /// Appends one framed record; `*bytes` (optional) receives the
  /// on-disk size of the frame (length + CRC + record).
  Status Append(const JournalRecord& record, int64_t* bytes = nullptr);

  /// Flushes buffered frames and fsyncs the file.
  Status Sync();

  /// Sync + close. Idempotent.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  /// Bytes appended so far (header included, buffered included).
  int64_t bytes_written() const { return bytes_written_; }

 private:
  /// Writes the buffered frames to the fd.
  Status FlushBuffer();

  int fd_ = -1;
  std::string path_;
  std::string buffer_;
  int64_t bytes_written_ = 0;
};

/// Reads a journal back, frame by frame, across its rotated segments.
/// Open() accepts either one segment file or a journal base path (the
/// `--record` argument): for a base, every `<base>.NNNNNN` segment is
/// read in order. A CRC mismatch or torn tail ends the stream cleanly:
/// Next() reports end-of-journal and truncated() explains what was
/// dropped — corruption in segment i also drops segments > i, since
/// the stream's order past the damage is no longer trustworthy.
class JournalReader {
 public:
  JournalReader() = default;
  JournalReader(const JournalReader&) = delete;
  JournalReader& operator=(const JournalReader&) = delete;
  ~JournalReader();

  Status Open(const std::string& path);

  /// Reads the next record. Returns true and fills `record` while
  /// frames remain; false at the end of the journal (clean or
  /// truncated — check truncated()).
  bool Next(JournalRecord* record);

  const JournalMeta& meta() const { return meta_; }
  const std::vector<std::string>& segments() const { return segments_; }
  /// Records successfully decoded so far.
  int64_t records_read() const { return records_read_; }

  /// True once the stream ended because of corruption (CRC mismatch,
  /// torn frame, bad segment header) rather than a clean end of file.
  bool truncated() const { return truncated_; }
  const std::string& truncated_error() const { return truncated_error_; }

 private:
  /// Opens segments_[segment_index_] and validates its header. On
  /// damage: marks the stream truncated.
  bool OpenCurrentSegment();
  void MarkTruncated(const std::string& error);

  std::vector<std::string> segments_;
  size_t segment_index_ = 0;
  int fd_ = -1;
  bool header_read_ = false;
  JournalMeta meta_;
  int64_t records_read_ = 0;
  bool truncated_ = false;
  std::string truncated_error_;
};

}  // namespace cdpd

#endif  // CDPD_SERVER_JOURNAL_H_
