#include "cost/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/math_util.h"
#include "storage/page.h"

namespace cdpd {

std::string_view AccessPathKindToString(AccessPathKind kind) {
  switch (kind) {
    case AccessPathKind::kTableScan:
      return "TableScan";
    case AccessPathKind::kIndexSeek:
      return "IndexSeek";
    case AccessPathKind::kIndexSeekWithFetch:
      return "IndexSeekWithFetch";
    case AccessPathKind::kCoveringScan:
      return "CoveringScan";
  }
  return "Unknown";
}

CostModel::CostModel(Schema schema, int64_t num_rows, int64_t domain_size,
                     CostParams params)
    : schema_(std::move(schema)),
      num_rows_(num_rows),
      domain_size_(domain_size),
      params_(params) {
  assert(num_rows_ >= 0);
  assert(domain_size_ > 0);
}

double CostModel::ExpectedMatches() const {
  return static_cast<double>(num_rows_) / static_cast<double>(domain_size_);
}

double CostModel::ExpectedRangeMatches(Value lo, Value hi) const {
  if (lo > hi) return 0.0;
  const double selectivity =
      std::min(1.0, static_cast<double>(hi - lo + 1) /
                        static_cast<double>(domain_size_));
  return selectivity * static_cast<double>(num_rows_);
}

double CostModel::ExpectedMatchesFor(ColumnId column) const {
  if (stats_ != nullptr) return stats_->ExpectedEqMatches(column);
  return ExpectedMatches();
}

double CostModel::ExpectedRangeMatchesFor(ColumnId column, Value lo,
                                          Value hi) const {
  if (stats_ != nullptr) return stats_->ExpectedRangeMatches(column, lo, hi);
  return ExpectedRangeMatches(lo, hi);
}

int64_t CostModel::HeapPagesCount() const {
  return HeapPages(num_rows_, schema_.RowBytes());
}

double CostModel::PathCost(AccessPathKind kind, const IndexDef& index,
                           double matches) const {
  switch (kind) {
    case AccessPathKind::kTableScan:
      return static_cast<double>(HeapPagesCount()) * params_.seq_page_cost +
             static_cast<double>(num_rows_) * params_.cpu_tuple_cost;
    case AccessPathKind::kIndexSeek: {
      // Root-to-leaf descent, plus extra leaves if the matches overflow
      // the first leaf, plus per-match CPU.
      const double extra_leaves =
          matches / static_cast<double>(
                        IndexEntriesPerPage(index.num_key_columns()));
      return static_cast<double>(index.Height(num_rows_)) *
                 params_.random_page_cost +
             extra_leaves * params_.seq_page_cost +
             matches * params_.cpu_tuple_cost;
    }
    case AccessPathKind::kIndexSeekWithFetch: {
      const double extra_leaves =
          matches / static_cast<double>(
                        IndexEntriesPerPage(index.num_key_columns()));
      return static_cast<double>(index.Height(num_rows_)) *
                 params_.random_page_cost +
             extra_leaves * params_.seq_page_cost +
             matches * params_.random_page_cost +  // Heap fetches.
             matches * params_.cpu_tuple_cost;
    }
    case AccessPathKind::kCoveringScan:
      return static_cast<double>(index.LeafPages(num_rows_)) *
                 params_.seq_page_cost +
             static_cast<double>(num_rows_) * params_.cpu_tuple_cost;
  }
  return 0.0;
}

double CostModel::SelectCost(ColumnId select_column, ColumnId where_column,
                             double matches, const Configuration& config,
                             AccessPathChoice* choice) const {
  AccessPathChoice best;
  best.kind = AccessPathKind::kTableScan;
  best.index.reset();
  best.cost = PathCost(AccessPathKind::kTableScan, IndexDef(), matches);

  for (const IndexDef& index : config.indexes()) {
    const bool covers_select = index.ContainsColumn(select_column);
    if (index.HasPrefixColumn(where_column)) {
      const AccessPathKind kind = covers_select
                                      ? AccessPathKind::kIndexSeek
                                      : AccessPathKind::kIndexSeekWithFetch;
      const double cost = PathCost(kind, index, matches);
      if (cost < best.cost) {
        best = AccessPathChoice{kind, index, cost};
      }
    } else if (index.ContainsColumn(where_column) && covers_select) {
      const double cost =
          PathCost(AccessPathKind::kCoveringScan, index, matches);
      if (cost < best.cost) {
        best = AccessPathChoice{AccessPathKind::kCoveringScan, index, cost};
      }
    }
    // An index containing the predicate column but not the selected one
    // and without the prefix property would require a leaf scan plus
    // per-match heap fetches; that is never cheaper than either the
    // covering scan of a suitable index or the table scan for point
    // predicates, so the optimizer does not consider it.
  }
  if (choice != nullptr) *choice = best;
  return best.cost;
}

AccessPathChoice CostModel::ChooseAccessPath(const BoundStatement& statement,
                                             const Configuration& config) const {
  AccessPathChoice choice;
  switch (statement.type) {
    case StatementType::kSelectPoint:
      SelectCost(statement.select_column, statement.where_column,
                 ExpectedMatchesFor(statement.where_column), config, &choice);
      return choice;
    case StatementType::kSelectRange:
      SelectCost(statement.select_column, statement.where_column,
                 ExpectedRangeMatchesFor(statement.where_column,
                                         statement.where_lo,
                                         statement.where_hi),
                 config, &choice);
      return choice;
    case StatementType::kUpdatePoint:
      // Row location only needs the rid, which every index entry
      // carries, so the "selected column" is the predicate column.
      SelectCost(statement.where_column, statement.where_column,
                 ExpectedMatchesFor(statement.where_column), config, &choice);
      return choice;
    case StatementType::kInsert:
      choice.kind = AccessPathKind::kTableScan;  // Not meaningful; appends.
      choice.cost = 0.0;
      return choice;
  }
  return choice;
}

double CostModel::MaintenanceCost(const BoundStatement& statement,
                                  const Configuration& config) const {
  const double matches = ExpectedMatchesFor(statement.where_column);
  double cost = 0.0;
  switch (statement.type) {
    case StatementType::kSelectPoint:
    case StatementType::kSelectRange:
      return 0.0;
    case StatementType::kUpdatePoint: {
      // Fetch and rewrite the matching heap rows.
      cost += matches * (params_.random_page_cost + params_.write_page_cost);
      // Every index whose key contains the updated column must erase
      // the old entry and insert the new one.
      for (const IndexDef& index : config.indexes()) {
        if (!index.ContainsColumn(statement.set_column)) continue;
        const double descent = static_cast<double>(index.Height(num_rows_)) *
                               params_.random_page_cost;
        cost += matches * 2.0 * (descent + params_.write_page_cost);
      }
      return cost;
    }
    case StatementType::kInsert: {
      // Heap append (amortized one page write) plus one descent+write
      // per index.
      cost += params_.write_page_cost;
      for (const IndexDef& index : config.indexes()) {
        cost += static_cast<double>(index.Height(num_rows_)) *
                    params_.random_page_cost +
                params_.write_page_cost;
      }
      return cost;
    }
  }
  return cost;
}

double CostModel::StatementCost(const BoundStatement& statement,
                                const Configuration& config) const {
  switch (statement.type) {
    case StatementType::kSelectPoint:
      return SelectCost(statement.select_column, statement.where_column,
                        ExpectedMatchesFor(statement.where_column), config,
                        nullptr);
    case StatementType::kSelectRange:
      return SelectCost(statement.select_column, statement.where_column,
                        ExpectedRangeMatchesFor(statement.where_column,
                                                statement.where_lo,
                                                statement.where_hi),
                        config, nullptr);
    case StatementType::kUpdatePoint:
      return SelectCost(statement.where_column, statement.where_column,
                        ExpectedMatchesFor(statement.where_column), config,
                        nullptr) +
             MaintenanceCost(statement, config);
    case StatementType::kInsert:
      return MaintenanceCost(statement, config);
  }
  return 0.0;
}

double CostModel::BuildCost(const IndexDef& def) const {
  const double scan =
      static_cast<double>(HeapPagesCount()) * params_.seq_page_cost;
  const double sort = static_cast<double>(num_rows_) *
                      Log2(static_cast<double>(num_rows_)) *
                      params_.sort_cpu_factor;
  const double write = static_cast<double>(def.SizePages(num_rows_)) *
                       params_.write_page_cost;
  return scan + sort + write;
}

double CostModel::DropCost(const IndexDef& /*def*/) const {
  return params_.drop_pages * params_.write_page_cost;
}

double CostModel::TransitionCost(const Configuration& from,
                                 const Configuration& to) const {
  const ConfigurationDelta delta = DiffConfigurations(from, to);
  double cost = 0.0;
  for (const IndexDef& index : delta.created) cost += BuildCost(index);
  for (const IndexDef& index : delta.dropped) cost += DropCost(index);
  return cost;
}

int64_t CostModel::ConfigurationSizePages(const Configuration& config) const {
  return config.SizePages(num_rows_);
}

namespace {

uint64_t FingerprintMix(uint64_t hash, uint64_t value) {
  constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t FingerprintMixDouble(uint64_t hash, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return FingerprintMix(hash, bits);
}

}  // namespace

uint64_t CostModel::Fingerprint() const {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::string& name : schema_.column_names()) {
    for (const char c : name) {
      hash = FingerprintMix(hash, static_cast<uint64_t>(c));
    }
    hash = FingerprintMix(hash, name.size());
  }
  hash = FingerprintMix(hash, static_cast<uint64_t>(num_rows_));
  hash = FingerprintMix(hash, static_cast<uint64_t>(domain_size_));
  hash = FingerprintMixDouble(hash, params_.seq_page_cost);
  hash = FingerprintMixDouble(hash, params_.random_page_cost);
  hash = FingerprintMixDouble(hash, params_.write_page_cost);
  hash = FingerprintMixDouble(hash, params_.cpu_tuple_cost);
  hash = FingerprintMixDouble(hash, params_.sort_cpu_factor);
  hash = FingerprintMixDouble(hash, params_.drop_pages);
  // TableStats participate by content: attaching, detaching, or
  // refreshing statistics all change the token.
  hash = FingerprintMix(hash, stats_ != nullptr ? 1 : 0);
  if (stats_ != nullptr) {
    hash = FingerprintMix(hash, static_cast<uint64_t>(stats_->num_rows()));
    for (ColumnId c = 0; c < stats_->num_columns(); ++c) {
      const ColumnStats& column = stats_->column(c);
      hash = FingerprintMix(hash, static_cast<uint64_t>(column.min_value));
      hash = FingerprintMix(hash, static_cast<uint64_t>(column.max_value));
      hash = FingerprintMix(hash,
                            static_cast<uint64_t>(column.distinct_estimate));
      hash = FingerprintMixDouble(hash, column.density);
      hash = FingerprintMix(hash,
                            static_cast<uint64_t>(column.sampled_rows));
      for (const int64_t bucket : column.histogram) {
        hash = FingerprintMix(hash, static_cast<uint64_t>(bucket));
      }
    }
  }
  return hash;
}

double CostModel::StatsToCost(const AccessStats& stats) const {
  return static_cast<double>(stats.sequential_pages) * params_.seq_page_cost +
         static_cast<double>(stats.random_pages) * params_.random_page_cost +
         static_cast<double>(stats.written_pages) * params_.write_page_cost +
         static_cast<double>(stats.rows_examined) * params_.cpu_tuple_cost;
}

}  // namespace cdpd
