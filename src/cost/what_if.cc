#include "cost/what_if.h"

#include <cassert>

namespace cdpd {

namespace {

/// Erases the literal values of a statement, keeping only the shape
/// that determines its estimated cost.
BoundStatement ShapeOf(const BoundStatement& statement) {
  BoundStatement shape = statement;
  shape.where_value = 0;
  shape.set_value = 0;
  if (shape.type == StatementType::kSelectRange) {
    // Range cost depends only on the width; normalize the position.
    shape.where_hi = shape.where_hi - shape.where_lo;
    shape.where_lo = 0;
  }
  if (shape.type == StatementType::kInsert) {
    shape.insert_values.assign(shape.insert_values.size(), 0);
  }
  return shape;
}

}  // namespace

WhatIfEngine::WhatIfEngine(const CostModel* model,
                           std::span<const BoundStatement> statements,
                           std::vector<Segment> segments)
    : model_(model), segments_(std::move(segments)) {
  profiles_.resize(segments_.size());
  cache_.resize(segments_.size());
  for (size_t s = 0; s < segments_.size(); ++s) {
    const Segment& segment = segments_[s];
    assert(segment.begin <= segment.end && segment.end <= statements.size());
    std::vector<ProfileEntry>& profile = profiles_[s];
    for (size_t i = segment.begin; i < segment.end; ++i) {
      const BoundStatement shape = ShapeOf(statements[i]);
      bool found = false;
      for (ProfileEntry& entry : profile) {
        if (entry.representative == shape) {
          ++entry.count;
          found = true;
          break;
        }
      }
      if (!found) profile.push_back(ProfileEntry{shape, 1});
    }
  }
}

double WhatIfEngine::SegmentCost(size_t segment,
                                 const Configuration& config) const {
  assert(segment < segments_.size());
  auto& memo = cache_[segment];
  if (auto it = memo.find(config); it != memo.end()) return it->second;
  double cost = 0.0;
  for (const ProfileEntry& entry : profiles_[segment]) {
    cost += static_cast<double>(entry.count) *
            model_->StatementCost(entry.representative, config);
    ++costings_;
  }
  memo.emplace(config, cost);
  return cost;
}

double WhatIfEngine::RangeCost(size_t begin, size_t end,
                               const Configuration& config) const {
  assert(begin <= end && end <= segments_.size());
  double cost = 0.0;
  for (size_t s = begin; s < end; ++s) {
    cost += SegmentCost(s, config);
  }
  return cost;
}

}  // namespace cdpd
