#include "cost/what_if.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cmath>
#include <optional>
#include <string>

namespace cdpd {

namespace {

/// Erases the literal values of a statement, keeping only the shape
/// that determines its estimated cost.
BoundStatement ShapeOf(const BoundStatement& statement) {
  BoundStatement shape = statement;
  shape.where_value = 0;
  shape.set_value = 0;
  if (shape.type == StatementType::kSelectRange) {
    // Range cost depends only on the width; normalize the position.
    shape.where_hi = shape.where_hi - shape.where_lo;
    shape.where_lo = 0;
  }
  if (shape.type == StatementType::kInsert) {
    shape.insert_values.assign(shape.insert_values.size(), 0);
  }
  return shape;
}

/// 64-bit FNV-1a identity of a literal-erased statement shape — the
/// statement half of the persistent cost cache's key. Hashes every
/// cost-relevant field of the (already normalized) shape.
uint64_t ShapeFingerprint(const BoundStatement& shape) {
  constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
  uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xff;
      hash *= kFnvPrime;
    }
  };
  mix(static_cast<uint64_t>(shape.type));
  mix(static_cast<uint64_t>(shape.select_column));
  mix(static_cast<uint64_t>(shape.where_column));
  mix(static_cast<uint64_t>(shape.where_lo));
  mix(static_cast<uint64_t>(shape.where_hi));
  mix(static_cast<uint64_t>(shape.set_column));
  mix(shape.insert_values.size());
  return hash;
}

}  // namespace

void CostMatrix::Finalize() {
  const size_t n = num_segments_;
  const size_t m = num_configs_;
  exec_prefix_.assign((n + 1) * m, 0.0);
  for (size_t s = 0; s < n; ++s) {
    const double* row = exec_.data() + s * m;
    const double* prefix = exec_prefix_.data() + s * m;
    double* next = exec_prefix_.data() + (s + 1) * m;
    for (size_t c = 0; c < m; ++c) next[c] = prefix[c] + row[c];
  }
  trans_transposed_.assign(m * m, 0.0);
  for (size_t from = 0; from < m; ++from) {
    const double* row = trans_.data() + from * m;
    for (size_t to = 0; to < m; ++to) {
      trans_transposed_[to * m + from] = row[to];
    }
  }
}

WhatIfEngine::WhatIfEngine(const CostModel* model,
                           std::span<const BoundStatement> statements,
                           std::vector<Segment> segments)
    : model_(model), segments_(std::move(segments)) {
  profiles_.resize(segments_.size());
  for (size_t s = 0; s < segments_.size(); ++s) {
    const Segment& segment = segments_[s];
    assert(segment.begin <= segment.end && segment.end <= statements.size());
    std::vector<ProfileEntry>& profile = profiles_[s];
    for (size_t i = segment.begin; i < segment.end; ++i) {
      const BoundStatement shape = ShapeOf(statements[i]);
      bool found = false;
      for (ProfileEntry& entry : profile) {
        if (entry.representative == shape) {
          ++entry.count;
          found = true;
          break;
        }
      }
      if (!found) {
        profile.push_back(ProfileEntry{shape, 1, ShapeFingerprint(shape)});
      }
    }
  }
  // Workload-wide profile: the per-segment profiles merged by
  // fingerprint (with a full equality check so a fingerprint collision
  // cannot merge distinct shapes), keeping first-appearance order —
  // segment order, then within-segment profile order — so the profile
  // is deterministic for a given statement sequence.
  std::unordered_map<uint64_t, std::vector<size_t>> by_fingerprint;
  for (const std::vector<ProfileEntry>& profile : profiles_) {
    for (const ProfileEntry& entry : profile) {
      bool merged = false;
      for (const size_t at : by_fingerprint[entry.fingerprint]) {
        if (workload_profile_[at].representative == entry.representative) {
          workload_profile_[at].count += entry.count;
          merged = true;
          break;
        }
      }
      if (!merged) {
        by_fingerprint[entry.fingerprint].push_back(workload_profile_.size());
        workload_profile_.push_back(WorkloadShape{
            entry.representative, entry.count, entry.fingerprint});
      }
    }
  }
}

double WhatIfEngine::ShapeCost(const WorkloadShape& shape,
                               const Configuration& config) const {
  costings_.fetch_add(1, std::memory_order_relaxed);
  if (Counter* sink = metrics_costings_.load(std::memory_order_relaxed)) {
    sink->Add(1);
  }
  return model_->StatementCost(shape.representative, config);
}

double WhatIfEngine::ComputeSegmentCost(size_t segment,
                                        const Configuration& config) const {
  Histogram* const latency_sink =
      metrics_segment_cost_us_.load(std::memory_order_relaxed);
  const auto start = latency_sink != nullptr
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  double cost = 0.0;
  int64_t costed = 0;
  for (const ProfileEntry& entry : profiles_[segment]) {
    cost += static_cast<double>(entry.count) *
            model_->StatementCost(entry.representative, config);
    ++costed;
  }
  costings_.fetch_add(costed, std::memory_order_relaxed);
  if (Counter* sink = metrics_costings_.load(std::memory_order_relaxed)) {
    sink->Add(costed);
  }
  if (latency_sink != nullptr) {
    latency_sink->Record(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - start)
                             .count());
  }
  return cost;
}

double WhatIfEngine::CachedSegmentCost(size_t segment,
                                       const Configuration& config,
                                       uint64_t config_mask, CostCache* cache,
                                       ResourceTracker* tracker) const {
  double cost = 0.0;
  int64_t costed = 0;
  for (const ProfileEntry& entry : profiles_[segment]) {
    double statement_cost = 0.0;
    if (!cache->Lookup(entry.fingerprint, config_mask, &statement_cost)) {
      statement_cost = model_->StatementCost(entry.representative, config);
      cache->Insert(entry.fingerprint, config_mask, statement_cost, tracker);
      ++costed;
    }
    // Summing in profile order, like ComputeSegmentCost: a cached
    // value is the exact double a miss computed, so the assembled cell
    // is bit-identical however the hit/miss pattern falls.
    cost += static_cast<double>(entry.count) * statement_cost;
  }
  if (costed > 0) {
    costings_.fetch_add(costed, std::memory_order_relaxed);
    if (Counter* sink = metrics_costings_.load(std::memory_order_relaxed)) {
      sink->Add(costed);
    }
  }
  return cost;
}

double WhatIfEngine::SegmentCost(size_t segment,
                                 const Configuration& config) const {
  assert(segment < segments_.size());
  CacheShard& shard = ShardFor(segment, config);
  // The shard lock is held across the (pure) computation so each
  // distinct (segment, config) pair is costed exactly once — costings()
  // is then independent of the thread count. Distinct pairs land on
  // distinct shards with high probability, so concurrent probes still
  // proceed in parallel.
  std::lock_guard<std::mutex> lock(shard.mu);
  CacheKey key{segment, config};
  if (auto it = shard.memo.find(key); it != shard.memo.end()) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (Counter* sink = metrics_cache_hits_.load(std::memory_order_relaxed)) {
      sink->Add(1);
    }
    return it->second;
  }
  const double cost = ComputeSegmentCost(segment, config);
  shard.memo.emplace(std::move(key), cost);
  return cost;
}

double WhatIfEngine::RangeCost(size_t begin, size_t end,
                               const Configuration& config) const {
  assert(begin <= end && end <= segments_.size());
  double cost = 0.0;
  for (size_t s = begin; s < end; ++s) {
    cost += SegmentCost(s, config);
  }
  return cost;
}

namespace {

/// Lowest-cell-index-wins record of a non-finite cost, so the error a
/// parallel fill reports is the one the serial fill would hit first.
class NonFiniteCell {
 public:
  void Record(size_t cell) {
    int64_t seen = cell_.load(std::memory_order_relaxed);
    const auto mine = static_cast<int64_t>(cell);
    while (seen < 0 || mine < seen) {
      if (cell_.compare_exchange_weak(seen, mine,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }
  /// The offending flattened cell index, or nullopt when all finite.
  std::optional<size_t> cell() const {
    const int64_t cell = cell_.load(std::memory_order_relaxed);
    return cell < 0 ? std::nullopt
                    : std::optional<size_t>(static_cast<size_t>(cell));
  }

 private:
  std::atomic<int64_t> cell_{-1};
};

}  // namespace

Result<CostMatrix> WhatIfEngine::PrecomputeCostMatrix(
    const CandidateSpace& candidates, ThreadPool* pool, Tracer* tracer,
    const Budget* budget, const ProgressFn* progress, Logger* logger,
    CostCache* cost_cache, ResourceTracker* tracker) const {
  const size_t n = segments_.size();
  const size_t m = candidates.size();
  CostMatrix matrix(n, m);
  // The persistent cache is sound only while config masks are exact
  // bijections; with fingerprint masks (universe > 64) it is skipped
  // and the fill runs through the engine memo exactly as before.
  CostCache* cache =
      (cost_cache != nullptr && candidates.exact_masks()) ? cost_cache
                                                          : nullptr;
  if (cache != nullptr) {
    // The token covers everything a cached statement cost depends on:
    // the cost-model state (schema, rows, params, table stats) and the
    // universe that defines the masks' bit assignment.
    uint64_t token = model_->Fingerprint();
    token ^= candidates.universe_fingerprint() * 0x9e3779b97f4a7c15ULL;
    if (token == 0) token = 1;  // 0 is CostCache's never-validated state.
    cache->EnsureValid(token, tracker);
  }
  CDPD_LOG(logger, LogLevel::kInfo, "whatif.precompute.start",
           LogField("segments", n), LogField("configs", m),
           LogField("exec_cells", n * m), LogField("trans_cells", m * m),
           LogField("cost_cache", cache != nullptr));
  NonFiniteCell bad_exec;
  NonFiniteCell bad_trans;
  const auto fill_exec = [&](size_t i) {
    const size_t segment = i / m;
    const size_t config = i % m;
    const double cost =
        cache != nullptr
            ? CachedSegmentCost(segment, candidates[config],
                                candidates.mask(config), cache, tracker)
            : SegmentCost(segment, candidates[config]);
    if (!std::isfinite(cost)) bad_exec.Record(i);
    matrix.MutableExec(segment, config) = cost;
  };
  // EXEC over all (segment, config) pairs: each flattened index writes
  // one disjoint matrix cell, so the fill is race-free and the values
  // are identical for any thread count. With a tracer or progress
  // callback attached the same cells are filled through coarser work
  // shards (one span / one progress update each); either way every
  // cell computes the same value.
  bool complete = true;
  const bool sharded = tracer != nullptr || progress != nullptr;
  if (!sharded) {
    complete = ParallelFor(pool, 0, n * m, fill_exec, budget);
  } else {
    CDPD_TRACE_SPAN(tracer, "whatif.exec_matrix", "whatif",
                    static_cast<int64_t>(n * m));
    const size_t threads = static_cast<size_t>(
        std::max(1, pool == nullptr ? 1 : pool->num_threads()));
    const size_t num_shards =
        std::min(n * m, std::max<size_t>(1, threads * 4));
    const size_t per_shard = (n * m + num_shards - 1) / num_shards;
    std::atomic<size_t> shards_done{0};
    complete = ParallelFor(
        pool, 0, num_shards,
        [&](size_t shard) {
          CDPD_TRACE_SPAN(tracer, "whatif.exec_shard", "whatif",
                          static_cast<int64_t>(shard));
          const size_t lo = shard * per_shard;
          const size_t hi = std::min(n * m, lo + per_shard);
          for (size_t i = lo; i < hi; ++i) fill_exec(i);
          // Reported from whichever worker finishes the shard — the
          // callback contract requires thread safety.
          const size_t done =
              shards_done.fetch_add(1, std::memory_order_relaxed) + 1;
          ReportProgress(progress, "whatif.precompute",
                         static_cast<double>(done) /
                             static_cast<double>(num_shards));
        },
        budget);
  }
  // TRANS over all candidate pairs (pure model arithmetic; no memo).
  {
    CDPD_TRACE_SPAN(tracer, "whatif.trans_matrix", "whatif",
                    static_cast<int64_t>(m * m));
    bool trans_complete = true;
    if (candidates.exact_masks()) {
      // Mask path: TRANS is additive over the created/dropped index
      // sets, so per-universe-index build/drop costs turn each pair
      // into two mask differences summed over set bits. Bits are
      // consumed in ascending (= universe = sorted-index) order — the
      // exact order CostModel::TransitionCost sums the materialized
      // delta in — so the cells are bit-identical to the slow path.
      const size_t u = candidates.num_indexes();
      std::vector<double> build_cost(u, 0.0);
      std::vector<double> drop_cost(u, 0.0);
      for (size_t i = 0; i < u; ++i) {
        build_cost[i] = model_->BuildCost(candidates.universe()[i]);
        drop_cost[i] = model_->DropCost(candidates.universe()[i]);
      }
      const std::vector<uint64_t>& masks = candidates.masks();
      trans_complete = ParallelFor(
          pool, 0, m,
          [&](size_t from) {
            const uint64_t from_mask = masks[from];
            for (size_t to = 0; to < m; ++to) {
              double cost = 0.0;
              if (to != from) {
                const uint64_t to_mask = masks[to];
                for (uint64_t created = to_mask & ~from_mask; created != 0;
                     created &= created - 1) {
                  cost += build_cost[static_cast<size_t>(
                      std::countr_zero(created))];
                }
                for (uint64_t dropped = from_mask & ~to_mask; dropped != 0;
                     dropped &= dropped - 1) {
                  cost += drop_cost[static_cast<size_t>(
                      std::countr_zero(dropped))];
                }
              }
              if (!std::isfinite(cost)) bad_trans.Record(from * m + to);
              matrix.MutableTrans(from, to) = cost;
            }
          },
          budget);
    } else {
      trans_complete = ParallelFor(
          pool, 0, m * m,
          [&](size_t i) {
            const size_t from = i / m;
            const size_t to = i % m;
            const double cost =
                from == to
                    ? 0.0
                    : model_->TransitionCost(candidates[from],
                                             candidates[to]);
            if (!std::isfinite(cost)) bad_trans.Record(i);
            matrix.MutableTrans(from, to) = cost;
          },
          budget);
    }
    complete = complete && trans_complete;
  }
  // A non-finite cost is a corrupt oracle whatever the budget said:
  // report it even when the fill was cut short (the bad cell was
  // actually written, so the error is real, though an interrupted fill
  // may not name the lowest bad cell of the full matrix).
  if (const std::optional<size_t> cell = bad_exec.cell()) {
    const size_t segment = *cell / m;
    const size_t config = *cell % m;
    return Status::Internal(
        "what-if EXEC cost is not finite for segment " +
        std::to_string(segment) + " (statements " +
        std::to_string(segments_[segment].begin) + ".." +
        std::to_string(segments_[segment].end) + "), candidate configuration #" +
        std::to_string(config));
  }
  if (const std::optional<size_t> cell = bad_trans.cell()) {
    return Status::Internal(
        "what-if TRANS cost is not finite for transition from candidate "
        "configuration #" +
        std::to_string(*cell / m) + " to #" + std::to_string(*cell % m));
  }
  matrix.set_complete(complete);
  matrix.Finalize();
  if (!complete) {
    CDPD_LOG(logger, LogLevel::kWarn, "whatif.precompute.interrupted",
             LogField("segments", n), LogField("configs", m));
  }
  CDPD_LOG(logger, LogLevel::kInfo, "whatif.precompute.end",
           LogField("complete", complete),
           LogField("costings", costings()),
           LogField("cache_hits", cache_hits()));
  return matrix;
}

void WhatIfEngine::SetMetrics(MetricsRegistry* registry) const {
  if constexpr (!kMetricsCompiledIn) return;
  if (registry == nullptr) {
    metrics_costings_.store(nullptr, std::memory_order_relaxed);
    metrics_cache_hits_.store(nullptr, std::memory_order_relaxed);
    metrics_segment_cost_us_.store(nullptr, std::memory_order_relaxed);
    return;
  }
  // The registry hands out stable pointers, so concurrent attaches of
  // the same registry store identical values.
  metrics_costings_.store(registry->counter("whatif.costings"),
                          std::memory_order_relaxed);
  metrics_cache_hits_.store(registry->counter("whatif.cache_hits"),
                            std::memory_order_relaxed);
  metrics_segment_cost_us_.store(
      registry->histogram("whatif.segment_cost_us"),
      std::memory_order_relaxed);
}

}  // namespace cdpd
