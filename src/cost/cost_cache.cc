#include "cost/cost_cache.h"

namespace cdpd {

bool CostCache::EnsureValid(uint64_t token, ResourceTracker* tracker) {
  if (token_.load(std::memory_order_acquire) == token) return false;
  // One validator at a time: concurrent EnsureValid calls with the
  // same new token clear once, and a mid-solve token change (two
  // engines over different models sharing one cache) serializes on the
  // sweep rather than interleaving clears with inserts shard by shard.
  std::lock_guard<std::mutex> lock(validate_mu_);
  const uint64_t previous = token_.load(std::memory_order_acquire);
  if (previous == token) return false;
  int64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    dropped += static_cast<int64_t>(shard.map.size());
    shard.map.clear();
  }
  entries_.fetch_sub(dropped, std::memory_order_relaxed);
  if (dropped > 0) {
    evictions_.fetch_add(dropped, std::memory_order_relaxed);
    if (tracker != nullptr) {
      tracker->ReleaseUpTo(MemComponent::kCostCache, dropped * kEntryBytes);
    }
  }
  // The first validation of a never-validated cache (token 0 is
  // reserved for that state) starts empty — nothing stale was dropped.
  if (previous != 0) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  token_.store(token, std::memory_order_release);
  return true;
}

bool CostCache::Lookup(uint64_t statement_fp, uint64_t config_mask,
                       double* cost) const {
  const Key key{statement_fp, config_mask};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  *cost = it->second;
  return true;
}

void CostCache::EvictForSpace(int64_t needed, ResourceTracker* tracker) {
  // Coarse shard-granularity eviction: sweep shards in a deterministic
  // rotating order — each episode resumes where the last one stopped,
  // so sustained cap pressure cycles through all shards instead of
  // repeatedly clearing the neighbours of whichever shard the hot keys
  // hash to (the old key-derived start starved distant shards, letting
  // their entries sit forever while near ones churned). Statement
  // costs are cheap to recompute, so over-eviction only costs future
  // misses.
  int64_t dropped_total = 0;
  for (size_t step = 0; step < kShards; ++step) {
    if (ApproxBytes() + needed <= max_bytes_) break;
    Shard& shard =
        shards_[sweep_cursor_.fetch_add(1, std::memory_order_relaxed) %
                kShards];
    int64_t dropped = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      dropped = static_cast<int64_t>(shard.map.size());
      shard.map.clear();
    }
    if (dropped > 0) {
      entries_.fetch_sub(dropped, std::memory_order_relaxed);
      evictions_.fetch_add(dropped, std::memory_order_relaxed);
      dropped_total += dropped;
    }
  }
  // Return the evicted entries' reservation to the inserting solve —
  // exactly once, at the end of the sweep, clamped to what this
  // tracker is actually carrying (entries charged by earlier trackers
  // must not drive the gauge negative).
  if (dropped_total > 0 && tracker != nullptr) {
    tracker->ReleaseUpTo(MemComponent::kCostCache,
                         dropped_total * kEntryBytes);
  }
}

bool CostCache::Insert(uint64_t statement_fp, uint64_t config_mask,
                       double cost, ResourceTracker* tracker) {
  const Key key{statement_fp, config_mask};
  Shard& shard = ShardFor(key);
  {
    // Fast path: overwrite in place (no growth, no charge).
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second = cost;
      return true;
    }
  }
  if (max_bytes_ > 0 && ApproxBytes() + kEntryBytes > max_bytes_) {
    EvictForSpace(kEntryBytes, tracker);
    if (ApproxBytes() + kEntryBytes > max_bytes_) return false;
  }
  // Charge the solve's budget before growing; a refusal trips the
  // tracker's limit flag (anytime degradation) and skips the insert.
  if (tracker != nullptr &&
      !tracker->TryReserve(MemComponent::kCostCache, kEntryBytes)) {
    return false;
  }
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    inserted = shard.map.emplace(key, cost).second;
    if (!inserted) shard.map[key] = cost;
  }
  if (inserted) {
    entries_.fetch_add(1, std::memory_order_relaxed);
  } else if (tracker != nullptr) {
    // Lost an insert race: the entry was already charged by the
    // winner; return this call's reservation.
    tracker->Release(MemComponent::kCostCache, kEntryBytes);
  }
  return true;
}

void CostCache::PublishTo(MetricsRegistry* registry) const {
  if constexpr (!kMetricsCompiledIn) return;
  if (registry == nullptr) return;
  registry->gauge("cost_cache.entries")->Set(entries());
  registry->gauge("cost_cache.bytes")->Set(ApproxBytes());
  registry->gauge("cost_cache.invalidations")->Set(invalidations());
}

}  // namespace cdpd
