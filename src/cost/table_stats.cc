#include "cost/table_stats.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace cdpd {

double ColumnStats::RangeSelectivity(Value lo, Value hi) const {
  if (lo > hi || sampled_rows == 0 || histogram.empty()) return 0.0;
  if (hi < min_value || lo > max_value) return 0.0;
  const Value clamped_lo = std::max(lo, min_value);
  const Value clamped_hi = std::min(hi, max_value);
  const double span =
      static_cast<double>(max_value - min_value) + 1.0;
  const double bucket_width = span / static_cast<double>(histogram.size());
  // Fractional bucket positions of the inclusive bounds.
  const double from =
      static_cast<double>(clamped_lo - min_value) / bucket_width;
  const double to =
      (static_cast<double>(clamped_hi - min_value) + 1.0) / bucket_width;
  double covered = 0.0;
  for (size_t b = 0; b < histogram.size(); ++b) {
    const double bucket_begin = static_cast<double>(b);
    const double bucket_end = bucket_begin + 1.0;
    const double overlap = std::max(
        0.0, std::min(to, bucket_end) - std::max(from, bucket_begin));
    covered += overlap * static_cast<double>(histogram[b]);
  }
  return covered / static_cast<double>(sampled_rows);
}

TableStats TableStats::FromTable(const Table& table, int64_t max_sample_rows,
                                 int32_t buckets) {
  TableStats stats;
  stats.num_rows_ = table.num_rows();
  const int32_t num_columns = table.schema().num_columns();
  stats.columns_.resize(static_cast<size_t>(num_columns));
  if (table.num_rows() == 0) return stats;

  const int64_t stride =
      std::max<int64_t>(1, table.num_rows() / std::max<int64_t>(
                                                  1, max_sample_rows));
  for (int32_t col = 0; col < num_columns; ++col) {
    ColumnStats& column = stats.columns_[static_cast<size_t>(col)];
    // Pass 1: bounds and distincts over the sample.
    std::unordered_set<Value> distinct;
    bool first = true;
    for (RowId row = 0; row < table.num_rows(); row += stride) {
      const Value v = table.GetValue(row, col);
      if (first || v < column.min_value) column.min_value = v;
      if (first || v > column.max_value) column.max_value = v;
      first = false;
      distinct.insert(v);
      ++column.sampled_rows;
    }
    column.distinct_estimate =
        std::max<int64_t>(1, static_cast<int64_t>(distinct.size()));
    column.density = 1.0 / static_cast<double>(column.distinct_estimate);
    // Pass 2: equi-width histogram.
    column.histogram.assign(static_cast<size_t>(std::max(1, buckets)), 0);
    const double span =
        static_cast<double>(column.max_value - column.min_value) + 1.0;
    for (RowId row = 0; row < table.num_rows(); row += stride) {
      const Value v = table.GetValue(row, col);
      auto bucket = static_cast<size_t>(
          static_cast<double>(v - column.min_value) / span *
          static_cast<double>(column.histogram.size()));
      bucket = std::min(bucket, column.histogram.size() - 1);
      ++column.histogram[bucket];
    }
  }
  return stats;
}

double TableStats::ExpectedEqMatches(ColumnId column) const {
  if (column < 0 || column >= num_columns()) return 0.0;
  return columns_[static_cast<size_t>(column)].density *
         static_cast<double>(num_rows_);
}

double TableStats::ExpectedRangeMatches(ColumnId column, Value lo,
                                        Value hi) const {
  if (column < 0 || column >= num_columns()) return 0.0;
  return columns_[static_cast<size_t>(column)].RangeSelectivity(lo, hi) *
         static_cast<double>(num_rows_);
}

std::string TableStats::ToString(const Schema& schema) const {
  std::string out = "table stats (" + std::to_string(num_rows_) + " rows):\n";
  for (int32_t col = 0; col < num_columns(); ++col) {
    const ColumnStats& column = columns_[static_cast<size_t>(col)];
    out += "  " + schema.column_name(col) + ": range [" +
           std::to_string(column.min_value) + ", " +
           std::to_string(column.max_value) + "], ~" +
           std::to_string(column.distinct_estimate) + " distinct, density " +
           FormatDouble(column.density, 6) + "\n";
  }
  return out;
}

}  // namespace cdpd
