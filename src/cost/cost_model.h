#ifndef CDPD_COST_COST_MODEL_H_
#define CDPD_COST_COST_MODEL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "catalog/configuration.h"
#include "cost/table_stats.h"
#include "storage/access_stats.h"
#include "storage/schema.h"
#include "workload/statement.h"

namespace cdpd {

/// Tunable unit costs of the analytic cost model. The defaults mirror
/// the classic disk-based ratios (random I/O ~4x sequential I/O); the
/// calibration helper (cost/calibration.h) can re-derive them from
/// measured engine timings.
struct CostParams {
  /// Cost of reading one page sequentially.
  double seq_page_cost = 1.0;
  /// Cost of reading one page at a random position.
  double random_page_cost = 4.0;
  /// Cost of writing one page.
  double write_page_cost = 1.0;
  /// CPU cost of examining one tuple.
  double cpu_tuple_cost = 0.001;
  /// CPU cost per row * log2(rows) during an index-build sort.
  double sort_cpu_factor = 0.001;
  /// Pages written when an index is dropped (catalog + free-space).
  double drop_pages = 8.0;

  bool operator==(const CostParams&) const = default;
};

/// How a point predicate is evaluated under a configuration.
enum class AccessPathKind {
  /// Sequential scan of the heap.
  kTableScan,
  /// B+-tree descent on an index whose first key column is the
  /// predicate column; the selected column is in the key (covering).
  kIndexSeek,
  /// B+-tree descent, then random heap fetches for the selected column.
  kIndexSeekWithFetch,
  /// Sequential scan of an index leaf level that contains both the
  /// predicate and the selected column (covering, but no seek).
  kCoveringScan,
};

std::string_view AccessPathKindToString(AccessPathKind kind);

/// The access path the optimizer picked for a statement, with its
/// estimated cost. `index` is empty for kTableScan.
struct AccessPathChoice {
  AccessPathKind kind = AccessPathKind::kTableScan;
  std::optional<IndexDef> index;
  double cost = 0.0;
};

/// The analytic what-if cost model: prices statements (EXEC), design
/// transitions (TRANS) and configurations (SIZE) over a table described
/// by row count and value-domain statistics — without touching physical
/// structures, exactly like the hypothetical-index interface of a
/// design advisor.
///
/// The executor (engine/executor.h) uses ChooseAccessPath() so the plan
/// that is actually run is the plan that was priced.
class CostModel {
 public:
  /// `domain_size`: number of distinct values a column draws from
  /// (uniform); the paper uses [0, 500000). Drives match estimates.
  CostModel(Schema schema, int64_t num_rows, int64_t domain_size,
            CostParams params = CostParams());

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t domain_size() const { return domain_size_; }
  const CostParams& params() const { return params_; }

  /// Attaches measured per-column statistics (not owned; may be
  /// nullptr to detach). When set, selectivity estimates use column
  /// densities and histograms instead of the uniform-domain
  /// assumption.
  void SetTableStats(const TableStats* stats) { stats_ = stats; }
  const TableStats* table_stats() const { return stats_; }

  /// Expected matching rows of a point predicate (uniform assumption).
  double ExpectedMatches() const;

  /// Expected matching rows of an inclusive range predicate
  /// [lo, hi] (uniform assumption, clamped to the table size).
  double ExpectedRangeMatches(Value lo, Value hi) const;

  /// Column-aware variants: use attached TableStats when present,
  /// falling back to the uniform estimates above.
  double ExpectedMatchesFor(ColumnId column) const;
  double ExpectedRangeMatchesFor(ColumnId column, Value lo, Value hi) const;

  /// Pages of the heap.
  int64_t HeapPagesCount() const;

  /// EXEC(S, C): estimated cost of one statement under `config`.
  double StatementCost(const BoundStatement& statement,
                       const Configuration& config) const;

  /// The cheapest access path for the point predicate of `statement`
  /// (SELECT or UPDATE row location) under `config`.
  AccessPathChoice ChooseAccessPath(const BoundStatement& statement,
                                    const Configuration& config) const;

  /// TRANS(from, to): cost of creating to\from and dropping from\to.
  double TransitionCost(const Configuration& from,
                        const Configuration& to) const;

  /// Cost of materializing one index (scan + sort + write).
  double BuildCost(const IndexDef& def) const;

  /// Cost of dropping one index.
  double DropCost(const IndexDef& def) const;

  /// SIZE(C) in pages, checked against the space bound b.
  int64_t ConfigurationSizePages(const Configuration& config) const;

  /// Converts measured engine counters to the model's cost units, so
  /// measured and estimated workload costs are directly comparable.
  double StatsToCost(const AccessStats& stats) const;

  /// 64-bit identity of everything a cached what-if cost depends on:
  /// the schema, the row count, the value domain, the cost parameters,
  /// and the content of any attached TableStats. The persistent
  /// CostCache (cost/cost_cache.h) uses this as its validity token, so
  /// a catalog or table-stats change invalidates cached costs instead
  /// of serving stale ones.
  uint64_t Fingerprint() const;

 private:
  double SelectCost(ColumnId select_column, ColumnId where_column,
                    double matches, const Configuration& config,
                    AccessPathChoice* choice) const;
  double PathCost(AccessPathKind kind, const IndexDef& index,
                  double matches) const;
  double MaintenanceCost(const BoundStatement& statement,
                         const Configuration& config) const;

  Schema schema_;
  int64_t num_rows_;
  int64_t domain_size_;
  CostParams params_;
  const TableStats* stats_ = nullptr;  // Optional, not owned.
};

}  // namespace cdpd

#endif  // CDPD_COST_COST_MODEL_H_
