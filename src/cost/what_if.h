#ifndef CDPD_COST_WHAT_IF_H_
#define CDPD_COST_WHAT_IF_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "catalog/configuration.h"
#include "common/budget.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/progress.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "cost/cost_model.h"
#include "workload/workload.h"

namespace cdpd {

/// Dense EXEC/TRANS lookup tables over an *indexed* candidate set —
/// the read-only phase the graph solvers consume after
/// WhatIfEngine::PrecomputeCostMatrix. Once built, every cost probe of
/// a solver inner loop is a plain array read: no hashing, no locks, no
/// shared mutable state.
class CostMatrix {
 public:
  CostMatrix() = default;
  CostMatrix(size_t num_segments, size_t num_configs)
      : num_segments_(num_segments),
        num_configs_(num_configs),
        exec_(num_segments * num_configs, 0.0),
        trans_(num_configs * num_configs, 0.0) {}

  size_t num_segments() const { return num_segments_; }
  size_t num_configs() const { return num_configs_; }

  /// Bytes the EXEC + TRANS tables of an (n x m) matrix occupy — what a
  /// solver charges to MemComponent::kCostMatrix before the precompute.
  static int64_t EstimateBytes(size_t num_segments, size_t num_configs) {
    return static_cast<int64_t>(
        (num_segments * num_configs + num_configs * num_configs) *
        sizeof(double));
  }

  /// EXEC(S_segment, candidates[config]).
  double Exec(size_t segment, size_t config) const {
    return exec_[segment * num_configs_ + config];
  }
  /// EXEC(S_begin ∪ ... ∪ S_{end-1}, candidates[config]), summed in
  /// segment order (bit-identical to WhatIfEngine::RangeCost).
  double ExecRange(size_t begin, size_t end, size_t config) const {
    double cost = 0.0;
    for (size_t s = begin; s < end; ++s) cost += Exec(s, config);
    return cost;
  }
  /// TRANS(candidates[from], candidates[to]).
  double Trans(size_t from, size_t to) const {
    return trans_[from * num_configs_ + to];
  }

  double& MutableExec(size_t segment, size_t config) {
    return exec_[segment * num_configs_ + config];
  }
  double& MutableTrans(size_t from, size_t to) {
    return trans_[from * num_configs_ + to];
  }

  /// False when a budget expired mid-precompute, leaving some cells
  /// unwritten. An incomplete matrix must not be read — the solvers
  /// check this and report DeadlineExceeded instead of consuming
  /// garbage costs.
  bool complete() const { return complete_; }
  void set_complete(bool complete) { complete_ = complete; }

 private:
  size_t num_segments_ = 0;
  size_t num_configs_ = 0;
  bool complete_ = true;
  std::vector<double> exec_;   // [segment * num_configs + config]
  std::vector<double> trans_;  // [from * num_configs + to]
};

/// The what-if oracle the design optimizers query: EXEC(S_i, C) for
/// workload segments S_i and hypothetical configurations C, plus
/// TRANS(C, C'). Two optimizations make the optimizers fast:
///
///  * per-segment statement *profiles* — a point statement's estimated
///    cost depends only on its shape (type and columns), not on its
///    literal, so a segment of 500 queries collapses into a handful of
///    (shape, count) pairs;
///  * per-(segment, configuration) memoization across the many times
///    the graph algorithms revisit the same node.
///
/// Thread-safe: the memo cache is sharded across kCacheShards maps,
/// each behind its own mutex, and the counters are atomic. A cost is
/// computed exactly once per distinct (segment, configuration) pair —
/// the owning shard's lock is held across the computation — so
/// costings() matches a serial run whatever the thread count. For the
/// hot solver loops, prefer PrecomputeCostMatrix(): it fills the full
/// n × |candidates| EXEC matrix (and the |candidates|² TRANS matrix)
/// in parallel up front, after which the solvers touch only the dense
/// read-only tables.
class WhatIfEngine {
 public:
  /// `model` must outlive the engine. `statements` are copied into the
  /// profiles; `segments` define the stages S_1..S_n.
  WhatIfEngine(const CostModel* model,
               std::span<const BoundStatement> statements,
               std::vector<Segment> segments);

  const CostModel& model() const { return *model_; }
  size_t num_segments() const { return segments_.size(); }
  const std::vector<Segment>& segments() const { return segments_; }

  /// EXEC(S_i, config), memoized. Safe to call concurrently.
  double SegmentCost(size_t segment, const Configuration& config) const;

  /// EXEC(S_begin ∪ ... ∪ S_{end-1}, config) — the merged-segment cost
  /// the sequential-merging heuristic needs. Not memoized (sums the
  /// memoized per-segment costs).
  double RangeCost(size_t begin, size_t end, const Configuration& config) const;

  /// TRANS(from, to), forwarded to the cost model.
  double TransitionCost(const Configuration& from,
                        const Configuration& to) const {
    return model_->TransitionCost(from, to);
  }

  /// Fills the dense EXEC matrix over all (segment, candidate) pairs
  /// and the TRANS matrix over all candidate pairs, fanning the
  /// what-if probes out across `pool` (serial when pool is null). The
  /// memo cache is populated as a side effect, so later SegmentCost
  /// calls on the same pairs are hits. Results are identical for any
  /// thread count, with or without `tracer`: tracing only changes the
  /// fan-out granularity (one span per work shard) and observes
  /// timestamps, never values.
  ///
  /// Every cell is validated with std::isfinite as it is written: a
  /// NaN or infinite cost would silently corrupt the solvers'
  /// shortest-path ordering (their reachability checks only compare
  /// against +inf), so a non-finite probe fails the whole precompute
  /// with an Internal status naming the offending segment/transition
  /// and configuration (the lowest flattened cell index wins, so the
  /// error is deterministic for any thread count).
  ///
  /// `budget` (optional) makes the fill cooperatively interruptible:
  /// on expiry the remaining cells are skipped and the returned matrix
  /// has complete() == false. Cancellation is polled between work
  /// chunks, so mid-precompute Cancel() from another thread is safe.
  ///
  /// `progress` (optional) receives "whatif.precompute" updates as
  /// work shards complete — invoked from worker threads, so the
  /// callback must be thread-safe (see common/progress.h). `logger`
  /// (optional) records precompute start/end events. Like the tracer,
  /// neither perturbs values; attaching progress only switches the
  /// fill to the coarser sharded fan-out tracing already uses.
  Result<CostMatrix> PrecomputeCostMatrix(
      std::span<const Configuration> candidates, ThreadPool* pool = nullptr,
      Tracer* tracer = nullptr, const Budget* budget = nullptr,
      const ProgressFn* progress = nullptr, Logger* logger = nullptr) const;

  /// Mirrors the engine's activity into `registry` — counters
  /// "whatif.costings" / "whatif.cache_hits" and the
  /// "whatif.segment_cost_us" costing-latency histogram. Call before
  /// handing the engine to concurrent solvers; pass nullptr to detach.
  /// Const because it only touches observational state (like the
  /// memo/counter members); no-op when metrics are compiled out.
  void SetMetrics(MetricsRegistry* registry) const;

  /// Number of what-if statement costings performed so far (for the
  /// optimizer-cost experiments: the dominant work unit).
  int64_t costings() const {
    return costings_.load(std::memory_order_relaxed);
  }

  /// Number of SegmentCost calls answered from the memo cache.
  int64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }

 private:
  /// A statement shape with literals erased, plus its multiplicity.
  struct ProfileEntry {
    BoundStatement representative;
    int64_t count = 0;
  };

  /// Memo key: one (segment, configuration) what-if probe.
  struct CacheKey {
    size_t segment;
    Configuration config;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const {
      const size_t h = ConfigurationHash()(key.config);
      return h ^ (key.segment + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    }
  };
  struct CacheShard {
    std::mutex mu;
    std::unordered_map<CacheKey, double, CacheKeyHash> memo;
  };
  static constexpr size_t kCacheShards = 64;

  CacheShard& ShardFor(size_t segment, const Configuration& config) const {
    return shards_[CacheKeyHash()(CacheKey{segment, config}) % kCacheShards];
  }

  /// The uncached cost computation (pure; reads only immutable state).
  double ComputeSegmentCost(size_t segment, const Configuration& config) const;

  const CostModel* model_;
  std::vector<Segment> segments_;
  std::vector<std::vector<ProfileEntry>> profiles_;  // Per segment.
  mutable std::array<CacheShard, kCacheShards> shards_;
  mutable std::atomic<int64_t> costings_{0};
  mutable std::atomic<int64_t> cache_hits_{0};
  // Optional metric sinks (null until SetMetrics). Set before the
  // solvers start probing; the probes only read the pointers.
  mutable Counter* metrics_costings_ = nullptr;
  mutable Counter* metrics_cache_hits_ = nullptr;
  mutable Histogram* metrics_segment_cost_us_ = nullptr;
};

}  // namespace cdpd

#endif  // CDPD_COST_WHAT_IF_H_
