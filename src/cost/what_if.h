#ifndef CDPD_COST_WHAT_IF_H_
#define CDPD_COST_WHAT_IF_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "advisor/candidate_space.h"
#include "catalog/configuration.h"
#include "common/budget.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/progress.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "cost/cost_cache.h"
#include "cost/cost_model.h"
#include "workload/workload.h"

namespace cdpd {

/// One literal-erased statement shape aggregated over the *whole*
/// workload: the representative statement, its total multiplicity
/// across every segment, and its 64-bit fingerprint (the persistent
/// cost cache's statement key). Because every segment's EXEC cost is a
/// nonnegative-weighted sum of per-shape costs, any pointwise
/// inequality over these shapes transfers to every segment — the fact
/// dominance pruning (advisor/dominance.h) is built on.
struct WorkloadShape {
  BoundStatement representative;
  int64_t count = 0;
  uint64_t fingerprint = 0;
};

/// Dense EXEC/TRANS lookup tables over a pinned CandidateSpace —
/// the read-only phase the graph solvers consume after
/// WhatIfEngine::PrecomputeCostMatrix. Once built, every cost probe of
/// a solver inner loop is a plain array read: no hashing, no locks, no
/// shared mutable state. Configurations are addressed by ConfigId
/// only; the solvers materialize Configuration objects from the space
/// at the API boundary (the returned schedule), never inside the DP.
///
/// The tables are stored structure-of-arrays: the EXEC matrix row-major
/// by segment, a per-config prefix-sum table for O(1) range sums, and
/// the TRANS matrix in both orientations so a relaxation sweep over
/// predecessors reads one contiguous row (TransInto) instead of a
/// stride-m column.
class CostMatrix {
 public:
  CostMatrix() = default;
  CostMatrix(size_t num_segments, size_t num_configs)
      : num_segments_(num_segments),
        num_configs_(num_configs),
        exec_(num_segments * num_configs, 0.0),
        trans_(num_configs * num_configs, 0.0) {}

  size_t num_segments() const { return num_segments_; }
  size_t num_configs() const { return num_configs_; }

  /// Bytes the EXEC + prefix + TRANS (both orientations) tables of an
  /// (n x m) matrix occupy — what a solver charges to
  /// MemComponent::kCostMatrix before the precompute.
  static int64_t EstimateBytes(size_t num_segments, size_t num_configs) {
    return static_cast<int64_t>(
        (num_segments * num_configs +              // EXEC
         (num_segments + 1) * num_configs +        // prefix sums
         2 * num_configs * num_configs) *          // TRANS + transposed
        sizeof(double));
  }

  /// EXEC(S_segment, candidates[config]).
  double Exec(size_t segment, size_t config) const {
    return exec_[segment * num_configs_ + config];
  }
  /// EXEC(S_begin ∪ ... ∪ S_{end-1}, candidates[config]), computed as
  /// a difference of two precomputed per-config prefix sums (built by
  /// Finalize()) — O(1) whatever the range width. Equal to the
  /// segment-order forward sum up to floating-point re-association;
  /// every caller that reports a schedule cost recomputes the total
  /// through EvaluateScheduleCost, so the rounding difference never
  /// reaches a reported cost.
  double ExecRange(size_t begin, size_t end, size_t config) const {
    return exec_prefix_[end * num_configs_ + config] -
           exec_prefix_[begin * num_configs_ + config];
  }
  /// TRANS(candidates[from], candidates[to]).
  double Trans(size_t from, size_t to) const {
    return trans_[from * num_configs_ + to];
  }
  /// Contiguous row of transition costs *into* `to`: TransInto(to)[p]
  /// == Trans(p, to). This is the orientation the relaxation inner
  /// loops sweep (for a fixed destination, scan all predecessors), so
  /// the scan is a unit-stride read instead of a stride-m gather.
  const double* TransInto(size_t to) const {
    return trans_transposed_.data() + to * num_configs_;
  }

  double& MutableExec(size_t segment, size_t config) {
    return exec_[segment * num_configs_ + config];
  }
  double& MutableTrans(size_t from, size_t to) {
    return trans_[from * num_configs_ + to];
  }

  /// Builds the derived SoA tables (per-config EXEC prefix sums and
  /// the transposed TRANS matrix) from the raw cells. Must be called
  /// after the fill and before ExecRange/TransInto; PrecomputeCostMatrix
  /// does this, so only hand-built matrices (tests) call it directly.
  void Finalize();

  /// False when a budget expired mid-precompute, leaving some cells
  /// unwritten. An incomplete matrix must not be read — the solvers
  /// check this and report DeadlineExceeded instead of consuming
  /// garbage costs.
  bool complete() const { return complete_; }
  void set_complete(bool complete) { complete_ = complete; }

 private:
  size_t num_segments_ = 0;
  size_t num_configs_ = 0;
  bool complete_ = true;
  std::vector<double> exec_;   // [segment * num_configs + config]
  std::vector<double> trans_;  // [from * num_configs + to]
  // Derived by Finalize():
  // exec_prefix_[(s) * m + c] = sum of exec over segments [0, s).
  std::vector<double> exec_prefix_;
  std::vector<double> trans_transposed_;  // [to * num_configs + from]
};

/// The what-if oracle the design optimizers query: EXEC(S_i, C) for
/// workload segments S_i and hypothetical configurations C, plus
/// TRANS(C, C'). Two optimizations make the optimizers fast:
///
///  * per-segment statement *profiles* — a point statement's estimated
///    cost depends only on its shape (type and columns), not on its
///    literal, so a segment of 500 queries collapses into a handful of
///    (shape, count) pairs, each carrying a 64-bit shape fingerprint;
///  * per-(segment, configuration) memoization across the many times
///    the graph algorithms revisit the same node.
///
/// Thread-safe: the memo cache is sharded across kCacheShards maps,
/// each behind its own mutex, and the counters are atomic. A cost is
/// computed exactly once per distinct (segment, configuration) pair —
/// the owning shard's lock is held across the computation — so
/// costings() matches a serial run whatever the thread count. For the
/// hot solver loops, prefer PrecomputeCostMatrix(): it fills the full
/// n × |candidates| EXEC matrix (and the |candidates|² TRANS matrix)
/// in parallel up front, after which the solvers touch only the dense
/// read-only tables.
class WhatIfEngine {
 public:
  /// `model` must outlive the engine. `statements` are copied into the
  /// profiles; `segments` define the stages S_1..S_n.
  WhatIfEngine(const CostModel* model,
               std::span<const BoundStatement> statements,
               std::vector<Segment> segments);

  const CostModel& model() const { return *model_; }
  size_t num_segments() const { return segments_.size(); }
  const std::vector<Segment>& segments() const { return segments_; }

  /// The workload-wide shape profile: every distinct literal-erased
  /// statement shape with its total multiplicity, in first-appearance
  /// (= statement) order. EXEC(S_i, C) is, for every segment i, a
  /// nonnegative-weighted sum of StatementCost over a subset of these
  /// shapes — dominance pruning probes them instead of the full n x m
  /// EXEC matrix, so its cost is |shapes| x m costings however long
  /// the statement sequence is.
  const std::vector<WorkloadShape>& workload_profile() const {
    return workload_profile_;
  }

  /// StatementCost(shape.representative, config), counted as one
  /// what-if costing (it is one model probe, same as the profile
  /// entries behind SegmentCost). Not memoized — callers (dominance
  /// pruning) probe each (shape, config) pair once.
  double ShapeCost(const WorkloadShape& shape,
                   const Configuration& config) const;

  /// EXEC(S_i, config), memoized. Safe to call concurrently.
  double SegmentCost(size_t segment, const Configuration& config) const;

  /// EXEC(S_begin ∪ ... ∪ S_{end-1}, config) — the merged-segment cost
  /// the sequential-merging heuristic needs. Not memoized (sums the
  /// memoized per-segment costs).
  double RangeCost(size_t begin, size_t end, const Configuration& config) const;

  /// TRANS(from, to), forwarded to the cost model.
  double TransitionCost(const Configuration& from,
                        const Configuration& to) const {
    return model_->TransitionCost(from, to);
  }

  /// Fills the dense EXEC matrix over all (segment, ConfigId) pairs
  /// and the TRANS matrix over all ConfigId pairs of the pinned
  /// `candidates` space, fanning the what-if probes out across `pool`
  /// (serial when pool is null), then finalizes the SoA tables (prefix
  /// sums, transposed TRANS). This is the single enumeration entry
  /// point: the solvers never cost materialized Configuration vectors.
  /// Results are identical for any thread count, with or without
  /// `tracer`: tracing only changes the fan-out granularity (one span
  /// per work shard) and observes timestamps, never values.
  ///
  /// With exact masks (candidates.exact_masks()), the TRANS matrix is
  /// computed additively from per-universe-index build/drop costs via
  /// mask arithmetic — O(popcount) per pair, no Configuration diffs —
  /// summing the per-index terms in universe (= sorted) order, which is
  /// the exact summation order of CostModel::TransitionCost, so the
  /// cells are bit-identical to the materialized path.
  ///
  /// Every cell is validated with std::isfinite as it is written: a
  /// NaN or infinite cost would silently corrupt the solvers'
  /// shortest-path ordering (their reachability checks only compare
  /// against +inf), so a non-finite probe fails the whole precompute
  /// with an Internal status naming the offending segment/transition
  /// and configuration (the lowest flattened cell index wins, so the
  /// error is deterministic for any thread count).
  ///
  /// `budget` (optional) makes the fill cooperatively interruptible:
  /// on expiry the remaining cells are skipped and the returned matrix
  /// has complete() == false. Cancellation is polled between work
  /// chunks, so mid-precompute Cancel() from another thread is safe.
  ///
  /// `progress` (optional) receives "whatif.precompute" updates as
  /// work shards complete — invoked from worker threads, so the
  /// callback must be thread-safe (see common/progress.h). `logger`
  /// (optional) records precompute start/end events. Like the tracer,
  /// neither perturbs values; attaching progress only switches the
  /// fill to the coarser sharded fan-out tracing already uses.
  ///
  /// `cost_cache` (optional) is the persistent cross-solve cache: EXEC
  /// cells are then assembled from per-(statement fingerprint, config
  /// mask) entries — looked up before costing, inserted after — so a
  /// warm precompute over an unchanged model answers essentially every
  /// probe from the cache. The cache is validated first against a
  /// token derived from CostModel::Fingerprint() and the space's
  /// universe fingerprint, and is silently skipped when
  /// candidates.exact_masks() is false (fingerprint masks would make
  /// keying unsound). `tracker` (optional) charges cache growth to
  /// MemComponent::kCostCache; a refused reservation skips the insert
  /// and trips the solve's memory limit (see cost/cost_cache.h).
  /// Cached and uncached fills produce bit-identical matrices.
  Result<CostMatrix> PrecomputeCostMatrix(
      const CandidateSpace& candidates, ThreadPool* pool = nullptr,
      Tracer* tracer = nullptr, const Budget* budget = nullptr,
      const ProgressFn* progress = nullptr, Logger* logger = nullptr,
      CostCache* cost_cache = nullptr,
      ResourceTracker* tracker = nullptr) const;

  /// Mirrors the engine's activity into `registry` — counters
  /// "whatif.costings" / "whatif.cache_hits" and the
  /// "whatif.segment_cost_us" costing-latency histogram. Pass nullptr
  /// to detach. Safe to call concurrently with probes and with other
  /// SetMetrics calls (the sink pointers are atomic): an engine shared
  /// by concurrent Solve() calls over the same registry — the serving
  /// path — is race-free. Const because it only touches observational
  /// state (like the memo/counter members); no-op when metrics are
  /// compiled out.
  void SetMetrics(MetricsRegistry* registry) const;

  /// Number of what-if statement costings performed so far (for the
  /// optimizer-cost experiments: the dominant work unit).
  int64_t costings() const {
    return costings_.load(std::memory_order_relaxed);
  }

  /// Number of SegmentCost calls answered from the engine's own memo
  /// cache (distinct from the persistent CostCache's hits()).
  int64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }

 private:
  /// A statement shape with literals erased, plus its multiplicity and
  /// 64-bit fingerprint (the persistent cost cache's statement key).
  struct ProfileEntry {
    BoundStatement representative;
    int64_t count = 0;
    uint64_t fingerprint = 0;
  };

  /// Memo key: one (segment, configuration) what-if probe.
  struct CacheKey {
    size_t segment;
    Configuration config;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const {
      const size_t h = ConfigurationHash()(key.config);
      return h ^ (key.segment + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    }
  };
  struct CacheShard {
    std::mutex mu;
    std::unordered_map<CacheKey, double, CacheKeyHash> memo;
  };
  static constexpr size_t kCacheShards = 64;

  CacheShard& ShardFor(size_t segment, const Configuration& config) const {
    return shards_[CacheKeyHash()(CacheKey{segment, config}) % kCacheShards];
  }

  /// The uncached cost computation (pure; reads only immutable state).
  double ComputeSegmentCost(size_t segment, const Configuration& config) const;

  /// EXEC(S_segment, config) assembled from the persistent cache:
  /// per profile entry, look up (entry.fingerprint, config_mask), cost
  /// and insert on miss. Summation runs in profile order — the same
  /// order as ComputeSegmentCost — so the result is bit-identical to
  /// the uncached path.
  double CachedSegmentCost(size_t segment, const Configuration& config,
                           uint64_t config_mask, CostCache* cache,
                           ResourceTracker* tracker) const;

  const CostModel* model_;
  std::vector<Segment> segments_;
  std::vector<std::vector<ProfileEntry>> profiles_;  // Per segment.
  // The per-segment profiles merged by fingerprint, first appearance
  // first (built once in the constructor; immutable afterwards).
  std::vector<WorkloadShape> workload_profile_;
  mutable std::array<CacheShard, kCacheShards> shards_;
  mutable std::atomic<int64_t> costings_{0};
  mutable std::atomic<int64_t> cache_hits_{0};
  // Optional metric sinks (null until SetMetrics). Atomic because
  // every concurrent Solve() over a shared engine re-attaches them
  // while other solves' probes read them; the registry hands out
  // stable pointers, so concurrent attaches of the same registry are
  // idempotent.
  mutable std::atomic<Counter*> metrics_costings_{nullptr};
  mutable std::atomic<Counter*> metrics_cache_hits_{nullptr};
  mutable std::atomic<Histogram*> metrics_segment_cost_us_{nullptr};
};

}  // namespace cdpd

#endif  // CDPD_COST_WHAT_IF_H_
