#ifndef CDPD_COST_WHAT_IF_H_
#define CDPD_COST_WHAT_IF_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "catalog/configuration.h"
#include "cost/cost_model.h"
#include "workload/workload.h"

namespace cdpd {

/// The what-if oracle the design optimizers query: EXEC(S_i, C) for
/// workload segments S_i and hypothetical configurations C, plus
/// TRANS(C, C'). Two optimizations make the optimizers fast:
///
///  * per-segment statement *profiles* — a point statement's estimated
///    cost depends only on its shape (type and columns), not on its
///    literal, so a segment of 500 queries collapses into a handful of
///    (shape, count) pairs;
///  * per-(segment, configuration) memoization across the many times
///    the graph algorithms revisit the same node.
///
/// Not thread-safe (the memo cache is mutated on read).
class WhatIfEngine {
 public:
  /// `model` must outlive the engine. `statements` are copied into the
  /// profiles; `segments` define the stages S_1..S_n.
  WhatIfEngine(const CostModel* model,
               std::span<const BoundStatement> statements,
               std::vector<Segment> segments);

  const CostModel& model() const { return *model_; }
  size_t num_segments() const { return segments_.size(); }
  const std::vector<Segment>& segments() const { return segments_; }

  /// EXEC(S_i, config), memoized.
  double SegmentCost(size_t segment, const Configuration& config) const;

  /// EXEC(S_begin ∪ ... ∪ S_{end-1}, config) — the merged-segment cost
  /// the sequential-merging heuristic needs. Not memoized (sums the
  /// memoized per-segment costs).
  double RangeCost(size_t begin, size_t end, const Configuration& config) const;

  /// TRANS(from, to), forwarded to the cost model.
  double TransitionCost(const Configuration& from,
                        const Configuration& to) const {
    return model_->TransitionCost(from, to);
  }

  /// Number of what-if statement costings performed so far (for the
  /// optimizer-cost experiments: the dominant work unit).
  int64_t costings() const { return costings_; }

 private:
  /// A statement shape with literals erased, plus its multiplicity.
  struct ProfileEntry {
    BoundStatement representative;
    int64_t count = 0;
  };

  const CostModel* model_;
  std::vector<Segment> segments_;
  std::vector<std::vector<ProfileEntry>> profiles_;  // Per segment.
  mutable std::vector<
      std::unordered_map<Configuration, double, ConfigurationHash>>
      cache_;
  mutable int64_t costings_ = 0;
};

}  // namespace cdpd

#endif  // CDPD_COST_WHAT_IF_H_
