#ifndef CDPD_COST_TABLE_STATS_H_
#define CDPD_COST_TABLE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace cdpd {

/// Per-column statistics: value bounds, a distinct-count estimate and
/// the derived density (expected fraction of rows matched by an
/// equality predicate) — the "density vector" a commercial optimizer
/// keeps per index/column.
struct ColumnStats {
  Value min_value = 0;
  Value max_value = 0;
  int64_t distinct_estimate = 1;
  /// Expected fraction of rows matching `column = v` for a v drawn
  /// from the column's actual values: 1 / distinct.
  double density = 1.0;
  /// Equi-width histogram over [min_value, max_value] (bucket counts
  /// over the sampled rows); used for range selectivity.
  std::vector<int64_t> histogram;
  int64_t sampled_rows = 0;

  /// Expected fraction of rows with value in [lo, hi] (inclusive),
  /// from the histogram with linear interpolation at the edges.
  double RangeSelectivity(Value lo, Value hi) const;
};

/// Statistics for every column of a table, built by (sampled) scan.
/// Attach to a CostModel (SetTableStats) to replace the uniform-domain
/// selectivity assumption with measured per-column densities — the
/// difference matters as soon as columns have different effective
/// domains (skew), which the paper's uniform data hides.
class TableStats {
 public:
  /// Scans up to `max_sample_rows` rows (evenly strided) and builds
  /// per-column stats with `buckets` histogram buckets.
  static TableStats FromTable(const Table& table,
                              int64_t max_sample_rows = 100'000,
                              int32_t buckets = 64);

  int64_t num_rows() const { return num_rows_; }
  int32_t num_columns() const {
    return static_cast<int32_t>(columns_.size());
  }
  const ColumnStats& column(ColumnId id) const {
    return columns_[static_cast<size_t>(id)];
  }

  /// Expected rows matching `column = value-drawn-from-column`.
  double ExpectedEqMatches(ColumnId column) const;

  /// Expected rows with `column` in [lo, hi].
  double ExpectedRangeMatches(ColumnId column, Value lo, Value hi) const;

  std::string ToString(const Schema& schema) const;

 private:
  int64_t num_rows_ = 0;
  std::vector<ColumnStats> columns_;
};

}  // namespace cdpd

#endif  // CDPD_COST_TABLE_STATS_H_
