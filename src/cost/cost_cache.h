#ifndef CDPD_COST_COST_CACHE_H_
#define CDPD_COST_COST_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/metrics.h"
#include "common/resource_tracker.h"

namespace cdpd {

/// Persistent what-if cost cache: (statement fingerprint, configuration
/// bitmask) -> per-statement estimated cost. Unlike the WhatIfEngine's
/// per-instance memo (which dies with the engine and hashes whole
/// Configuration objects), a CostCache outlives individual Solve()
/// calls: a caller owns one, passes it via SolveOptions::cost_cache,
/// and every solve over the same cost model and candidate universe
/// reuses the costs of earlier solves — a warm re-solve of an
/// unchanged workload answers essentially every what-if probe from the
/// cache and its latency is dominated by the DP, not costing.
///
/// Keys. The statement fingerprint identifies a literal-erased
/// statement *shape* (the unit the what-if profiles collapse segments
/// into); the configuration bitmask is the CandidateSpace packed
/// identity. Both are 64-bit. Keying is sound only while masks are
/// exact (CandidateSpace::exact_masks()); the engine skips the cache
/// otherwise.
///
/// Invalidation. Cached costs are valid for exactly one cost-model
/// state. EnsureValid(token) compares the caller's validity token —
/// the WhatIfEngine derives it from CostModel::Fingerprint(), which
/// covers the schema, the row count, the cost parameters, and any
/// attached TableStats — and clears the cache (counting the dropped
/// entries as evictions and bumping invalidations()) when it changed:
/// a catalog or table-stats change silently refreshes rather than
/// serving stale costs.
///
/// Memory. Entries are accounted at kEntryBytes apiece (key + value +
/// amortized hash-table overhead). Two budgets apply:
///  * the cache's own `max_bytes` (constructor; 0 = unbounded): an
///    insert that would pass it evicts whole shards (coarse,
///    deterministic sweep order) until the new entry fits;
///  * the *solve's* SolveOptions::memory_limit_bytes: inserts
///    performed during a solve are charged to the solve's
///    ResourceTracker under MemComponent::kCostCache; a refused
///    reservation skips the insert (reads still work) and trips the
///    tracker's limit flag, so the solve degrades through the same
///    anytime machinery as a deadline.
///
/// Thread-safe: the table is sharded, each shard behind its own mutex,
/// and every counter is a relaxed atomic — concurrent solves may share
/// one cache (hits/misses observed across solves are then interleaved,
/// which is inherent to a shared cache).
class CostCache {
 public:
  /// `max_bytes` caps the cache's own footprint; <= 0 = unbounded.
  explicit CostCache(int64_t max_bytes = 0)
      : max_bytes_(max_bytes > 0 ? max_bytes : 0) {}
  CostCache(const CostCache&) = delete;
  CostCache& operator=(const CostCache&) = delete;

  /// Accounted bytes per entry: 16-byte key + 8-byte value + amortized
  /// node/bucket overhead of the unordered_map shards.
  static constexpr int64_t kEntryBytes = 64;

  /// Drops every entry unless the cache is already valid for `token`.
  /// Returns true when the cache was (re)validated by clearing, false
  /// when it was already valid. Call before a batch of Lookup/Insert
  /// against one cost-model state. `tracker` (optional) is the calling
  /// solve's ResourceTracker: the dropped entries' accounted bytes are
  /// returned to it under MemComponent::kCostCache, clamped to what
  /// that tracker is actually carrying (entries charged by an earlier,
  /// possibly dead tracker release nothing — see
  /// ResourceTracker::ReleaseUpTo).
  bool EnsureValid(uint64_t token, ResourceTracker* tracker = nullptr);

  /// Cached cost of (statement fingerprint, config mask), if present.
  /// Counts a hit or a miss.
  bool Lookup(uint64_t statement_fp, uint64_t config_mask,
              double* cost) const;

  /// Inserts a computed cost. `tracker` (optional) is the charging
  /// solve's ResourceTracker: the entry's bytes are reserved under
  /// MemComponent::kCostCache first, and a refusal (the solve's soft
  /// memory limit would be passed) skips the insert entirely — the
  /// cache never grows past a solve's budget. Returns true when the
  /// entry was stored. Idempotent for an existing key (no double
  /// charge; last write wins, and all writers compute the same value
  /// for a given validity token).
  bool Insert(uint64_t statement_fp, uint64_t config_mask, double cost,
              ResourceTracker* tracker = nullptr);

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Times EnsureValid dropped a stale cache (token change).
  int64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  int64_t entries() const { return entries_.load(std::memory_order_relaxed); }
  /// Accounted footprint (entries() * kEntryBytes).
  int64_t ApproxBytes() const { return entries() * kEntryBytes; }
  int64_t max_bytes() const { return max_bytes_; }

  /// The validity token the cache currently holds (0 = never
  /// validated).
  uint64_t validity_token() const {
    return token_.load(std::memory_order_relaxed);
  }

  /// Mirrors the cache's *resident state* into `registry`: the
  /// "cost_cache.entries" and "cost_cache.bytes" gauges plus the
  /// "cost_cache.invalidations" gauge. The per-solve hit/miss/evict
  /// traffic is published as "cost_cache.hits" / "cost_cache.misses" /
  /// "cost_cache.evictions" counters by SolveStats::PublishTo (deltas
  /// of one solve, so the registry accumulates exactly the traffic it
  /// observed). No-op when `registry` is null.
  void PublishTo(MetricsRegistry* registry) const;

 private:
  struct Key {
    uint64_t statement_fp = 0;
    uint64_t config_mask = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // splitmix64-style mix of the two halves; both inputs are
      // already well-spread 64-bit values.
      uint64_t x = key.statement_fp ^ (key.config_mask * 0x9e3779b97f4a7c15ULL);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebULL;
      x ^= x >> 31;
      return static_cast<size_t>(x);
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, double, KeyHash> map;
  };
  static constexpr size_t kShards = 32;

  Shard& ShardFor(const Key& key) const {
    return shards_[KeyHash()(key) % kShards];
  }

  /// Evicts whole shards — resuming from where the previous sweep
  /// stopped (a rotating cursor, so repeated cap-pressure episodes
  /// visit every shard instead of starving the ones far from a hot
  /// insert shard) — until at least `needed` accounted bytes are free
  /// under max_bytes_. The dropped entries' bytes are returned to
  /// `tracker` (clamped; see ReleaseUpTo) so the inserting solve's
  /// kCostCache gauge tracks resident entries, not historical inserts.
  /// Caller must not hold any shard lock.
  void EvictForSpace(int64_t needed, ResourceTracker* tracker);

  const int64_t max_bytes_;
  std::atomic<size_t> sweep_cursor_{0};
  mutable std::array<Shard, kShards> shards_;
  std::atomic<uint64_t> token_{0};
  std::atomic<int64_t> entries_{0};
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> invalidations_{0};
  std::mutex validate_mu_;
};

}  // namespace cdpd

#endif  // CDPD_COST_COST_CACHE_H_
