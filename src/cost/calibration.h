#ifndef CDPD_COST_CALIBRATION_H_
#define CDPD_COST_CALIBRATION_H_

#include <string>

#include "common/result.h"
#include "cost/cost_model.h"
#include "engine/database.h"

namespace cdpd {

/// Options for cost-model calibration.
struct CalibrationOptions {
  /// Probe repetitions (medians are taken; raise on noisy machines).
  int repetitions = 5;
  /// Random point operations per seek probe.
  int seeks_per_probe = 2000;
};

/// A calibrated parameter set plus the raw probe measurements it was
/// derived from.
struct CalibrationReport {
  CostParams params;
  /// Seconds per sequentially-read page (the unit: seq_page_cost = 1).
  double seconds_per_seq_page = 0.0;
  double seconds_per_random_page = 0.0;
  double seconds_per_tuple = 0.0;
  double seconds_per_written_page = 0.0;
  std::string ToString() const;
};

/// Derives CostParams from measured engine timings on `db`, so that
/// one cost unit equals one sequentially-read page and the other unit
/// costs reflect the machine actually running the workload (the paper
/// relied on SQL Server's optimizer estimates; a standalone library
/// must earn its constants). Probes:
///
///  * heap scan vs. covering index scan — two linear equations in
///    (seconds/page, seconds/tuple), solved exactly;
///  * random B+-tree point seeks — seconds/random-page;
///  * index builds of two widths — seconds/written-page (the sort is
///    charged via sort_cpu ~ cpu_tuple).
///
/// The probes build and drop temporary indexes; the database's
/// configuration is restored afterwards. The table should have at
/// least ~10k rows for stable numbers.
Result<CalibrationReport> CalibrateCostParams(
    Database* db, const CalibrationOptions& options = {});

}  // namespace cdpd

#endif  // CDPD_COST_CALIBRATION_H_
