#include "cost/calibration.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace cdpd {

namespace {

constexpr double kMinSecondsPerUnit = 1e-12;

/// Median wall time of `fn` over `repetitions` runs.
template <typename Fn>
double MedianSeconds(int repetitions, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(repetitions));
  for (int i = 0; i < repetitions; ++i) {
    Stopwatch watch;
    fn();
    times.push_back(watch.ElapsedSeconds());
  }
  std::nth_element(times.begin(), times.begin() + repetitions / 2,
                   times.end());
  return times[static_cast<size_t>(repetitions / 2)];
}

}  // namespace

std::string CalibrationReport::ToString() const {
  std::string out = "calibrated cost params (1 unit = 1 sequential page = " +
                    FormatDouble(seconds_per_seq_page * 1e9, 1) + " ns):\n";
  out += "  random_page_cost = " + FormatDouble(params.random_page_cost, 3) +
         "\n";
  out += "  write_page_cost  = " + FormatDouble(params.write_page_cost, 3) +
         "\n";
  out += "  cpu_tuple_cost   = " + FormatDouble(params.cpu_tuple_cost, 6) +
         "\n";
  out += "  sort_cpu_factor  = " + FormatDouble(params.sort_cpu_factor, 6) +
         "\n";
  return out;
}

Result<CalibrationReport> CalibrateCostParams(
    Database* db, const CalibrationOptions& options) {
  if (options.repetitions < 1) {
    return Status::InvalidArgument("repetitions must be >= 1");
  }
  const Table& table = db->table();
  const int64_t rows = table.num_rows();
  if (rows < 1000) {
    return Status::FailedPrecondition(
        "calibration needs at least 1000 rows for stable probes");
  }
  const Schema& schema = db->schema();
  if (schema.num_columns() < 4) {
    return Status::FailedPrecondition(
        "calibration probes need at least four columns");
  }

  const Configuration saved = db->current_configuration();
  AccessStats scratch;
  CDPD_RETURN_IF_ERROR(
      db->ApplyConfiguration(Configuration::Empty(), &scratch));

  Rng rng(0xca11b8a7e);
  const int64_t domain = db->cost_model().domain_size();
  auto random_value = [&] { return rng.UniformInt(0, domain - 1); };

  // Probe 1: heap scan (predicate on d, no index).
  const int64_t heap_pages = table.heap_pages();
  const double t_heap_scan = MedianSeconds(options.repetitions, [&] {
    AccessStats stats;
    auto result =
        db->Execute(BoundStatement::SelectPoint(3, 3, random_value()),
                    &stats);
    (void)result;
  });

  // Probe 2: covering index scan of I(c,d) answering a d-predicate.
  const IndexDef icd({2, 3});
  CDPD_RETURN_IF_ERROR(
      db->ApplyConfiguration(Configuration({icd}), &scratch));
  const int64_t leaf_pages = icd.LeafPages(rows);
  const double t_covering_scan = MedianSeconds(options.repetitions, [&] {
    AccessStats stats;
    auto result =
        db->Execute(BoundStatement::SelectPoint(3, 3, random_value()),
                    &stats);
    (void)result;
  });

  // Solve  t_heap = heap_pages*s_page + rows*s_tuple
  //        t_cov  = leaf_pages*s_page + rows*s_tuple
  if (heap_pages <= leaf_pages) {
    return Status::Internal("probe degenerate: heap not wider than index");
  }
  double seconds_per_page =
      (t_heap_scan - t_covering_scan) /
      static_cast<double>(heap_pages - leaf_pages);
  seconds_per_page = std::max(seconds_per_page, kMinSecondsPerUnit);
  double seconds_per_tuple =
      (t_heap_scan - static_cast<double>(heap_pages) * seconds_per_page) /
      static_cast<double>(rows);
  seconds_per_tuple = std::max(seconds_per_tuple, kMinSecondsPerUnit);

  // Probe 3: random point seeks on I(a).
  const IndexDef ia({0});
  CDPD_RETURN_IF_ERROR(db->ApplyConfiguration(Configuration({ia}), &scratch));
  const int64_t height = ia.Height(rows);
  const double expected_matches = db->cost_model().ExpectedMatches();
  const double t_seeks = MedianSeconds(options.repetitions, [&] {
    for (int i = 0; i < options.seeks_per_probe; ++i) {
      AccessStats stats;
      auto result =
          db->Execute(BoundStatement::SelectPoint(0, 0, random_value()),
                      &stats);
      (void)result;
    }
  });
  double seconds_per_random_page =
      (t_seeks / options.seeks_per_probe -
       expected_matches * seconds_per_tuple) /
      static_cast<double>(height);
  seconds_per_random_page =
      std::max(seconds_per_random_page, kMinSecondsPerUnit);

  // Probe 4: index builds of two widths isolate the write cost; the
  // residual of the narrow build gives the sort factor.
  const double t_build_narrow = MedianSeconds(options.repetitions, [&] {
    AccessStats stats;
    Status drop_then_build =
        db->ApplyConfiguration(Configuration::Empty(), &stats);
    (void)drop_then_build;
    (void)db->ApplyConfiguration(Configuration({ia}), &stats);
  });
  const IndexDef iab({0, 1});
  const double t_build_wide = MedianSeconds(options.repetitions, [&] {
    AccessStats stats;
    Status drop_then_build =
        db->ApplyConfiguration(Configuration::Empty(), &stats);
    (void)drop_then_build;
    (void)db->ApplyConfiguration(Configuration({iab}), &stats);
  });
  const int64_t written_narrow = ia.SizePages(rows);
  const int64_t written_wide = iab.SizePages(rows);
  double seconds_per_written_page =
      (t_build_wide - t_build_narrow) /
      static_cast<double>(std::max<int64_t>(1, written_wide - written_narrow));
  seconds_per_written_page =
      std::max(seconds_per_written_page, kMinSecondsPerUnit);
  const double sort_seconds =
      t_build_narrow -
      static_cast<double>(heap_pages) * seconds_per_page -
      static_cast<double>(written_narrow) * seconds_per_written_page;
  const double sort_denominator =
      static_cast<double>(rows) * Log2(static_cast<double>(rows));
  double seconds_per_sort_unit =
      std::max(sort_seconds, 0.0) / sort_denominator;

  CDPD_RETURN_IF_ERROR(db->ApplyConfiguration(saved, &scratch));

  CalibrationReport report;
  report.seconds_per_seq_page = seconds_per_page;
  report.seconds_per_random_page = seconds_per_random_page;
  report.seconds_per_tuple = seconds_per_tuple;
  report.seconds_per_written_page = seconds_per_written_page;
  report.params.seq_page_cost = 1.0;
  report.params.random_page_cost = seconds_per_random_page / seconds_per_page;
  report.params.write_page_cost =
      seconds_per_written_page / seconds_per_page;
  report.params.cpu_tuple_cost = seconds_per_tuple / seconds_per_page;
  report.params.sort_cpu_factor = seconds_per_sort_unit / seconds_per_page;
  report.params.drop_pages = CostParams().drop_pages;
  return report;
}

}  // namespace cdpd
