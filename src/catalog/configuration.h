#ifndef CDPD_CATALOG_CONFIGURATION_H_
#define CDPD_CATALOG_CONFIGURATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/index_def.h"
#include "storage/schema.h"

namespace cdpd {

/// A physical design configuration: a set of index structures, as in
/// the paper ("a physical design consists of a set of structures chosen
/// from a set of candidate structures"). Immutable value type with a
/// canonical (sorted, duplicate-free) representation so that equality,
/// ordering and hashing are well defined — the design algorithms
/// compare configurations constantly (C_{i-1} != C_i is what the change
/// constraint counts).
class Configuration {
 public:
  /// The empty configuration (no auxiliary structures).
  Configuration() = default;

  /// Canonicalizes (sorts, dedups) the given index set.
  explicit Configuration(std::vector<IndexDef> indexes);

  static Configuration Empty() { return Configuration(); }

  bool empty() const { return indexes_.empty(); }
  int32_t num_indexes() const { return static_cast<int32_t>(indexes_.size()); }
  const std::vector<IndexDef>& indexes() const { return indexes_; }

  bool Contains(const IndexDef& def) const;

  /// Copy of this configuration with `def` added (no-op if present).
  Configuration With(const IndexDef& def) const;

  /// Copy of this configuration with `def` removed (no-op if absent).
  Configuration Without(const IndexDef& def) const;

  /// Total size in pages over a table of `num_rows` rows — the SIZE(C)
  /// of the paper, checked against the space bound b.
  int64_t SizePages(int64_t num_rows) const;

  /// "{}" or "{I(a), I(c,d)}" rendered against `schema`.
  std::string ToString(const Schema& schema) const;

  bool operator==(const Configuration& other) const = default;
  bool operator<(const Configuration& other) const {
    return indexes_ < other.indexes_;
  }

 private:
  std::vector<IndexDef> indexes_;  // Sorted, duplicate-free.
};

/// Hash functor so Configuration can key unordered containers.
struct ConfigurationHash {
  size_t operator()(const Configuration& config) const;
};

/// The indexes a transition from `from` to `to` must create and drop —
/// the physical work priced by TRANS(from, to).
struct ConfigurationDelta {
  std::vector<IndexDef> created;
  std::vector<IndexDef> dropped;
};

ConfigurationDelta DiffConfigurations(const Configuration& from,
                                      const Configuration& to);

}  // namespace cdpd

#endif  // CDPD_CATALOG_CONFIGURATION_H_
