#include "catalog/catalog.h"

#include "index/index_builder.h"

namespace cdpd {

namespace {

/// Fixed page-write charge for dropping an index (catalog update plus
/// free-space bookkeeping); mirrors CostParams::drop_pages.
constexpr int64_t kDropWritePages = 8;

}  // namespace

const Catalog::TableEntry* Catalog::FindEntry(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Catalog::TableEntry* Catalog::FindEntryMutable(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Result<Table*> Catalog::CreateTable(Schema schema) {
  const std::string name = schema.table_name();
  if (FindEntry(name) != nullptr) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  TableEntry entry;
  entry.table = std::make_unique<Table>(std::move(schema));
  Table* raw = entry.table.get();
  tables_.emplace(name, std::move(entry));
  return raw;
}

Result<const Table*> Catalog::GetTable(std::string_view name) const {
  const TableEntry* entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("no table '" + std::string(name) + "'");
  }
  return static_cast<const Table*>(entry->table.get());
}

Result<Table*> Catalog::GetTableMutable(std::string_view name) {
  TableEntry* entry = FindEntryMutable(name);
  if (entry == nullptr) {
    return Status::NotFound("no table '" + std::string(name) + "'");
  }
  return entry->table.get();
}

Status Catalog::CreateIndex(std::string_view table_name, const IndexDef& def,
                            AccessStats* stats) {
  TableEntry* entry = FindEntryMutable(table_name);
  if (entry == nullptr) {
    return Status::NotFound("no table '" + std::string(table_name) + "'");
  }
  if (entry->indexes.count(def) > 0) {
    return Status::AlreadyExists("index " +
                                 def.ToString(entry->table->schema()) +
                                 " already exists");
  }
  CDPD_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree,
                        BuildIndex(*entry->table, def, stats));
  entry->indexes.emplace(def, std::move(tree));
  return Status::OK();
}

Status Catalog::DropIndex(std::string_view table_name, const IndexDef& def,
                          AccessStats* stats) {
  TableEntry* entry = FindEntryMutable(table_name);
  if (entry == nullptr) {
    return Status::NotFound("no table '" + std::string(table_name) + "'");
  }
  auto it = entry->indexes.find(def);
  if (it == entry->indexes.end()) {
    return Status::NotFound("no index " +
                            def.ToString(entry->table->schema()));
  }
  entry->indexes.erase(it);
  stats->written_pages += kDropWritePages;
  return Status::OK();
}

Result<const BTree*> Catalog::GetIndex(std::string_view table_name,
                                       const IndexDef& def) const {
  const TableEntry* entry = FindEntry(table_name);
  if (entry == nullptr) {
    return Status::NotFound("no table '" + std::string(table_name) + "'");
  }
  auto it = entry->indexes.find(def);
  if (it == entry->indexes.end()) {
    return Status::NotFound("no index " +
                            def.ToString(entry->table->schema()));
  }
  return static_cast<const BTree*>(it->second.get());
}

Result<BTree*> Catalog::GetIndexMutable(std::string_view table_name,
                                        const IndexDef& def) {
  TableEntry* entry = FindEntryMutable(table_name);
  if (entry == nullptr) {
    return Status::NotFound("no table '" + std::string(table_name) + "'");
  }
  auto it = entry->indexes.find(def);
  if (it == entry->indexes.end()) {
    return Status::NotFound("no index " +
                            def.ToString(entry->table->schema()));
  }
  return it->second.get();
}

std::vector<const BTree*> Catalog::ListIndexes(
    std::string_view table_name) const {
  std::vector<const BTree*> result;
  const TableEntry* entry = FindEntry(table_name);
  if (entry == nullptr) return result;
  result.reserve(entry->indexes.size());
  for (const auto& [def, tree] : entry->indexes) {
    result.push_back(tree.get());
  }
  return result;
}

Configuration Catalog::CurrentConfiguration(
    std::string_view table_name) const {
  const TableEntry* entry = FindEntry(table_name);
  if (entry == nullptr) return Configuration::Empty();
  std::vector<IndexDef> defs;
  defs.reserve(entry->indexes.size());
  for (const auto& [def, tree] : entry->indexes) {
    defs.push_back(def);
  }
  return Configuration(std::move(defs));
}

}  // namespace cdpd
