#ifndef CDPD_CATALOG_CATALOG_H_
#define CDPD_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/configuration.h"
#include "common/result.h"
#include "index/btree.h"
#include "storage/table.h"

namespace cdpd {

/// Owns the physical objects of the database: tables and the B+-trees
/// currently materialized over them. The engine applies physical-design
/// transitions by creating/dropping indexes here; the catalog's current
/// index set for a table *is* the active Configuration.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; fails with AlreadyExists on a name clash.
  Result<Table*> CreateTable(Schema schema);

  Result<const Table*> GetTable(std::string_view name) const;
  Result<Table*> GetTableMutable(std::string_view name);

  /// Materializes the index `def` over `table_name` (scan + sort + bulk
  /// load, charged to `stats`). Fails with AlreadyExists if present.
  Status CreateIndex(std::string_view table_name, const IndexDef& def,
                     AccessStats* stats);

  /// Drops the index; charges a fixed page write for the catalog/
  /// deallocation update. Fails with NotFound if absent.
  Status DropIndex(std::string_view table_name, const IndexDef& def,
                   AccessStats* stats);

  /// The materialized tree for `def`, or NotFound.
  Result<const BTree*> GetIndex(std::string_view table_name,
                                const IndexDef& def) const;
  Result<BTree*> GetIndexMutable(std::string_view table_name,
                                 const IndexDef& def);

  /// All indexes currently materialized over `table_name`.
  std::vector<const BTree*> ListIndexes(std::string_view table_name) const;

  /// The active configuration of `table_name` (empty if the table has
  /// no indexes or does not exist).
  Configuration CurrentConfiguration(std::string_view table_name) const;

 private:
  struct TableEntry {
    std::unique_ptr<Table> table;
    std::map<IndexDef, std::unique_ptr<BTree>> indexes;
  };

  const TableEntry* FindEntry(std::string_view name) const;
  TableEntry* FindEntryMutable(std::string_view name);

  std::map<std::string, TableEntry, std::less<>> tables_;
};

}  // namespace cdpd

#endif  // CDPD_CATALOG_CATALOG_H_
