#include "catalog/configuration.h"

#include <algorithm>

#include "common/string_util.h"

namespace cdpd {

Configuration::Configuration(std::vector<IndexDef> indexes)
    : indexes_(std::move(indexes)) {
  std::sort(indexes_.begin(), indexes_.end());
  indexes_.erase(std::unique(indexes_.begin(), indexes_.end()),
                 indexes_.end());
}

bool Configuration::Contains(const IndexDef& def) const {
  return std::binary_search(indexes_.begin(), indexes_.end(), def);
}

Configuration Configuration::With(const IndexDef& def) const {
  if (Contains(def)) return *this;
  std::vector<IndexDef> indexes = indexes_;
  indexes.push_back(def);
  return Configuration(std::move(indexes));
}

Configuration Configuration::Without(const IndexDef& def) const {
  std::vector<IndexDef> indexes;
  indexes.reserve(indexes_.size());
  for (const IndexDef& index : indexes_) {
    if (!(index == def)) indexes.push_back(index);
  }
  return Configuration(std::move(indexes));
}

int64_t Configuration::SizePages(int64_t num_rows) const {
  int64_t total = 0;
  for (const IndexDef& index : indexes_) {
    total += index.SizePages(num_rows);
  }
  return total;
}

std::string Configuration::ToString(const Schema& schema) const {
  std::vector<std::string> parts;
  parts.reserve(indexes_.size());
  for (const IndexDef& index : indexes_) {
    parts.push_back(index.ToString(schema));
  }
  return "{" + Join(parts, ", ") + "}";
}

size_t ConfigurationHash::operator()(const Configuration& config) const {
  IndexDefHash index_hash;
  size_t h = 0x243f6a8885a308d3ULL;
  for (const IndexDef& index : config.indexes()) {
    h ^= index_hash(index) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

ConfigurationDelta DiffConfigurations(const Configuration& from,
                                      const Configuration& to) {
  ConfigurationDelta delta;
  std::set_difference(to.indexes().begin(), to.indexes().end(),
                      from.indexes().begin(), from.indexes().end(),
                      std::back_inserter(delta.created));
  std::set_difference(from.indexes().begin(), from.indexes().end(),
                      to.indexes().begin(), to.indexes().end(),
                      std::back_inserter(delta.dropped));
  return delta;
}

}  // namespace cdpd
