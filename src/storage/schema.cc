#include "storage/schema.h"

#include "common/string_util.h"
#include "storage/page.h"

namespace cdpd {

Schema::Schema(std::string table_name, std::vector<std::string> column_names)
    : table_name_(std::move(table_name)),
      column_names_(std::move(column_names)) {}

Result<ColumnId> Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (EqualsIgnoreCase(column_names_[i], name)) {
      return static_cast<ColumnId>(i);
    }
  }
  return Status::NotFound("no column '" + std::string(name) + "' in table '" +
                          table_name_ + "'");
}

int64_t Schema::RowBytes() const {
  return kValueBytes * num_columns() + kRowHeaderBytes;
}

std::string Schema::ToString() const {
  return table_name_ + "(" + Join(column_names_, ",") + ")";
}

Schema MakePaperSchema(std::string table_name) {
  return Schema(std::move(table_name), {"a", "b", "c", "d"});
}

}  // namespace cdpd
