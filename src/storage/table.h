#ifndef CDPD_STORAGE_TABLE_H_
#define CDPD_STORAGE_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "storage/access_stats.h"
#include "storage/schema.h"

namespace cdpd {

/// A heap table with int64 columns. Data is stored column-wise in memory
/// for scan speed, but all access accounting is done in row-store pages
/// (see storage/page.h) so that the advisor's cost model matches the
/// disk-based system of the paper.
class Table {
 public:
  explicit Table(Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }

  /// Number of heap pages the table occupies.
  int64_t heap_pages() const;

  /// Appends one row; `row` must have exactly schema().num_columns()
  /// values. Returns the RowId of the new row.
  Result<RowId> AppendRow(const std::vector<Value>& row);

  /// Value of `column` in row `row`. Bounds are the caller's contract.
  Value GetValue(RowId row, ColumnId column) const {
    return columns_[static_cast<size_t>(column)][static_cast<size_t>(row)];
  }

  /// In-place update of one value. Returns InvalidArgument on bad ids.
  Status SetValue(RowId row, ColumnId column, Value value);

  /// Read-only access to a whole column (for index builds and scans).
  const std::vector<Value>& column(ColumnId id) const {
    return columns_[static_cast<size_t>(id)];
  }

  /// Fills the table with `num_rows` rows of independently uniform
  /// values in [lo, hi), as in the paper's test database (2.5 M rows,
  /// values in [0, 500000)). Appends to any existing rows.
  void PopulateUniform(int64_t num_rows, Value lo, Value hi, Rng* rng);

  /// Full sequential scan: calls `visit(row_id)` for every row and
  /// charges the pages read to `stats`. The callback reads values via
  /// GetValue(); rows_examined is charged by the caller's predicate
  /// logic in the executor, not here.
  template <typename Visitor>
  void Scan(AccessStats* stats, Visitor&& visit) const {
    stats->sequential_pages += heap_pages();
    for (RowId row = 0; row < num_rows_; ++row) {
      visit(row);
    }
  }

  /// Charges a random fetch of the page holding `row` to `stats`.
  void ChargeRandomFetch(RowId row, AccessStats* stats) const;

 private:
  Schema schema_;
  int64_t num_rows_ = 0;
  std::vector<std::vector<Value>> columns_;
};

}  // namespace cdpd

#endif  // CDPD_STORAGE_TABLE_H_
