#ifndef CDPD_STORAGE_ACCESS_STATS_H_
#define CDPD_STORAGE_ACCESS_STATS_H_

#include <cstdint>
#include <string>

namespace cdpd {

/// Counters of the physical work done by the execution engine. The
/// engine tallies these during query execution and index maintenance;
/// the cost model converts them to cost units, and Figure 3 reports
/// workload execution in both page counts and wall time.
struct AccessStats {
  /// Pages read in sequential order (scans).
  int64_t sequential_pages = 0;
  /// Pages read in random order (B+-tree descents, heap fetches).
  int64_t random_pages = 0;
  /// Pages written (index builds, index maintenance, heap appends).
  int64_t written_pages = 0;
  /// Tuples examined by predicate evaluation.
  int64_t rows_examined = 0;

  AccessStats& operator+=(const AccessStats& other) {
    sequential_pages += other.sequential_pages;
    random_pages += other.random_pages;
    written_pages += other.written_pages;
    rows_examined += other.rows_examined;
    return *this;
  }

  friend AccessStats operator+(AccessStats a, const AccessStats& b) {
    a += b;
    return a;
  }

  bool operator==(const AccessStats& other) const = default;

  std::string ToString() const {
    return "seq=" + std::to_string(sequential_pages) +
           " rand=" + std::to_string(random_pages) +
           " written=" + std::to_string(written_pages) +
           " rows=" + std::to_string(rows_examined);
  }
};

}  // namespace cdpd

#endif  // CDPD_STORAGE_ACCESS_STATS_H_
