#ifndef CDPD_STORAGE_PAGE_H_
#define CDPD_STORAGE_PAGE_H_

#include <cstdint>

#include "common/math_util.h"

namespace cdpd {

/// Page geometry. The storage layer is columnar in memory but accounts
/// for accesses in units of row-store pages, mirroring the disk-based
/// system (SQL Server 2005) that the paper ran on; the design advisor's
/// cost model is defined over these page counts.
inline constexpr int64_t kPageSizeBytes = 8192;

/// Bytes per stored int64 value.
inline constexpr int64_t kValueBytes = 8;

/// Fixed per-row header in the heap (slot + null bitmap + row overhead).
inline constexpr int64_t kRowHeaderBytes = 8;

/// Per-entry overhead of a B+-tree leaf entry beyond its key columns:
/// the RowId pointer.
inline constexpr int64_t kIndexEntryOverheadBytes = 8;

/// Rows that fit one heap page for a row of `row_bytes` bytes.
constexpr int64_t RowsPerPage(int64_t row_bytes) {
  return kPageSizeBytes / row_bytes;
}

/// Number of heap pages needed for `num_rows` rows of `row_bytes` bytes.
constexpr int64_t HeapPages(int64_t num_rows, int64_t row_bytes) {
  if (num_rows == 0) return 0;
  return CeilDiv(num_rows, RowsPerPage(row_bytes));
}

/// Bytes of one B+-tree leaf entry with `num_key_columns` key columns.
constexpr int64_t IndexEntryBytes(int32_t num_key_columns) {
  return kValueBytes * num_key_columns + kIndexEntryOverheadBytes;
}

/// Leaf entries that fit one index page.
constexpr int64_t IndexEntriesPerPage(int32_t num_key_columns) {
  return kPageSizeBytes / IndexEntryBytes(num_key_columns);
}

/// Number of leaf pages of an index over `num_rows` rows.
constexpr int64_t IndexLeafPages(int64_t num_rows, int32_t num_key_columns) {
  if (num_rows == 0) return 0;
  return CeilDiv(num_rows, IndexEntriesPerPage(num_key_columns));
}

}  // namespace cdpd

#endif  // CDPD_STORAGE_PAGE_H_
