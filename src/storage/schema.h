#ifndef CDPD_STORAGE_SCHEMA_H_
#define CDPD_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace cdpd {

/// Index of a column within its table's schema.
using ColumnId = int32_t;

/// Row identifier within a table (position in the heap).
using RowId = int64_t;

/// Column values. The paper's test database uses four integer columns;
/// the engine supports any number of int64 columns.
using Value = int64_t;

/// A table schema: a named table with a list of named int64 columns.
/// Schemas are immutable value objects.
class Schema {
 public:
  Schema() = default;
  Schema(std::string table_name, std::vector<std::string> column_names);

  const std::string& table_name() const { return table_name_; }
  int32_t num_columns() const {
    return static_cast<int32_t>(column_names_.size());
  }
  const std::string& column_name(ColumnId id) const {
    return column_names_[static_cast<size_t>(id)];
  }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

  /// Looks up a column by (case-insensitive) name.
  Result<ColumnId> FindColumn(std::string_view name) const;

  /// Bytes one row occupies in the heap: 8 bytes per column plus a fixed
  /// per-row header. This drives the page math of the cost model.
  int64_t RowBytes() const;

  /// "table(col1,col2,...)" — for debugging and catalogs.
  std::string ToString() const;

  bool operator==(const Schema& other) const = default;

 private:
  std::string table_name_;
  std::vector<std::string> column_names_;
};

/// The schema used throughout the paper's experiments: a single table
/// with four integer columns a, b, c, d.
Schema MakePaperSchema(std::string table_name = "t");

}  // namespace cdpd

#endif  // CDPD_STORAGE_SCHEMA_H_
