#include "storage/table.h"

#include "storage/page.h"

namespace cdpd {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(static_cast<size_t>(schema_.num_columns()));
}

int64_t Table::heap_pages() const {
  return HeapPages(num_rows_, schema_.RowBytes());
}

Result<RowId> Table::AppendRow(const std::vector<Value>& row) {
  if (static_cast<int32_t>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table '" +
        schema_.table_name() + "' has " +
        std::to_string(schema_.num_columns()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].push_back(row[i]);
  }
  return num_rows_++;
}

Status Table::SetValue(RowId row, ColumnId column, Value value) {
  if (row < 0 || row >= num_rows_) {
    return Status::OutOfRange("row id " + std::to_string(row) +
                              " out of range");
  }
  if (column < 0 || column >= schema_.num_columns()) {
    return Status::OutOfRange("column id " + std::to_string(column) +
                              " out of range");
  }
  columns_[static_cast<size_t>(column)][static_cast<size_t>(row)] = value;
  return Status::OK();
}

void Table::PopulateUniform(int64_t num_rows, Value lo, Value hi, Rng* rng) {
  for (auto& column : columns_) {
    column.reserve(column.size() + static_cast<size_t>(num_rows));
  }
  for (int64_t i = 0; i < num_rows; ++i) {
    for (auto& column : columns_) {
      column.push_back(rng->UniformInt(lo, hi - 1));
    }
  }
  num_rows_ += num_rows;
}

void Table::ChargeRandomFetch(RowId /*row*/, AccessStats* stats) const {
  stats->random_pages += 1;
}

}  // namespace cdpd
