#ifndef CDPD_SQL_PARSER_H_
#define CDPD_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace cdpd {

/// Recursive-descent parser for the SQL dialect of the paper's
/// workloads plus the DDL used by design transitions:
///
///   statement  := select | update | insert | create_index | drop_index
///   select     := SELECT ident FROM ident WHERE ident
///                 ('=' int | BETWEEN int AND int)
///   update     := UPDATE ident SET ident '=' int WHERE ident '=' int
///   insert     := INSERT INTO ident VALUES '(' int (',' int)* ')'
///   create_index := CREATE INDEX ON ident '(' ident (',' ident)* ')'
///   drop_index   := DROP INDEX ON ident '(' ident (',' ident)* ')'
///
/// Keywords are case-insensitive; statements may end with ';'.
Result<StatementAst> ParseStatement(std::string_view sql);

/// Parses a ';'-separated script (blank statements are skipped).
Result<std::vector<StatementAst>> ParseScript(std::string_view sql);

}  // namespace cdpd

#endif  // CDPD_SQL_PARSER_H_
