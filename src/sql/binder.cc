#include "sql/binder.h"

#include "common/string_util.h"

namespace cdpd {

namespace {

Status CheckTable(const Schema& schema, const std::string& table) {
  if (!EqualsIgnoreCase(schema.table_name(), table)) {
    return Status::InvalidArgument("unknown table '" + table +
                                   "' (schema is '" + schema.table_name() +
                                   "')");
  }
  return Status::OK();
}

}  // namespace

Result<BoundStatement> BindStatement(const Schema& schema,
                                     const StatementAst& ast) {
  if (const auto* select = std::get_if<SelectAst>(&ast)) {
    CDPD_RETURN_IF_ERROR(CheckTable(schema, select->table));
    CDPD_ASSIGN_OR_RETURN(ColumnId select_col,
                          schema.FindColumn(select->select_column));
    CDPD_ASSIGN_OR_RETURN(ColumnId where_col,
                          schema.FindColumn(select->where_column));
    if (select->is_range) {
      return BoundStatement::SelectRange(select_col, where_col,
                                         select->where_lo, select->where_hi);
    }
    return BoundStatement::SelectPoint(select_col, where_col,
                                       select->where_value);
  }
  if (const auto* update = std::get_if<UpdateAst>(&ast)) {
    CDPD_RETURN_IF_ERROR(CheckTable(schema, update->table));
    CDPD_ASSIGN_OR_RETURN(ColumnId set_col,
                          schema.FindColumn(update->set_column));
    CDPD_ASSIGN_OR_RETURN(ColumnId where_col,
                          schema.FindColumn(update->where_column));
    return BoundStatement::UpdatePoint(set_col, update->set_value, where_col,
                                       update->where_value);
  }
  if (const auto* insert = std::get_if<InsertAst>(&ast)) {
    CDPD_RETURN_IF_ERROR(CheckTable(schema, insert->table));
    if (static_cast<int32_t>(insert->values.size()) != schema.num_columns()) {
      return Status::InvalidArgument(
          "INSERT supplies " + std::to_string(insert->values.size()) +
          " values; table has " + std::to_string(schema.num_columns()) +
          " columns");
    }
    return BoundStatement::Insert(insert->values);
  }
  return Status::InvalidArgument(
      "statement is DDL; bind it with BindIndexDdl");
}

Result<IndexDef> BindIndexDdl(const Schema& schema, const StatementAst& ast,
                              bool* create) {
  if (const auto* create_ast = std::get_if<CreateIndexAst>(&ast)) {
    CDPD_RETURN_IF_ERROR(CheckTable(schema, create_ast->table));
    *create = true;
    return IndexDef::FromColumnNames(schema, create_ast->columns);
  }
  if (const auto* drop_ast = std::get_if<DropIndexAst>(&ast)) {
    CDPD_RETURN_IF_ERROR(CheckTable(schema, drop_ast->table));
    *create = false;
    return IndexDef::FromColumnNames(schema, drop_ast->columns);
  }
  return Status::InvalidArgument("statement is not CREATE/DROP INDEX");
}

}  // namespace cdpd
