#ifndef CDPD_SQL_BINDER_H_
#define CDPD_SQL_BINDER_H_

#include "common/result.h"
#include "index/index_def.h"
#include "sql/ast.h"
#include "storage/schema.h"
#include "workload/statement.h"

namespace cdpd {

/// Resolves a DML statement AST (SELECT/UPDATE/INSERT) against `schema`
/// into the executable BoundStatement form. Fails with InvalidArgument
/// for unknown tables/columns, arity mismatches, or DDL input (DDL is
/// bound with BindIndexDdl instead).
Result<BoundStatement> BindStatement(const Schema& schema,
                                     const StatementAst& ast);

/// Resolves CREATE/DROP INDEX DDL to the IndexDef it refers to.
/// `create` is set to true for CREATE, false for DROP.
Result<IndexDef> BindIndexDdl(const Schema& schema, const StatementAst& ast,
                              bool* create);

}  // namespace cdpd

#endif  // CDPD_SQL_BINDER_H_
