#ifndef CDPD_SQL_AST_H_
#define CDPD_SQL_AST_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace cdpd {

/// SELECT <col> FROM <table> WHERE <col> = <int>
///   or  ... WHERE <col> BETWEEN <int> AND <int>
struct SelectAst {
  std::string table;
  std::string select_column;
  std::string where_column;
  bool is_range = false;
  int64_t where_value = 0;  // Point predicate.
  int64_t where_lo = 0;     // Inclusive range bounds.
  int64_t where_hi = 0;

  bool operator==(const SelectAst&) const = default;
};

/// UPDATE <table> SET <col> = <int> WHERE <col> = <int>
struct UpdateAst {
  std::string table;
  std::string set_column;
  int64_t set_value = 0;
  std::string where_column;
  int64_t where_value = 0;

  bool operator==(const UpdateAst&) const = default;
};

/// INSERT INTO <table> VALUES (<int>, ...)
struct InsertAst {
  std::string table;
  std::vector<int64_t> values;

  bool operator==(const InsertAst&) const = default;
};

/// CREATE INDEX ON <table> (<col>, ...)
struct CreateIndexAst {
  std::string table;
  std::vector<std::string> columns;

  bool operator==(const CreateIndexAst&) const = default;
};

/// DROP INDEX ON <table> (<col>, ...)
struct DropIndexAst {
  std::string table;
  std::vector<std::string> columns;

  bool operator==(const DropIndexAst&) const = default;
};

/// A parsed statement of the dialect. DML (select/update/insert) binds
/// to a BoundStatement for execution; DDL (create/drop index) maps to
/// catalog operations — the physical actions of a design transition.
using StatementAst = std::variant<SelectAst, UpdateAst, InsertAst,
                                  CreateIndexAst, DropIndexAst>;

/// Renders a statement back to canonical SQL text.
std::string AstToString(const StatementAst& ast);

}  // namespace cdpd

#endif  // CDPD_SQL_AST_H_
