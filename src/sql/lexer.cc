#include "sql/lexer.h"

#include <cctype>
#include <limits>

namespace cdpd {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    switch (c) {
      case '(':
        token.type = TokenType::kLeftParen;
        token.text = "(";
        ++i;
        tokens.push_back(std::move(token));
        continue;
      case ')':
        token.type = TokenType::kRightParen;
        token.text = ")";
        ++i;
        tokens.push_back(std::move(token));
        continue;
      case ',':
        token.type = TokenType::kComma;
        token.text = ",";
        ++i;
        tokens.push_back(std::move(token));
        continue;
      case '=':
        token.type = TokenType::kEquals;
        token.text = "=";
        ++i;
        tokens.push_back(std::move(token));
        continue;
      case '*':
        token.type = TokenType::kStar;
        token.text = "*";
        ++i;
        tokens.push_back(std::move(token));
        continue;
      case ';':
        token.type = TokenType::kSemicolon;
        token.text = ";";
        ++i;
        tokens.push_back(std::move(token));
        continue;
      default:
        break;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      const bool negative = c == '-';
      size_t j = i + (negative ? 1 : 0);
      if (j >= sql.size() || !std::isdigit(static_cast<unsigned char>(sql[j]))) {
        return Status::ParseError("stray '-' at offset " + std::to_string(i));
      }
      uint64_t magnitude = 0;
      const uint64_t limit =
          negative ? static_cast<uint64_t>(
                         std::numeric_limits<int64_t>::max()) +
                         1
                   : static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
      while (j < sql.size() && std::isdigit(static_cast<unsigned char>(sql[j]))) {
        const uint64_t digit = static_cast<uint64_t>(sql[j] - '0');
        if (magnitude > (limit - digit) / 10) {
          return Status::ParseError("integer literal out of range at offset " +
                                    std::to_string(i));
        }
        magnitude = magnitude * 10 + digit;
        ++j;
      }
      token.type = TokenType::kInteger;
      token.text = std::string(sql.substr(i, j - i));
      token.value = negative ? -static_cast<int64_t>(magnitude)
                             : static_cast<int64_t>(magnitude);
      i = j;
      tokens.push_back(std::move(token));
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < sql.size() && IsIdentChar(sql[j])) ++j;
      token.type = TokenType::kIdentifier;
      token.text = std::string(sql.substr(i, j - i));
      i = j;
      tokens.push_back(std::move(token));
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = sql.size();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace cdpd
