#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace cdpd {

namespace {

/// Token cursor with the small helpers the grammar needs.
class Cursor {
 public:
  explicit Cursor(const std::vector<Token>& tokens) : tokens_(tokens) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool PeekKeyword(std::string_view keyword) const {
    return Peek().type == TokenType::kIdentifier &&
           EqualsIgnoreCase(Peek().text, keyword);
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!PeekKeyword(keyword)) {
      return Error("expected keyword '" + std::string(keyword) + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected " + std::string(what));
    }
    return Advance().text;
  }

  Result<int64_t> ExpectInteger(std::string_view what) {
    if (Peek().type != TokenType::kInteger) {
      return Error("expected integer " + std::string(what));
    }
    return Advance().value;
  }

  Status ExpectSymbol(TokenType type, std::string_view symbol) {
    if (Peek().type != type) {
      return Error("expected '" + std::string(symbol) + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectEnd() {
    if (Peek().type == TokenType::kSemicolon) Advance();
    if (!AtEnd()) return Error("trailing input after statement");
    return Status::OK();
  }

  Status Error(std::string message) const {
    return Status::ParseError(std::move(message) + " at offset " +
                              std::to_string(Peek().position) +
                              (Peek().text.empty() ? std::string()
                                                   : " (got '" + Peek().text +
                                                         "')"));
  }

 private:
  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

Result<StatementAst> ParseSelect(Cursor* cur) {
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("SELECT"));
  SelectAst ast;
  CDPD_ASSIGN_OR_RETURN(ast.select_column,
                        cur->ExpectIdentifier("select column"));
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("FROM"));
  CDPD_ASSIGN_OR_RETURN(ast.table, cur->ExpectIdentifier("table name"));
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("WHERE"));
  CDPD_ASSIGN_OR_RETURN(ast.where_column,
                        cur->ExpectIdentifier("predicate column"));
  if (cur->PeekKeyword("BETWEEN")) {
    cur->Advance();
    ast.is_range = true;
    CDPD_ASSIGN_OR_RETURN(ast.where_lo, cur->ExpectInteger("lower bound"));
    CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("AND"));
    CDPD_ASSIGN_OR_RETURN(ast.where_hi, cur->ExpectInteger("upper bound"));
    if (ast.where_lo > ast.where_hi) {
      return cur->Error("BETWEEN bounds out of order");
    }
  } else {
    CDPD_RETURN_IF_ERROR(cur->ExpectSymbol(TokenType::kEquals, "="));
    CDPD_ASSIGN_OR_RETURN(ast.where_value, cur->ExpectInteger("literal"));
  }
  CDPD_RETURN_IF_ERROR(cur->ExpectEnd());
  return StatementAst(std::move(ast));
}

Result<StatementAst> ParseUpdate(Cursor* cur) {
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("UPDATE"));
  UpdateAst ast;
  CDPD_ASSIGN_OR_RETURN(ast.table, cur->ExpectIdentifier("table name"));
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("SET"));
  CDPD_ASSIGN_OR_RETURN(ast.set_column, cur->ExpectIdentifier("set column"));
  CDPD_RETURN_IF_ERROR(cur->ExpectSymbol(TokenType::kEquals, "="));
  CDPD_ASSIGN_OR_RETURN(ast.set_value, cur->ExpectInteger("literal"));
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("WHERE"));
  CDPD_ASSIGN_OR_RETURN(ast.where_column,
                        cur->ExpectIdentifier("predicate column"));
  CDPD_RETURN_IF_ERROR(cur->ExpectSymbol(TokenType::kEquals, "="));
  CDPD_ASSIGN_OR_RETURN(ast.where_value, cur->ExpectInteger("literal"));
  CDPD_RETURN_IF_ERROR(cur->ExpectEnd());
  return StatementAst(std::move(ast));
}

Result<StatementAst> ParseInsert(Cursor* cur) {
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("INSERT"));
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("INTO"));
  InsertAst ast;
  CDPD_ASSIGN_OR_RETURN(ast.table, cur->ExpectIdentifier("table name"));
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("VALUES"));
  CDPD_RETURN_IF_ERROR(cur->ExpectSymbol(TokenType::kLeftParen, "("));
  for (;;) {
    CDPD_ASSIGN_OR_RETURN(int64_t value, cur->ExpectInteger("value"));
    ast.values.push_back(value);
    if (cur->Peek().type == TokenType::kComma) {
      cur->Advance();
      continue;
    }
    break;
  }
  CDPD_RETURN_IF_ERROR(cur->ExpectSymbol(TokenType::kRightParen, ")"));
  CDPD_RETURN_IF_ERROR(cur->ExpectEnd());
  return StatementAst(std::move(ast));
}

Result<std::vector<std::string>> ParseColumnList(Cursor* cur) {
  CDPD_RETURN_IF_ERROR(cur->ExpectSymbol(TokenType::kLeftParen, "("));
  std::vector<std::string> columns;
  for (;;) {
    CDPD_ASSIGN_OR_RETURN(std::string column,
                          cur->ExpectIdentifier("column name"));
    columns.push_back(std::move(column));
    if (cur->Peek().type == TokenType::kComma) {
      cur->Advance();
      continue;
    }
    break;
  }
  CDPD_RETURN_IF_ERROR(cur->ExpectSymbol(TokenType::kRightParen, ")"));
  return columns;
}

Result<StatementAst> ParseCreateIndex(Cursor* cur) {
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("CREATE"));
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("INDEX"));
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("ON"));
  CreateIndexAst ast;
  CDPD_ASSIGN_OR_RETURN(ast.table, cur->ExpectIdentifier("table name"));
  CDPD_ASSIGN_OR_RETURN(ast.columns, ParseColumnList(cur));
  CDPD_RETURN_IF_ERROR(cur->ExpectEnd());
  return StatementAst(std::move(ast));
}

Result<StatementAst> ParseDropIndex(Cursor* cur) {
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("DROP"));
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("INDEX"));
  CDPD_RETURN_IF_ERROR(cur->ExpectKeyword("ON"));
  DropIndexAst ast;
  CDPD_ASSIGN_OR_RETURN(ast.table, cur->ExpectIdentifier("table name"));
  CDPD_ASSIGN_OR_RETURN(ast.columns, ParseColumnList(cur));
  CDPD_RETURN_IF_ERROR(cur->ExpectEnd());
  return StatementAst(std::move(ast));
}

Result<StatementAst> ParseOne(Cursor* cur) {
  if (cur->PeekKeyword("SELECT")) return ParseSelect(cur);
  if (cur->PeekKeyword("UPDATE")) return ParseUpdate(cur);
  if (cur->PeekKeyword("INSERT")) return ParseInsert(cur);
  if (cur->PeekKeyword("CREATE")) return ParseCreateIndex(cur);
  if (cur->PeekKeyword("DROP")) return ParseDropIndex(cur);
  return cur->Error("expected SELECT, UPDATE, INSERT, CREATE or DROP");
}

}  // namespace

Result<StatementAst> ParseStatement(std::string_view sql) {
  CDPD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Cursor cur(tokens);
  if (cur.AtEnd()) return Status::ParseError("empty statement");
  return ParseOne(&cur);
}

Result<std::vector<StatementAst>> ParseScript(std::string_view sql) {
  std::vector<StatementAst> statements;
  for (const std::string& piece : Split(sql, ';')) {
    if (Trim(piece).empty()) continue;
    CDPD_ASSIGN_OR_RETURN(StatementAst ast, ParseStatement(piece));
    statements.push_back(std::move(ast));
  }
  return statements;
}

}  // namespace cdpd
