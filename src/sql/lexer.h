#ifndef CDPD_SQL_LEXER_H_
#define CDPD_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cdpd {

/// Token categories of the SQL subset (see sql/parser.h for the
/// grammar).
enum class TokenType {
  kIdentifier,   // column / table / index names (also keywords, which
                 // the parser matches case-insensitively by text)
  kInteger,      // [-]?[0-9]+
  kLeftParen,    // (
  kRightParen,   // )
  kComma,        // ,
  kEquals,       // =
  kStar,         // *
  kSemicolon,    // ;
  kEnd,          // end of input sentinel
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // Raw text (identifier spelling).
  int64_t value = 0;    // For kInteger.
  size_t position = 0;  // Byte offset in the input, for error messages.

  bool operator==(const Token& other) const = default;
};

/// Tokenizes `sql`. Returns ParseError on any character outside the
/// dialect or an out-of-range integer literal. The result always ends
/// with a kEnd token.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace cdpd

#endif  // CDPD_SQL_LEXER_H_
