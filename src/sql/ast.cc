#include "sql/ast.h"

#include "common/string_util.h"

namespace cdpd {

namespace {

std::string JoinValues(const std::vector<int64_t>& values) {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (int64_t v : values) parts.push_back(std::to_string(v));
  return Join(parts, ", ");
}

struct AstPrinter {
  std::string operator()(const SelectAst& s) const {
    std::string out = "SELECT " + s.select_column + " FROM " + s.table +
                      " WHERE " + s.where_column;
    if (s.is_range) {
      out += " BETWEEN " + std::to_string(s.where_lo) + " AND " +
             std::to_string(s.where_hi);
    } else {
      out += " = " + std::to_string(s.where_value);
    }
    return out;
  }
  std::string operator()(const UpdateAst& s) const {
    return "UPDATE " + s.table + " SET " + s.set_column + " = " +
           std::to_string(s.set_value) + " WHERE " + s.where_column + " = " +
           std::to_string(s.where_value);
  }
  std::string operator()(const InsertAst& s) const {
    return "INSERT INTO " + s.table + " VALUES (" + JoinValues(s.values) + ")";
  }
  std::string operator()(const CreateIndexAst& s) const {
    return "CREATE INDEX ON " + s.table + " (" + Join(s.columns, ", ") + ")";
  }
  std::string operator()(const DropIndexAst& s) const {
    return "DROP INDEX ON " + s.table + " (" + Join(s.columns, ", ") + ")";
  }
};

}  // namespace

std::string AstToString(const StatementAst& ast) {
  return std::visit(AstPrinter{}, ast);
}

}  // namespace cdpd
