#ifndef CDPD_COMMON_LOG_H_
#define CDPD_COMMON_LOG_H_

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cdpd {

/// Compile-time kill switch: building with -DCDPD_DISABLE_LOGGING
/// turns every CDPD_LOG site into dead code the compiler removes. The
/// default build keeps the sites, which cost one pointer test when no
/// logger is injected — the same zero-overhead contract as
/// MetricsRegistry and Tracer (asserted by bench_parallel_whatif).
#if defined(CDPD_DISABLE_LOGGING)
inline constexpr bool kLoggingCompiledIn = false;
#else
inline constexpr bool kLoggingCompiledIn = true;
#endif

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

std::string_view LogLevelToString(LogLevel level);

/// One structured field of a log event. Construction is cheap (no
/// allocation for numeric fields); keys must be string literals or
/// otherwise outlive the Log() call — the field only borrows them.
struct LogField {
  enum class Kind { kInt, kDouble, kBool, kString };

  LogField(std::string_view key, int64_t value)
      : key(key), kind(Kind::kInt), int_value(value) {}
  LogField(std::string_view key, int value)
      : key(key), kind(Kind::kInt), int_value(value) {}
  LogField(std::string_view key, size_t value)
      : key(key), kind(Kind::kInt), int_value(static_cast<int64_t>(value)) {}
  LogField(std::string_view key, double value)
      : key(key), kind(Kind::kDouble), double_value(value) {}
  LogField(std::string_view key, bool value)
      : key(key), kind(Kind::kBool), bool_value(value) {}
  LogField(std::string_view key, std::string_view value)
      : key(key), kind(Kind::kString), string_value(value) {}
  LogField(std::string_view key, const char* value)
      : key(key), kind(Kind::kString), string_value(value) {}

  std::string_view key;
  Kind kind;
  int64_t int_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
  std::string_view string_value;
};

/// A leveled, thread-safe structured logger that accumulates one JSON
/// object per event (JSONL). Each line carries a microsecond timestamp
/// relative to the logger's construction, the level, a process-wide
/// dense thread number, the event name, and the structured fields:
///
///   {"ts_us":1234,"level":"info","thread":0,"event":"solve.start","k":2}
///
/// Lines are buffered in memory; export the log with ToJsonl() (or
/// drain incrementally with TakeLines()). Logging is safe from any
/// thread — the line is rendered outside the lock and appended under
/// it — and never influences what the instrumented code computes.
///
/// Injection contract: instrumentation sites take a Logger* and treat
/// null as disabled, so an uninstrumented run pays one pointer test
/// per site (use the CDPD_LOG macro, which also skips rendering for
/// events below the minimum level).
class Logger {
 public:
  explicit Logger(LogLevel min_level = LogLevel::kInfo)
      : min_level_(min_level),
        epoch_(std::chrono::steady_clock::now()) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// True when events of `level` are recorded. Checked by CDPD_LOG
  /// before any field is constructed.
  bool enabled(LogLevel level) const { return level >= min_level_; }
  LogLevel min_level() const { return min_level_; }

  /// Records one event. Fields appear in the given order after the
  /// fixed ts_us/level/thread/event prefix. Events below the minimum
  /// level are dropped (CDPD_LOG avoids even the call).
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields = {});

  /// Number of events recorded (and not yet taken) so far.
  size_t num_events() const;

  /// The whole buffered log as newline-terminated JSONL.
  std::string ToJsonl() const;

  /// Drains the buffer: returns the accumulated lines and leaves the
  /// logger empty (for incremental flushing to a file).
  std::vector<std::string> TakeLines();

 private:
  const LogLevel min_level_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

/// RAII thread-scoped log context: while alive, every log line emitted
/// *from this thread* (whatever the logger) carries `key`:`value` right
/// after the fixed prefix — how the server stamps a request id onto
/// each line a request produces without threading the id through every
/// call signature. Contexts nest (inner-most last); work handed to
/// pool threads does not inherit the caller's context.
class LogContext {
 public:
  LogContext(std::string_view key, std::string_view value);
  ~LogContext();
  LogContext(const LogContext&) = delete;
  LogContext& operator=(const LogContext&) = delete;

  /// This thread's active context fields, outermost first.
  static const std::vector<std::pair<std::string, std::string>>& Fields();
};

/// Logs a structured event iff `logger` is non-null and the level is
/// enabled; compiles to nothing under -DCDPD_DISABLE_LOGGING. The
/// variadic part lists the structured fields as braced pairs:
///
///   CDPD_LOG(logger, LogLevel::kInfo, "solve.start",
///            {"method", "optimal"}, {"k", k});
///
/// The disabled path (null logger) is a single pointer test; fields
/// are only constructed when the event will actually be recorded.
#if defined(CDPD_DISABLE_LOGGING)
#define CDPD_LOG(logger, level, event, ...) \
  do {                                      \
  } while (0)
#else
#define CDPD_LOG(logger, level, event, ...)                      \
  do {                                                           \
    ::cdpd::Logger* cdpd_log_logger_ = (logger);                 \
    if (cdpd_log_logger_ != nullptr &&                           \
        cdpd_log_logger_->enabled(level)) {                      \
      cdpd_log_logger_->Log((level), (event), {__VA_ARGS__});    \
    }                                                            \
  } while (0)
#endif

}  // namespace cdpd

#endif  // CDPD_COMMON_LOG_H_
