#ifndef CDPD_COMMON_STATUS_H_
#define CDPD_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cdpd {

/// Error categories used across the library. The library does not throw
/// exceptions; every fallible operation returns a Status (or a Result<T>,
/// see common/result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kDeadlineExceeded,
  kNotSupported,
  kInternal,
  kParseError,
};

/// Returns a stable human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value in the style of absl::Status /
/// rocksdb::Status. Copyable and movable; the OK status carries no
/// allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" for success, "<Code>: <message>" otherwise.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace cdpd

/// Propagates a non-OK Status from the current function.
#define CDPD_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::cdpd::Status _cdpd_status = (expr);         \
    if (!_cdpd_status.ok()) return _cdpd_status;  \
  } while (false)

#endif  // CDPD_COMMON_STATUS_H_
