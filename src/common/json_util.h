#ifndef CDPD_COMMON_JSON_UTIL_H_
#define CDPD_COMMON_JSON_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace cdpd {

/// Appends `s` to `out` with the JSON-significant characters escaped
/// (quote, backslash, control characters). No surrounding quotes.
inline void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

/// `s` as a quoted, escaped JSON string literal.
inline std::string JsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  AppendJsonEscaped(&out, s);
  out.push_back('"');
  return out;
}

/// A double as a JSON number. %.17g round-trips every finite double
/// exactly (the artifacts are diffed and replayed, so full precision
/// matters); non-finite values have no JSON literal and become null.
inline std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace cdpd

#endif  // CDPD_COMMON_JSON_UTIL_H_
