#ifndef CDPD_COMMON_MATH_UTIL_H_
#define CDPD_COMMON_MATH_UTIL_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace cdpd {

/// `*out = a * b` without overflow, else false (and `*out` unspecified).
/// The graph-sizing arithmetic (`num_stages * (k+1) * num_configs`
/// with 2^m configurations) overflows int64_t long before allocation
/// would fail, so every size computation goes through these.
inline bool CheckedMul(int64_t a, int64_t b, int64_t* out) {
  return !__builtin_mul_overflow(a, b, out);
}

/// `*out = a + b` without overflow, else false (and `*out` unspecified).
inline bool CheckedAdd(int64_t a, int64_t b, int64_t* out) {
  return !__builtin_add_overflow(a, b, out);
}

/// a * b for non-negative operands, clamped to INT64_MAX on overflow.
inline int64_t SaturatingMul(int64_t a, int64_t b) {
  assert(a >= 0 && b >= 0);
  int64_t out = 0;
  return CheckedMul(a, b, &out) ? out
                                : std::numeric_limits<int64_t>::max();
}

/// a + b for non-negative operands, clamped to INT64_MAX on overflow.
inline int64_t SaturatingAdd(int64_t a, int64_t b) {
  assert(a >= 0 && b >= 0);
  int64_t out = 0;
  return CheckedAdd(a, b, &out) ? out
                                : std::numeric_limits<int64_t>::max();
}

/// ceil(a / b) for non-negative a and positive b.
constexpr int64_t CeilDiv(int64_t a, int64_t b) {
  assert(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

/// Number of levels of a tree with `leaves` leaf nodes and the given
/// fan-out, i.e. the number of page reads on a root-to-leaf descent
/// (including the leaf). Returns 1 for leaves <= 1.
inline int64_t TreeHeight(int64_t leaves, int64_t fanout) {
  assert(fanout >= 2);
  int64_t height = 1;
  int64_t nodes = leaves;
  while (nodes > 1) {
    nodes = CeilDiv(nodes, fanout);
    ++height;
  }
  return height;
}

/// log2(x) for x >= 1 (returns 0 for x <= 1).
inline double Log2(double x) { return x <= 1.0 ? 0.0 : std::log2(x); }

/// n-choose-k as a double (used only for the §5 worst-case analysis in
/// docs/benches; saturates instead of overflowing).
inline double BinomialCoefficient(int64_t n, int64_t k) {
  if (k < 0 || k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (int64_t i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

}  // namespace cdpd

#endif  // CDPD_COMMON_MATH_UTIL_H_
