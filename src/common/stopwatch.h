#ifndef CDPD_COMMON_STOPWATCH_H_
#define CDPD_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace cdpd {

/// Monotonic wall-clock stopwatch used for the optimizer-runtime and
/// workload-execution measurements (Figures 3 and 4).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cdpd

#endif  // CDPD_COMMON_STOPWATCH_H_
