#ifndef CDPD_COMMON_PROGRESS_H_
#define CDPD_COMMON_PROGRESS_H_

#include <functional>
#include <limits>

namespace cdpd {

/// One progress observation from a running solve. Phases follow the
/// solver's trace-span names ("whatif.precompute", "kaware.dp",
/// "merging", ...); `fraction` is the phase's completed share in
/// [0, 1]; `best_cost` is the cheapest cost the phase can currently
/// prove feasible, or NaN when the phase has no such notion yet.
struct ProgressUpdate {
  /// Phase name; a string literal (borrowed, valid only for the
  /// duration of the callback).
  const char* phase = "";
  double fraction = 0.0;
  double best_cost = std::numeric_limits<double>::quiet_NaN();
};

/// Progress callback, invoked at the solvers' existing Budget poll
/// sites (between DP stages, merging rounds, ranked paths, and
/// precompute shards). MUST be thread-safe: precompute shards complete
/// on worker threads, so concurrent invocations happen whenever the
/// solve is parallel. The callback observes only — it must not block
/// for long (it runs inside the solve) and cannot influence results.
using ProgressFn = std::function<void(const ProgressUpdate&)>;

/// The null-tolerant report every instrumentation site uses: a null
/// (or empty) callback costs one pointer test plus one bool test —
/// the same zero-overhead contract as the observability sinks.
inline void ReportProgress(
    const ProgressFn* fn, const char* phase, double fraction,
    double best_cost = std::numeric_limits<double>::quiet_NaN()) {
  if (fn != nullptr && *fn) {
    (*fn)(ProgressUpdate{phase, fraction, best_cost});
  }
}

}  // namespace cdpd

#endif  // CDPD_COMMON_PROGRESS_H_
