#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <set>
#include <thread>

namespace cdpd {

namespace {

/// Bucket index of a value: 0 for v <= 1, else 1 + floor(log2(v)),
/// clamped to the last bucket.
size_t BucketIndex(double value) {
  if (!(value > 1.0)) return 0;  // Also catches NaN.
  const int exponent = std::ilogb(value);
  // (2^{e}, 2^{e+1}] lands in bucket e + 1 unless value is an exact
  // power of two, which belongs to bucket e.
  size_t index = static_cast<size_t>(exponent) + 1;
  if (std::ldexp(1.0, exponent) == value) index = static_cast<size_t>(exponent);
  if (index >= 64) index = 63;
  return index;
}

/// Representative value of a bucket (geometric midpoint of its range).
double BucketValue(size_t index) {
  if (index == 0) return 1.0;
  const double lo = std::ldexp(1.0, static_cast<int>(index) - 1);
  const double hi = std::ldexp(1.0, static_cast<int>(index));
  return (lo + hi) / 2.0;
}

void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  // Metric names are library-chosen identifiers (letters, digits,
  // dots); escape the two JSON-significant characters anyway.
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->append("\": ");
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string PrometheusMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

Histogram::Stripe& Histogram::StripeForThisThread() {
  const size_t h = std::hash<std::thread::id>()(std::this_thread::get_id());
  return stripes_[h % kStripes];
}

void Histogram::Record(double value) {
  if (value < 0.0) value = 0.0;
  Stripe& stripe = StripeForThisThread();
  std::lock_guard<std::mutex> lock(stripe.mu);
  ++stripe.buckets[BucketIndex(value)];
  ++stripe.count;
  stripe.sum += value;
  if (value < stripe.min) stripe.min = value;
  if (value > stripe.max) stripe.max = value;
}

void Histogram::Record(double value, std::string_view exemplar_id) {
  Record(value);
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  exemplar_id_.assign(exemplar_id);
  exemplar_value_ = value < 0.0 ? 0.0 : value;
}

HistogramStats Histogram::Snapshot() const {
  std::array<int64_t, kBuckets> merged{};
  HistogramStats stats;
  stats.min = std::numeric_limits<double>::infinity();
  stats.max = -std::numeric_limits<double>::infinity();
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (size_t b = 0; b < kBuckets; ++b) merged[b] += stripe.buckets[b];
    stats.count += stripe.count;
    stats.sum += stripe.sum;
    if (stripe.min < stats.min) stats.min = stripe.min;
    if (stripe.max > stats.max) stats.max = stripe.max;
  }
  if (stats.count == 0) {
    stats.min = 0.0;
    stats.max = 0.0;
    return stats;
  }
  auto percentile = [&](double q) {
    const int64_t rank = static_cast<int64_t>(
        std::ceil(q * static_cast<double>(stats.count)));
    int64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += merged[b];
      if (seen >= rank) {
        // Clamp the estimate to the observed range so p50 of a
        // constant distribution reports that constant.
        return std::min(std::max(BucketValue(b), stats.min), stats.max);
      }
    }
    return stats.max;
  };
  stats.p50 = percentile(0.50);
  stats.p95 = percentile(0.95);
  stats.p99 = percentile(0.99);
  {
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    stats.exemplar_id = exemplar_id_;
    stats.exemplar_value = exemplar_value_;
  }
  return stats;
}

int64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + FormatDouble(h.sum) +
           ", \"min\": " + FormatDouble(h.min) +
           ", \"max\": " + FormatDouble(h.max) +
           ", \"p50\": " + FormatDouble(h.p50) +
           ", \"p95\": " + FormatDouble(h.p95) +
           ", \"p99\": " + FormatDouble(h.p99) + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "%-44s %16lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(line, sizeof(line), "%-44s %16lld  (gauge)\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "%-44s count=%lld sum=%.6g min=%.6g p50=%.6g p95=%.6g "
                  "p99=%.6g max=%.6g\n",
                  name.c_str(), static_cast<long long>(h.count), h.sum, h.min,
                  h.p50, h.p95, h.p99, h.max);
    out += line;
  }
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  std::set<std::string> used;
  // Sanitized names can collide (distinct registry names mapping to
  // one Prometheus name, or one name reused across kinds); a numeric
  // suffix keeps every emitted series unique instead of emitting a
  // duplicate `# TYPE`.
  auto unique_name = [&used](std::string name) {
    std::string candidate = name;
    for (int suffix = 2; !used.insert(candidate).second; ++suffix) {
      candidate = name + "_" + std::to_string(suffix);
    }
    return candidate;
  };
  // A summary owns three series that must share a base name (`name`,
  // `name_sum`, `name_count`), so a base is only usable when all three
  // are free; reserving the trio keeps a counter or gauge that
  // sanitizes to e.g. `..._sum` from colliding with the summary's own
  // series (and vice versa).
  auto unique_summary_name = [&used](const std::string& name) {
    std::string candidate = name;
    for (int suffix = 2;; ++suffix) {
      if (used.count(candidate) == 0 && used.count(candidate + "_sum") == 0 &&
          used.count(candidate + "_count") == 0) {
        used.insert(candidate);
        used.insert(candidate + "_sum");
        used.insert(candidate + "_count");
        return candidate;
      }
      candidate = name + "_" + std::to_string(suffix);
    }
  };
  for (const auto& [name, value] : counters) {
    const std::string prom = unique_name(PrometheusMetricName(name));
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string prom = unique_name(PrometheusMetricName(name));
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string prom = unique_summary_name(PrometheusMetricName(name));
    out += "# TYPE " + prom + " summary\n";
    out += prom + "{quantile=\"0.5\"} " + FormatDouble(h.p50) + "\n";
    out += prom + "{quantile=\"0.95\"} " + FormatDouble(h.p95) + "\n";
    out += prom + "{quantile=\"0.99\"} " + FormatDouble(h.p99) + "\n";
    out += prom + "_sum " + FormatDouble(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
    const std::string prom_min = unique_name(prom + "_min");
    out += "# TYPE " + prom_min + " gauge\n";
    out += prom_min + " " + FormatDouble(h.min) + "\n";
    const std::string prom_max = unique_name(prom + "_max");
    out += "# TYPE " + prom_max + " gauge\n";
    out += prom_max + " " + FormatDouble(h.max) + "\n";
    if (!h.exemplar_id.empty()) {
      // Comment line (not HELP/TYPE), ignored by scrapers: the last
      // sample's request id, resolvable via the server's /trace?id=.
      std::string id;
      for (char c : h.exemplar_id) {
        if (c == '"' || c == '\\' || c == '\n') continue;
        id.push_back(c);
      }
      out += "# exemplar " + prom + " request_id=\"" + id + "\" value=" +
             FormatDouble(h.exemplar_value) + "\n";
    }
  }
  return out;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, metric] : counters_) {
    snapshot.counters.emplace(name, metric->Value());
  }
  for (const auto& [name, metric] : gauges_) {
    snapshot.gauges.emplace(name, metric->Value());
  }
  for (const auto& [name, metric] : histograms_) {
    snapshot.histograms.emplace(name, metric->Snapshot());
  }
  return snapshot;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return global;
}

}  // namespace cdpd
