#ifndef CDPD_COMMON_RESOURCE_TRACKER_H_
#define CDPD_COMMON_RESOURCE_TRACKER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

#include "common/metrics.h"

namespace cdpd {

/// The big allocation classes of the design solvers, each tracked as
/// its own current/peak byte gauge. The paper's algorithms are
/// space-bound — the k-aware DP costs O(k n 2^{2m}) table entries and
/// the path ranking's enumeration state is worst-case exponential — so
/// the tracker names exactly those structures.
enum class MemComponent : int {
  kCostMatrix = 0,     // What-if dense EXEC/TRANS tables.
  kKAwareTable,        // k-aware DP dist/next/parent layers.
  kSequenceGraph,      // Explicit sequence graph + unconstrained DP.
  kRankingQueue,       // Path ranker per-node path/candidate heaps.
  kCandidates,         // GREEDY-SEQ reduced candidate set.
  kMergingTable,       // Design-merging penalty tables.
  kCostCache,          // Persistent what-if cost cache growth.
};
inline constexpr int kNumMemComponents = 7;

/// Stable short name ("cost_matrix", "kaware_table", ...), used as the
/// metrics suffix and the JSON key.
std::string_view MemComponentName(MemComponent component);

/// Thread-safe per-component current/peak byte accounting with an
/// optional soft limit, shared by one solve's phases. All counters are
/// relaxed atomics: the tracker is statistics plus a cooperative
/// budget flag, never synchronization.
///
/// Two accounting styles feed it:
///  * explicit Reserve/Release (or the RAII ScopedReservation) around
///    allocations whose size is known up front — the DP tables, the
///    dense cost matrix, the merging penalty tables;
///  * TrackingAllocator, a counting std::allocator adapter, for
///    containers that grow unpredictably — the path-ranking queue.
///
/// The limit is *soft*: TryReserve refuses a reservation that would
/// pass it (charging nothing), and any Reserve that lands past the
/// limit trips limit_exceeded(). A Budget holding the tracker then
/// reports Expired() at the solvers' existing poll sites, so an
/// over-budget solve degrades through the same anytime machinery as a
/// deadline — it never overshoots by more than the one block that
/// tripped the flag.
class ResourceTracker {
 public:
  /// No limit: pure accounting.
  ResourceTracker() = default;
  /// Soft byte budget; <= 0 means no limit.
  explicit ResourceTracker(int64_t limit_bytes)
      : limit_bytes_(limit_bytes > 0 ? limit_bytes : 0) {}
  ResourceTracker(const ResourceTracker&) = delete;
  ResourceTracker& operator=(const ResourceTracker&) = delete;

  /// Unconditionally charges `bytes` (the allocation happens whether
  /// or not we are over budget — e.g. a container growth already in
  /// flight). Trips the limit flag when the new total passes the
  /// limit. Safe from any thread; bytes must be >= 0.
  void Reserve(MemComponent component, int64_t bytes);

  /// Returns the charge of a prior Reserve. Never un-trips the limit
  /// flag: expiry is monotone, like a deadline.
  void Release(MemComponent component, int64_t bytes);

  /// Releases min(bytes, current_bytes(component)) and returns the
  /// amount actually released. This is the safe release for shared
  /// structures (the persistent cost cache) that evict entries charged
  /// by *several* trackers over their lifetime: the evicting solve
  /// returns what it is still carrying, clamped so entries charged to
  /// an earlier (possibly dead) tracker can never drive this one's
  /// gauge negative. Like Release, never un-trips the limit flag.
  int64_t ReleaseUpTo(MemComponent component, int64_t bytes);

  /// Pre-allocation gate: charges and returns true when the new total
  /// stays within the limit; otherwise charges *nothing*, trips the
  /// limit flag, and returns false (the caller skips the allocation
  /// and degrades). Always succeeds when no limit is set.
  bool TryReserve(MemComponent component, int64_t bytes);

  int64_t current_bytes(MemComponent component) const {
    return Cell(component).current.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes(MemComponent component) const {
    return Cell(component).peak.load(std::memory_order_relaxed);
  }
  /// Sum over components, tracked as its own gauge so the peak is the
  /// true high-water mark of concurrent reservations, not the sum of
  /// per-component peaks.
  int64_t current_total() const {
    return total_current_.load(std::memory_order_relaxed);
  }
  int64_t peak_total() const {
    return total_peak_.load(std::memory_order_relaxed);
  }

  /// The configured soft budget; 0 = unlimited.
  int64_t limit_bytes() const { return limit_bytes_; }

  /// True once any reservation met the limit. Monotone, relaxed —
  /// cheap enough for the solvers' per-block budget polls.
  bool limit_exceeded() const {
    return limit_exceeded_.load(std::memory_order_relaxed);
  }

  /// Mirrors the tracker into `registry`: per-component
  /// "mem.<component>.peak_bytes" gauges (UpdateMax), the
  /// "mem.peak_bytes_total" gauge, and the "mem.limit_exceeded"
  /// counter. No-op when `registry` is null.
  void PublishTo(MetricsRegistry* registry) const;

 private:
  struct Cell64 {
    std::atomic<int64_t> current{0};
    std::atomic<int64_t> peak{0};
  };
  static void RaiseMax(std::atomic<int64_t>* peak, int64_t value) {
    int64_t seen = peak->load(std::memory_order_relaxed);
    while (value > seen &&
           !peak->compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
    }
  }
  Cell64& Cell(MemComponent component) {
    return components_[static_cast<size_t>(component)];
  }
  const Cell64& Cell(MemComponent component) const {
    return components_[static_cast<size_t>(component)];
  }

  std::array<Cell64, kNumMemComponents> components_;
  std::atomic<int64_t> total_current_{0};
  std::atomic<int64_t> total_peak_{0};
  int64_t limit_bytes_ = 0;  // 0 = no limit.
  std::atomic<bool> limit_exceeded_{false};
};

/// RAII charge against a tracker. The default-constructed / null-
/// tracker reservation is a no-op that reports ok() — the disabled
/// path of an untracked solve costs one pointer test, the same
/// contract as the other observability sinks.
class ScopedReservation {
 public:
  ScopedReservation() = default;
  /// Unconditional charge (see ResourceTracker::Reserve).
  ScopedReservation(ResourceTracker* tracker, MemComponent component,
                    int64_t bytes)
      : tracker_(tracker), component_(component), bytes_(bytes), ok_(true) {
    if (tracker_ != nullptr) tracker_->Reserve(component_, bytes_);
  }
  /// Gated charge: ok() is false — and nothing is charged — when the
  /// tracker's limit refused the reservation.
  static ScopedReservation Try(ResourceTracker* tracker,
                               MemComponent component, int64_t bytes) {
    ScopedReservation r;
    r.component_ = component;
    r.bytes_ = bytes;
    if (tracker == nullptr || tracker->TryReserve(component, bytes)) {
      r.tracker_ = tracker;
      r.ok_ = true;
    } else {
      // Refused: nothing was charged, so nothing must be released —
      // tracker_ stays null and the destructor is a no-op.
      r.bytes_ = 0;
      r.ok_ = false;
    }
    return r;
  }

  ScopedReservation(ScopedReservation&& other) noexcept { *this = std::move(other); }
  ScopedReservation& operator=(ScopedReservation&& other) noexcept {
    if (this != &other) {
      ReleaseNow();
      tracker_ = other.tracker_;
      component_ = other.component_;
      bytes_ = other.bytes_;
      ok_ = other.ok_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

  ~ScopedReservation() { ReleaseNow(); }

  /// False only for a Try() the limit refused.
  bool ok() const { return ok_; }
  int64_t bytes() const { return bytes_; }

 private:
  void ReleaseNow() {
    if (tracker_ != nullptr && bytes_ > 0) {
      tracker_->Release(component_, bytes_);
    }
    tracker_ = nullptr;
    bytes_ = 0;
  }

  ResourceTracker* tracker_ = nullptr;
  MemComponent component_ = MemComponent::kCostMatrix;
  int64_t bytes_ = 0;
  bool ok_ = true;  // A default/null reservation is a successful no-op.
};

/// Counting std::allocator adapter: every allocate/deallocate is
/// mirrored into the tracker, so containers that grow unpredictably
/// (the ranking queue) are charged at their true allocated size. The
/// default-constructed allocator (null tracker) counts nothing.
template <typename T>
class TrackingAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  TrackingAllocator() = default;
  TrackingAllocator(ResourceTracker* tracker, MemComponent component)
      : tracker_(tracker), component_(component) {}
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>& other)  // NOLINT(runtime/explicit)
      : tracker_(other.tracker()), component_(other.component()) {}

  T* allocate(size_t n) {
    T* p = std::allocator<T>().allocate(n);
    if (tracker_ != nullptr) {
      tracker_->Reserve(component_, static_cast<int64_t>(n * sizeof(T)));
    }
    return p;
  }
  void deallocate(T* p, size_t n) {
    std::allocator<T>().deallocate(p, n);
    if (tracker_ != nullptr) {
      tracker_->Release(component_, static_cast<int64_t>(n * sizeof(T)));
    }
  }

  ResourceTracker* tracker() const { return tracker_; }
  MemComponent component() const { return component_; }

  template <typename U>
  bool operator==(const TrackingAllocator<U>& other) const {
    return tracker_ == other.tracker() && component_ == other.component();
  }

 private:
  ResourceTracker* tracker_ = nullptr;
  MemComponent component_ = MemComponent::kRankingQueue;
};

/// CPU time consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID),
/// in microseconds; 0 where the platform offers no thread clock.
/// TraceSpan pairs this with its wall clock so a span shows both.
int64_t ThreadCpuTimeMicros();

/// CPU time consumed by the whole process (CLOCK_PROCESS_CPUTIME_ID),
/// in microseconds — covers the worker pool, which a thread clock
/// misses; 0 where unavailable. SolveStats::cpu_seconds is a delta of
/// this across one solve.
int64_t ProcessCpuTimeMicros();

/// Current resident-set size from /proc/self/statm, in bytes; 0 where
/// unavailable (non-Linux).
int64_t CurrentRssBytes();

/// Lifetime peak resident-set size (getrusage ru_maxrss), in bytes; 0
/// where unavailable. Kernel-maintained, so it sees every allocation —
/// including ones the ResourceTracker does not meter. BenchReport
/// records it per artifact (schema v2 "rss_peak_bytes").
int64_t PeakRssBytes();

/// Samples the process's memory into `registry`: "process.rss_bytes"
/// (last sample) and "process.rss_peak_bytes" (running maximum)
/// gauges. No-op when `registry` is null or RSS is unavailable.
void SampleProcessMemory(MetricsRegistry* registry);

}  // namespace cdpd

#endif  // CDPD_COMMON_RESOURCE_TRACKER_H_
