#ifndef CDPD_COMMON_TRACING_H_
#define CDPD_COMMON_TRACING_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/resource_tracker.h"

namespace cdpd {

/// Collects RAII TraceSpans into per-thread buffers and exports them as
/// Chrome trace_event JSON (load in chrome://tracing or Perfetto) or a
/// human-readable indented tree. Span names and categories must be
/// string literals (or otherwise outlive the tracer) — events store
/// the pointers, so the hot path never allocates for a name.
///
/// Thread-safety: spans may start and end on any thread (each thread
/// owns a buffer, guarded by a per-buffer mutex against concurrent
/// export); export may run concurrently with tracing and sees every
/// fully-ended span. Tracing records wall-clock timestamps only — it
/// never influences what the instrumented code computes, so results
/// are identical with tracing on or off.
class Tracer {
 public:
  /// `arg` value meaning "no argument".
  static constexpr int64_t kNoArg = std::numeric_limits<int64_t>::min();

  /// One completed span. `tid` is a dense per-tracer thread number in
  /// buffer-registration order; `depth` is the span nesting depth on
  /// its thread at the time the span opened. `cpu_us` is the CPU time
  /// the owning thread consumed over the span
  /// (CLOCK_THREAD_CPUTIME_ID; 0 where unavailable) — a span whose
  /// cpu_us is far below its duration_us spent its wall time blocked,
  /// not computing.
  struct Event {
    const char* name = "";
    const char* category = "";
    int64_t arg = kNoArg;
    int64_t start_us = 0;
    int64_t duration_us = 0;
    int64_t cpu_us = 0;
    uint32_t tid = 0;
    int32_t depth = 0;
  };

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// All spans ended so far, sorted by (tid, start, -duration).
  std::vector<Event> Events() const;
  size_t num_events() const;

  /// {"traceEvents": [...]} with complete ("ph": "X") events; the
  /// format chrome://tracing, Perfetto, and speedscope ingest.
  std::string ToChromeJson() const;

  /// Indented per-thread span tree with start offsets and durations.
  std::string ToTextTree() const;

  /// `events` as a flat JSON array of span objects ({"name","category",
  /// "start_us","duration_us","cpu_us","tid","depth"[,"arg"]}), in the
  /// given order — the per-request trace summary the server's slow log
  /// and /trace?id= endpoint serve.
  static std::string EventsToJson(const std::vector<Event>& events);

  /// EventsToJson(Events()): every ended span so far as JSON.
  std::string ToJsonSpans() const { return EventsToJson(Events()); }

 private:
  friend class TraceSpan;

  struct ThreadBuffer {
    mutable std::mutex mu;
    uint32_t tid = 0;
    int32_t depth = 0;  // Only touched by the owning thread.
    std::vector<Event> events;
  };

  /// The calling thread's buffer, registered on first use and cached
  /// thread-locally afterwards.
  ThreadBuffer* BufferForThisThread();

  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  const uint64_t id_;  // Process-unique, for the thread-local cache.
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::deque<ThreadBuffer> buffers_;  // Deque: stable addresses.
};

/// RAII span: records [construction, destruction) on `tracer`, or does
/// nothing at all when `tracer` is null — the disabled path is a
/// single pointer test, cheap enough to leave in release hot loops.
class TraceSpan {
 public:
  explicit TraceSpan(Tracer* tracer, const char* name,
                     const char* category = "cdpd",
                     int64_t arg = Tracer::kNoArg)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    name_ = name;
    category_ = category;
    arg_ = arg;
    buffer_ = tracer_->BufferForThisThread();
    depth_ = buffer_->depth++;
    start_cpu_us_ = ThreadCpuTimeMicros();
    start_us_ = tracer_->NowMicros();
  }

  ~TraceSpan() {
    if (tracer_ == nullptr) return;
    const int64_t end_us = tracer_->NowMicros();
    const int64_t cpu_us = ThreadCpuTimeMicros() - start_cpu_us_;
    --buffer_->depth;
    std::lock_guard<std::mutex> lock(buffer_->mu);
    buffer_->events.push_back(Event{name_, category_, arg_, start_us_,
                                    end_us - start_us_,
                                    cpu_us > 0 ? cpu_us : 0, buffer_->tid,
                                    depth_});
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Overrides the span's arg — for counts known only at scope exit
  /// (the recorded event carries the last value set).
  void set_arg(int64_t arg) {
    if (tracer_ != nullptr) arg_ = arg;
  }

 private:
  using Event = Tracer::Event;

  Tracer* tracer_;
  const char* name_ = "";
  const char* category_ = "";
  int64_t arg_ = Tracer::kNoArg;
  Tracer::ThreadBuffer* buffer_ = nullptr;
  int32_t depth_ = 0;
  int64_t start_us_ = 0;
  int64_t start_cpu_us_ = 0;
};

#define CDPD_TRACE_CONCAT_INNER_(a, b) a##b
#define CDPD_TRACE_CONCAT_(a, b) CDPD_TRACE_CONCAT_INNER_(a, b)

/// Opens a scope-lived span. Compiles to nothing under
/// -DCDPD_DISABLE_TRACING (the compile-time no-op sink); otherwise
/// costs one pointer test when the tracer is null.
#if defined(CDPD_DISABLE_TRACING)
#define CDPD_TRACE_SPAN(...) \
  do {                       \
  } while (0)
#else
#define CDPD_TRACE_SPAN(...) \
  ::cdpd::TraceSpan CDPD_TRACE_CONCAT_(cdpd_trace_span_, __LINE__)(__VA_ARGS__)
#endif

}  // namespace cdpd

#endif  // CDPD_COMMON_TRACING_H_
