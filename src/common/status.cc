#include "common/status.h"

namespace cdpd {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace cdpd
