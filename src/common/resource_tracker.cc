#include "common/resource_tracker.h"

#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>  // NOLINT(build/include_order): clock_gettime.
#endif
#if defined(__linux__)
#include <unistd.h>

#include <cstdio>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>  // NOLINT(build/include_order): getrusage.
#endif

namespace cdpd {

std::string_view MemComponentName(MemComponent component) {
  switch (component) {
    case MemComponent::kCostMatrix:
      return "cost_matrix";
    case MemComponent::kKAwareTable:
      return "kaware_table";
    case MemComponent::kSequenceGraph:
      return "sequence_graph";
    case MemComponent::kRankingQueue:
      return "ranking_queue";
    case MemComponent::kCandidates:
      return "candidates";
    case MemComponent::kMergingTable:
      return "merging_table";
    case MemComponent::kCostCache:
      return "cost_cache";
  }
  return "unknown";
}

void ResourceTracker::Reserve(MemComponent component, int64_t bytes) {
  if (bytes <= 0) return;
  Cell64& cell = Cell(component);
  const int64_t component_now =
      cell.current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  RaiseMax(&cell.peak, component_now);
  const int64_t total_now =
      total_current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  RaiseMax(&total_peak_, total_now);
  if (limit_bytes_ > 0 && total_now > limit_bytes_) {
    limit_exceeded_.store(true, std::memory_order_relaxed);
  }
}

void ResourceTracker::Release(MemComponent component, int64_t bytes) {
  if (bytes <= 0) return;
  Cell(component).current.fetch_sub(bytes, std::memory_order_relaxed);
  total_current_.fetch_sub(bytes, std::memory_order_relaxed);
}

int64_t ResourceTracker::ReleaseUpTo(MemComponent component, int64_t bytes) {
  if (bytes <= 0) return 0;
  Cell64& cell = Cell(component);
  // CAS-clamp on the component gauge: concurrent evictors each release
  // only what is actually charged, so the sum of releases never
  // exceeds the sum of reservations.
  int64_t seen = cell.current.load(std::memory_order_relaxed);
  int64_t take = 0;
  do {
    take = seen < bytes ? seen : bytes;
    if (take <= 0) return 0;
  } while (!cell.current.compare_exchange_weak(seen, seen - take,
                                               std::memory_order_relaxed));
  total_current_.fetch_sub(take, std::memory_order_relaxed);
  return take;
}

bool ResourceTracker::TryReserve(MemComponent component, int64_t bytes) {
  if (limit_bytes_ > 0) {
    // The gate is advisory (two threads may both pass and overshoot by
    // one block each); the unconditional Reserve below re-checks the
    // landed total, so the flag still trips.
    const int64_t prospective =
        total_current_.load(std::memory_order_relaxed) + bytes;
    if (prospective > limit_bytes_ || limit_exceeded()) {
      limit_exceeded_.store(true, std::memory_order_relaxed);
      return false;
    }
  }
  Reserve(component, bytes);
  return true;
}

void ResourceTracker::PublishTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  for (int i = 0; i < kNumMemComponents; ++i) {
    const auto component = static_cast<MemComponent>(i);
    const int64_t peak = peak_bytes(component);
    if (peak == 0) continue;
    registry
        ->gauge("mem." + std::string(MemComponentName(component)) +
                ".peak_bytes")
        ->UpdateMax(peak);
  }
  registry->gauge("mem.peak_bytes_total")->UpdateMax(peak_total());
  registry->counter("mem.limit_exceeded")->Add(limit_exceeded() ? 1 : 0);
}

namespace {

#if defined(__unix__) || defined(__APPLE__)
int64_t ClockMicros(clockid_t clock) {
  struct timespec ts;
  if (clock_gettime(clock, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<int64_t>(ts.tv_nsec) / 1'000;
}
#endif

}  // namespace

int64_t ThreadCpuTimeMicros() {
#if (defined(__unix__) || defined(__APPLE__)) && \
    defined(CLOCK_THREAD_CPUTIME_ID)
  return ClockMicros(CLOCK_THREAD_CPUTIME_ID);
#else
  return 0;
#endif
}

int64_t ProcessCpuTimeMicros() {
#if (defined(__unix__) || defined(__APPLE__)) && \
    defined(CLOCK_PROCESS_CPUTIME_ID)
  return ClockMicros(CLOCK_PROCESS_CPUTIME_ID);
#else
  return 0;
#endif
}

int64_t CurrentRssBytes() {
#if defined(__linux__)
  // statm field 2 is the resident page count; no allocation, safe to
  // call from instrumentation paths.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long vm_pages = 0;
  long long rss_pages = 0;
  const int matched = std::fscanf(f, "%lld %lld", &vm_pages, &rss_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<int64_t>(rss_pages) *
         static_cast<int64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss);  // Bytes on macOS.
#else
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux.
#endif
#else
  return 0;
#endif
}

void SampleProcessMemory(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const int64_t rss = CurrentRssBytes();
  if (rss <= 0) return;
  registry->gauge("process.rss_bytes")->Set(rss);
  registry->gauge("process.rss_peak_bytes")->UpdateMax(rss);
}

}  // namespace cdpd
