#include "common/log.h"

#include <atomic>

#include "common/json_util.h"

namespace cdpd {

namespace {

/// Process-wide dense thread numbering, assigned on a thread's first
/// log line. Stable across loggers (unlike Tracer's per-tracer tids)
/// so one process's logs correlate by thread.
int ThisThreadNumber() {
  static std::atomic<int> next{0};
  thread_local const int number = next.fetch_add(1);
  return number;
}

/// The calling thread's context stack (function-local thread_local so
/// construction is lazy and per-thread).
std::vector<std::pair<std::string, std::string>>& ThreadContextStack() {
  thread_local std::vector<std::pair<std::string, std::string>> stack;
  return stack;
}

}  // namespace

LogContext::LogContext(std::string_view key, std::string_view value) {
  ThreadContextStack().emplace_back(std::string(key), std::string(value));
}

LogContext::~LogContext() { ThreadContextStack().pop_back(); }

const std::vector<std::pair<std::string, std::string>>& LogContext::Fields() {
  return ThreadContextStack();
}

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

void Logger::Log(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level)) return;
  const int64_t ts_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  // Render outside the lock; only the append contends.
  std::string line = "{\"ts_us\":" + std::to_string(ts_us) +
                     ",\"level\":" + JsonString(LogLevelToString(level)) +
                     ",\"thread\":" + std::to_string(ThisThreadNumber()) +
                     ",\"event\":" + JsonString(event);
  for (const auto& [key, value] : LogContext::Fields()) {
    line.push_back(',');
    line += JsonString(key);
    line.push_back(':');
    line += JsonString(value);
  }
  for (const LogField& field : fields) {
    line.push_back(',');
    line += JsonString(field.key);
    line.push_back(':');
    switch (field.kind) {
      case LogField::Kind::kInt:
        line += std::to_string(field.int_value);
        break;
      case LogField::Kind::kDouble:
        line += JsonDouble(field.double_value);
        break;
      case LogField::Kind::kBool:
        line += field.bool_value ? "true" : "false";
        break;
      case LogField::Kind::kString:
        line += JsonString(field.string_value);
        break;
    }
  }
  line.push_back('}');
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(std::move(line));
}

size_t Logger::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

std::string Logger::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

std::vector<std::string> Logger::TakeLines() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> taken = std::move(lines_);
  lines_.clear();
  return taken;
}

}  // namespace cdpd
