#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

namespace cdpd {

namespace {

/// Set while a thread is executing inside any pool's WorkerLoop.
thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  Logger* logger = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    logger = logger_;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  CDPD_LOG(logger, LogLevel::kInfo, "threadpool.stop",
           LogField("threads", num_threads()));
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    if (queue_depth_gauge_ != nullptr) {
      const auto depth = static_cast<int64_t>(queue_.size());
      queue_depth_gauge_->Set(depth);
      queue_depth_peak_gauge_->UpdateMax(depth);
    }
  }
  cv_.notify_one();
}

void ThreadPool::EnableMetrics(MetricsRegistry* registry) {
  if constexpr (!kMetricsCompiledIn) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    tasks_counter_ = nullptr;
    queue_depth_gauge_ = nullptr;
    queue_depth_peak_gauge_ = nullptr;
    worker_busy_us_.assign(workers_.size(), nullptr);
    return;
  }
  tasks_counter_ = registry->counter("threadpool.tasks");
  queue_depth_gauge_ = registry->gauge("threadpool.queue_depth");
  queue_depth_peak_gauge_ = registry->gauge("threadpool.queue_depth_peak");
  worker_busy_us_.resize(workers_.size(), nullptr);
  for (size_t i = 0; i < workers_.size(); ++i) {
    worker_busy_us_[i] = registry->counter(
        "threadpool.worker." + std::to_string(i) + ".busy_us");
  }
}

void ThreadPool::EnableLogging(Logger* logger) {
  if constexpr (!kLoggingCompiledIn) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    logger_ = logger;
  }
  CDPD_LOG(logger, LogLevel::kInfo, "threadpool.attach",
           LogField("threads", num_threads()));
}

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("CDPD_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

void ThreadPool::WorkerLoop(size_t worker_index) {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    Counter* tasks_counter = nullptr;
    Counter* busy_counter = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      tasks_counter = tasks_counter_;
      busy_counter = worker_index < worker_busy_us_.size()
                         ? worker_busy_us_[worker_index]
                         : nullptr;
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    if (tasks_counter == nullptr && busy_counter == nullptr) {
      task();
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    const auto busy_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (tasks_counter != nullptr) tasks_counter->Add(1);
    if (busy_counter != nullptr) busy_counter->Add(busy_us);
  }
}

bool ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn,
                 const Budget* budget) {
  if (begin >= end) return true;
  const size_t count = end - begin;
  const int threads = pool == nullptr ? 1 : pool->num_threads();
  // Serial fallback: no pool, one worker, nothing to amortize, or a
  // nested call from inside a worker (re-entering the pool could
  // deadlock once every worker blocks on a nested wait).
  if (threads <= 1 || count == 1 || ThreadPool::InWorkerThread()) {
    for (size_t i = begin; i < end; ++i) {
      if (BudgetExpired(budget)) return false;
      fn(i);
    }
    return true;
  }

  // Shared dynamic chunking: tasks pull chunk numbers from an atomic
  // counter, so load balances whatever the per-index cost. The caller
  // participates too — completion never depends on a worker being
  // free.
  const size_t num_tasks =
      std::min(count, static_cast<size_t>(threads));
  const size_t chunk =
      std::max<size_t>(1, count / (static_cast<size_t>(threads) * 8));
  struct Shared {
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> pending{0};
    std::atomic<bool> expired{false};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;  // Guarded by mu (first error wins).
  };
  auto shared = std::make_shared<Shared>();
  shared->pending.store(num_tasks, std::memory_order_relaxed);

  auto run_chunks = [shared, begin, end, chunk, budget, &fn] {
    try {
      for (;;) {
        const size_t c =
            shared->next_chunk.fetch_add(1, std::memory_order_relaxed);
        const size_t lo = begin + c * chunk;
        if (lo >= end) break;
        // Budget poll between chunks: once one task sees expiry, every
        // task abandons its remaining chunks (the chunk in flight on
        // another thread still finishes). Polled only when a chunk is
        // left to run, so a budget that expires after the last chunk
        // was claimed does not mark a fully-run loop incomplete.
        if (shared->expired.load(std::memory_order_relaxed)) break;
        if (BudgetExpired(budget)) {
          shared->expired.store(true, std::memory_order_relaxed);
          break;
        }
        const size_t hi = std::min(end, lo + chunk);
        for (size_t i = lo; i < hi; ++i) fn(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(shared->mu);
      if (!shared->error) shared->error = std::current_exception();
    }
  };

  // num_tasks - 1 pool tasks; the calling thread is the last "task".
  for (size_t t = 0; t + 1 < num_tasks; ++t) {
    pool->Submit([shared, run_chunks] {
      run_chunks();
      if (shared->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(shared->mu);
        shared->done_cv.notify_all();
      }
    });
  }
  run_chunks();
  if (shared->pending.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    std::unique_lock<std::mutex> lock(shared->mu);
    shared->done_cv.wait(lock, [&shared] {
      return shared->pending.load(std::memory_order_acquire) == 0;
    });
  }
  if (shared->error) std::rethrow_exception(shared->error);
  return !shared->expired.load(std::memory_order_relaxed);
}

}  // namespace cdpd
