#ifndef CDPD_COMMON_OBSERVABILITY_H_
#define CDPD_COMMON_OBSERVABILITY_H_

#include "common/log.h"
#include "common/metrics.h"
#include "common/progress.h"
#include "common/tracing.h"

namespace cdpd {

/// The four observability injection points every solve accepts, folded
/// into one value so they travel together: a metrics registry, a
/// Chrome-trace tracer, a structured JSONL logger, and a progress
/// callback. All optional, all borrowed (they must outlive the call
/// they are passed to), all observational only — results are
/// byte-identical with or without any of them, for any thread count.
///
/// SolveOptions and AdvisorOptions embed one of these for per-call
/// injection; SolverSession holds one as the session-wide default and
/// merges it under each call's sinks with OrElse(). A default
/// Observability{} disables everything at the cost of one pointer test
/// per instrumentation site.
struct Observability {
  /// Receives the "solver.*" counters (via SolveStats::PublishTo), the
  /// what-if engine's "whatif.*" metrics, and the worker pool's
  /// "threadpool.*" metrics.
  MetricsRegistry* metrics = nullptr;
  /// Records a top-level solve span plus per-stage solver spans.
  Tracer* tracer = nullptr;
  /// Receives phase start/end events, candidate-set sizes, anytime
  /// fallback warnings, and deadline hits from every method. Null =
  /// disabled; each site then costs one pointer test (and the
  /// CDPD_DISABLE_LOGGING build removes the sites outright).
  Logger* logger = nullptr;
  /// Invoked at the solvers' budget poll sites (precompute shards, DP
  /// stages, merging rounds, ranked paths). MUST be thread-safe —
  /// precompute shards report from worker threads. Empty = disabled.
  ProgressFn progress;

  /// This set of sinks with every unset slot filled from `fallback` —
  /// how SolverSession layers its session-wide defaults under a call's
  /// own injections (the call's non-null sinks always win).
  Observability OrElse(const Observability& fallback) const {
    Observability merged = *this;
    if (merged.metrics == nullptr) merged.metrics = fallback.metrics;
    if (merged.tracer == nullptr) merged.tracer = fallback.tracer;
    if (merged.logger == nullptr) merged.logger = fallback.logger;
    if (!merged.progress) merged.progress = fallback.progress;
    return merged;
  }
};

}  // namespace cdpd

#endif  // CDPD_COMMON_OBSERVABILITY_H_
