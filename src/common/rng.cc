#include "common/rng.h"

#include <cassert>

namespace cdpd {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

size_t Rng::PickWeighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;  // Floating-point edge: land on the last bucket.
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace cdpd
