#ifndef CDPD_COMMON_METRICS_H_
#define CDPD_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace cdpd {

/// Compile-time kill switch: building with -DCDPD_DISABLE_METRICS
/// turns every instrumentation site guarded by `if constexpr
/// (kMetricsCompiledIn)` into dead code the compiler removes. The
/// default build keeps the sites, which cost one pointer test when no
/// registry is injected (the zero-overhead-when-disabled guarantee
/// bench_parallel_whatif asserts).
#if defined(CDPD_DISABLE_METRICS)
inline constexpr bool kMetricsCompiledIn = false;
#else
inline constexpr bool kMetricsCompiledIn = true;
#endif

/// A monotonically increasing atomic counter. Relaxed ordering: the
/// counters are statistics, not synchronization.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A last-write-wins (or running-maximum) atomic gauge. A fresh gauge
/// is *unset* (reads as 0) rather than holding a real 0, so the first
/// UpdateMax records its value even when that value is negative — with
/// a zero initializer a negative peak could never be observed.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Adjusts the gauge by `delta` (an unset gauge counts as 0) — the
  /// increment/decrement pair an in-flight-requests gauge needs.
  void Add(int64_t delta) {
    int64_t current = value_.load(std::memory_order_relaxed);
    for (;;) {
      const int64_t base = current == kUnset ? 0 : current;
      if (value_.compare_exchange_weak(current, base + delta,
                                       std::memory_order_relaxed)) {
        return;
      }
    }
  }
  /// Raises the gauge to `v` if it is currently lower or unset (peak
  /// tracking over all recorded values, whatever their sign).
  void UpdateMax(int64_t v) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while ((current == kUnset || v > current) &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
  }
  /// The recorded value, or 0 when nothing was ever recorded. (The
  /// unset sentinel is int64_t min, so Set(int64_t min) reads as 0 —
  /// an acceptable corner for statistics gauges.)
  int64_t Value() const {
    const int64_t v = value_.load(std::memory_order_relaxed);
    return v == kUnset ? 0 : v;
  }

 private:
  static constexpr int64_t kUnset = std::numeric_limits<int64_t>::min();
  std::atomic<int64_t> value_{kUnset};
};

/// Aggregated view of a histogram at snapshot time. Percentiles are
/// estimated from the log2 bucket boundaries (geometric midpoint), so
/// they are order-of-magnitude accurate — the right fidelity for
/// latency distributions; min/max/count/sum are exact.
struct HistogramStats {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Last exemplar recorded through Record(value, exemplar_id): a
  /// request id that can be looked up in the server's slow log /
  /// trace store. Empty when the histogram never saw an exemplar.
  std::string exemplar_id;
  double exemplar_value = 0.0;
};

/// A lock-striped histogram of non-negative values (typically
/// microseconds). Record() hashes the calling thread onto one of
/// kStripes independently-locked stripes, so concurrent recorders
/// rarely contend; Snapshot() merges the stripes.
class Histogram {
 public:
  void Record(double value);
  /// Records `value` and remembers `exemplar_id` (last-write-wins) as
  /// the sample's provenance — typically a request id, surfaced by the
  /// Prometheus exposition so one slow sample is traceable end-to-end.
  void Record(double value, std::string_view exemplar_id);
  HistogramStats Snapshot() const;

 private:
  static constexpr size_t kStripes = 16;
  /// log2 buckets: bucket 0 holds values <= 1, bucket i holds
  /// (2^{i-1}, 2^i]; the last bucket is unbounded.
  static constexpr size_t kBuckets = 64;
  struct Stripe {
    mutable std::mutex mu;
    std::array<int64_t, kBuckets> buckets{};
    int64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  Stripe& StripeForThisThread();

  std::array<Stripe, kStripes> stripes_;
  mutable std::mutex exemplar_mu_;
  std::string exemplar_id_;
  double exemplar_value_ = 0.0;
};

/// `name` rewritten into the Prometheus metric-name alphabet
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): every other character (the registry's
/// '.' separators, '-', ...) becomes '_', and a leading digit is
/// prefixed with '_'. An empty name sanitizes to "_".
std::string PrometheusMetricName(std::string_view name);

/// One coherent reading of a registry: plain maps, detached from the
/// live metrics, safe to serialize or diff at leisure.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramStats> histograms;

  /// Counter value by name, 0 when absent.
  int64_t CounterValue(std::string_view name) const;
  /// Gauge value by name, 0 when absent.
  int64_t GaugeValue(std::string_view name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;
  /// Aligned human-readable listing, one metric per line.
  std::string ToText() const;
  /// Prometheus text exposition format (version 0.0.4): counters and
  /// gauges become scalar samples, histograms become summaries
  /// (quantile="0.5"/"0.95"/"0.99" plus _sum/_count and _min/_max
  /// gauges). Names are sanitized through PrometheusMetricName; a
  /// sanitized-name collision across metric kinds is disambiguated
  /// with a numeric suffix rather than emitting a duplicate series.
  /// A histogram's last exemplar rides along as a comment line
  /// (`# exemplar <name> request_id="..." value=...`) — scrapers
  /// ignore it, humans and the CI checker can follow the id into
  /// /trace.
  std::string ToPrometheus() const;
};

/// A process- or component-wide named-metric registry. Registration is
/// mutex-protected and idempotent (same name -> same metric); the
/// returned pointers are stable for the registry's lifetime, so hot
/// paths register once and then touch only the lock-free metric.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// The process-wide default registry (never destroyed).
  static MetricsRegistry* Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace cdpd

#endif  // CDPD_COMMON_METRICS_H_
