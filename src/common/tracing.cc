#include "common/tracing.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace cdpd {

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

/// Thread-local (tracer -> buffer) cache so a span's buffer lookup is
/// one id comparison after the first span on a thread. The id check
/// (not just the pointer) protects against a new tracer reusing a
/// destroyed tracer's address.
struct BufferCache {
  uint64_t tracer_id = 0;
  void* buffer = nullptr;
};
thread_local BufferCache t_buffer_cache;

void AppendJsonString(std::string* out, const char* s) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out->push_back('\\');
    out->push_back(*s);
  }
  out->push_back('"');
}

}  // namespace

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  if (t_buffer_cache.tracer_id == id_) {
    return static_cast<ThreadBuffer*>(t_buffer_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.emplace_back();
  ThreadBuffer* buffer = &buffers_.back();
  buffer->tid = static_cast<uint32_t>(buffers_.size() - 1);
  t_buffer_cache = BufferCache{id_, buffer};
  return buffer;
}

std::vector<Tracer::Event> Tracer::Events() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ThreadBuffer& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer.mu);
      events.insert(events.end(), buffer.events.begin(),
                    buffer.events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.duration_us > b.duration_us;  // Parents first.
            });
  return events;
}

size_t Tracer::num_events() const {
  size_t n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const ThreadBuffer& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer.mu);
    n += buffer.events.size();
  }
  return n;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<Event> events = Events();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const Event& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": ";
    AppendJsonString(&out, event.name);
    out += ", \"cat\": ";
    AppendJsonString(&out, event.category);
    out += ", \"ph\": \"X\", \"ts\": " + std::to_string(event.start_us) +
           ", \"dur\": " + std::to_string(event.duration_us) +
           ", \"pid\": 0, \"tid\": " + std::to_string(event.tid);
    out += ", \"args\": {\"cpu_us\": " + std::to_string(event.cpu_us);
    if (event.arg != kNoArg) {
      out += ", \"arg\": " + std::to_string(event.arg);
    }
    out += "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string Tracer::EventsToJson(const std::vector<Event>& events) {
  std::string out = "[";
  bool first = true;
  for (const Event& event : events) {
    out += first ? "" : ",";
    first = false;
    out += "{\"name\": ";
    AppendJsonString(&out, event.name);
    out += ", \"category\": ";
    AppendJsonString(&out, event.category);
    out += ", \"start_us\": " + std::to_string(event.start_us) +
           ", \"duration_us\": " + std::to_string(event.duration_us) +
           ", \"cpu_us\": " + std::to_string(event.cpu_us) +
           ", \"tid\": " + std::to_string(event.tid) +
           ", \"depth\": " + std::to_string(event.depth);
    if (event.arg != kNoArg) {
      out += ", \"arg\": " + std::to_string(event.arg);
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string Tracer::ToTextTree() const {
  const std::vector<Event> events = Events();
  std::string out;
  char line[256];
  uint32_t current_tid = std::numeric_limits<uint32_t>::max();
  for (const Event& event : events) {
    if (event.tid != current_tid) {
      current_tid = event.tid;
      std::snprintf(line, sizeof(line), "thread %u\n", current_tid);
      out += line;
    }
    std::snprintf(line, sizeof(line), "  [%10lld us +%10lld us cpu %lld us] ",
                  static_cast<long long>(event.start_us),
                  static_cast<long long>(event.duration_us),
                  static_cast<long long>(event.cpu_us));
    out += line;
    out.append(static_cast<size_t>(event.depth) * 2, ' ');
    out += event.name;
    if (event.arg != kNoArg) {
      out += " (" + std::to_string(event.arg) + ")";
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace cdpd
