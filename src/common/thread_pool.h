#ifndef CDPD_COMMON_THREAD_POOL_H_
#define CDPD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/log.h"
#include "common/metrics.h"

namespace cdpd {

/// A small fixed-size worker pool for the CPU-bound fan-out of the
/// design optimizers (what-if cost-matrix precomputation, per-stage DP
/// relaxation). Tasks are plain std::function<void()>; ParallelFor
/// below is the only entry point the solvers use.
///
/// The pool is safe to share between concurrent ParallelFor calls. A
/// ParallelFor issued *from inside a worker thread* (nested use) runs
/// inline on the calling thread instead of re-entering the pool, so
/// nesting can never deadlock.
class ThreadPool {
 public:
  /// `num_threads <= 0` resolves to DefaultThreadCount().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Tasks must not throw out of the pool; wrap
  /// user code (ParallelFor captures exceptions and rethrows them in
  /// the caller).
  void Submit(std::function<void()> task);

  /// The thread count the CDPD_THREADS environment variable requests
  /// (clamped to >= 1), or std::thread::hardware_concurrency() when the
  /// variable is unset or unparsable. Re-read on every call so tests
  /// and long-lived processes can change it between solves.
  static int DefaultThreadCount();

  /// True when the calling thread is one of this process's pool
  /// workers (any pool); used for the inline nested-ParallelFor
  /// fallback.
  static bool InWorkerThread();

  /// Publishes pool activity into `registry` under "threadpool.*":
  /// task count, queue depth (current and peak), and per-worker busy
  /// time ("threadpool.worker.<i>.busy_us"). Pass nullptr to detach.
  /// Safe to call at any time, including while tasks are running;
  /// no-op when metrics are compiled out.
  void EnableMetrics(MetricsRegistry* registry);

  /// Attaches a structured logger: records one "threadpool.attach"
  /// event now and a "threadpool.stop" event when the pool shuts
  /// down. Pass nullptr to detach. Deliberately coarse — per-task
  /// logging would serialize the hot path. No-op when logging is
  /// compiled out.
  void EnableLogging(Logger* logger);

 private:
  void WorkerLoop(size_t worker_index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  // Metric sinks, guarded by mu_; all null until EnableMetrics.
  // Workers copy the pointers while holding mu_ during task pop, so a
  // concurrent EnableMetrics never races with instrumentation.
  Counter* tasks_counter_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;
  Gauge* queue_depth_peak_gauge_ = nullptr;
  std::vector<Counter*> worker_busy_us_;
  // Structured-log sink, guarded by mu_; null until EnableLogging.
  Logger* logger_ = nullptr;
};

/// Runs fn(i) for every i in [begin, end), fanning contiguous chunks
/// out across `pool` and blocking until all complete. Guarantees:
///
///  * every index runs exactly once, whatever the thread count;
///  * serial fallback — pool == nullptr, a single-thread pool, a tiny
///    range, or a call from inside a worker thread all run the plain
///    loop inline, so results never depend on *where* the call is made;
///  * exceptions thrown by fn are captured and the first one is
///    rethrown in the caller after all chunks finish.
///
/// fn must be safe to call concurrently for distinct indices; writes
/// should target disjoint data (determinism is then automatic because
/// each index computes the same value regardless of scheduling).
///
/// `budget` (optional) makes the loop cooperatively interruptible:
/// expiry is polled between chunks (and per index on the serial
/// path), after which no further index runs — indices already started
/// still finish, so fn is never abandoned mid-call. Returns true when
/// every index ran, false when the budget expired first (the caller
/// must then treat un-run indices' outputs as unwritten). A null
/// budget costs one pointer test and always returns true.
bool ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn,
                 const Budget* budget = nullptr);

}  // namespace cdpd

#endif  // CDPD_COMMON_THREAD_POOL_H_
