#ifndef CDPD_COMMON_RESULT_H_
#define CDPD_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace cdpd {

/// Result<T> holds either a value of type T or a non-OK Status, in the
/// style of absl::StatusOr / arrow::Result. Accessing the value of an
/// errored Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from an error Status. Constructing a Result
  /// from an OK status without a value is a programming error.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status w/o value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cdpd

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status from the current function.
#define CDPD_ASSIGN_OR_RETURN(lhs, expr)                       \
  CDPD_ASSIGN_OR_RETURN_IMPL_(                                 \
      CDPD_RESULT_CONCAT_(_cdpd_result_, __LINE__), lhs, expr)

#define CDPD_RESULT_CONCAT_INNER_(a, b) a##b
#define CDPD_RESULT_CONCAT_(a, b) CDPD_RESULT_CONCAT_INNER_(a, b)
#define CDPD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // CDPD_COMMON_RESULT_H_
