#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace cdpd {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatPercent(double ratio, int decimals) {
  return FormatDouble(ratio * 100.0, decimals) + "%";
}

}  // namespace cdpd
