#ifndef CDPD_COMMON_RNG_H_
#define CDPD_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cdpd {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256** seeded via SplitMix64). Used everywhere randomness is
/// needed so that workloads and experiments are exactly reproducible:
/// same seed, same sequence, on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Samples an index in [0, weights.size()) with probability
  /// proportional to weights[i]. Requires a non-empty vector with a
  /// positive sum; weights need not be normalized.
  size_t PickWeighted(const std::vector<double>& weights);

  /// Splits off an independent generator (for parallel or per-module
  /// streams that must not perturb each other).
  Rng Split();

 private:
  uint64_t state_[4];
};

}  // namespace cdpd

#endif  // CDPD_COMMON_RNG_H_
