#ifndef CDPD_COMMON_BUDGET_H_
#define CDPD_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>

#include "common/resource_tracker.h"

namespace cdpd {

/// A cooperative cancellation flag, settable from any thread. The
/// solvers poll it (via Budget) at coarse checkpoints — between
/// precompute blocks, DP stages, merging rounds, ranked paths — so a
/// cancelled solve stops within one checkpoint, never mid-update.
/// Reusable: Reset() re-arms the token for the next solve.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Safe to call from any thread, any number
  /// of times, including while a solve is polling the token.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Re-arms the token (call between solves, not during one).
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The runtime budget of one solve: an optional wall-clock deadline,
/// an optional CancelToken, and an optional memory budget (a
/// ResourceTracker whose soft byte limit has tripped), polled together
/// through Expired(). A default-constructed Budget is unlimited and
/// never expires.
///
/// The solvers take a `const Budget*` (null = unlimited), so an
/// un-budgeted solve pays exactly one pointer test per checkpoint —
/// the same zero-overhead contract as the observability sinks.
class Budget {
 public:
  /// Unlimited: never expires.
  Budget() = default;

  /// Expires `timeout` after now (a zero or negative timeout is
  /// expired from the start), and/or when `cancel` is cancelled.
  explicit Budget(std::chrono::nanoseconds timeout,
                  const CancelToken* cancel = nullptr)
      : cancel_(cancel),
        has_deadline_(true),
        deadline_(std::chrono::steady_clock::now() + timeout) {}

  /// Cancellation-only budget (no deadline).
  explicit Budget(const CancelToken* cancel) : cancel_(cancel) {}

  /// Attaches a memory budget: once `tracker`'s soft byte limit trips
  /// (ResourceTracker::limit_exceeded), the budget reports Expired()
  /// and the solve winds down through the same anytime machinery as a
  /// deadline. A tracker with no limit never expires the budget, so
  /// attaching one for pure accounting is free.
  void set_tracker(const ResourceTracker* tracker) { tracker_ = tracker; }
  const ResourceTracker* tracker() const { return tracker_; }

  /// True once the deadline has passed, the token is cancelled, or the
  /// attached tracker's memory limit tripped. Cheap enough for
  /// per-block polling: relaxed atomic loads plus (when a deadline is
  /// set) one steady_clock read.
  bool Expired() const {
    if (cancel_ != nullptr && cancel_->cancelled()) return true;
    if (tracker_ != nullptr && tracker_->limit_exceeded()) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

 private:
  const CancelToken* cancel_ = nullptr;
  const ResourceTracker* tracker_ = nullptr;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

/// The null-tolerant check every solver checkpoint uses: a null budget
/// is unlimited, so the disabled path is a single pointer test.
inline bool BudgetExpired(const Budget* budget) {
  return budget != nullptr && budget->Expired();
}

}  // namespace cdpd

#endif  // CDPD_COMMON_BUDGET_H_
