#ifndef CDPD_COMMON_STRING_UTIL_H_
#define CDPD_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cdpd {

/// Joins the elements of `parts` with `sep` between them.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` at every occurrence of `sep`; empty fields are kept.
std::vector<std::string> Split(std::string_view text, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Formats `value` with `decimals` digits after the point (no locale).
std::string FormatDouble(double value, int decimals);

/// Formats a ratio as a percentage string, e.g. 0.143 -> "14.3%".
std::string FormatPercent(double ratio, int decimals = 1);

}  // namespace cdpd

#endif  // CDPD_COMMON_STRING_UTIL_H_
