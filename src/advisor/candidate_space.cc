#include "advisor/candidate_space.h"

#include <algorithm>
#include <utility>

namespace cdpd {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t HashIndexDef(const IndexDef& def) {
  uint64_t hash = kFnvOffset;
  for (const ColumnId column : def.key_columns()) {
    hash = FnvMix(hash, static_cast<uint64_t>(column));
  }
  // Separate an empty key list from a single column 0.
  return FnvMix(hash, def.key_columns().size());
}

/// Fingerprint of an index set, order-independent only because the
/// inputs are canonically sorted (Configuration guarantees it).
uint64_t HashIndexSet(const std::vector<IndexDef>& indexes) {
  uint64_t hash = kFnvOffset;
  for (const IndexDef& def : indexes) hash = FnvMix(hash, HashIndexDef(def));
  return FnvMix(hash, indexes.size());
}

}  // namespace

CandidateSpace::CandidateSpace(std::vector<Configuration> configs)
    : configs_(std::move(configs)) {
  BuildIndex();
}

CandidateSpace::CandidateSpace(std::initializer_list<Configuration> configs)
    : configs_(configs) {
  BuildIndex();
}

void CandidateSpace::BuildIndex() {
  universe_.clear();
  for (const Configuration& config : configs_) {
    for (const IndexDef& def : config.indexes()) universe_.push_back(def);
  }
  std::sort(universe_.begin(), universe_.end());
  universe_.erase(std::unique(universe_.begin(), universe_.end()),
                  universe_.end());
  exact_masks_ = universe_.size() <= 64;

  masks_.resize(configs_.size());
  for (size_t i = 0; i < configs_.size(); ++i) {
    masks_[i] = MaskOf(configs_[i]);
  }

  universe_fingerprint_ = kFnvOffset;
  for (const IndexDef& def : universe_) {
    universe_fingerprint_ = FnvMix(universe_fingerprint_, HashIndexDef(def));
  }
  universe_fingerprint_ = FnvMix(universe_fingerprint_, universe_.size());

  fingerprint_ = universe_fingerprint_;
  for (const uint64_t mask : masks_) {
    fingerprint_ = FnvMix(fingerprint_, mask);
  }
  fingerprint_ = FnvMix(fingerprint_, configs_.size());
}

uint64_t CandidateSpace::MaskOf(const Configuration& config) const {
  if (exact_masks_) {
    uint64_t mask = 0;
    bool exact = true;
    for (const IndexDef& def : config.indexes()) {
      const auto it =
          std::lower_bound(universe_.begin(), universe_.end(), def);
      if (it == universe_.end() || !(*it == def)) {
        exact = false;
        break;
      }
      mask |= uint64_t{1} << static_cast<size_t>(it - universe_.begin());
    }
    if (exact) return mask;
  }
  return HashIndexSet(config.indexes());
}

CandidateSpace CandidateSpace::Prefix(size_t n) const {
  if (n >= configs_.size()) return *this;
  return CandidateSpace(
      std::vector<Configuration>(configs_.begin(),
                                 configs_.begin() + static_cast<int64_t>(n)));
}

CandidateSpace CandidateSpace::Subset(const std::vector<ConfigId>& ids) const {
  std::vector<Configuration> selected;
  selected.reserve(ids.size());
  for (const ConfigId id : ids) selected.push_back(configs_[id]);
  return CandidateSpace(std::move(selected));
}

std::optional<ConfigId> CandidateSpace::IdOf(const Configuration& config) const {
  const uint64_t mask = MaskOf(config);
  for (size_t i = 0; i < configs_.size(); ++i) {
    if (masks_[i] == mask && configs_[i] == config) {
      return static_cast<ConfigId>(i);
    }
  }
  return std::nullopt;
}

}  // namespace cdpd
