#include "advisor/candidate_generation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace cdpd {

namespace {

/// Predicate columns a statement touches (what an index could serve).
void CollectPredicateColumns(const BoundStatement& statement,
                             std::vector<int64_t>* counts) {
  switch (statement.type) {
    case StatementType::kSelectPoint:
    case StatementType::kSelectRange:
    case StatementType::kUpdatePoint:
      ++(*counts)[static_cast<size_t>(statement.where_column)];
      break;
    case StatementType::kInsert:
      break;  // No predicate.
  }
}

}  // namespace

std::vector<IndexDef> GenerateCandidateIndexes(
    const Schema& schema, std::span<const BoundStatement> statements,
    std::span<const Segment> segments, const CandidateGenOptions& options) {
  const size_t num_columns = static_cast<size_t>(schema.num_columns());

  // Workload-wide predicate-column frequencies.
  std::vector<int64_t> global_counts(num_columns, 0);
  int64_t predicates = 0;
  for (const BoundStatement& statement : statements) {
    CollectPredicateColumns(statement, &global_counts);
  }
  for (int64_t count : global_counts) predicates += count;
  if (predicates == 0) return {};

  // Single-column candidates: every sufficiently frequent column.
  std::vector<IndexDef> candidates;
  for (size_t col = 0; col < num_columns; ++col) {
    const double freq = static_cast<double>(global_counts[col]) /
                        static_cast<double>(predicates);
    if (freq >= options.min_column_frequency) {
      candidates.push_back(IndexDef({static_cast<ColumnId>(col)}));
    }
  }
  if (options.max_key_columns < 2) return candidates;

  // Composite candidates: the two dominant predicate columns of each
  // segment. The pair is emitted in canonical order — the column that
  // dominates more segments first (it earns the seekable prefix
  // position), column id breaking ties — so sampling noise cannot flip
  // I(a,b) into I(b,a) between runs.
  const Segment whole{0, statements.size()};
  std::span<const Segment> effective_segments =
      segments.empty() ? std::span<const Segment>(&whole, 1) : segments;

  // First pass: per-segment top-two columns and dominance votes.
  std::vector<int64_t> top_votes(num_columns, 0);
  std::vector<std::pair<ColumnId, ColumnId>> segment_tops;  // (first, second)
  for (const Segment& segment : effective_segments) {
    std::vector<int64_t> counts(num_columns, 0);
    int64_t total = 0;
    for (size_t i = segment.begin; i < segment.end; ++i) {
      CollectPredicateColumns(statements[i], &counts);
    }
    for (int64_t count : counts) total += count;
    if (total == 0) continue;
    // Top two columns of the segment.
    ColumnId first = -1;
    ColumnId second = -1;
    for (size_t col = 0; col < num_columns; ++col) {
      if (counts[col] == 0) continue;
      if (first < 0 || counts[col] > counts[static_cast<size_t>(first)]) {
        second = first;
        first = static_cast<ColumnId>(col);
      } else if (second < 0 ||
                 counts[col] > counts[static_cast<size_t>(second)]) {
        second = static_cast<ColumnId>(col);
      }
    }
    if (first >= 0) ++top_votes[static_cast<size_t>(first)];
    if (second < 0) continue;
    // Both must clear the frequency bar within the segment.
    const double second_freq =
        static_cast<double>(counts[static_cast<size_t>(second)]) /
        static_cast<double>(total);
    if (second_freq <
        std::max(options.min_column_frequency,
                 options.min_secondary_frequency)) {
      continue;
    }
    segment_tops.push_back({first, second});
  }

  // Second pass: canonicalize pair order by dominance votes.
  auto canonical_before = [&](ColumnId x, ColumnId y) {
    const int64_t vx = top_votes[static_cast<size_t>(x)];
    const int64_t vy = top_votes[static_cast<size_t>(y)];
    if (vx != vy) return vx > vy;
    return x < y;
  };
  std::map<std::pair<ColumnId, ColumnId>, int64_t> pair_support;
  std::vector<std::pair<ColumnId, ColumnId>> pair_order;  // First-seen order.
  for (auto [x, y] : segment_tops) {
    if (!canonical_before(x, y)) std::swap(x, y);
    if (++pair_support[{x, y}] == 1) pair_order.push_back({x, y});
  }

  const int64_t min_support = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(options.min_pair_support_fraction *
                       static_cast<double>(effective_segments.size()))));
  int32_t composites = 0;
  for (const auto& [x, y] : pair_order) {
    if (composites >= options.max_composites) break;
    if (pair_support[{x, y}] < min_support) continue;
    candidates.push_back(IndexDef({x, y}));
    ++composites;
  }
  return candidates;
}

}  // namespace cdpd
