#include "advisor/config_enumeration.h"

#include <algorithm>

namespace cdpd {

namespace {

/// Depth-first subset enumeration with max-size and space pruning.
Status Enumerate(const std::vector<IndexDef>& candidates,
                 const ConfigEnumOptions& options, size_t next,
                 std::vector<IndexDef>* picked,
                 std::vector<Configuration>* out) {
  if (static_cast<int64_t>(out->size()) >= options.max_configurations) {
    return Status::ResourceExhausted(
        "configuration space exceeds max_configurations (" +
        std::to_string(options.max_configurations) + ")");
  }
  Configuration config(*picked);
  if (config.SizePages(options.num_rows) <= options.space_bound_pages) {
    out->push_back(config);
  } else if (!picked->empty()) {
    // Supersets only grow; prune this branch.
    return Status::OK();
  }
  if (static_cast<int32_t>(picked->size()) >= options.max_indexes_per_config) {
    return Status::OK();
  }
  for (size_t i = next; i < candidates.size(); ++i) {
    picked->push_back(candidates[i]);
    CDPD_RETURN_IF_ERROR(Enumerate(candidates, options, i + 1, picked, out));
    picked->pop_back();
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Configuration>> EnumerateConfigurations(
    const std::vector<IndexDef>& candidates, const ConfigEnumOptions& options) {
  if (options.max_indexes_per_config < 0) {
    return Status::InvalidArgument("max_indexes_per_config must be >= 0");
  }
  std::vector<Configuration> configurations;
  std::vector<IndexDef> picked;
  CDPD_RETURN_IF_ERROR(
      Enumerate(candidates, options, 0, &picked, &configurations));
  // Duplicate candidate indexes would otherwise produce duplicate
  // configurations (Configuration canonicalizes its index set).
  std::sort(configurations.begin(), configurations.end());
  configurations.erase(
      std::unique(configurations.begin(), configurations.end()),
      configurations.end());
  return configurations;
}

}  // namespace cdpd
