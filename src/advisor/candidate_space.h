#ifndef CDPD_ADVISOR_CANDIDATE_SPACE_H_
#define CDPD_ADVISOR_CANDIDATE_SPACE_H_

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <vector>

#include "catalog/configuration.h"

namespace cdpd {

/// Canonical identifier of a configuration inside one CandidateSpace:
/// its position in the pinned enumeration order. The solvers' DP
/// tables, the dense cost matrices, and the persistent cost cache all
/// address configurations by ConfigId (or by the packed bitmask below)
/// instead of hashing materialized Configuration objects.
using ConfigId = uint32_t;

/// The pinned candidate-configuration set of one design problem — the
/// value type the whole cost/config API speaks.
///
/// A CandidateSpace freezes an enumerated set of configurations and
/// assigns each one
///  * a canonical ConfigId — its index in the pinned order — and
///  * a packed `uint64_t` bitmask over the space's index *universe*
///    (the sorted, duplicate-free union of every IndexDef appearing in
///    any member configuration; bit i set = universe()[i] present).
///
/// The bitmask is the identity the persistent what-if cost cache keys
/// on: two solves whose spaces draw from the same universe share cache
/// entries for structurally identical configurations without ever
/// hashing an IndexDef vector. Masks are exact — a bijection onto the
/// member configurations — whenever the universe has at most 64
/// indexes (exact_masks()); beyond that the mask of a configuration is
/// a 64-bit FNV fingerprint of its index set instead, which keeps the
/// packed representation usable but makes cache keying unsound, so the
/// cost cache disables itself when exact_masks() is false.
///
/// Immutable value type: cheap to copy (the configurations dominate),
/// equality compares the pinned configuration list. The configuration
/// order is the caller's enumeration order, never resorted — ConfigIds
/// must stay stable for DP parent tables and explain reports to make
/// sense.
///
/// Configuration objects remain the API boundary (catalog, explain,
/// CLI output); inside the solvers only ConfigIds and masks travel.
class CandidateSpace {
 public:
  /// The empty space (no candidate configurations).
  CandidateSpace() = default;

  /// Pins `configs` in the given order and derives the universe and
  /// per-configuration masks. Intentionally implicit: a
  /// std::vector<Configuration> (or a braced list) anywhere a
  /// CandidateSpace is expected promotes to the packed representation,
  /// which keeps problem construction at the API boundary ergonomic.
  CandidateSpace(std::vector<Configuration> configs);  // NOLINT(runtime/explicit)
  CandidateSpace(std::initializer_list<Configuration> configs);

  size_t size() const { return configs_.size(); }
  bool empty() const { return configs_.empty(); }

  const Configuration& operator[](size_t id) const { return configs_[id]; }
  const std::vector<Configuration>& configs() const { return configs_; }
  std::vector<Configuration>::const_iterator begin() const {
    return configs_.begin();
  }
  std::vector<Configuration>::const_iterator end() const {
    return configs_.end();
  }

  /// The sorted, duplicate-free union of every index appearing in a
  /// member configuration. Bit i of a mask refers to universe()[i].
  const std::vector<IndexDef>& universe() const { return universe_; }
  size_t num_indexes() const { return universe_.size(); }

  /// True when masks are exact set-bitmasks (universe <= 64 indexes);
  /// false when they degrade to fingerprints (see class comment).
  bool exact_masks() const { return exact_masks_; }

  /// Packed identity of configuration `id` (see class comment).
  uint64_t mask(size_t id) const { return masks_[id]; }
  const std::vector<uint64_t>& masks() const { return masks_; }

  /// The packed identity `config` *would* have in this space — exact
  /// bitmask when every index of `config` is in the universe (and
  /// exact_masks()), fingerprint otherwise. Lets boundary
  /// configurations (the initial design, a forced final design) join
  /// mask-keyed lookups without being members.
  uint64_t MaskOf(const Configuration& config) const;

  /// The space over the first `n` member configurations, in the same
  /// pinned order (n >= size() returns a copy of the whole space). The
  /// universe is re-derived from the survivors, so masks stay minimal.
  CandidateSpace Prefix(size_t n) const;

  /// The space over the member configurations `ids` selects, in the
  /// given order (dominance pruning passes the surviving ConfigIds in
  /// ascending original order, so relative ConfigId order is
  /// preserved). Like Prefix, the universe is re-derived from the
  /// survivors — when a dropped configuration held the only occurrence
  /// of some index, the subset's masks are assigned over a smaller
  /// universe and its universe_fingerprint changes (the cost cache
  /// then keys the subset's probes separately; a *stable* subset
  /// reused across solves still shares entries with itself).
  CandidateSpace Subset(const std::vector<ConfigId>& ids) const;

  /// ConfigId of `config` if it is a member (linear scan over masks
  /// with an equality check — called at the API boundary, never in a
  /// solver inner loop).
  std::optional<ConfigId> IdOf(const Configuration& config) const;

  /// 64-bit identity of the whole space (universe + pinned masks) —
  /// distinguishes any two structurally different spaces.
  uint64_t fingerprint() const { return fingerprint_; }

  /// 64-bit identity of the *universe* alone. This is what the cost
  /// cache folds into its validity token: mask bit positions are
  /// defined by the universe, so two solves enumerating different
  /// config subsets of the same universe share cache entries, while a
  /// universe change (which silently reassigns every bit) invalidates
  /// them.
  uint64_t universe_fingerprint() const { return universe_fingerprint_; }

  bool operator==(const CandidateSpace& other) const {
    return configs_ == other.configs_;
  }

 private:
  void BuildIndex();

  std::vector<Configuration> configs_;
  std::vector<IndexDef> universe_;
  std::vector<uint64_t> masks_;
  bool exact_masks_ = true;
  uint64_t fingerprint_ = 0;
  uint64_t universe_fingerprint_ = 0;
};

}  // namespace cdpd

#endif  // CDPD_ADVISOR_CANDIDATE_SPACE_H_
