#ifndef CDPD_ADVISOR_CONFIG_ENUMERATION_H_
#define CDPD_ADVISOR_CONFIG_ENUMERATION_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "catalog/configuration.h"
#include "common/result.h"

namespace cdpd {

/// Options bounding the configuration space built from candidate
/// indexes.
struct ConfigEnumOptions {
  /// Maximum indexes per configuration. The paper's experiments use 1
  /// ("a physical design configuration consists of at most one index"),
  /// which over its six candidates yields the seven configurations of
  /// §6.1 including the empty one.
  int32_t max_indexes_per_config = 1;
  /// Space bound b: SIZE(C) in pages over `num_rows` rows.
  int64_t space_bound_pages = std::numeric_limits<int64_t>::max();
  /// Rows of the table the space bound is evaluated against.
  int64_t num_rows = 0;
  /// Safety valve on the enumeration (the space is exponential in the
  /// number of candidates).
  int64_t max_configurations = 1 << 20;
};

/// Enumerates every subset of `candidates` with at most
/// max_indexes_per_config indexes and SIZE <= space_bound_pages. The
/// empty configuration is always included (and is always feasible).
/// Fails with ResourceExhausted when the space exceeds
/// max_configurations.
Result<std::vector<Configuration>> EnumerateConfigurations(
    const std::vector<IndexDef>& candidates, const ConfigEnumOptions& options);

}  // namespace cdpd

#endif  // CDPD_ADVISOR_CONFIG_ENUMERATION_H_
