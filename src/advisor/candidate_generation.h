#ifndef CDPD_ADVISOR_CANDIDATE_GENERATION_H_
#define CDPD_ADVISOR_CANDIDATE_GENERATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "index/index_def.h"
#include "workload/statement.h"
#include "workload/workload.h"

namespace cdpd {

/// Options for syntactic candidate-index generation.
struct CandidateGenOptions {
  /// Widest composite index to propose (1 = single-column only).
  int32_t max_key_columns = 2;
  /// A column must appear in at least this fraction of statements to
  /// seed a candidate.
  double min_column_frequency = 0.05;
  /// The *second* column of a composite must reach this fraction of a
  /// segment's predicates. Keeps sampling noise in a segment's tail
  /// columns from spawning spurious composites (the paper's mixes put
  /// 25% on the secondary column, tail columns at 10%).
  double min_secondary_frequency = 0.15;
  /// Cap on proposed two-column composites (highest combined predicate
  /// frequency first).
  int32_t max_composites = 8;
  /// A composite pair must be the top-2 of at least this fraction of
  /// the segments (at least one). Filters pairs that only a single
  /// noisy segment voted for.
  double min_pair_support_fraction = 0.05;
};

/// Proposes candidate indexes for a segmented statement sequence, in
/// the style of the syntactic candidate selection of classic index
/// advisors (the paper takes candidates as given, citing Chaudhuri &
/// Narasayya):
///
///  * one single-column index per sufficiently frequent predicate
///    column, and
///  * a two-column composite over the two dominant predicate columns
///    of each segment — these enable the covering-scan plans that make
///    the merged-phase configurations of Table 2 attractive. Composite
///    key order is canonical: higher workload-wide frequency first,
///    lower column id on ties.
///
/// Run on the paper's workloads (segmented into its 500-query blocks)
/// with defaults this yields exactly the candidate set of §6.1:
/// I(a), I(b), I(c), I(d), I(a,b), I(c,d).
///
/// If `segments` is empty, the whole sequence is treated as one
/// segment.
std::vector<IndexDef> GenerateCandidateIndexes(
    const Schema& schema, std::span<const BoundStatement> statements,
    std::span<const Segment> segments,
    const CandidateGenOptions& options = {});

}  // namespace cdpd

#endif  // CDPD_ADVISOR_CANDIDATE_GENERATION_H_
