#include "advisor/dominance.h"

#include <atomic>

#include "cost/what_if.h"

namespace cdpd {

namespace {

DominanceResult Identity(size_t m) {
  DominanceResult result;
  result.survivors.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    result.survivors.push_back(static_cast<ConfigId>(i));
  }
  return result;
}

}  // namespace

DominanceResult PruneDominatedConfigs(const DesignProblem& problem,
                                      ThreadPool* pool, const Budget* budget,
                                      Logger* logger,
                                      ResourceTracker* tracker) {
  const CandidateSpace& space = problem.candidates;
  const size_t m = space.size();
  if (m <= 1 || problem.what_if == nullptr) return Identity(m);
  const WhatIfEngine& what_if = *problem.what_if;
  const std::vector<WorkloadShape>& shapes = what_if.workload_profile();
  const size_t num_shapes = shapes.size();

  const int64_t scratch_bytes = static_cast<int64_t>(
      (num_shapes * m + m * m + 2 * m) * sizeof(double));
  ScopedReservation scratch = ScopedReservation::Try(
      tracker, MemComponent::kCandidates, scratch_bytes);
  if (!scratch.ok()) {
    CDPD_LOG(logger, LogLevel::kWarn, "dominance.memory_limit",
             LogField("scratch_bytes", scratch_bytes),
             LogField("fallback", "unpruned"));
    return Identity(m);
  }

  // Probe tables: per-(shape, config) statement costs, the full member
  // TRANS matrix, and the boundary transition vectors. Disjoint writes
  // per config, so the parallel fill is race-free and deterministic.
  std::vector<double> shape_cost(num_shapes * m, 0.0);  // [shape * m + c]
  std::vector<double> trans(m * m, 0.0);                // [from * m + to]
  std::vector<double> init_trans(m, 0.0);
  std::vector<double> final_trans(m, 0.0);
  const bool filled = ParallelFor(
      pool, 0, m,
      [&](size_t c) {
        const Configuration& config = space[c];
        for (size_t s = 0; s < num_shapes; ++s) {
          shape_cost[s * m + c] = what_if.ShapeCost(shapes[s], config);
        }
        for (size_t to = 0; to < m; ++to) {
          trans[c * m + to] =
              to == c ? 0.0 : what_if.TransitionCost(config, space[to]);
        }
        init_trans[c] = what_if.TransitionCost(problem.initial, config);
        if (problem.final_config.has_value()) {
          final_trans[c] =
              what_if.TransitionCost(config, *problem.final_config);
        }
      },
      budget);
  if (!filled) {
    CDPD_LOG(logger, LogLevel::kWarn, "dominance.deadline",
             LogField("phase", "probe"), LogField("fallback", "unpruned"));
    return Identity(m);
  }

  // Sequential accept/prune scan over ascending ConfigId; each
  // candidate is tested only against already-accepted survivors, so
  // every pruned configuration has a *surviving* dominator (see the
  // header's replacement argument). The existence test over survivors
  // fans out on the pool — existence is order-independent, so the
  // outcome is thread-count-invariant.
  DominanceResult result;
  result.survivors.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    if (BudgetExpired(budget)) {
      // Accept the rest unpruned: a truncated pass is still exact.
      CDPD_LOG(logger, LogLevel::kWarn, "dominance.deadline",
               LogField("phase", "scan"), LogField("at", i));
      for (size_t rest = i; rest < m; ++rest) {
        result.survivors.push_back(static_cast<ConfigId>(rest));
      }
      return result;
    }
    if (space[i] == problem.initial) {
      // The layer-0 start of the count_initial_change DP; never prune.
      result.survivors.push_back(static_cast<ConfigId>(i));
      continue;
    }
    std::atomic<bool> dominated{false};
    ParallelFor(pool, 0, result.survivors.size(), [&](size_t sj) {
      if (dominated.load(std::memory_order_relaxed)) return;
      const size_t j = result.survivors[sj];
      for (size_t s = 0; s < num_shapes; ++s) {
        if (shape_cost[s * m + j] > shape_cost[s * m + i]) return;
      }
      if (init_trans[j] > init_trans[i]) return;
      if (problem.final_config.has_value() &&
          final_trans[j] > final_trans[i]) {
        return;
      }
      for (size_t p = 0; p < m; ++p) {
        if (p == i || p == j) continue;
        if (trans[p * m + j] > trans[p * m + i]) return;  // Reachability.
        if (trans[j * m + p] > trans[i * m + p]) return;  // Leavability.
      }
      dominated.store(true, std::memory_order_relaxed);
    });
    if (dominated.load(std::memory_order_relaxed)) {
      ++result.pruned;
    } else {
      result.survivors.push_back(static_cast<ConfigId>(i));
    }
  }
  CDPD_LOG(logger, LogLevel::kInfo, "dominance.pruned",
           LogField("candidates", m), LogField("pruned", result.pruned),
           LogField("shapes", num_shapes));
  return result;
}

}  // namespace cdpd
