#ifndef CDPD_ADVISOR_DOMINANCE_H_
#define CDPD_ADVISOR_DOMINANCE_H_

#include <cstdint>
#include <vector>

#include "advisor/candidate_space.h"
#include "common/budget.h"
#include "common/log.h"
#include "common/resource_tracker.h"
#include "common/thread_pool.h"
#include "core/design_problem.h"

namespace cdpd {

/// Outcome of a dominance-pruning pass over a problem's candidate
/// space: the surviving ConfigIds (ascending original order, so
/// relative ConfigId order is preserved in the subset space) and how
/// many configurations were eliminated.
struct DominanceResult {
  std::vector<ConfigId> survivors;
  int64_t pruned = 0;
};

/// Eliminates candidate configurations that can never improve any
/// schedule — CoPhy-style dominated-configuration elimination adapted
/// to the *sequence* problem, where a configuration is reachable and
/// leavable, not just held.
///
/// Configuration j dominates i (i != j, both members) when every way a
/// schedule can pay for i is at least as expensive as paying for j in
/// its place:
///  * EXEC, workload-wide: StatementCost(shape, j) <=
///    StatementCost(shape, i) for every shape of the workload profile.
///    Each segment's EXEC is a nonnegative-weighted sum over a subset
///    of those shapes, so the pointwise shape inequality gives
///    EXEC(S, j) <= EXEC(S, i) for every segment S — at |shapes| x m
///    probes instead of n x m, which is what makes the check O(1) in
///    the sequence length;
///  * reachability: TRANS(C0, j) <= TRANS(C0, i), and TRANS(p, j) <=
///    TRANS(p, i) for every other member p not in {i, j};
///  * leavability: TRANS(j, q) <= TRANS(i, q) for every member q not
///    in {i, j}, and TRANS(j, F) <= TRANS(i, F) when a final
///    configuration F is constrained.
///
/// Exactness (the replacement argument): take any schedule that uses a
/// pruned i and substitute its surviving dominator j for *every*
/// occurrence of i. Every EXEC term is <= by the shape inequality;
/// every transition either maps to a <= transition (the reach/leave
/// inequalities, the boundaries) or becomes a self-transition of cost
/// 0 (the pairs (j, i), (i, j), (i, i) — transition costs are
/// nonnegative sums of build/drop costs, so dropping one never raises
/// the total). Adjacent equal configurations can only merge, so the
/// change count never grows and the initial-change accounting is
/// preserved. Hence the substituted schedule is feasible for the same
/// k and costs no more: for every change budget and every method, the
/// pruned space contains a schedule at least as good as any the full
/// space offers, and the exact methods return cost-identical optima.
///
/// The scan is sequential over ascending ConfigId, testing each
/// configuration only against *already-accepted survivors* (the check
/// over survivors is fanned out on `pool`). That keeps the dominator
/// of every pruned configuration a survivor — the replacement above
/// never chases a chain into another pruned configuration, so no
/// cycle/termination argument is needed even though the pairwise
/// relation (with its {i, j} exclusions) is not transitive. Ties
/// (configurations with identical cost vectors) keep the lowest
/// ConfigId. The configuration equal to problem.initial is never
/// pruned: with count_initial_change it is the only layer-0 start the
/// DP has, and keeping it costs one candidate.
///
/// Deterministic for any thread count. `budget` (optional) is polled
/// between candidates; on expiry the remaining configurations are
/// accepted unpruned — pruning is an optimization, so a truncated pass
/// is still exact. Scratch tables (|shapes| x m shape costs, m x m
/// TRANS) are charged to MemComponent::kCandidates via `tracker`; a
/// refused reservation skips pruning entirely (identity result) rather
/// than failing the solve.
DominanceResult PruneDominatedConfigs(const DesignProblem& problem,
                                      ThreadPool* pool = nullptr,
                                      const Budget* budget = nullptr,
                                      Logger* logger = nullptr,
                                      ResourceTracker* tracker = nullptr);

}  // namespace cdpd

#endif  // CDPD_ADVISOR_DOMINANCE_H_
