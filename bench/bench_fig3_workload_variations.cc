// Reproduces Figure 3: execution of W1, W2 and W3 under the
// constrained (k = 2) and unconstrained dynamic designs recommended
// from W1 — physically, against the storage engine and real B+-trees,
// reporting page-cost and wall time relative to W1 under the
// unconstrained design.
//
// The table is scaled to CDPD_ROWS rows (default 250000; the paper's
// 2.5M works too, just slower) — plan costs are linear in pages, so
// relative times are preserved. See DESIGN.md.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

namespace cdpd {
namespace {

struct RunOutcome {
  double cost_units = 0.0;   // Page-weighted cost of all physical work.
  double wall_seconds = 0.0;
};

RunOutcome ExecuteUnderSchedule(const Workload& workload,
                                const std::vector<Configuration>& configs,
                                const std::vector<Segment>& segments,
                                int64_t rows) {
  auto db = Database::Create(MakePaperSchema(), rows,
                             bench_util::kPaperDomain, bench_util::kSeed)
                .value();
  AccessStats total;
  Stopwatch watch;
  for (size_t s = 0; s < segments.size(); ++s) {
    AccessStats stats;
    Status status = db->ApplyConfiguration(configs[s], &stats);
    if (!status.ok()) {
      std::printf("apply failed: %s\n", status.ToString().c_str());
      return {};
    }
    total += stats;
    auto run = db->RunWorkload(std::span<const BoundStatement>(
        workload.statements.data() + segments[s].begin, segments[s].size()));
    total += run->stats;
  }
  // Restore the empty final configuration (as fixed in §6.1).
  AccessStats teardown;
  (void)db->ApplyConfiguration(Configuration::Empty(), &teardown);
  total += teardown;
  RunOutcome outcome;
  outcome.wall_seconds = watch.ElapsedSeconds();
  outcome.cost_units = db->cost_model().StatsToCost(total);
  return outcome;
}

void Run(bench_util::BenchReport* report) {
  using namespace bench_util;
  const int64_t rows = ExecutionRows();
  const Schema schema = MakePaperSchema();
  CostModel model(schema, rows, kPaperDomain);

  // Recommend both designs from W1 (decisions priced at the actual
  // table size).
  const Workload w1 = MakeFullWorkload("W1", kSeed);
  Advisor advisor(&model);
  auto unconstrained = advisor.Recommend(w1, PaperAdvisorOptions(std::nullopt));
  auto constrained = advisor.Recommend(w1, PaperAdvisorOptions(2));
  if (!unconstrained.ok() || !constrained.ok()) {
    std::printf("advisor failed\n");
    return;
  }

  // Independent variations of the workload (fresh generator seeds give
  // fresh query literals; the mix schedule is the defining property).
  const Workload w2 = MakeFullWorkload("W2", kSeed + 1);
  const Workload w3 = MakeFullWorkload("W3", kSeed + 2);

  PrintHeader("Figure 3: Relative Execution of W1/W2/W3 Under Constrained "
              "and Unconstrained W1 Designs");
  std::printf("table rows: %lld (CDPD_ROWS overrides)\n\n",
              static_cast<long long>(rows));
  std::printf("%-9s %-14s %14s %8s %12s %8s\n", "workload", "design",
              "page-cost", "rel", "wall(s)", "rel");

  const std::vector<Segment> segments = SegmentFixed(w1.size(),
                                                     kPaperBlockSize);
  double baseline_cost = 0;
  double baseline_wall = 0;
  struct Row {
    const char* workload;
    const char* design;
    RunOutcome outcome;
  };
  std::vector<Row> rows_out;
  const Workload* workloads[3] = {&w1, &w2, &w3};
  const char* names[3] = {"W1", "W2", "W3"};
  for (int w = 0; w < 3; ++w) {
    for (int d = 0; d < 2; ++d) {
      const auto& rec = d == 0 ? *unconstrained : *constrained;
      const RunOutcome outcome = ExecuteUnderSchedule(
          *workloads[w], rec.schedule.configs, segments, rows);
      if (w == 0 && d == 0) {
        baseline_cost = outcome.cost_units;
        baseline_wall = outcome.wall_seconds;
      }
      rows_out.push_back(
          Row{names[w], d == 0 ? "unconstrained" : "constrained", outcome});
      report->AddCase(std::string(names[w]) + "_" +
                          (d == 0 ? "unconstrained" : "constrained"),
                      outcome.wall_seconds,
                      {{"page_cost", outcome.cost_units}});
    }
  }
  for (const Row& row : rows_out) {
    std::printf("%-9s %-14s %14.0f %7.1f%% %12.3f %7.1f%%\n", row.workload,
                row.design, row.outcome.cost_units,
                100.0 * row.outcome.cost_units / baseline_cost,
                row.outcome.wall_seconds,
                100.0 * row.outcome.wall_seconds / baseline_wall);
  }
  PrintRule();
  std::printf(
      "expected shape (paper): W1 ~14%% slower under the constrained\n"
      "design; W2 and W3 faster under the constrained design than under\n"
      "the unconstrained (over-fitted) one.\n");
  PrintRule();
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("fig3_workload_variations");
  cdpd::Run(&report);
  report.Write();
  return 0;
}
