// Ablation C: shortest-path ranking (§5) as a constrained optimizer.
// It provably returns the same optimum as the k-aware graph; the
// question is the price — how many paths must be ranked before one
// with <= k changes appears. The paper warns the worst case "can be
// quite bad, particularly for small k"; this bench quantifies that on
// coarsened versions of W1 (ranking over the full 30-stage graph with
// small k explodes).

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/solver.h"
#include "cost/what_if.h"

namespace cdpd {
namespace {

void Run(bench_util::BenchReport* report) {
  using namespace bench_util;
  auto model = MakePaperCostModel();
  const Schema schema = MakePaperSchema();

  PrintHeader("Ablation C: path ranking vs k-aware graph (optimal "
              "agreement and ranking effort)");
  std::printf("%8s %4s %14s %12s %12s %10s\n", "stages", "k", "paths-ranked",
              "t_rank(ms)", "t_graph(ms)", "agree");

  for (size_t block_size : {7500, 5000, 3000, 1500}) {
    WorkloadGenerator gen(schema, kPaperDomain, kSeed);
    const Workload w1 = MakePaperWorkload("W1", &gen).value();
    const std::vector<Segment> segments =
        SegmentFixed(w1.size(), block_size);
    WhatIfEngine what_if(model.get(), w1.statements, segments);

    ConfigEnumOptions enum_options;
    enum_options.max_indexes_per_config = 1;
    enum_options.num_rows = model->num_rows();
    DesignProblem problem;
    problem.what_if = &what_if;
    problem.candidates =
        EnumerateConfigurations(MakePaperCandidateIndexes(schema),
                                enum_options)
            .value();
    problem.initial = Configuration::Empty();

    for (int64_t k = 0; k <= 2; ++k) {
      SolveOptions rank_options;
      rank_options.method = OptimizerMethod::kRanking;
      rank_options.k = k;
      rank_options.ranking_max_paths = 500'000;
      AttachObservability(&rank_options);
      Stopwatch rank_watch;
      auto ranked = Solve(problem, rank_options);
      const double rank_time = rank_watch.ElapsedSeconds();

      SolveOptions graph_options;
      graph_options.method = OptimizerMethod::kOptimal;
      graph_options.k = k;
      AttachObservability(&graph_options);
      Stopwatch graph_watch;
      auto graph = Solve(problem, graph_options);
      const double graph_time = graph_watch.ElapsedSeconds();

      const std::string point = "s" + std::to_string(segments.size()) +
                                "_k" + std::to_string(k);
      if (ranked.ok()) {
        report->AddCase("ranking_" + point, rank_time, ranked->stats);
      }
      if (graph.ok()) {
        report->AddCase("kaware_" + point, graph_time, graph->stats);
      }
      if (!ranked.ok()) {
        std::printf("%8zu %4lld %14s %12.2f %12.3f %10s\n", segments.size(),
                    static_cast<long long>(k), "exhausted", rank_time * 1e3,
                    graph_time * 1e3, "-");
        continue;
      }
      const bool agree =
          graph.ok() && std::abs(ranked->schedule.total_cost -
                                 graph->schedule.total_cost) < 1e-6;
      std::printf("%8zu %4lld %14lld %12.2f %12.3f %10s\n", segments.size(),
                  static_cast<long long>(k),
                  static_cast<long long>(ranked->stats.paths_enumerated),
                  rank_time * 1e3, graph_time * 1e3,
                  agree ? "yes" : "NO");
    }
  }
  PrintRule();
  std::printf("ranking always reproduces the k-aware optimum, but the\n"
              "number of ranked paths grows steeply with the stage count\n"
              "and shrinking k — the paper's worst-case warning.\n");
  PrintRule();
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("ablation_ranking");
  cdpd::Run(&report);
  report.Write();
  cdpd::bench_util::WriteObservabilityArtifacts();
  return 0;
}
