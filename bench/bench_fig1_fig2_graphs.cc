// Reproduces Figures 1 and 2: the sequence graph and the k-aware
// sequence graph for a workload of n = 3 statements and one candidate
// index (two configurations), including the node/edge inventories the
// paper's complexity analysis is based on, and a DOT rendering of the
// Figure 1 graph.

#include <cstdio>

#include "advisor/config_enumeration.h"
#include "bench_util.h"
#include "core/k_aware_graph.h"
#include "core/sequence_graph.h"
#include "core/solver.h"
#include "cost/cost_cache.h"
#include "cost/what_if.h"
#include "workload/generator.h"

namespace cdpd {
namespace {

void Run(bench_util::BenchReport* report) {
  using bench_util::PrintHeader;
  const Schema schema = MakePaperSchema();
  CostModel model(schema, bench_util::kPaperRows, bench_util::kPaperDomain);

  // Three point queries on column a; one candidate index IX = I(a).
  WorkloadGenerator gen(schema, bench_util::kPaperDomain, bench_util::kSeed);
  std::vector<BoundStatement> statements =
      gen.GenerateFromMix(MakePaperQueryMixes()[0], 3);
  const std::vector<Segment> segments = SegmentFixed(3, 1);
  WhatIfEngine what_if(&model, statements, segments);

  DesignProblem problem;
  problem.what_if = &what_if;
  problem.candidates = {Configuration::Empty(),
                        Configuration({IndexDef({0})})};
  problem.initial = Configuration::Empty();

  PrintHeader(
      "Figure 1: sequence graph, n = 3 statements, one candidate index");
  auto graph = SequenceGraph::Build(problem).value();
  const int64_t n = 3;
  const int64_t configs = 2;  // 2^m with m = 1.
  std::printf("nodes: %lld   (formula n*2^m + 2          = %lld)\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(n * configs + 2));
  std::printf("edges: %lld   (formula (n-1)*2^2m + 2^m+1 = %lld)\n",
              static_cast<long long>(graph.num_edges()),
              static_cast<long long>((n - 1) * configs * configs +
                                     2 * configs));
  std::printf("\nDOT rendering (edge labels = TRANS + EXEC weights):\n%s\n",
              graph.ToDot().c_str());

  PrintHeader("Figure 2: (k = 2)-aware sequence graph, same scenario");
  const KAwareGraphSize size = ComputeKAwareGraphSize(n, configs, /*k=*/2);
  std::printf("layers: 3 (no change / one change / two changes)\n");
  std::printf("nodes:  %lld   (O(k n 2^m))\n",
              static_cast<long long>(size.nodes));
  std::printf("edges:  %lld   (O(k n 2^2m))\n",
              static_cast<long long>(size.edges));

  SolveOptions solve_options;
  solve_options.method = OptimizerMethod::kOptimal;
  solve_options.k = 2;
  bench_util::AttachObservability(&solve_options);
  const SolveResult result = Solve(problem, solve_options).value();
  report->AddCase("kaware_n3_k2", result.stats.wall_seconds, result.stats);
  const DesignSchedule& schedule = result.schedule;
  std::printf("\nshortest path through the k-aware graph (k = 2):\n");
  for (size_t i = 0; i < schedule.configs.size(); ++i) {
    std::printf("  S%zu executed under %s\n", i + 1,
                schedule.configs[i].ToString(schema).c_str());
  }
  std::printf("sequence execution cost: %.1f, DP states: %lld, "
              "relaxations: %lld\n",
              schedule.total_cost,
              static_cast<long long>(result.stats.nodes_expanded),
              static_cast<long long>(result.stats.relaxations));
  bench_util::PrintRule();
}

/// The relaxation-throughput measurement behind the v3
/// relaxations_per_sec column: a k-aware DP large enough to outlast
/// timer noise (240 stages x 64 configurations x k = 4), solved cold
/// and then warm through a persistent cost cache — the warm case also
/// reports its cache_hit_rate.
void RunDpThroughput(bench_util::BenchReport* report) {
  using bench_util::PrintHeader;
  const Schema schema = MakePaperSchema();
  CostModel model(schema, bench_util::kPaperRows, bench_util::kPaperDomain);

  constexpr size_t kSegments = 240;
  constexpr size_t kBlock = 2;
  WorkloadGenerator gen(schema, bench_util::kPaperDomain,
                        bench_util::kSeed + 1);
  const std::vector<QueryMix> mixes = MakePaperQueryMixes();
  std::vector<int> blocks;
  for (size_t i = 0; i < kSegments; ++i) {
    blocks.push_back(static_cast<int>(i % mixes.size()));
  }
  Workload workload =
      gen.GenerateBlocked(mixes, blocks, kBlock, DmlMixOptions{}).value();
  const std::vector<Segment> segments =
      SegmentFixed(workload.statements.size(), kBlock);
  WhatIfEngine what_if(&model, workload.statements, segments);

  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = 6;  // All 2^6 = 64 subsets.
  enum_options.num_rows = bench_util::kPaperRows;
  DesignProblem problem;
  problem.what_if = &what_if;
  problem.candidates =
      EnumerateConfigurations(MakePaperCandidateIndexes(schema), enum_options)
          .value();
  problem.initial = Configuration::Empty();

  SolveOptions solve_options;
  solve_options.method = OptimizerMethod::kOptimal;
  solve_options.k = 4;
  bench_util::AttachObservability(&solve_options);
  CostCache cache;
  solve_options.cost_cache = &cache;

  PrintHeader("k-aware DP throughput: n = 240 stages, m = 64 configs, k = 4");
  const SolveResult cold = Solve(problem, solve_options).value();
  report->AddCase("kaware_dp_n240_m64_k4", cold.stats.wall_seconds,
                  cold.stats);
  std::printf("cold:  %.4f s, %lld relaxations (%.3g relax/s), "
              "%lld cache misses\n",
              cold.stats.wall_seconds,
              static_cast<long long>(cold.stats.relaxations),
              cold.stats.wall_seconds > 0.0
                  ? static_cast<double>(cold.stats.relaxations) /
                        cold.stats.wall_seconds
                  : 0.0,
              static_cast<long long>(cold.stats.cost_cache_misses));

  // Warm re-solve: a fresh engine (cold memo) over the same workload,
  // so every reused cost comes from the persistent cache.
  WhatIfEngine warm_engine(&model, workload.statements, segments);
  DesignProblem warm_problem = problem;
  warm_problem.what_if = &warm_engine;
  const SolveResult warm = Solve(warm_problem, solve_options).value();
  report->AddCase("kaware_dp_n240_m64_k4_warm", warm.stats.wall_seconds,
                  warm.stats);
  const long long probes =
      warm.stats.cost_cache_hits + warm.stats.cost_cache_misses;
  std::printf("warm:  %.4f s, cost-cache hit rate %.3f "
              "(%lld hits / %lld probes)\n",
              warm.stats.wall_seconds,
              probes > 0 ? static_cast<double>(warm.stats.cost_cache_hits) /
                               static_cast<double>(probes)
                         : 0.0,
              static_cast<long long>(warm.stats.cost_cache_hits), probes);
  bench_util::PrintRule();
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("fig1_fig2_graphs");
  cdpd::Run(&report);
  cdpd::RunDpThroughput(&report);
  report.Write();
  cdpd::bench_util::WriteObservabilityArtifacts();
  return 0;
}
