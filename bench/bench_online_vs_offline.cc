// Comparison the paper motivates in §1/§7: off-line dynamic design
// (this paper) versus reactive on-line tuning (Bruno & Chaudhuri-style
// monitor-and-adjust, here represented by core/online_tuner.h). The
// on-line tuner only sees the past; the off-line advisor exploits the
// whole representative trace. Run on W1 (the fitted trace) and on
// W2/W3 (variations), costs from the what-if model, full paper scale.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/online_tuner.h"
#include "cost/what_if.h"

namespace cdpd {
namespace {

double OfflineCost(const CostModel& model, const Workload& workload,
                   const std::vector<Configuration>& schedule) {
  WhatIfEngine what_if(&model, workload.Span(),
                       SegmentFixed(workload.size(), kPaperBlockSize));
  DesignProblem problem;
  problem.what_if = &what_if;
  problem.candidates = {Configuration::Empty()};
  problem.initial = Configuration::Empty();
  problem.final_config = Configuration::Empty();
  return EvaluateScheduleCost(problem, schedule);
}

void Run(bench_util::BenchReport* report) {
  using namespace bench_util;
  auto model = MakePaperCostModel();
  const Schema schema = MakePaperSchema();
  const Workload w1 = MakeFullWorkload("W1", kSeed);
  const Workload w2 = MakeFullWorkload("W2", kSeed + 1);
  const Workload w3 = MakeFullWorkload("W3", kSeed + 2);

  Advisor advisor(model.get());
  auto unconstrained = advisor.Recommend(w1, PaperAdvisorOptions(std::nullopt));
  auto constrained = advisor.Recommend(w1, PaperAdvisorOptions(2));
  if (!unconstrained.ok() || !constrained.ok()) {
    std::printf("advisor failed\n");
    return;
  }

  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = 1;
  enum_options.num_rows = model->num_rows();
  const std::vector<Configuration> configs =
      EnumerateConfigurations(MakePaperCandidateIndexes(schema),
                              enum_options)
          .value();

  PrintHeader("Online reactive tuning vs offline (constrained) dynamic "
              "design — total cost incl. transitions");
  std::printf("%-9s %18s %18s %18s %14s\n", "workload", "offline k=inf",
              "offline k=2", "online reactive", "online chgs");
  const Workload* workloads[3] = {&w1, &w2, &w3};
  const char* names[3] = {"W1", "W2", "W3"};
  for (int w = 0; w < 3; ++w) {
    const Stopwatch watch;
    const double off_unc =
        OfflineCost(*model, *workloads[w], unconstrained->schedule.configs);
    const double off_con =
        OfflineCost(*model, *workloads[w], constrained->schedule.configs);

    OnlineTunerOptions online_options;
    online_options.window = 1000;
    online_options.epoch = 250;
    OnlineTuner tuner(model.get(), configs, online_options);
    tuner.ProcessAll(workloads[w]->statements);
    // Final drop back to the empty design, matching the offline runs.
    const double online_cost =
        tuner.stats().total_cost() +
        model->TransitionCost(tuner.active_configuration(),
                              Configuration::Empty());

    std::printf("%-9s %18.4e %18.4e %18.4e %14lld\n", names[w], off_unc,
                off_con, online_cost,
                static_cast<long long>(tuner.stats().changes));
    report->AddCase(names[w], watch.ElapsedSeconds(),
                    {{"offline_unconstrained_cost", off_unc},
                     {"offline_k2_cost", off_con},
                     {"online_cost", online_cost}});
  }
  PrintRule();
  std::printf(
      "Reading: on the fitted trace (W1) the offline unconstrained design\n"
      "is the lower bound; on the variations (W2/W3) the *constrained*\n"
      "offline design generalizes while the unconstrained one overfits.\n"
      "The reactive tuner pays detection lag after every shift and has no\n"
      "foresight, but adapts to any workload — the paper's proposal is to\n"
      "combine them (alerter triggers the offline constrained advisor).\n");
  PrintRule();
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("online_vs_offline");
  cdpd::Run(&report);
  report.Write();
  return 0;
}
