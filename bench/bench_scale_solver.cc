// Scaling the instance dimension: n up to 10^6 statements and m up to
// 12 candidate configurations, the regime the segment-parallel k-aware
// solver and dominance pruning target. Each case solves the k = 4
// constrained problem end to end (workload generation excluded from
// the timing) with pruning on, segment-parallel chunking in auto mode,
// and a warm-capable persistent cost cache, under a soft memory budget
// — the configuration a long-running advisor would use. Reports the
// schema-v3 statements_per_sec throughput column bench_compare gates
// on.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/solver.h"
#include "cost/cost_cache.h"
#include "cost/what_if.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

/// The first `m` configurations of the paper's candidate space widened
/// to two indexes per configuration (1 empty + 6 singles + pairs in
/// enumeration order) — deterministic, and always containing the empty
/// initial configuration.
std::vector<Configuration> MakeCandidates(const Schema& schema,
                                          int64_t num_rows, size_t m) {
  using namespace bench_util;
  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = 2;
  enum_options.num_rows = num_rows;
  std::vector<Configuration> configs =
      EnumerateConfigurations(MakePaperCandidateIndexes(schema),
                              enum_options)
          .value();
  if (configs.size() > m) configs.resize(m);
  return configs;
}

void Run(bench_util::BenchReport* report) {
  using namespace bench_util;
  auto model = MakePaperCostModel();
  const Schema schema = MakePaperSchema();

  PrintHeader("Scaling: n statements x m candidate configurations, k = 4");
  std::printf("%12s %4s %8s %6s %12s %14s %10s %8s\n", "n", "m", "stages",
              "chunks", "wall(s)", "stmts/sec", "pruned", "flags");

  // The paper's W1 has 30 mix blocks; scaling the per-block size scales
  // the statement count while keeping the phase structure (and thus the
  // optimal change points) intact.
  struct ScalePoint {
    const char* label;
    size_t block_size;  // Per mix block; n = 30 * block_size.
  };
  const ScalePoint points[] = {
      {"n10k", 334},     // ~10k statements.
      {"n100k", 3'334},  // ~100k statements.
      {"n1M", 33'334},   // ~1M statements.
  };
  for (const ScalePoint& point : points) {
    WorkloadGenerator gen(schema, kPaperDomain, kSeed);
    const Workload workload =
        MakeScaledPaperWorkload("W1", point.block_size, &gen).value();
    const size_t n = workload.size();
    // One solver stage per 500 statements, the advisor default.
    const std::vector<Segment> segments = SegmentFixed(n, 500);

    for (const size_t m : {size_t{8}, size_t{12}}) {
      const std::vector<Configuration> candidates =
          MakeCandidates(schema, model->num_rows(), m);
      WhatIfEngine what_if(model.get(), workload.statements, segments);
      DesignProblem problem;
      problem.what_if = &what_if;
      problem.candidates = candidates;
      problem.initial = Configuration::Empty();

      CostCache cache;
      SolveOptions options;
      options.method = OptimizerMethod::kOptimal;
      options.k = 4;
      options.prune_dominated = true;
      options.cost_cache = &cache;
      // 1 GiB soft budget: the n = 1M case must fit, or it degrades
      // visibly (the flags column shows mem/deadline fallbacks).
      options.memory_limit_bytes = int64_t{1} << 30;
      AttachObservability(&options);

      Stopwatch watch;
      auto result = Solve(problem, options);
      const double wall = watch.ElapsedSeconds();
      if (!result.ok()) {
        std::printf("%12zu %4zu solver failed: %s\n", n, m,
                    result.status().ToString().c_str());
        continue;
      }
      const SolveStats& stats = result->stats;
      const std::string name =
          std::string(point.label) + "_m" + std::to_string(m);
      report->AddCase(name, wall, stats, static_cast<int64_t>(n));
      std::printf("%12zu %4zu %8zu %6lld %12.3f %14.0f %10lld %8s\n", n, m,
                  segments.size(),
                  static_cast<long long>(stats.segment_chunks), wall,
                  static_cast<double>(n) / wall,
                  static_cast<long long>(stats.pruned_configs),
                  stats.memory_limit_hit  ? "mem"
                  : stats.deadline_hit    ? "deadline"
                  : stats.best_effort     ? "fallback"
                                          : "ok");
    }
  }
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("scale_solver");
  cdpd::Run(&report);
  report.Write();
  cdpd::bench_util::WriteObservabilityArtifacts();
  return 0;
}
