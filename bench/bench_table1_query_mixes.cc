// Reproduces Table 1: the four workload query mixes, plus an empirical
// check that the generator realizes the specified column distribution.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "workload/generator.h"
#include "workload/query_mix.h"

namespace cdpd {
namespace {

void Run(bench_util::BenchReport* report) {
  using bench_util::PrintHeader;
  const Schema schema = MakePaperSchema();
  const std::vector<QueryMix> mixes = MakePaperQueryMixes();

  PrintHeader("Table 1: Workload Query Mixes (specified)");
  std::printf("%-14s", "Queried <col>");
  for (const std::string& col : schema.column_names()) {
    std::printf("%8s", col.c_str());
  }
  std::printf("\n");
  for (const QueryMix& mix : mixes) {
    std::printf("Query Mix %-4s", mix.name.c_str());
    for (double w : mix.column_weights) {
      std::printf("%7.0f%%", w * 100);
    }
    std::printf("\n");
  }

  PrintHeader(
      "Empirical column frequencies over 100000 generated queries per mix");
  WorkloadGenerator gen(schema, bench_util::kPaperDomain, bench_util::kSeed);
  constexpr int kQueries = 100'000;
  for (const QueryMix& mix : mixes) {
    std::vector<int64_t> counts(4, 0);
    const Stopwatch watch;
    for (int i = 0; i < kQueries; ++i) {
      ++counts[static_cast<size_t>(gen.GenerateQuery(mix).where_column)];
    }
    report->AddCase("generate_mix_" + mix.name, watch.ElapsedSeconds(),
                    {{"queries", static_cast<double>(kQueries)}});
    std::printf("Query Mix %-4s", mix.name.c_str());
    for (int64_t count : counts) {
      std::printf("%7.2f%%", 100.0 * static_cast<double>(count) / kQueries);
    }
    std::printf("\n");
  }
  bench_util::PrintRule();
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("table1_query_mixes");
  cdpd::Run(&report);
  report.Write();
  return 0;
}
