// Ablation F: the space bound b — the other constraint of
// Definition 1. Sweeping b from "nothing fits" to "everything fits"
// shows the k = 2 design degrading gracefully: from no index, through
// single-column indexes only, to the two-column covering indexes of
// Table 2. Also sweeps max-indexes-per-config to show multi-index
// configurations paying off once the space bound admits them.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "cost/what_if.h"

namespace cdpd {
namespace {

void Run(bench_util::BenchReport* report) {
  using namespace bench_util;
  auto model = MakePaperCostModel();
  const Schema schema = MakePaperSchema();
  const Workload w1 = MakeFullWorkload("W1", kSeed);
  const int64_t rows = model->num_rows();

  const int64_t one_col = IndexDef({0}).SizePages(rows);
  const int64_t two_col = IndexDef({0, 1}).SizePages(rows);

  PrintHeader("Ablation F: space bound b (k = 2 design quality vs allowed "
              "index footprint)");
  std::printf("index sizes: one-column ~%lld pages, two-column ~%lld pages\n\n",
              static_cast<long long>(one_col),
              static_cast<long long>(two_col));
  std::printf("%16s %10s %8s %14s %s\n", "bound (pages)", "configs",
              "changes", "est. cost", "phase-1 design");

  Advisor advisor(model.get());
  const std::vector<int64_t> bounds = {
      0, one_col - 1, one_col, two_col, 2 * two_col, 1 << 30};
  double unbounded_cost = 0;
  for (int64_t bound : bounds) {
    AdvisorOptions options = PaperAdvisorOptions(2);
    options.space_bound_pages = bound;
    auto rec = advisor.Recommend(w1, options);
    if (!rec.ok()) {
      std::printf("%16lld advisor failed: %s\n",
                  static_cast<long long>(bound),
                  rec.status().ToString().c_str());
      continue;
    }
    unbounded_cost = rec->schedule.total_cost;  // Last row = unbounded.
    report->AddCase("bound" + std::to_string(bound),
                    rec->stats.wall_seconds, rec->stats);
    std::printf("%16lld %10zu %8lld %14.4e %s\n",
                static_cast<long long>(bound), rec->candidate_configs.size(),
                static_cast<long long>(rec->changes),
                rec->schedule.total_cost,
                rec->schedule.configs[0].ToString(schema).c_str());
  }
  (void)unbounded_cost;

  PrintRule();
  std::printf("multi-index configurations (max-indexes sweep, unbounded "
              "space, k = 2):\n");
  std::printf("%12s %10s %14s %s\n", "max idx/cfg", "configs", "est. cost",
              "phase-1 design");
  for (int32_t max_indexes : {1, 2, 3}) {
    AdvisorOptions options = PaperAdvisorOptions(2);
    options.max_indexes_per_config = max_indexes;
    auto rec = advisor.Recommend(w1, options);
    if (!rec.ok()) continue;
    report->AddCase("max_indexes" + std::to_string(max_indexes),
                    rec->stats.wall_seconds, rec->stats);
    std::printf("%12d %10zu %14.4e %s\n", max_indexes,
                rec->candidate_configs.size(), rec->schedule.total_cost,
                rec->schedule.configs[0].ToString(schema).c_str());
  }
  PrintRule();
  std::printf("With room for two indexes per configuration the k = 2 design\n"
              "holds {I(a,b), I(c,d)} through all three phases — trading\n"
              "space for even fewer changes, a corner the paper's 1-index\n"
              "space could not explore.\n");
  PrintRule();
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("ablation_space_bound");
  cdpd::Run(&report);
  report.Write();
  return 0;
}
