// Ablation B: the hybrid strategy §6.4 suggests. For each k, report
// which technique the hybrid picks, its runtime, and its solution
// quality versus always-graph and always-merging. The crossover point
// follows Figure 4: graph for small k, merging for large k.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/solver.h"
#include "cost/what_if.h"

namespace cdpd {
namespace {

void Run(bench_util::BenchReport* report) {
  using namespace bench_util;
  auto model = MakePaperCostModel();
  const Schema schema = MakePaperSchema();
  WorkloadGenerator gen(schema, kPaperDomain, kSeed);
  Workload day1 = MakePaperWorkload("W1", &gen).value();
  Workload day2 = MakePaperWorkload("W1", &gen).value();
  Workload workload = std::move(day1);
  workload.statements.insert(workload.statements.end(),
                             day2.statements.begin(),
                             day2.statements.end());
  const std::vector<Segment> segments =
      SegmentFixed(workload.size(), kPaperBlockSize);
  WhatIfEngine what_if(model.get(), workload.statements, segments);

  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = 1;
  enum_options.num_rows = model->num_rows();
  DesignProblem problem;
  problem.what_if = &what_if;
  problem.candidates =
      EnumerateConfigurations(MakePaperCandidateIndexes(schema),
                              enum_options)
          .value();
  problem.initial = Configuration::Empty();
  problem.final_config = Configuration::Empty();

  SolveOptions unconstrained_options;
  unconstrained_options.method = OptimizerMethod::kOptimal;
  AttachObservability(&unconstrained_options);
  const DesignSchedule unconstrained =
      Solve(problem, unconstrained_options).value().schedule;
  const int64_t l = CountChanges(problem, unconstrained.configs);

  auto options_for = [](OptimizerMethod method, int64_t k) {
    SolveOptions options;
    options.method = method;
    options.k = k;
    AttachObservability(&options);
    return options;
  };

  PrintHeader("Ablation B: hybrid optimizer choice and quality vs k");
  std::printf("unconstrained change count l = %lld\n\n",
              static_cast<long long>(l));
  std::printf("%4s %-16s %12s %12s %12s %12s\n", "k", "hybrid choice",
              "t_hyb(ms)", "t_graph(ms)", "t_merge(ms)", "quality");
  for (int64_t k = 0; k <= l + 2; k += 2) {
    Stopwatch hybrid_watch;
    auto hybrid =
        Solve(problem, options_for(OptimizerMethod::kHybrid, k)).value();
    const double hybrid_time = hybrid_watch.ElapsedSeconds();

    Stopwatch graph_watch;
    auto graph =
        Solve(problem, options_for(OptimizerMethod::kOptimal, k)).value();
    const double graph_time = graph_watch.ElapsedSeconds();

    Stopwatch merge_watch;
    auto merged =
        Solve(problem, options_for(OptimizerMethod::kMerging, k)).value();
    const double merge_time = merge_watch.ElapsedSeconds();

    std::printf("%4lld %-16s %12.2f %12.2f %12.2f %11.2f%%\n",
                static_cast<long long>(k), hybrid.method_detail.c_str(),
                hybrid_time * 1e3, graph_time * 1e3, merge_time * 1e3,
                100.0 * hybrid.schedule.total_cost /
                    graph.schedule.total_cost);
    (void)merged;
    report->AddCase("hybrid_k" + std::to_string(k), hybrid_time,
                    hybrid.stats);
    report->AddCase("kaware_k" + std::to_string(k), graph_time, graph.stats);
    report->AddCase("merging_k" + std::to_string(k), merge_time,
                    merged.stats);
  }
  PrintRule();
  std::printf("quality = hybrid cost / optimal (k-aware) cost. The hybrid\n"
              "trades a small optimality gap (only where it picks merging)\n"
              "for the cheaper side of Figure 4's two curves.\n");
  PrintRule();
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("ablation_hybrid");
  cdpd::Run(&report);
  report.Write();
  cdpd::bench_util::WriteObservabilityArtifacts();
  return 0;
}
