#ifndef CDPD_BENCH_BENCH_UTIL_H_
#define CDPD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "cost/cost_model.h"
#include "engine/database.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace bench_util {

/// The paper's experimental constants (§6.1).
inline constexpr int64_t kPaperRows = 2'500'000;
inline constexpr int64_t kPaperDomain = 500'000;
inline constexpr uint64_t kSeed = 20080407;  // ICDE 2008 week.

/// Rows for benches that physically execute workloads. The paper's
/// 2.5 M-row table works but makes full scans slow on small machines;
/// 250 k (default) preserves every cost ordering (plans are linear in
/// pages). Override with CDPD_ROWS.
inline int64_t ExecutionRows() {
  if (const char* env = std::getenv("CDPD_ROWS")) {
    const int64_t rows = std::atoll(env);
    if (rows > 0) return rows;
  }
  return 250'000;
}

/// Cost model over the paper's full-size table (used by the advisors;
/// no physical table needed).
inline std::unique_ptr<CostModel> MakePaperCostModel() {
  return std::make_unique<CostModel>(MakePaperSchema(), kPaperRows,
                                     kPaperDomain);
}

/// W1/W2/W3 at the paper's full scale (15000 statements, 500-query
/// blocks), deterministically seeded.
inline Workload MakeFullWorkload(const std::string& name, uint64_t seed) {
  WorkloadGenerator gen(MakePaperSchema(), kPaperDomain, seed);
  return MakePaperWorkload(name, &gen).value();
}

/// The advisor options of §6: 7-configuration space over the six
/// candidate indexes, initial and final design empty. k < 0 maps to
/// the unconstrained problem (AdvisorOptions::k = nullopt).
inline AdvisorOptions PaperAdvisorOptions(int64_t k) {
  AdvisorOptions options;
  options.block_size = kPaperBlockSize;
  options.k = k < 0 ? std::nullopt : std::optional<int64_t>(k);
  options.candidate_indexes = MakePaperCandidateIndexes(MakePaperSchema());
  options.max_indexes_per_config = 1;
  options.final_config = Configuration::Empty();
  return options;
}

/// Simple aligned table printing for the reproduction reports.
inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace bench_util
}  // namespace cdpd

#endif  // CDPD_BENCH_BENCH_UTIL_H_
