#ifndef CDPD_BENCH_BENCH_UTIL_H_
#define CDPD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/json_util.h"
#include "common/metrics.h"
#include "common/resource_tracker.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "core/advisor.h"
#include "cost/cost_model.h"
#include "engine/database.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace bench_util {

/// The paper's experimental constants (§6.1).
inline constexpr int64_t kPaperRows = 2'500'000;
inline constexpr int64_t kPaperDomain = 500'000;
inline constexpr uint64_t kSeed = 20080407;  // ICDE 2008 week.

/// Rows for benches that physically execute workloads. The paper's
/// 2.5 M-row table works but makes full scans slow on small machines;
/// 250 k (default) preserves every cost ordering (plans are linear in
/// pages). Override with CDPD_ROWS.
inline int64_t ExecutionRows() {
  if (const char* env = std::getenv("CDPD_ROWS")) {
    const int64_t rows = std::atoll(env);
    if (rows > 0) return rows;
  }
  return 250'000;
}

/// Cost model over the paper's full-size table (used by the advisors;
/// no physical table needed).
inline std::unique_ptr<CostModel> MakePaperCostModel() {
  return std::make_unique<CostModel>(MakePaperSchema(), kPaperRows,
                                     kPaperDomain);
}

/// W1/W2/W3 at the paper's full scale (15000 statements, 500-query
/// blocks), deterministically seeded.
inline Workload MakeFullWorkload(const std::string& name, uint64_t seed) {
  WorkloadGenerator gen(MakePaperSchema(), kPaperDomain, seed);
  return MakePaperWorkload(name, &gen).value();
}

/// Process-wide observability sinks shared by every solve a bench
/// runs. Only attached when the corresponding environment variable
/// (CDPD_METRICS_OUT / CDPD_TRACE_OUT) names an output file, so the
/// default bench run stays uninstrumented.
inline MetricsRegistry& BenchMetricsRegistry() {
  static MetricsRegistry registry;
  return registry;
}

inline Tracer& BenchTracer() {
  static Tracer tracer;
  return tracer;
}

/// Points `options` at the bench-wide registry/tracer when
/// CDPD_METRICS_OUT / CDPD_TRACE_OUT are set. Works for both option
/// structs that carry observability injection points.
template <typename Options>
inline void AttachObservability(Options* options) {
  if (std::getenv("CDPD_METRICS_OUT") != nullptr) {
    options->observability.metrics = &BenchMetricsRegistry();
  }
  if (std::getenv("CDPD_TRACE_OUT") != nullptr) {
    options->observability.tracer = &BenchTracer();
  }
}

/// Writes the artifacts named by CDPD_METRICS_OUT / CDPD_TRACE_OUT
/// (same formats as advisor_cli --metrics-out / --trace-out). Call at
/// the end of a bench's main; a no-op when the variables are unset.
inline void WriteObservabilityArtifacts() {
  auto write = [](const char* path, const std::string& content,
                  const char* what) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s to %s\n", what, path);
      return;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    std::printf("%s written to %s\n", what, path);
  };
  if (const char* path = std::getenv("CDPD_METRICS_OUT")) {
    write(path, BenchMetricsRegistry().Snapshot().ToJson(),
          "metrics snapshot");
  }
  if (const char* path = std::getenv("CDPD_TRACE_OUT")) {
    write(path, BenchTracer().ToChromeJson(), "trace");
  }
}

/// Continuous benchmark telemetry: every bench main builds one
/// BenchReport, records a case per measured experiment point, and
/// writes `BENCH_<bench>.json` on exit. The artifact is the unit the
/// perf trajectory is built from — tools/bench_compare diffs two sets
/// of them, and CI uploads every run's set next to the committed
/// baseline in bench/baselines/.
///
/// Schema (version 3 — v2 plus the DP-throughput and cost-cache
/// columns; readers accept all three):
///   {
///     "schema_version": 3,
///     "kind": "cdpd.bench",
///     "bench": "<name>",
///     "git_sha": "<$CDPD_GIT_SHA or 'unknown'>",
///     "threads": <default worker-thread count>,
///     "rows": <ExecutionRows()>,
///     "unix_time": <seconds since epoch>,
///     "rss_peak_bytes": <process lifetime peak RSS at write time>,
///     "cases": [
///       {"name": "...", "wall_seconds": 1.25, "cpu_seconds": 4.8,
///        "peak_bytes": 1048576,
///        "relaxations_per_sec": 2.1e8,      // solver cases only
///        "cache_hit_rate": 0.97,            // cost-cache cases only
///        "statements_per_sec": 3.4e5,       // scaling cases only
///        "requests_per_sec": 1.2e4,         // serving cases only
///        "metrics": {"costings": 831, ...}},
///       ...
///     ]
///   }
///
/// Case metrics are optional flat numeric key/value pairs — pass a
/// SolveStats to embed the solver counters (which also fills the
/// case's cpu_seconds/peak_bytes columns from the solve's process-CPU
/// delta and tracked allocation peak, plus the v3 columns:
/// relaxations_per_sec = stats.relaxations / wall, emitted when the
/// solve relaxed anything, and cache_hit_rate = cost-cache hits /
/// (hits + misses), emitted when a persistent cost cache was probed),
/// or hand-picked values for substrate benches. tools/bench_compare
/// diffs wall time on every case, peak_bytes on cases that report
/// one, and (v3) gates throughput drops on relaxations_per_sec and
/// hit-rate drops on cache_hit_rate. The artifact lands in
/// $CDPD_BENCH_OUT_DIR (else the working directory).
class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  /// Records one measured case with optional flat numeric metrics.
  /// `cpu_seconds`/`peak_bytes` fill the schema-v2 telemetry columns;
  /// leave 0 when the case has nothing to report.
  void AddCase(std::string name, double wall_seconds,
               std::vector<std::pair<std::string, double>> metrics = {},
               double cpu_seconds = 0.0, int64_t peak_bytes = 0) {
    cases_.push_back(Case{std::move(name), wall_seconds, std::move(metrics),
                          /*stats_json=*/"", cpu_seconds, peak_bytes});
  }

  /// Records one measured serving case: `requests` completed requests
  /// driven open-loop for `wall_seconds`. Emits the v3
  /// requests_per_sec column, which tools/bench_compare gates on
  /// (drops are regressions). Latency percentiles and any other flat
  /// numbers ride along in `metrics`.
  void AddServingCase(std::string name, double wall_seconds,
                      int64_t requests,
                      std::vector<std::pair<std::string, double>> metrics = {},
                      double cpu_seconds = 0.0, int64_t peak_bytes = 0) {
    Case c{std::move(name), wall_seconds, std::move(metrics),
           /*stats_json=*/"", cpu_seconds, peak_bytes};
    if (requests > 0 && wall_seconds > 0.0) {
      c.requests_per_sec = static_cast<double>(requests) / wall_seconds;
    }
    cases_.push_back(std::move(c));
  }

  /// Records one measured solve, embedding the full SolveStats
  /// counters (core/solve_stats.h ToJson) as the case metrics. The
  /// v2 telemetry columns come from the solve itself: process-CPU
  /// delta and the ResourceTracker's concurrent high-water mark. The
  /// v3 columns are derived: DP throughput from relaxations / wall,
  /// cost-cache hit rate from the solve's hit/miss deltas (absent
  /// when the solve relaxed nothing / probed no persistent cache).
  /// `num_statements` (optional) is the workload length the solve
  /// covered; when given with a positive wall time the case also
  /// reports statements_per_sec — the end-to-end scaling throughput
  /// the bench_scale_* family gates on.
  void AddCase(std::string name, double wall_seconds,
               const SolveStats& stats, int64_t num_statements = 0) {
    Case c{std::move(name), wall_seconds, {}, stats.ToJson(),
           stats.cpu_seconds, stats.peak_bytes_total};
    if (stats.relaxations > 0 && wall_seconds > 0.0) {
      c.relaxations_per_sec =
          static_cast<double>(stats.relaxations) / wall_seconds;
    }
    if (num_statements > 0 && wall_seconds > 0.0) {
      c.statements_per_sec =
          static_cast<double>(num_statements) / wall_seconds;
    }
    const int64_t probes = stats.cost_cache_hits + stats.cost_cache_misses;
    if (probes > 0) {
      c.cache_hit_rate =
          static_cast<double>(stats.cost_cache_hits) /
          static_cast<double>(probes);
    }
    cases_.push_back(std::move(c));
  }

  std::string ToJson() const {
    std::string out = "{\"schema_version\":3,\"kind\":\"cdpd.bench\"";
    out += ",\"bench\":" + JsonString(bench_);
    const char* sha = std::getenv("CDPD_GIT_SHA");
    out += ",\"git_sha\":" +
           JsonString(sha != nullptr && sha[0] != '\0' ? sha : "unknown");
    out += ",\"threads\":" +
           std::to_string(ThreadPool::DefaultThreadCount());
    out += ",\"rows\":" + std::to_string(ExecutionRows());
    out += ",\"unix_time\":" +
           std::to_string(static_cast<int64_t>(std::time(nullptr)));
    out += ",\"rss_peak_bytes\":" + std::to_string(PeakRssBytes());
    out += ",\"cases\":[";
    for (size_t i = 0; i < cases_.size(); ++i) {
      const Case& c = cases_[i];
      if (i > 0) out += ',';
      out += "{\"name\":" + JsonString(c.name);
      out += ",\"wall_seconds\":" + JsonDouble(c.wall_seconds);
      out += ",\"cpu_seconds\":" + JsonDouble(c.cpu_seconds);
      out += ",\"peak_bytes\":" + std::to_string(c.peak_bytes);
      if (c.relaxations_per_sec > 0.0) {
        out += ",\"relaxations_per_sec\":" + JsonDouble(c.relaxations_per_sec);
      }
      if (c.statements_per_sec > 0.0) {
        out += ",\"statements_per_sec\":" + JsonDouble(c.statements_per_sec);
      }
      if (c.requests_per_sec > 0.0) {
        out += ",\"requests_per_sec\":" + JsonDouble(c.requests_per_sec);
      }
      if (c.cache_hit_rate >= 0.0) {
        out += ",\"cache_hit_rate\":" + JsonDouble(c.cache_hit_rate);
      }
      if (!c.stats_json.empty()) {
        out += ",\"metrics\":" + c.stats_json;
      } else {
        out += ",\"metrics\":{";
        for (size_t m = 0; m < c.metrics.size(); ++m) {
          if (m > 0) out += ',';
          out += JsonString(c.metrics[m].first) + ":" +
                 JsonDouble(c.metrics[m].second);
        }
        out += '}';
      }
      out += '}';
    }
    out += "]}\n";
    return out;
  }

  /// Writes BENCH_<bench>.json into $CDPD_BENCH_OUT_DIR (else cwd).
  /// Returns false (after a diagnostic) when the file cannot be
  /// written; benches report but do not fail on that.
  bool Write() const {
    std::string path;
    if (const char* dir = std::getenv("CDPD_BENCH_OUT_DIR")) {
      if (dir[0] != '\0') {
        path = dir;
        if (path.back() != '/') path += '/';
      }
    }
    path += "BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write bench report to %s\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = std::fclose(f) == 0 && written == json.size();
    if (ok) {
      std::printf("bench report (%zu cases) written to %s\n", cases_.size(),
                  path.c_str());
    } else {
      std::fprintf(stderr, "short write of bench report %s\n", path.c_str());
    }
    return ok;
  }

 private:
  struct Case {
    std::string name;
    double wall_seconds = 0.0;
    std::vector<std::pair<std::string, double>> metrics;
    /// Pre-rendered SolveStats JSON (takes precedence over `metrics`).
    std::string stats_json;
    /// Schema-v2 telemetry columns; 0 = not reported.
    double cpu_seconds = 0.0;
    int64_t peak_bytes = 0;
    /// Schema-v3 columns; <= 0 / < 0 = not reported (omitted).
    double relaxations_per_sec = 0.0;
    double cache_hit_rate = -1.0;
    double statements_per_sec = 0.0;
    double requests_per_sec = 0.0;
  };

  std::string bench_;
  std::vector<Case> cases_;
};

/// The advisor options of §6: 7-configuration space over the six
/// candidate indexes, initial and final design empty. std::nullopt is
/// the unconstrained problem.
inline AdvisorOptions PaperAdvisorOptions(std::optional<int64_t> k) {
  AdvisorOptions options;
  options.block_size = kPaperBlockSize;
  options.k = k;
  options.candidate_indexes = MakePaperCandidateIndexes(MakePaperSchema());
  options.max_indexes_per_config = 1;
  options.final_config = Configuration::Empty();
  AttachObservability(&options);
  return options;
}

/// Simple aligned table printing for the reproduction reports.
inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace bench_util
}  // namespace cdpd

#endif  // CDPD_BENCH_BENCH_UTIL_H_
