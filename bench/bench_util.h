#ifndef CDPD_BENCH_BENCH_UTIL_H_
#define CDPD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/tracing.h"
#include "core/advisor.h"
#include "cost/cost_model.h"
#include "engine/database.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace bench_util {

/// The paper's experimental constants (§6.1).
inline constexpr int64_t kPaperRows = 2'500'000;
inline constexpr int64_t kPaperDomain = 500'000;
inline constexpr uint64_t kSeed = 20080407;  // ICDE 2008 week.

/// Rows for benches that physically execute workloads. The paper's
/// 2.5 M-row table works but makes full scans slow on small machines;
/// 250 k (default) preserves every cost ordering (plans are linear in
/// pages). Override with CDPD_ROWS.
inline int64_t ExecutionRows() {
  if (const char* env = std::getenv("CDPD_ROWS")) {
    const int64_t rows = std::atoll(env);
    if (rows > 0) return rows;
  }
  return 250'000;
}

/// Cost model over the paper's full-size table (used by the advisors;
/// no physical table needed).
inline std::unique_ptr<CostModel> MakePaperCostModel() {
  return std::make_unique<CostModel>(MakePaperSchema(), kPaperRows,
                                     kPaperDomain);
}

/// W1/W2/W3 at the paper's full scale (15000 statements, 500-query
/// blocks), deterministically seeded.
inline Workload MakeFullWorkload(const std::string& name, uint64_t seed) {
  WorkloadGenerator gen(MakePaperSchema(), kPaperDomain, seed);
  return MakePaperWorkload(name, &gen).value();
}

/// Process-wide observability sinks shared by every solve a bench
/// runs. Only attached when the corresponding environment variable
/// (CDPD_METRICS_OUT / CDPD_TRACE_OUT) names an output file, so the
/// default bench run stays uninstrumented.
inline MetricsRegistry& BenchMetricsRegistry() {
  static MetricsRegistry registry;
  return registry;
}

inline Tracer& BenchTracer() {
  static Tracer tracer;
  return tracer;
}

/// Points `options` at the bench-wide registry/tracer when
/// CDPD_METRICS_OUT / CDPD_TRACE_OUT are set. Works for both option
/// structs that carry observability injection points.
template <typename Options>
inline void AttachObservability(Options* options) {
  if (std::getenv("CDPD_METRICS_OUT") != nullptr) {
    options->metrics = &BenchMetricsRegistry();
  }
  if (std::getenv("CDPD_TRACE_OUT") != nullptr) {
    options->tracer = &BenchTracer();
  }
}

/// Writes the artifacts named by CDPD_METRICS_OUT / CDPD_TRACE_OUT
/// (same formats as advisor_cli --metrics-out / --trace-out). Call at
/// the end of a bench's main; a no-op when the variables are unset.
inline void WriteObservabilityArtifacts() {
  auto write = [](const char* path, const std::string& content,
                  const char* what) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s to %s\n", what, path);
      return;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    std::printf("%s written to %s\n", what, path);
  };
  if (const char* path = std::getenv("CDPD_METRICS_OUT")) {
    write(path, BenchMetricsRegistry().Snapshot().ToJson(),
          "metrics snapshot");
  }
  if (const char* path = std::getenv("CDPD_TRACE_OUT")) {
    write(path, BenchTracer().ToChromeJson(), "trace");
  }
}

/// The advisor options of §6: 7-configuration space over the six
/// candidate indexes, initial and final design empty. std::nullopt is
/// the unconstrained problem.
inline AdvisorOptions PaperAdvisorOptions(std::optional<int64_t> k) {
  AdvisorOptions options;
  options.block_size = kPaperBlockSize;
  options.k = k;
  options.candidate_indexes = MakePaperCandidateIndexes(MakePaperSchema());
  options.max_indexes_per_config = 1;
  options.final_config = Configuration::Empty();
  AttachObservability(&options);
  return options;
}

/// Simple aligned table printing for the reproduction reports.
inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace bench_util
}  // namespace cdpd

#endif  // CDPD_BENCH_BENCH_UTIL_H_
