// Ablation D: stage granularity. The paper's formulation has one stage
// per statement; any practical advisor groups statements into blocks.
// This bench sweeps the block size and reports (a) the quality of the
// k = 2 constrained design evaluated at a fixed fine granularity and
// (b) the optimizer runtime, which scales with the stage count.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/solver.h"
#include "cost/what_if.h"
#include "workload/adaptive_segmenter.h"

namespace cdpd {
namespace {

void Run(bench_util::BenchReport* report) {
  using namespace bench_util;
  auto model = MakePaperCostModel();
  const Schema schema = MakePaperSchema();
  const Workload w1 = MakeFullWorkload("W1", kSeed);

  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = 1;
  enum_options.num_rows = model->num_rows();
  const std::vector<Configuration> candidates =
      EnumerateConfigurations(MakePaperCandidateIndexes(schema),
                              enum_options)
          .value();

  // Fixed fine-grained evaluator (100-query stages) for apples-to-
  // apples quality numbers.
  const std::vector<Segment> eval_segments = SegmentFixed(w1.size(), 100);
  WhatIfEngine eval_what_if(model.get(), w1.statements, eval_segments);
  DesignProblem eval_problem;
  eval_problem.what_if = &eval_what_if;
  eval_problem.candidates = candidates;
  eval_problem.initial = Configuration::Empty();

  PrintHeader("Ablation D: stage (block) granularity for the k = 2 design");
  std::printf("%10s %8s %14s %12s %10s\n", "block", "stages", "opt-time(ms)",
              "eval-cost", "changes");
  SolveOptions solve_options;
  solve_options.k = 2;
  AttachObservability(&solve_options);
  double finest_cost = 0;
  for (size_t block_size : {100, 250, 500, 1000, 2500, 5000, 7500}) {
    const std::vector<Segment> segments =
        SegmentFixed(w1.size(), block_size);
    WhatIfEngine what_if(model.get(), w1.statements, segments);
    DesignProblem problem;
    problem.what_if = &what_if;
    problem.candidates = candidates;
    problem.initial = Configuration::Empty();

    Stopwatch watch;
    auto result = Solve(problem, solve_options);
    const double opt_time = watch.ElapsedSeconds();
    if (!result.ok()) {
      std::printf("%10zu solver failed\n", block_size);
      continue;
    }
    const DesignSchedule& schedule = result->schedule;
    // Expand the block-level schedule to the fine evaluation grid.
    std::vector<Configuration> fine(eval_segments.size());
    for (size_t s = 0; s < eval_segments.size(); ++s) {
      const size_t statement = eval_segments[s].begin;
      const size_t block = statement / block_size;
      fine[s] = schedule.configs[std::min(block,
                                          schedule.configs.size() - 1)];
    }
    const double eval_cost = EvaluateScheduleCost(eval_problem, fine);
    if (block_size == 100) finest_cost = eval_cost;
    report->AddCase("block" + std::to_string(block_size), opt_time,
                    result->stats);
    std::printf("%10zu %8zu %14.2f %11.2f%% %10lld\n", block_size,
                segments.size(), opt_time * 1e3,
                100.0 * eval_cost / finest_cost,
                static_cast<long long>(CountChanges(problem,
                                                    schedule.configs)));
  }
  // Adaptive segmentation: distribution-driven variable-length stages.
  {
    AdaptiveSegmentOptions adaptive_options;
    adaptive_options.base_block_size = 500;
    const std::vector<Segment> segments =
        SegmentAdaptive(schema, w1.statements, adaptive_options);
    WhatIfEngine what_if(model.get(), w1.statements, segments);
    DesignProblem problem;
    problem.what_if = &what_if;
    problem.candidates = candidates;
    problem.initial = Configuration::Empty();
    Stopwatch watch;
    auto result = Solve(problem, solve_options);
    const double opt_time = watch.ElapsedSeconds();
    if (result.ok()) {
      report->AddCase("adaptive", opt_time, result->stats);
      const DesignSchedule& schedule = result->schedule;
      std::vector<Configuration> fine(eval_segments.size());
      for (size_t s = 0; s < eval_segments.size(); ++s) {
        const size_t statement = eval_segments[s].begin;
        size_t stage = 0;
        while (stage + 1 < segments.size() &&
               segments[stage].end <= statement) {
          ++stage;
        }
        fine[s] = schedule.configs[stage];
      }
      const double eval_cost = EvaluateScheduleCost(eval_problem, fine);
      std::printf("%10s %8zu %14.2f %11.2f%% %10lld\n", "adaptive",
                  segments.size(), opt_time * 1e3,
                  100.0 * eval_cost / finest_cost,
                  static_cast<long long>(
                      CountChanges(problem, schedule.configs)));
    }
  }
  PrintRule();
  std::printf("eval-cost is relative to the finest granularity. Coarse\n"
              "blocks cut optimizer time with negligible quality loss until\n"
              "the block size blurs the workload's phase boundaries; the\n"
              "adaptive segmenter gets coarse-block speed without the\n"
              "boundary blur (stages follow the distribution shifts).\n");
  PrintRule();
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("ablation_block_size");
  cdpd::Run(&report);
  report.Write();
  cdpd::bench_util::WriteObservabilityArtifacts();
  return 0;
}
