// Serving throughput and latency of the resident advisor. Starts an
// in-process AdvisorServer on an ephemeral loopback port, pre-ingests
// a sliding window of paper-style statements, then drives it open-loop
// from N client connections (real sockets, real frames) through four
// load shapes:
//
//   ping            transport + frame floor
//   whatif          configuration costing against the resident window
//   recommend_warm  deadline-free re-solves (resident-solution reuse)
//   mixed           90% whatif / 8% recommend / 2% ingest — ingests
//                   slide the window, so the recommends re-solve
//                   warm-started instead of reusing the resident answer
//   mixed_recorded  the mixed shape again with the flight recorder
//                   journaling every request — best-of-3 alternating
//                   rounds against the best plain round; the req/s
//                   delta is the recording overhead (CI gates < 5%)
//
// Every case reports requests_per_sec (the schema-v3 column
// tools/bench_compare gates on — drops are regressions) plus
// client-observed p50/p95/p99 latency measured through a
// MetricsRegistry histogram. The bench fails when the mixed case
// cannot sustain kMinRequestsPerSec: the serving tier's contract is
// >= 1000 req/s on a development machine.
//
// Sizing overrides: CDPD_SERVING_CONNS (connections, default 8) and
// CDPD_SERVING_REQS (requests per connection per case, default 1500).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "server/advisor_server.h"
#include "server/client.h"
#include "server/recorder.h"

namespace cdpd {
namespace {

constexpr double kMinRequestsPerSec = 1000.0;

int64_t EnvSize(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// A paper-shaped trace block: selects over every single-column
/// candidate plus one update, ';'-terminated as ReadTrace expects.
std::string TraceBlock() {
  return "SELECT a FROM t WHERE a = 1;\n"
         "SELECT b FROM t WHERE b = 2;\n"
         "SELECT c FROM t WHERE c = 3;\n"
         "SELECT d FROM t WHERE d = 4;\n"
         "UPDATE t SET a = 5 WHERE b = 6;\n";
}

struct CaseResult {
  double wall_seconds = 0.0;
  int64_t requests = 0;
  int64_t errors = 0;
  HistogramStats latency;  // client-observed, microseconds
};

/// Runs one load shape: `conns` connections, each issuing
/// `reqs_per_conn` back-to-back requests produced by `issue(client, i)`
/// (open loop — the next request leaves as soon as the previous
/// response lands). Latency is recorded client-side into a registry
/// histogram so the percentiles come out of the same machinery the
/// server uses for server.request_us.
template <typename IssueFn>
CaseResult RunCase(int port, int conns, int64_t reqs_per_conn,
                   IssueFn issue) {
  MetricsRegistry registry;
  Histogram* latency_us = registry.histogram("client.request_us");
  std::atomic<int64_t> errors{0};

  std::vector<AdvisorClient> clients;
  clients.reserve(static_cast<size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    Result<AdvisorClient> client = AdvisorClient::Connect("127.0.0.1", port);
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().ToString().c_str());
      std::exit(1);
    }
    clients.push_back(std::move(client).value());
  }

  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      AdvisorClient& client = clients[static_cast<size_t>(c)];
      for (int64_t i = 0; i < reqs_per_conn; ++i) {
        Stopwatch request_watch;
        if (!issue(client, i)) errors.fetch_add(1);
        latency_us->Record(request_watch.ElapsedSeconds() * 1e6);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  CaseResult result;
  result.wall_seconds = watch.ElapsedSeconds();
  result.requests = static_cast<int64_t>(conns) * reqs_per_conn;
  result.errors = errors.load();
  result.latency = registry.Snapshot().histograms.at("client.request_us");
  return result;
}

/// The server-side latency histogram for `op` ("ping", "whatif", ...)
/// as it stands right now. Cases run sequentially and each op
/// concentrates in one case, so sampling "server.op_us.<op>" right
/// after its case finishes gives that case's server-observed
/// percentiles (includes the response write; excludes client-side
/// socket time — the gap to the client percentiles is the loopback +
/// frame overhead).
HistogramStats ServerOpStats(AdvisorService* service, const std::string& op) {
  const MetricsSnapshot snapshot = service->registry()->Snapshot();
  const auto it = snapshot.histograms.find("server.op_us." + op);
  return it != snapshot.histograms.end() ? it->second : HistogramStats{};
}

void ReportCase(bench_util::BenchReport* report, const std::string& name,
                int conns, const CaseResult& r,
                const HistogramStats& server) {
  const double rps =
      r.wall_seconds > 0.0 ? r.requests / r.wall_seconds : 0.0;
  std::printf("%-16s %8lld req %8.0f req/s   p50 %6.0f us   p95 %6.0f us"
              "   p99 %6.0f us   srv p50 %6.0f us   p99 %6.0f us"
              "   errors %lld\n",
              name.c_str(), static_cast<long long>(r.requests), rps,
              r.latency.p50, r.latency.p95, r.latency.p99, server.p50,
              server.p99, static_cast<long long>(r.errors));
  report->AddServingCase(name, r.wall_seconds, r.requests,
                         {{"connections", static_cast<double>(conns)},
                          {"errors", static_cast<double>(r.errors)},
                          {"p50_us", r.latency.p50},
                          {"p95_us", r.latency.p95},
                          {"p99_us", r.latency.p99},
                          {"server_p50_us", server.p50},
                          {"server_p95_us", server.p95},
                          {"server_p99_us", server.p99},
                          {"server_count", static_cast<double>(server.count)}});
  if (r.errors > 0) {
    std::fprintf(stderr, "case %s had %lld request errors\n", name.c_str(),
                 static_cast<long long>(r.errors));
    std::exit(1);
  }
}

void Run(bench_util::BenchReport* report) {
  using bench_util::PrintHeader;
  using bench_util::PrintRule;

  const int conns = static_cast<int>(EnvSize("CDPD_SERVING_CONNS", 8));
  const int64_t reqs = EnvSize("CDPD_SERVING_REQS", 1500);

  ServiceOptions options;
  options.rows = bench_util::ExecutionRows();
  options.window_statements = 2'000;
  AdvisorService service(std::move(options));
  AdvisorServer server(&service);
  if (const Status status = server.Start(ServerOptions{}); !status.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
  const int port = server.port();

  PrintHeader("Serving: advisor_server over loopback TCP");
  std::printf("%d connections x %lld requests per case, window %zu "
              "statements, port %d\n\n",
              conns, static_cast<long long>(reqs),
              service.options().window_statements, port);

  // Seed the resident window: 120 blocks -> 6 segments at the default
  // block size, enough for recommends to have real structure.
  {
    Result<AdvisorClient> seeder = AdvisorClient::Connect("127.0.0.1", port);
    if (!seeder.ok()) std::exit(1);
    std::string batch;
    for (int i = 0; i < 24; ++i) batch += TraceBlock();
    for (int i = 0; i < 5; ++i) {
      if (!seeder->Ingest(batch).ok()) std::exit(1);
    }
  }

  // The server-side histogram must be snapshotted *after* its case ran
  // (function arguments have no evaluation order), so each case is
  // sequenced explicitly.
  const CaseResult ping =
      RunCase(port, conns, reqs, [](AdvisorClient& client, int64_t) {
        return client.Ping().ok();
      });
  ReportCase(report, "ping", conns, ping, ServerOpStats(&service, "ping"));
  const CaseResult whatif =
      RunCase(port, conns, reqs, [](AdvisorClient& client, int64_t i) {
        static const char* kSpecs[] = {"a", "a;b", "c,d", "{}"};
        return client.WhatIf(kSpecs[i % 4]).ok();
      });
  ReportCase(report, "whatif", conns, whatif,
             ServerOpStats(&service, "whatif"));
  const CaseResult recommend_warm =
      RunCase(port, conns, reqs, [](AdvisorClient& client, int64_t) {
        return client.Recommend("k=2\nmethod=optimal").ok();
      });
  ReportCase(report, "recommend_warm", conns, recommend_warm,
             ServerOpStats(&service, "recommend"));
  const std::string ingest_batch = TraceBlock();
  const auto mixed_issue = [&ingest_batch](AdvisorClient& client, int64_t i) {
    const int64_t r = i % 100;
    if (r < 90) return client.WhatIf("a;c,d").ok();
    if (r < 98) return client.Recommend("k=2").ok();
    return client.Ingest(ingest_batch).ok();
  };
  const CaseResult mixed = RunCase(port, conns, reqs, mixed_issue);
  const MetricsSnapshot server_side = service.registry()->Snapshot();
  const HistogramStats server_lat =
      server_side.histograms.count("server.request_us")
          ? server_side.histograms.at("server.request_us")
          : HistogramStats{};
  // Mixed spans three ops, so its server-side column is the overall
  // request_us histogram — cumulative over all cases, not per-case.
  ReportCase(report, "mixed", conns, mixed, server_lat);

  // The same mixed workload with the flight recorder journaling every
  // request: the Append() ring keeps the hot path off the disk, so the
  // req/s delta against the plain mixed case is the recording tax.
  // The journal lands next to the BENCH artifact.
  std::string journal_base = "bench_serving_journal";
  if (const char* dir = std::getenv("CDPD_BENCH_OUT_DIR")) {
    if (dir[0] != '\0') {
      journal_base = std::string(dir) + "/" + journal_base;
    }
  }
  Recorder::Options recorder_options;
  recorder_options.path = journal_base;
  recorder_options.meta.rows = service.options().rows;
  recorder_options.meta.window_statements =
      static_cast<int64_t>(service.options().window_statements);
  Result<std::unique_ptr<Recorder>> recorder =
      Recorder::Open(std::move(recorder_options), service.registry());
  if (!recorder.ok()) {
    std::fprintf(stderr, "cannot start the recorder: %s\n",
                 recorder.status().ToString().c_str());
    std::exit(1);
  }
  // The recording tax cannot be read off one recorded/plain pair: on a
  // busy or single-core machine the plain mixed case alone drifts by
  // double-digit percentages across seconds, which swamps a 5% signal.
  // So each round runs both shapes back to back (order alternating, so
  // slow drift hits each side equally) and contributes one
  // recorded/plain throughput ratio; the median ratio over the rounds
  // is the overhead estimate. Adjacent-pair ratios cancel drift, the
  // median discards the odd preempted round.
  const auto case_rps = [](const CaseResult& r) {
    return r.wall_seconds > 0.0 ? r.requests / r.wall_seconds : 0.0;
  };
  CaseResult best_plain = mixed;
  CaseResult mixed_recorded;
  std::vector<double> ratios;
  constexpr int kOverheadRounds = 5;
  for (int round = 0; round < kOverheadRounds; ++round) {
    const auto run_recorded = [&] {
      service.set_recorder(recorder->get());
      const CaseResult rec = RunCase(port, conns, reqs, mixed_issue);
      service.set_recorder(nullptr);
      if (case_rps(rec) > case_rps(mixed_recorded)) mixed_recorded = rec;
      return case_rps(rec);
    };
    const auto run_plain = [&] {
      const CaseResult plain = RunCase(port, conns, reqs, mixed_issue);
      if (case_rps(plain) > case_rps(best_plain)) best_plain = plain;
      return case_rps(plain);
    };
    double rec_rps = 0.0;
    double plain_rps = 0.0;
    if (round % 2 == 0) {
      rec_rps = run_recorded();
      plain_rps = run_plain();
    } else {
      plain_rps = run_plain();
      rec_rps = run_recorded();
    }
    if (plain_rps > 0.0) ratios.push_back(rec_rps / plain_rps);
  }
  // A connection thread appends its journal frame after writing the
  // response, so the client side can return while the last few appends
  // are still in flight; Shutdown() joins those threads (it is
  // idempotent — the exit path calls it again) so the frame counts
  // below are final.
  server.Shutdown();
  (*recorder)->Close();
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio =
      ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  const double recorded_rps = case_rps(mixed_recorded);
  const double overhead_pct = (1.0 - median_ratio) * 100.0;
  std::printf("%-16s %8lld req %8.0f req/s   p50 %6.0f us   p99 %6.0f us"
              "   overhead %+.1f%%   frames %lld   dropped %lld\n",
              "mixed_recorded",
              static_cast<long long>(mixed_recorded.requests), recorded_rps,
              mixed_recorded.latency.p50, mixed_recorded.latency.p99,
              overhead_pct,
              static_cast<long long>((*recorder)->frames_written()),
              static_cast<long long>((*recorder)->frames_dropped()));
  report->AddServingCase(
      "mixed_recorded", mixed_recorded.wall_seconds, mixed_recorded.requests,
      {{"connections", static_cast<double>(conns)},
       {"errors", static_cast<double>(mixed_recorded.errors)},
       {"p50_us", mixed_recorded.latency.p50},
       {"p95_us", mixed_recorded.latency.p95},
       {"p99_us", mixed_recorded.latency.p99},
       {"overhead_pct", overhead_pct},
       {"frames_written",
        static_cast<double>((*recorder)->frames_written())},
       {"frames_dropped",
        static_cast<double>((*recorder)->frames_dropped())}});
  if (mixed_recorded.errors > 0) {
    std::fprintf(stderr, "case mixed_recorded had %lld request errors\n",
                 static_cast<long long>(mixed_recorded.errors));
    std::exit(1);
  }
  PrintRule();
  std::printf("server-side request_us over all cases: count %lld, "
              "p50 %.0f, p95 %.0f, p99 %.0f\n",
              static_cast<long long>(server_lat.count), server_lat.p50,
              server_lat.p95, server_lat.p99);

  const double mixed_rps = mixed.requests / mixed.wall_seconds;
  std::printf("mixed sustained %.0f req/s (floor %.0f) — %s\n", mixed_rps,
              kMinRequestsPerSec,
              mixed_rps >= kMinRequestsPerSec ? "ok" : "FAIL");
  PrintRule();
  server.Shutdown();
  if (mixed_rps < kMinRequestsPerSec) std::exit(1);
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("serving");
  cdpd::Run(&report);
  report.Write();
  cdpd::bench_util::WriteObservabilityArtifacts();
  return 0;
}
