// Ablation A: GREEDY-SEQ candidate reduction (§4.1) versus the full
// configuration space — solve quality and optimizer work as the
// candidate index set grows. The full space is exponential in m; the
// reduced space is O(m n), which is the entire point of GREEDY-SEQ.

#include <cstdio>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/solver.h"
#include "cost/what_if.h"

namespace cdpd {
namespace {

/// A wider schema (8 columns) so m can grow beyond the paper's 6.
Schema WideSchema() {
  return Schema("t", {"a", "b", "c", "d", "e", "f", "g", "h"});
}

struct AblationFixture {
  std::unique_ptr<CostModel> model;
  Workload workload;
  std::vector<Segment> segments;
  std::unique_ptr<WhatIfEngine> what_if;
  std::vector<IndexDef> candidate_indexes;
  DesignProblem problem;  // candidates = full enumeration.
};

std::unique_ptr<AblationFixture> MakeFixture(int32_t num_columns,
                                             int32_t max_per_config) {
  auto f = std::make_unique<AblationFixture>();
  const Schema schema = WideSchema();
  f->model = std::make_unique<CostModel>(schema, 500'000,
                                         bench_util::kPaperDomain);
  // Rotating per-block hot column over the first `num_columns` columns.
  WorkloadGenerator gen(schema, bench_util::kPaperDomain, bench_util::kSeed);
  std::vector<QueryMix> mixes;
  for (int32_t hot = 0; hot < num_columns; ++hot) {
    QueryMix mix;
    mix.name = schema.column_name(hot);
    mix.column_weights.assign(8, 0.05);
    mix.column_weights[static_cast<size_t>(hot)] = 0.65;
    mixes.push_back(std::move(mix));
  }
  std::vector<int> blocks;
  for (int block = 0; block < 24; ++block) {
    blocks.push_back(block % num_columns);
  }
  f->workload = gen.GenerateBlocked(mixes, blocks, 200).value();
  f->segments = SegmentFixed(f->workload.size(), 200);
  f->what_if = std::make_unique<WhatIfEngine>(
      f->model.get(), f->workload.statements, f->segments);

  for (int32_t col = 0; col < num_columns; ++col) {
    f->candidate_indexes.push_back(IndexDef({col}));
  }
  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = max_per_config;
  enum_options.num_rows = f->model->num_rows();
  f->problem.what_if = f->what_if.get();
  f->problem.candidates =
      EnumerateConfigurations(f->candidate_indexes, enum_options).value();
  f->problem.initial = Configuration::Empty();
  return f;
}

void PrintQualityTable(bench_util::BenchReport* report) {
  using bench_util::PrintHeader;
  using bench_util::PrintRule;
  PrintHeader("Ablation A: GREEDY-SEQ candidate reduction vs full "
              "configuration space (k = 3)");
  std::printf("%3s %6s %10s %10s %12s %12s %9s\n", "m", "full", "reduced",
              "quality", "t_full(ms)", "t_reduced", "speedup");
  for (int32_t m = 3; m <= 8; ++m) {
    auto fixture = MakeFixture(m, /*max_per_config=*/3);
    SolveOptions full_options;
    full_options.method = OptimizerMethod::kOptimal;
    full_options.k = 3;
    bench_util::AttachObservability(&full_options);
    SolveOptions reduced_options;
    reduced_options.method = OptimizerMethod::kGreedySeq;
    reduced_options.k = 3;
    reduced_options.greedy.candidate_indexes = fixture->candidate_indexes;
    reduced_options.greedy.max_indexes_per_config = 3;
    bench_util::AttachObservability(&reduced_options);

    Stopwatch full_watch;
    auto optimal = Solve(fixture->problem, full_options);
    const double full_time = full_watch.ElapsedSeconds();

    Stopwatch reduced_watch;
    auto greedy = Solve(fixture->problem, reduced_options);
    const double reduced_time = reduced_watch.ElapsedSeconds();
    if (!optimal.ok() || !greedy.ok()) {
      std::printf("solver failed at m=%d\n", m);
      continue;
    }
    report->AddCase("full_m" + std::to_string(m), full_time, optimal->stats);
    report->AddCase("greedyseq_m" + std::to_string(m), reduced_time,
                    greedy->stats);
    std::printf("%3d %6zu %10zu %9.2f%% %12.2f %12.2f %8.1fx\n", m,
                fixture->problem.candidates.size(),
                greedy->reduced_candidates.size(),
                100.0 * greedy->schedule.total_cost /
                    optimal->schedule.total_cost,
                full_time * 1e3, reduced_time * 1e3,
                full_time / reduced_time);
  }
  PrintRule();
  std::printf("quality = greedy-seq cost / optimal cost (100%% = optimal); "
              "the reduced\nspace stays near-optimal while the full space "
              "grows exponentially in m.\n");
  PrintRule();
}

void BM_FullSpace(benchmark::State& state) {
  static auto fixture = MakeFixture(static_cast<int32_t>(8), 3);
  static SolveOptions options = [] {
    SolveOptions o;
    o.method = OptimizerMethod::kOptimal;
    o.k = 3;
    bench_util::AttachObservability(&o);
    return o;
  }();
  for (auto _ : state) {
    auto result = Solve(fixture->problem, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullSpace);

void BM_GreedySeqReduced(benchmark::State& state) {
  static auto fixture = MakeFixture(static_cast<int32_t>(8), 3);
  static SolveOptions options = [] {
    SolveOptions o;
    o.method = OptimizerMethod::kGreedySeq;
    o.k = 3;
    o.greedy.candidate_indexes = fixture->candidate_indexes;
    o.greedy.max_indexes_per_config = 3;
    bench_util::AttachObservability(&o);
    return o;
  }();
  for (auto _ : state) {
    auto result = Solve(fixture->problem, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GreedySeqReduced);

}  // namespace
}  // namespace cdpd

int main(int argc, char** argv) {
  cdpd::bench_util::BenchReport report("ablation_candidates");
  cdpd::PrintQualityTable(&report);
  report.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  cdpd::bench_util::WriteObservabilityArtifacts();
  return 0;
}
