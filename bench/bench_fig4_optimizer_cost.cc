// Reproduces Figure 4: runtime of the constrained design optimizers —
// the k-aware sequence graph (optimal) and sequential design merging
// (heuristic) — as a function of the change bound k, relative to the
// runtime of the unconstrained optimizer. The paper's shape: the
// k-aware graph grows roughly linearly in k, merging shrinks as k
// approaches the unconstrained change count l, suggesting the hybrid.
//
// The workload is W1 played twice (60 blocks of 500 queries) so the
// unconstrained optimum has ~24 design changes and the k = 2..18 sweep
// sits strictly below l, as in the paper's figure.

#include <algorithm>
#include <cstdio>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/solver.h"
#include "cost/what_if.h"

namespace cdpd {
namespace {

struct Fig4Fixture {
  std::unique_ptr<CostModel> model;
  Workload workload;
  std::vector<Segment> segments;
  std::unique_ptr<WhatIfEngine> what_if;
  DesignProblem problem;
  DesignSchedule unconstrained;
};

/// One Solve() call through the unified API; the what-if cache in the
/// shared fixture is warm after the first call, so repeated solves
/// measure pure DP/merging work (plus the per-call pool setup, which
/// is identical across methods).
SolveOptions OptionsFor(OptimizerMethod method,
                        std::optional<int64_t> k = std::nullopt) {
  SolveOptions options;
  options.method = method;
  options.k = k;
  bench_util::AttachObservability(&options);
  return options;
}

Fig4Fixture* GetFixture() {
  static Fig4Fixture* fixture = [] {
    auto* f = new Fig4Fixture();
    f->model = bench_util::MakePaperCostModel();
    const Schema schema = MakePaperSchema();
    WorkloadGenerator gen(schema, bench_util::kPaperDomain,
                          bench_util::kSeed);
    // W1 twice: the workload trace of two consecutive days.
    Workload day1 = MakePaperWorkload("W1", &gen).value();
    Workload day2 = MakePaperWorkload("W1", &gen).value();
    f->workload = std::move(day1);
    f->workload.statements.insert(f->workload.statements.end(),
                                  day2.statements.begin(),
                                  day2.statements.end());
    f->segments = SegmentFixed(f->workload.size(), kPaperBlockSize);
    f->what_if = std::make_unique<WhatIfEngine>(
        f->model.get(), f->workload.statements, f->segments);
    f->problem.what_if = f->what_if.get();
    ConfigEnumOptions enum_options;
    enum_options.max_indexes_per_config = 1;
    enum_options.num_rows = f->model->num_rows();
    f->problem.candidates =
        EnumerateConfigurations(
            MakePaperCandidateIndexes(schema), enum_options)
            .value();
    f->problem.initial = Configuration::Empty();
    f->problem.final_config = Configuration::Empty();
    f->unconstrained =
        Solve(f->problem, OptionsFor(OptimizerMethod::kOptimal))
            .value()
            .schedule;
    return f;
  }();
  return fixture;
}

void BM_UnconstrainedOptimizer(benchmark::State& state) {
  Fig4Fixture* f = GetFixture();
  const SolveOptions options = OptionsFor(OptimizerMethod::kOptimal);
  for (auto _ : state) {
    auto result = Solve(f->problem, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UnconstrainedOptimizer);

void BM_KAwareGraph(benchmark::State& state) {
  Fig4Fixture* f = GetFixture();
  const SolveOptions options =
      OptionsFor(OptimizerMethod::kOptimal, state.range(0));
  for (auto _ : state) {
    auto result = Solve(f->problem, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KAwareGraph)->DenseRange(2, 18, 2);

void BM_SequentialMerging(benchmark::State& state) {
  Fig4Fixture* f = GetFixture();
  const SolveOptions options =
      OptionsFor(OptimizerMethod::kMerging, state.range(0));
  for (auto _ : state) {
    auto result = Solve(f->problem, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SequentialMerging)->DenseRange(2, 18, 2);

/// Median-of-N wall time of `fn` in seconds.
template <typename Fn>
double MedianSeconds(Fn&& fn, int reps = 15) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    fn();
    times.push_back(watch.ElapsedSeconds());
  }
  std::nth_element(times.begin(), times.begin() + reps / 2, times.end());
  return times[static_cast<size_t>(reps / 2)];
}

void PrintRelativeTable(bench_util::BenchReport* report) {
  using bench_util::PrintHeader;
  using bench_util::PrintRule;
  Fig4Fixture* f = GetFixture();
  const double base = MedianSeconds([&] {
    auto result = Solve(f->problem, OptionsFor(OptimizerMethod::kOptimal));
    benchmark::DoNotOptimize(result);
  });
  report->AddCase("unconstrained", base);
  const int64_t l = CountChanges(f->problem, f->unconstrained.configs);

  PrintHeader("Figure 4: Runtimes of Constrained Design Optimizers "
              "Relative to the Unconstrained Optimizer");
  std::printf("workload: W1 x 2 (60 blocks); unconstrained optimum has "
              "l = %lld changes; unconstrained solve: %.3f ms\n\n",
              static_cast<long long>(l), base * 1e3);
  std::printf("%4s %22s %22s\n", "k", "constrained graph", "merging");
  for (int64_t k = 2; k <= 18; k += 2) {
    const double graph_time = MedianSeconds([&] {
      auto result =
          Solve(f->problem, OptionsFor(OptimizerMethod::kOptimal, k));
      benchmark::DoNotOptimize(result);
    });
    const double merge_time = MedianSeconds([&] {
      auto result =
          Solve(f->problem, OptionsFor(OptimizerMethod::kMerging, k));
      benchmark::DoNotOptimize(result);
    });
    std::printf("%4lld %21.0f%% %21.0f%%\n", static_cast<long long>(k),
                100.0 * graph_time / base, 100.0 * merge_time / base);
    report->AddCase("kaware_k" + std::to_string(k), graph_time,
                    {{"relative_to_unconstrained", graph_time / base}});
    report->AddCase("merging_k" + std::to_string(k), merge_time,
                    {{"relative_to_unconstrained", merge_time / base}});
  }
  PrintRule();
  std::printf("expected shape (paper): graph grows ~linearly with k; "
              "merging decreases with k (its column includes the\n"
              "unconstrained solve it refines, so it asymptotes to 100%%)\n");
  PrintRule();
}

}  // namespace
}  // namespace cdpd

int main(int argc, char** argv) {
  cdpd::bench_util::BenchReport report("fig4_optimizer_cost");
  cdpd::PrintRelativeTable(&report);
  report.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  cdpd::bench_util::WriteObservabilityArtifacts();
  return 0;
}
