// Parallel what-if evaluation: wall-time scaling of the unified
// Solve() entry point with the worker thread count, and the
// determinism guarantee that makes the parallelism free — identical
// schedules, costs, and what-if costing counts at every thread count.
//
// The problem is sized so the cost-matrix precompute dominates: W1 x 2
// (60 blocks) over the 2-index configuration space (22 configurations
// from the six paper indexes), solved with the k-aware graph. On a
// multi-core machine the 4-thread row should show >= 2x speedup over
// the serial row; on a single-core machine every row degenerates to
// the serial path and the table only demonstrates determinism.
//
// Thread counts are requested explicitly via SolveOptions::num_threads,
// so the sweep is independent of CDPD_THREADS.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "advisor/config_enumeration.h"
#include "common/budget.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "core/solver.h"
#include "cost/what_if.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

struct ProblemFixture {
  std::unique_ptr<CostModel> model;
  Workload workload;
  std::vector<Segment> segments;
  std::unique_ptr<WhatIfEngine> what_if;
  DesignProblem problem;
};

std::unique_ptr<ProblemFixture> MakeFixture() {
  auto f = std::make_unique<ProblemFixture>();
  f->model = bench_util::MakePaperCostModel();
  const Schema schema = MakePaperSchema();
  WorkloadGenerator gen(schema, bench_util::kPaperDomain,
                        bench_util::kSeed);
  Workload day1 = MakePaperWorkload("W1", &gen).value();
  Workload day2 = MakePaperWorkload("W1", &gen).value();
  f->workload = std::move(day1);
  f->workload.statements.insert(f->workload.statements.end(),
                                day2.statements.begin(),
                                day2.statements.end());
  f->segments = SegmentFixed(f->workload.size(), kPaperBlockSize);
  f->what_if = std::make_unique<WhatIfEngine>(
      f->model.get(), f->workload.statements, f->segments);
  ConfigEnumOptions enum_options;
  // Two indexes per configuration: 22 configurations instead of 7, so
  // the n x m what-if matrix is big enough to be worth parallelizing.
  enum_options.max_indexes_per_config = 2;
  enum_options.num_rows = f->model->num_rows();
  f->problem.what_if = f->what_if.get();
  f->problem.candidates =
      EnumerateConfigurations(MakePaperCandidateIndexes(schema),
                              enum_options)
          .value();
  f->problem.initial = Configuration::Empty();
  f->problem.final_config = Configuration::Empty();
  return f;
}

struct Run {
  int threads = 1;
  double seconds = 0;
  SolveResult result;
};

/// Solves with `threads` workers on a FRESH what-if engine (cold memo
/// cache), so every run pays the full precompute and the wall times
/// are comparable. `metrics`/`tracer` attach observability sinks to
/// the solve (the determinism rows below prove they only observe);
/// `deadline_ms >= 0` attaches a wall-clock budget.
Run SolveWith(int threads, MetricsRegistry* metrics = nullptr,
              Tracer* tracer = nullptr, int64_t deadline_ms = -1) {
  std::unique_ptr<ProblemFixture> fixture = MakeFixture();
  SolveOptions options;
  options.method = OptimizerMethod::kOptimal;
  options.k = 4;
  options.num_threads = threads;
  bench_util::AttachObservability(&options);
  if (metrics != nullptr) options.observability.metrics = metrics;
  if (tracer != nullptr) options.observability.tracer = tracer;
  if (deadline_ms >= 0) options.deadline = std::chrono::milliseconds(deadline_ms);
  Run run;
  run.threads = threads;
  auto solved = Solve(fixture->problem, options);
  if (!solved.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solved.status().ToString().c_str());
    std::exit(1);
  }
  run.result = std::move(solved).value();
  run.seconds = run.result.stats.wall_seconds;
  return run;
}

void Report(bench_util::BenchReport* report) {
  using bench_util::PrintHeader;
  using bench_util::PrintRule;
  PrintHeader(
      "Parallel what-if evaluation: Solve(k-aware, k = 4) wall time "
      "vs worker threads");
  std::printf("hardware concurrency: %d; W1 x 2 (60 blocks), 22 "
              "configurations\n\n",
              ThreadPool::DefaultThreadCount());

  const Run serial = SolveWith(1);
  report->AddCase("solve_threads1", serial.seconds, serial.result.stats);
  std::printf("%8s %12s %10s %12s %12s %10s\n", "threads", "wall ms",
              "speedup", "costings", "cc hits", "same?");
  std::printf("%8d %12.2f %10s %12lld %12lld %10s\n", serial.threads,
              serial.seconds * 1e3, "1.00x",
              static_cast<long long>(serial.result.stats.costings),
              static_cast<long long>(serial.result.stats.cost_cache_hits),
              "(base)");

  bool all_identical = true;
  for (int threads : {2, 4, 8}) {
    const Run run = SolveWith(threads);
    report->AddCase("solve_threads" + std::to_string(threads), run.seconds,
                    run.result.stats);
    const bool same_schedule =
        run.result.schedule.configs == serial.result.schedule.configs &&
        run.result.schedule.total_cost == serial.result.schedule.total_cost &&
        run.result.stats.costings == serial.result.stats.costings;
    all_identical = all_identical && same_schedule;
    std::printf("%8d %12.2f %9.2fx %12lld %12lld %10s\n", run.threads,
                run.seconds * 1e3, serial.seconds / run.seconds,
                static_cast<long long>(run.result.stats.costings),
                static_cast<long long>(run.result.stats.cost_cache_hits),
                same_schedule ? "yes" : "NO");
  }
  // Observability must only observe: the same solve with a tracer and
  // a metrics registry attached has to produce the identical schedule,
  // cost, and costing count.
  MetricsRegistry registry;
  Tracer tracer;
  const Run traced = SolveWith(4, &registry, &tracer);
  const bool traced_same =
      traced.result.schedule.configs == serial.result.schedule.configs &&
      traced.result.schedule.total_cost ==
          serial.result.schedule.total_cost &&
      traced.result.stats.costings == serial.result.stats.costings;
  all_identical = all_identical && traced_same;
  std::printf("with tracing + metrics on (4 threads): %zu spans, "
              "schedule %s\n",
              tracer.num_events(), traced_same ? "identical" : "DIVERGED");
  // A deadline that never fires must be invisible: same schedule, same
  // cost, same costing count, and the deadline_hit flag stays clear.
  const Run budgeted =
      SolveWith(4, nullptr, nullptr, /*deadline_ms=*/600'000);
  const bool budgeted_same =
      budgeted.result.schedule.configs == serial.result.schedule.configs &&
      budgeted.result.schedule.total_cost ==
          serial.result.schedule.total_cost &&
      budgeted.result.stats.costings == serial.result.stats.costings &&
      !budgeted.result.stats.deadline_hit;
  all_identical = all_identical && budgeted_same;
  std::printf("with a 600 s deadline (4 threads): schedule %s, "
              "deadline_hit %s\n",
              budgeted_same ? "identical" : "DIVERGED",
              budgeted.result.stats.deadline_hit ? "SET" : "clear");
  PrintRule();
  std::printf("schedule, total cost, and costing count %s across all "
              "thread counts and instrumentation settings\n",
              all_identical ? "are byte-identical" : "DIVERGED");
  PrintRule();
  if (!all_identical) std::exit(1);
}

/// The zero-overhead contract of the observability layer and the
/// budget poll: a disabled trace-span site (null tracer), a disabled
/// metric site (null counter), a disabled log site (null logger), a
/// disabled progress site (null callback), and an unlimited-budget
/// poll (null Budget) must all compile down to pointer tests. Times
/// millions of such sites and fails the bench when the per-site cost
/// exceeds a bound generous enough for any CI machine or sanitizer
/// build — a regression here means instrumentation or deadline
/// checking leaked real work onto the disabled path.
void AssertDisabledInstrumentationIsFree(bench_util::BenchReport* report) {
  using bench_util::PrintRule;
  constexpr int64_t kIters = 10'000'000;
  Tracer* tracer = nullptr;
  Counter* counter = nullptr;
  const Budget* budget = nullptr;
  Logger* logger = nullptr;
  const ProgressFn* progress = nullptr;
  // Launder the nulls so the optimizer cannot fold the checks away;
  // what remains is exactly what an uninstrumented hot loop executes.
  asm volatile("" : "+r"(tracer), "+r"(counter), "+r"(budget), "+r"(logger),
               "+r"(progress));
  int64_t sink = 0;
  Stopwatch watch;
  for (int64_t i = 0; i < kIters; ++i) {
    CDPD_TRACE_SPAN(tracer, "bench.noop", "bench", i);
    if (counter != nullptr) counter->Add(1);
    if (BudgetExpired(budget)) sink += 1;
    CDPD_LOG(logger, LogLevel::kInfo, "bench.noop", LogField("i", i));
    ReportProgress(progress, "bench.noop",
                   static_cast<double>(i) / kIters);
    sink += i;
    asm volatile("" : "+r"(sink));
  }
  const double ns_per_site = watch.ElapsedSeconds() * 1e9 / kIters;
  constexpr double kBoundNs = 100.0;
  std::printf("disabled instrumentation: %.2f ns per span+counter+log+"
              "progress site (bound %.0f ns) — %s\n",
              ns_per_site, kBoundNs, ns_per_site < kBoundNs ? "ok" : "FAIL");
  PrintRule();
  report->AddCase("disabled_instrumentation_site", ns_per_site * 1e-9,
                  {{"ns_per_site", ns_per_site}, {"bound_ns", kBoundNs}});
  if (ns_per_site >= kBoundNs) std::exit(1);
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("parallel_whatif");
  cdpd::Report(&report);
  cdpd::AssertDisabledInstrumentationIsFree(&report);
  report.Write();
  cdpd::bench_util::WriteObservabilityArtifacts();
  return 0;
}
