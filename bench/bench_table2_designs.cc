// Reproduces Table 2: the dynamic workloads W1/W2/W3 (mix letter per
// 500-query block) and the dynamic physical designs recommended for W1
// by the unconstrained (k = infinity) and constrained (k = 2)
// optimizers, at the paper's full scale (2.5 M rows, 15000 queries).

#include <cstdio>

#include "bench_util.h"

namespace cdpd {
namespace {

void Run(bench_util::BenchReport* report) {
  using namespace bench_util;
  const Schema schema = MakePaperSchema();
  auto model = MakePaperCostModel();
  const Workload w1 = MakeFullWorkload("W1", kSeed);

  Advisor advisor(model.get());
  auto unconstrained = advisor.Recommend(w1, PaperAdvisorOptions(std::nullopt));
  auto constrained = advisor.Recommend(w1, PaperAdvisorOptions(2));
  if (!unconstrained.ok() || !constrained.ok()) {
    std::printf("advisor failed: %s %s\n",
                unconstrained.status().ToString().c_str(),
                constrained.status().ToString().c_str());
    return;
  }
  report->AddCase("w1_unconstrained", unconstrained->stats.wall_seconds,
                  unconstrained->stats);
  report->AddCase("w1_k2", constrained->stats.wall_seconds,
                  constrained->stats);

  PrintHeader("Table 2: Dynamic Workloads and Physical Designs");
  std::printf("%-14s %-4s %-10s %-10s %-4s %-4s\n", "query number", "W1",
              "k=inf", "k=2", "W2", "W3");
  const auto w1_letters = PaperBlockMixLetters("W1");
  const auto w2_letters = PaperBlockMixLetters("W2");
  const auto w3_letters = PaperBlockMixLetters("W3");
  for (size_t block = 0; block < 30; ++block) {
    const size_t lo = block * kPaperBlockSize + 1;
    const size_t hi = (block + 1) * kPaperBlockSize;
    char range[32];
    std::snprintf(range, sizeof(range), "%zu-%zu", lo, hi);
    std::printf("%-14s %-4s %-10s %-10s %-4s %-4s\n", range,
                w1_letters[block].c_str(),
                unconstrained->schedule.configs[block].ToString(schema)
                    .c_str(),
                constrained->schedule.configs[block].ToString(schema).c_str(),
                w2_letters[block].c_str(), w3_letters[block].c_str());
  }
  PrintRule();
  std::printf("unconstrained: %lld design changes, estimated cost %.3e, "
              "optimized in %.3fs\n",
              static_cast<long long>(unconstrained->changes),
              unconstrained->schedule.total_cost,
              unconstrained->optimize_seconds);
  std::printf("constrained:   %lld design changes (k = 2), estimated cost "
              "%.3e, optimized in %.3fs\n",
              static_cast<long long>(constrained->changes),
              constrained->schedule.total_cost,
              constrained->optimize_seconds);
  std::printf("candidate indexes: ");
  for (const IndexDef& def : unconstrained->candidate_indexes) {
    std::printf("%s ", def.ToString(schema).c_str());
  }
  std::printf("\n");
  PrintRule();
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("table2_designs");
  cdpd::Run(&report);
  report.Write();
  return 0;
}
