// Ablation G: selectivity statistics. The paper's data is uniform, so
// a uniform-domain assumption is exact. On skewed data the assumption
// misprices plans; attaching measured TableStats (density vectors +
// histograms) fixes the recommendations. This bench builds a skewed
// table, compares the uniform-assumption advisor against the
// stats-aware advisor, and scores both designs by physically executing
// the workload.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/rng.h"
#include "cost/table_stats.h"
#include "cost/what_if.h"

namespace cdpd {
namespace {

/// A skewed database: column a has only 8 distinct values (equality on
/// it matches ~12.5% of rows — indexing it is a trap), column b is
/// nearly unique.
std::unique_ptr<Database> MakeSkewedDatabase(int64_t rows) {
  auto db = Database::Create(MakePaperSchema(), rows,
                             bench_util::kPaperDomain, bench_util::kSeed)
                .value();
  // Install the skew in place (before any index exists) so the cost
  // model's cardinality stays correct.
  Table* table = db->GetTableForBulkLoad().value();
  Rng rng(bench_util::kSeed);
  for (RowId row = 0; row < table->num_rows(); ++row) {
    (void)table->SetValue(row, 0, rng.UniformInt(0, 7));
    (void)table->SetValue(row, 2, rng.UniformInt(0, 99));
  }
  return db;
}

double ExecuteUnderSchedule(Database* db, const Workload& workload,
                            const Recommendation& rec) {
  AccessStats total;
  for (size_t s = 0; s < rec.segments.size(); ++s) {
    (void)db->ApplyConfiguration(rec.schedule.configs[s], &total);
    auto run = db->RunWorkload(std::span<const BoundStatement>(
        workload.statements.data() + rec.segments[s].begin,
        rec.segments[s].size()));
    total += run->stats;
  }
  AccessStats teardown;
  (void)db->ApplyConfiguration(Configuration::Empty(), &teardown);
  total += teardown;
  return db->cost_model().StatsToCost(total);
}

void Run(bench_util::BenchReport* report) {
  using namespace bench_util;
  constexpr int64_t kRows = 100'000;
  auto db = MakeSkewedDatabase(kRows);
  const Schema schema = MakePaperSchema();

  // Workload: half the queries filter on the low-cardinality column a
  // but *select d* (so an a-index cannot cover them: every match costs
  // a heap fetch); the other half are point lookups on the near-unique
  // column b.
  WorkloadGenerator gen(schema, kPaperDomain, kSeed + 9);
  std::vector<QueryMix> mixes = {QueryMix{"AB", {0.5, 0.5, 0.0, 0.0}}};
  Workload workload =
      gen.GenerateBlocked(mixes, std::vector<int>(10, 0), 500).value();
  Rng clamp(kSeed + 10);
  for (BoundStatement& s : workload.statements) {
    if (s.where_column == 0) {
      s.select_column = 3;  // Non-covered projection.
      s.where_value = clamp.UniformInt(0, 7);  // Values that exist.
    }
  }

  const TableStats stats = TableStats::FromTable(db->table());
  PrintHeader("Ablation G: uniform selectivity assumption vs measured "
              "TableStats on skewed data");
  std::printf("%s\n", stats.ToString(schema).c_str());

  // Advisor 1: uniform assumption.
  CostModel uniform_model(schema, kRows, kPaperDomain);
  Advisor uniform_advisor(&uniform_model);
  AdvisorOptions options;
  options.block_size = 500;
  options.k = 0;  // Static design: isolates the selectivity question.
  options.candidate_indexes = MakePaperCandidateIndexes(schema);
  auto uniform_rec = uniform_advisor.Recommend(workload, options);

  // Advisor 2: stats-aware.
  CostModel stats_model(schema, kRows, kPaperDomain);
  stats_model.SetTableStats(&stats);
  Advisor stats_advisor(&stats_model);
  auto stats_rec = stats_advisor.Recommend(workload, options);

  if (!uniform_rec.ok() || !stats_rec.ok()) {
    std::printf("advisor failed\n");
    return;
  }
  report->AddCase("uniform_advisor", uniform_rec->stats.wall_seconds,
                  uniform_rec->stats);
  report->AddCase("stats_aware_advisor", stats_rec->stats.wall_seconds,
                  stats_rec->stats);
  std::printf("uniform-assumption design: %s\n",
              uniform_rec->schedule.configs[0].ToString(schema).c_str());
  std::printf("stats-aware design:        %s\n\n",
              stats_rec->schedule.configs[0].ToString(schema).c_str());

  const double uniform_measured =
      ExecuteUnderSchedule(db.get(), workload, *uniform_rec);
  const double stats_measured =
      ExecuteUnderSchedule(db.get(), workload, *stats_rec);
  std::printf("measured execution (page-cost units):\n");
  std::printf("  under uniform-assumption design: %14.0f\n",
              uniform_measured);
  std::printf("  under stats-aware design:        %14.0f  (%.1f%%)\n",
              stats_measured, 100.0 * stats_measured / uniform_measured);
  PrintRule();
  std::printf(
      "The uniform advisor expects ~0.2 matches per a-query, so the\n"
      "seek-plus-heap-fetch plan under I(a,b) looks free; in reality an\n"
      "a-predicate matches ~12.5%% of the table and every match is a\n"
      "random heap fetch. Density statistics expose the trap and the\n"
      "advisor falls back to indexing only the selective column b.\n");
  PrintRule();
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("ablation_selectivity");
  cdpd::Run(&report);
  report.Write();
  return 0;
}
