// Substrate microbenchmarks: the physical primitives every experiment
// stands on — B+-tree seeks, covering scans, heap scans, index build,
// update maintenance, and what-if costing throughput.

#include <memory>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cost/what_if.h"
#include "index/index_builder.h"

namespace cdpd {
namespace {

constexpr int64_t kRows = 200'000;
constexpr int64_t kDomain = 500'000;

Database* GetDatabase() {
  static Database* db = [] {
    auto created = Database::Create(MakePaperSchema(), kRows, kDomain,
                                    bench_util::kSeed)
                       .value();
    AccessStats stats;
    Status status = created->ApplyConfiguration(
        Configuration({IndexDef({0}), IndexDef({0, 1}), IndexDef({2, 3})}),
        &stats);
    if (!status.ok()) std::abort();
    return created.release();
  }();
  return db;
}

void BM_BTreeSeek(benchmark::State& state) {
  Database* db = GetDatabase();
  Rng rng(1);
  for (auto _ : state) {
    AccessStats stats;
    auto result = db->Execute(
        BoundStatement::SelectPoint(0, 0, rng.UniformInt(0, kDomain - 1)),
        &stats);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BTreeSeek);

void BM_CoveringScan(benchmark::State& state) {
  Database* db = GetDatabase();
  Rng rng(2);
  for (auto _ : state) {
    AccessStats stats;
    // Predicate on b: answered by a leaf scan of I(a,b).
    auto result = db->Execute(
        BoundStatement::SelectPoint(1, 1, rng.UniformInt(0, kDomain - 1)),
        &stats);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CoveringScan);

void BM_TableScan(benchmark::State& state) {
  // Fresh database without indexes: the predicate column has none.
  static Database* db =
      Database::Create(MakePaperSchema(), kRows, kDomain, 7).value()
          .release();
  Rng rng(3);
  for (auto _ : state) {
    AccessStats stats;
    auto result = db->Execute(
        BoundStatement::SelectPoint(3, 3, rng.UniformInt(0, kDomain - 1)),
        &stats);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TableScan);

void BM_UpdateWithIndexMaintenance(benchmark::State& state) {
  Database* db = GetDatabase();
  Rng rng(4);
  for (auto _ : state) {
    AccessStats stats;
    auto result = db->Execute(
        BoundStatement::UpdatePoint(1, rng.UniformInt(0, kDomain - 1), 0,
                                    rng.UniformInt(0, kDomain - 1)),
        &stats);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UpdateWithIndexMaintenance);

void BM_IndexBuild(benchmark::State& state) {
  static Table* table = [] {
    auto* t = new Table(MakePaperSchema());
    Rng rng(5);
    t->PopulateUniform(kRows, 0, kDomain, &rng);
    return t;
  }();
  for (auto _ : state) {
    AccessStats stats;
    auto tree = BuildIndex(*table, IndexDef({2, 3}), &stats);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_IndexBuild)->Unit(benchmark::kMillisecond);

void BM_WhatIfSegmentCost(benchmark::State& state) {
  static auto model = bench_util::MakePaperCostModel();
  static Workload workload = bench_util::MakeFullWorkload("W1", 9);
  static std::vector<Segment> segments = SegmentFixed(workload.size(), 500);
  const std::vector<Configuration> configs = {
      Configuration::Empty(), Configuration({IndexDef({0, 1})}),
      Configuration({IndexDef({1})})};
  for (auto _ : state) {
    // Fresh engine each iteration: measures uncached costing.
    WhatIfEngine what_if(model.get(), workload.statements, segments);
    double total = 0;
    for (size_t s = 0; s < segments.size(); ++s) {
      for (const Configuration& config : configs) {
        total += what_if.SegmentCost(s, config);
      }
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_WhatIfSegmentCost);

void BM_ApplyConfigurationRoundTrip(benchmark::State& state) {
  static Database* db =
      Database::Create(MakePaperSchema(), 50'000, kDomain, 11).value()
          .release();
  const Configuration ia({IndexDef({0})});
  for (auto _ : state) {
    AccessStats stats;
    Status build = db->ApplyConfiguration(ia, &stats);
    Status drop = db->ApplyConfiguration(Configuration::Empty(), &stats);
    if (!build.ok() || !drop.ok()) std::abort();
  }
}
BENCHMARK(BM_ApplyConfigurationRoundTrip)->Unit(benchmark::kMillisecond);

/// Feeds every google-benchmark result into the BENCH_*.json telemetry
/// artifact (one case per benchmark, per-iteration real time) while
/// still printing the usual console table.
class ReportingReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingReporter(bench_util::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      report_->AddCase(
          run.benchmark_name(),
          run.real_accumulated_time / static_cast<double>(run.iterations),
          {{"iterations", static_cast<double>(run.iterations)}});
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench_util::BenchReport* report_;
};

}  // namespace
}  // namespace cdpd

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  cdpd::bench_util::BenchReport report("substrate");
  cdpd::ReportingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.Write();
  return 0;
}
