// Ablation E: automatic choice of the change bound k — the paper's
// first open question ("How should k be chosen?"). The chooser runs
// holdout validation: recommend on the design trace for each candidate
// k, replay on evaluation traces, pick the best generalizer. Three
// evaluation regimes show the chooser adapting:
//
//   exact repeat     — tomorrow equals today        -> large k wins
//   true variations  — W2/W3 (paper's Figure 3)     -> small k wins
//   synthetic jitter — no second trace available    -> small k wins

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/k_selection.h"
#include "workload/shift_detector.h"

namespace cdpd {
namespace {

void Report(const char* regime, const KSelectionReport& report) {
  std::printf("evaluation regime: %s\n%s\n", regime,
              report.ToString().c_str());
}

void Run(bench_util::BenchReport* report) {
  using namespace bench_util;
  auto model = MakePaperCostModel();
  const Workload w1 = MakeFullWorkload("W1", kSeed);
  const Workload w2 = MakeFullWorkload("W2", kSeed + 1);
  const Workload w3 = MakeFullWorkload("W3", kSeed + 2);

  KSelectionOptions options;
  options.advisor = PaperAdvisorOptions(/*k=*/0);
  options.candidate_ks = {0, 1, 2, 3, 4, 6, 10, -1};

  PrintHeader("Ablation E: choosing k by holdout validation "
              "(the paper's open question #1)");

  Stopwatch exact_watch;
  auto exact = ChooseChangeBound(*model, w1, {w1}, options);
  report->AddCase("choose_k_exact_repeat", exact_watch.ElapsedSeconds());
  if (exact.ok()) Report("exact repeat of W1", *exact);

  Stopwatch variations_watch;
  auto variations = ChooseChangeBound(*model, w1, {w2, w3}, options);
  report->AddCase("choose_k_true_variations",
                  variations_watch.ElapsedSeconds());
  if (variations.ok()) Report("true variations W2 and W3", *variations);

  Stopwatch jitter_watch;
  auto jittered = ChooseChangeBound(*model, w1, {}, options);
  report->AddCase("choose_k_synthetic_jitter", jitter_watch.ElapsedSeconds());
  if (jittered.ok()) {
    Report("synthetic jittered variants of W1 (no second trace needed)",
           *jittered);
  }

  // Independent signal: the shift detector instantiates the paper's
  // "k = number of anticipated fluctuations" guidance from the trace
  // alone, without any optimizer runs.
  ShiftDetectionOptions shift_options;
  shift_options.block_size = kPaperBlockSize;
  const ShiftReport shifts =
      DetectMajorShifts(MakePaperSchema(), w1.statements, shift_options);
  std::printf("shift detector on W1:\n%s\n", shifts.ToString().c_str());
  PrintRule();
  std::printf(
      "The chooser recovers the paper's manual choice: k tracks the\n"
      "number of *persistent* shifts (2 major phases), not the minor\n"
      "fluctuations, whenever the future is expected to vary.\n");
  PrintRule();
}

}  // namespace
}  // namespace cdpd

int main() {
  cdpd::bench_util::BenchReport report("ablation_kselection");
  cdpd::Run(&report);
  report.Write();
  return 0;
}
