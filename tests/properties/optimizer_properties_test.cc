// Cross-algorithm property suite: for random problem instances, the
// three provably-optimal solvers (brute force, k-aware graph, path
// ranking) must agree exactly, the heuristics must be feasible and no
// better than optimal, and the optimal cost must be monotone in k.
// These are the key invariants of DESIGN.md §6.

#include <limits>
#include <tuple>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/design_merging.h"
#include "core/greedy_seq.h"
#include "core/hybrid_optimizer.h"
#include "core/k_aware_graph.h"
#include "core/path_ranking.h"
#include "core/unconstrained_optimizer.h"
#include "core/validator.h"
#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

// (seed, num_segments, max_indexes_per_config)
using ParamType = std::tuple<uint64_t, size_t, int32_t>;

class OptimizerAgreementTest : public ::testing::TestWithParam<ParamType> {};

TEST_P(OptimizerAgreementTest, OptimalSolversAgreeForEveryK) {
  const auto [seed, segments, max_per_config] = GetParam();
  auto fixture =
      MakeRandomProblem(seed, segments, /*block_size=*/8, max_per_config);
  if (max_per_config > 1) {
    // Keep brute force tractable: restrict to the first 5 configs.
    if (fixture->problem.candidates.size() > 5) {
      fixture->problem.candidates = fixture->problem.candidates.Prefix(5);
    }
  }

  for (int64_t k = 0; k <= static_cast<int64_t>(segments); ++k) {
    auto brute = SolveBruteForce(fixture->problem, k);
    auto graph = SolveKAware(fixture->problem, k);
    auto ranked = SolveByRanking(fixture->problem, k);
    ASSERT_TRUE(brute.ok()) << "k=" << k;
    ASSERT_TRUE(graph.ok()) << "k=" << k;
    ASSERT_TRUE(ranked.ok()) << "k=" << k;

    EXPECT_NEAR(brute->total_cost, graph->total_cost, 1e-6) << "k=" << k;
    EXPECT_NEAR(brute->total_cost, ranked->total_cost, 1e-6) << "k=" << k;

    EXPECT_TRUE(ValidateSchedule(fixture->problem, *graph, k).ok());
    EXPECT_TRUE(ValidateSchedule(fixture->problem, *ranked, k).ok());
  }
}

TEST_P(OptimizerAgreementTest, HeuristicsAreFeasibleAndDominated) {
  const auto [seed, segments, max_per_config] = GetParam();
  auto fixture =
      MakeRandomProblem(seed, segments, /*block_size=*/8, max_per_config);

  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());

  GreedySeqOptions greedy_options;
  greedy_options.candidate_indexes =
      MakePaperCandidateIndexes(fixture->schema);
  greedy_options.max_indexes_per_config = max_per_config;

  for (int64_t k = 0; k <= static_cast<int64_t>(segments); ++k) {
    auto optimal = SolveKAware(fixture->problem, k);
    ASSERT_TRUE(optimal.ok());

    auto merged = MergeToConstraint(fixture->problem, *unconstrained, k);
    ASSERT_TRUE(merged.ok());
    EXPECT_LE(CountChanges(fixture->problem, merged->configs), k);
    EXPECT_GE(merged->total_cost, optimal->total_cost - 1e-9);
    EXPECT_TRUE(ValidateSchedule(fixture->problem, *merged, k).ok());

    auto greedy = SolveGreedySeq(fixture->problem, k, greedy_options);
    ASSERT_TRUE(greedy.ok());
    EXPECT_LE(CountChanges(fixture->problem, greedy->schedule.configs), k);
    EXPECT_GE(greedy->schedule.total_cost, optimal->total_cost - 1e-9);

    auto hybrid = SolveHybrid(fixture->problem, k);
    ASSERT_TRUE(hybrid.ok());
    EXPECT_LE(CountChanges(fixture->problem, hybrid->schedule.configs), k);
    EXPECT_GE(hybrid->schedule.total_cost, optimal->total_cost - 1e-9);
  }
}

TEST_P(OptimizerAgreementTest, OptimalCostIsMonotoneInK) {
  const auto [seed, segments, max_per_config] = GetParam();
  auto fixture =
      MakeRandomProblem(seed, segments, /*block_size=*/8, max_per_config);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());

  double previous = std::numeric_limits<double>::infinity();
  for (int64_t k = 0; k <= static_cast<int64_t>(segments); ++k) {
    auto schedule = SolveKAware(fixture->problem, k);
    ASSERT_TRUE(schedule.ok());
    EXPECT_LE(schedule->total_cost, previous + 1e-9) << "k=" << k;
    EXPECT_GE(schedule->total_cost, unconstrained->total_cost - 1e-9);
    previous = schedule->total_cost;
  }
  // At k = segments, any schedule is expressible.
  EXPECT_NEAR(previous, unconstrained->total_cost, 1e-6);
}

TEST_P(OptimizerAgreementTest, InitialChangePolicyAgreesAcrossSolvers) {
  const auto [seed, segments, max_per_config] = GetParam();
  auto fixture =
      MakeRandomProblem(seed, segments, /*block_size=*/8, max_per_config);
  if (fixture->problem.candidates.size() > 5) {
    fixture->problem.candidates =
        fixture->problem.candidates.Prefix(5);  // Keep brute force tractable.
  }
  fixture->problem.count_initial_change = true;

  for (int64_t k = 0; k <= 2; ++k) {
    auto brute = SolveBruteForce(fixture->problem, k);
    auto graph = SolveKAware(fixture->problem, k);
    auto ranked = SolveByRanking(fixture->problem, k);
    ASSERT_TRUE(brute.ok());
    ASSERT_TRUE(graph.ok());
    ASSERT_TRUE(ranked.ok());
    EXPECT_NEAR(brute->total_cost, graph->total_cost, 1e-6) << "k=" << k;
    EXPECT_NEAR(brute->total_cost, ranked->total_cost, 1e-6) << "k=" << k;
  }
}

TEST_P(OptimizerAgreementTest, ForcedFinalConfigAgreesAcrossSolvers) {
  const auto [seed, segments, max_per_config] = GetParam();
  auto fixture =
      MakeRandomProblem(seed, segments, /*block_size=*/8, max_per_config);
  if (fixture->problem.candidates.size() > 5) {
    fixture->problem.candidates =
        fixture->problem.candidates.Prefix(5);  // Keep brute force tractable.
  }
  fixture->problem.final_config = Configuration::Empty();

  for (int64_t k = 0; k <= 2; ++k) {
    auto brute = SolveBruteForce(fixture->problem, k);
    auto graph = SolveKAware(fixture->problem, k);
    auto ranked = SolveByRanking(fixture->problem, k);
    ASSERT_TRUE(brute.ok());
    ASSERT_TRUE(graph.ok());
    ASSERT_TRUE(ranked.ok());
    EXPECT_NEAR(brute->total_cost, graph->total_cost, 1e-6) << "k=" << k;
    EXPECT_NEAR(brute->total_cost, ranked->total_cost, 1e-6) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, OptimizerAgreementTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 4, 5, 6),
                       ::testing::Values<size_t>(2, 3, 5),
                       ::testing::Values<int32_t>(1, 2)),
    [](const ::testing::TestParamInfo<ParamType>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_maxidx" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace cdpd
