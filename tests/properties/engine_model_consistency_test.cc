// Engine/model consistency properties (DESIGN.md §6, invariant 5):
// for every statement shape and configuration, (a) the executor runs
// exactly the access path the cost model priced, (b) all access paths
// return identical result sets, and (c) the measured physical work,
// converted to cost units, tracks the estimate.

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "engine/database.h"

namespace cdpd {
namespace {

// (configuration label, where column, select column)
struct Case {
  const char* config_name;
  std::vector<IndexDef> indexes;
  ColumnId where_column;
  ColumnId select_column;
};

class EngineModelConsistencyTest : public ::testing::TestWithParam<Case> {
 protected:
  static void SetUpTestSuite() {
    db_ = Database::Create(MakePaperSchema(), 30'000, 300, /*seed=*/77)
              .value()
              .release();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* EngineModelConsistencyTest::db_ = nullptr;

TEST_P(EngineModelConsistencyTest, PlanMatchesModelAndResultsAgree) {
  const Case& c = GetParam();
  AccessStats apply_stats;
  ASSERT_TRUE(
      db_->ApplyConfiguration(Configuration(c.indexes), &apply_stats).ok());

  const Configuration active = db_->current_configuration();
  for (Value v : {0, 17, 299}) {
    const BoundStatement statement =
        BoundStatement::SelectPoint(c.select_column, c.where_column, v);

    // (a) The executed plan is the priced plan.
    const AccessPathChoice priced =
        db_->cost_model().ChooseAccessPath(statement, active);
    AccessStats stats;
    auto result = db_->Execute(statement, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->plan.kind, priced.kind);

    // (b) Result set equals the reference table scan.
    std::vector<Value> reference;
    const Table& table = db_->table();
    for (RowId row = 0; row < table.num_rows(); ++row) {
      if (table.GetValue(row, c.where_column) == v) {
        reference.push_back(table.GetValue(row, c.select_column));
      }
    }
    std::vector<Value> got = result->values;
    std::sort(got.begin(), got.end());
    std::sort(reference.begin(), reference.end());
    EXPECT_EQ(got, reference);

    // (c) Measured work tracks the estimate within a generous factor
    // (the estimate uses expected match counts; reality fluctuates).
    const double measured = db_->cost_model().StatsToCost(stats);
    const double estimated = priced.cost;
    EXPECT_GT(measured, 0.1 * estimated);
    EXPECT_LT(measured, 10.0 * estimated + 50.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsAndShapes, EngineModelConsistencyTest,
    ::testing::Values(
        Case{"empty", {}, 0, 0},
        Case{"ia_seek", {IndexDef({0})}, 0, 0},
        Case{"ia_fetch", {IndexDef({0})}, 0, 3},
        Case{"ia_unrelated", {IndexDef({0})}, 2, 2},
        Case{"iab_seek", {IndexDef({0, 1})}, 0, 0},
        Case{"iab_covering", {IndexDef({0, 1})}, 1, 1},
        Case{"iab_covering_cross", {IndexDef({0, 1})}, 1, 0},
        Case{"icd_covering", {IndexDef({2, 3})}, 3, 3},
        Case{"two_indexes", {IndexDef({0}), IndexDef({2, 3})}, 2, 2},
        Case{"full_paper_pair", {IndexDef({0, 1}), IndexDef({2, 3})}, 3, 2}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.config_name;
    });

TEST(EngineModelUpdateConsistencyTest, UpdateEstimateCoversMaintenance) {
  auto db = Database::Create(MakePaperSchema(), 20'000, 200, 5).value();
  AccessStats apply_stats;
  ASSERT_TRUE(db->ApplyConfiguration(
                    Configuration({IndexDef({0, 1}), IndexDef({1})}),
                    &apply_stats)
                  .ok());
  const Configuration active = db->current_configuration();
  const BoundStatement update = BoundStatement::UpdatePoint(1, 42, 0, 17);
  AccessStats stats;
  auto result = db->Execute(update, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->rows_affected, 0);
  const double measured = db->cost_model().StatsToCost(stats);
  const double estimated = db->cost_model().StatementCost(update, active);
  EXPECT_GT(measured, 0.05 * estimated);
  EXPECT_LT(measured, 20.0 * estimated + 100.0);
  // Both affected trees stay structurally sound.
  EXPECT_TRUE(db->catalog()
                  .GetIndex("t", IndexDef({0, 1}))
                  .value()
                  ->CheckInvariants());
  EXPECT_TRUE(
      db->catalog().GetIndex("t", IndexDef({1})).value()->CheckInvariants());
}

TEST(EngineModelInsertConsistencyTest, InsertKeepsIndexesConsistent) {
  auto db = Database::Create(MakePaperSchema(), 5'000, 100, 6).value();
  AccessStats apply_stats;
  ASSERT_TRUE(
      db->ApplyConfiguration(Configuration({IndexDef({2, 3})}), &apply_stats)
          .ok());
  for (int i = 0; i < 500; ++i) {
    AccessStats stats;
    ASSERT_TRUE(
        db->Execute(BoundStatement::Insert({i, i, i % 7, i % 11}), &stats)
            .ok());
  }
  const BTree* tree = db->catalog().GetIndex("t", IndexDef({2, 3})).value();
  EXPECT_EQ(tree->num_entries(), 5'500);
  EXPECT_TRUE(tree->CheckInvariants());
}

}  // namespace
}  // namespace cdpd
