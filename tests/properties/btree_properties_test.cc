// Randomized differential test of the B+-tree against a reference
// std::multiset of entries: after any interleaving of inserts and
// erases, every prefix seek and leaf scan must return exactly what the
// reference returns, and the structural invariants must hold.

#include <algorithm>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/btree.h"

namespace cdpd {
namespace {

// (seed, num_key_columns, operations, key_domain)
using ParamType = std::tuple<uint64_t, int32_t, int, int64_t>;

class BTreeDifferentialTest : public ::testing::TestWithParam<ParamType> {};

IndexEntry RandomEntry(Rng* rng, int32_t key_columns, int64_t domain,
                       RowId rid) {
  IndexEntry entry;
  for (int32_t c = 0; c < key_columns; ++c) {
    entry.key.Append(rng->UniformInt(0, domain - 1));
  }
  entry.rid = rid;
  return entry;
}

TEST_P(BTreeDifferentialTest, MatchesReferenceUnderRandomOps) {
  const auto [seed, key_columns, operations, domain] = GetParam();
  Rng rng(seed);
  std::vector<ColumnId> columns;
  for (int32_t c = 0; c < key_columns; ++c) columns.push_back(c);
  BTree tree((IndexDef(columns)));
  std::set<IndexEntry> reference;

  AccessStats stats;
  for (int op = 0; op < operations; ++op) {
    const double roll = rng.NextDouble();
    if (roll < 0.7 || reference.empty()) {
      const IndexEntry entry =
          RandomEntry(&rng, key_columns, domain, static_cast<RowId>(op));
      const bool inserted = tree.Insert(entry, &stats);
      EXPECT_EQ(inserted, reference.insert(entry).second);
    } else {
      // Erase a random existing entry half the time, a random
      // (probably absent) entry otherwise.
      if (rng.NextDouble() < 0.5) {
        auto it = reference.begin();
        std::advance(it, static_cast<int64_t>(
                             rng.NextBounded(reference.size())));
        const IndexEntry target = *it;
        EXPECT_TRUE(tree.Erase(target, &stats));
        reference.erase(it);
      } else {
        const IndexEntry entry =
            RandomEntry(&rng, key_columns, domain, -1);  // rid -1: absent.
        EXPECT_EQ(tree.Erase(entry, &stats), reference.count(entry) > 0);
        reference.erase(entry);
      }
    }
  }

  ASSERT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.num_entries(), static_cast<int64_t>(reference.size()));

  // Full scan agrees with the sorted reference.
  std::vector<IndexEntry> scanned;
  tree.ScanLeaves(&stats, [&](const IndexEntry& e) { scanned.push_back(e); });
  std::vector<IndexEntry> expected(reference.begin(), reference.end());
  EXPECT_EQ(scanned, expected);

  // Prefix seeks agree for a sample of prefixes.
  for (int trial = 0; trial < 20; ++trial) {
    CompositeKey prefix;
    prefix.Append(rng.UniformInt(0, domain - 1));
    std::vector<IndexEntry> got;
    tree.SeekPrefix(prefix, &stats,
                    [&](const IndexEntry& e) { got.push_back(e); });
    std::vector<IndexEntry> want;
    for (const IndexEntry& e : reference) {
      if (e.key.value(0) == prefix.value(0)) want.push_back(e);
    }
    EXPECT_EQ(got, want) << "prefix " << prefix.value(0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomOps, BTreeDifferentialTest,
    ::testing::Values(
        // Small domain: heavy duplication, multi-leaf duplicate runs.
        ParamType{1, 1, 4000, 5},
        ParamType{2, 1, 4000, 100},
        ParamType{3, 1, 2000, 1'000'000},
        ParamType{4, 2, 4000, 8},
        ParamType{5, 2, 3000, 1000},
        ParamType{6, 3, 3000, 6},
        ParamType{7, 4, 2000, 50},
        ParamType{8, 1, 8000, 3}),
    [](const ::testing::TestParamInfo<ParamType>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_cols" +
             std::to_string(std::get<1>(info.param)) + "_ops" +
             std::to_string(std::get<2>(info.param)) + "_dom" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace cdpd
